//! Workspace umbrella crate: re-exports for integration tests and examples.
pub use bbs_apriori as apriori;
pub use bbs_bitslice as bitslice;
pub use bbs_core as core;
pub use bbs_datagen as datagen;
pub use bbs_fptree as fptree;
pub use bbs_hash as hash;
pub use bbs_storage as storage;
pub use bbs_tdb as tdb;
