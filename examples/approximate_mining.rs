//! Approximate (refinement-free) mining — the paper's §5 future-work
//! direction, implemented in `bbs_core::approx` — plus index persistence.
//!
//! The approximate miner never touches the database: it runs the DualFilter
//! over the index, certifies what Lemma 5 / Corollary 1 can certify, and
//! attaches a model-based probability to everything else.  Downstream users
//! that tolerate approximate answers (dashboards, exploratory analysis) get
//! results in a fraction of the exact runtime.
//!
//! Run with: `cargo run --release --example approximate_mining`

use bbs_core::{mine_approximate, persist, Bbs, BbsMiner, FilterKind, Scheme};
use bbs_datagen::{generate_db, QuestConfig};
use bbs_hash::Md5BloomHasher;
use bbs_tdb::{FrequentPatternMiner, IoStats, SupportThreshold};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let cfg = QuestConfig {
        transactions: 5_000,
        items: 2_000,
        avg_txn_len: 10.0,
        avg_pattern_len: 6.0,
        pattern_pool: 400,
        correlation: 0.5,
        corruption_mean: 0.5,
        corruption_sd: 0.1,
        seed: 99,
    };
    println!("generating {}…", cfg.label());
    let db = generate_db(cfg);
    let tau = (db.len() / 100) as u64; // 1 %

    let mut io = IoStats::new();
    let bbs = Bbs::build(800, Arc::new(Md5BloomHasher::new(4)), &db, &mut io);

    // Exact mining for reference.
    let (exact, exact_secs) = {
        let start = Instant::now();
        let mut miner = BbsMiner::with_index(Scheme::Dfp, bbs.clone());
        let r = miner.mine(&db, SupportThreshold::Count(tau));
        (r, start.elapsed().as_secs_f64())
    };

    // Approximate mining: index only, no database access at all.
    let start = Instant::now();
    let approx = mine_approximate(&bbs, FilterKind::Dual, tau, 0.5);
    let approx_secs = start.elapsed().as_secs_f64();

    println!(
        "\nexact DFP : {:4} patterns in {:.3}s (with database access)",
        exact.patterns.len(),
        exact_secs
    );
    println!(
        "approx    : {:4} patterns in {:.3}s (ZERO database access: {} scans, {} probes)",
        approx.patterns.len(),
        approx_secs,
        approx.stats.io.db_scans,
        approx.stats.io.db_probes
    );

    // Score the approximation against the exact answer.
    let mut true_positives = 0usize;
    let mut false_positives = 0usize;
    for p in &approx.patterns {
        if exact.patterns.contains(&p.items) {
            true_positives += 1;
        } else {
            false_positives += 1;
        }
    }
    let recall = true_positives as f64 / exact.patterns.len().max(1) as f64;
    println!(
        "quality   : recall {:.1}%, {} false positives at confidence >= 0.5",
        recall * 100.0,
        false_positives
    );

    println!("\nleast-confident reported patterns:");
    for p in approx.patterns.iter().rev().take(5) {
        println!(
            "  {:?}  est {}  corrected {:.1}  confidence {:.3}{}",
            p.items,
            p.est,
            p.corrected,
            p.confidence,
            if p.certified { "  [certified]" } else { "" }
        );
    }

    // Persistence: save the index, reload it, mine again — same answer.
    let path = std::env::temp_dir().join("approx_example.bbs");
    persist::save_to_path(&bbs, &path).expect("save index");
    let loaded =
        persist::load_from_path(&path, Arc::new(Md5BloomHasher::new(4))).expect("load index");
    let mut miner = BbsMiner::with_index(Scheme::Dfp, loaded);
    let again = miner.mine(&db, SupportThreshold::Count(tau));
    assert_eq!(again.patterns.len(), exact.patterns.len());
    println!(
        "\npersistence: index round-tripped through {} ({} KiB) and mined identically",
        path.display(),
        std::fs::metadata(&path).map(|m| m.len() / 1024).unwrap_or(0)
    );
    std::fs::remove_file(&path).ok();
}
