//! Dynamic-database scenario (§4.8): a web server's access log grows day by
//! day while the hot set of files rotates.  The BBS index absorbs each day's
//! sessions by appending rows — no reconstruction — while an FP-tree must be
//! rebuilt from the full history every time the patterns are re-mined.
//!
//! Run with: `cargo run --release --example dynamic_weblog`

use bbs_core::{BbsMiner, Scheme};
use bbs_datagen::{WeblogConfig, WeblogGenerator};
use bbs_fptree::FpGrowthMiner;
use bbs_hash::Md5BloomHasher;
use bbs_tdb::{FrequentPatternMiner, SupportThreshold, TransactionDb};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let cfg = WeblogConfig::paper_scaled(6, 2_000);
    println!(
        "web-log workload: {} files, {} days × {} sessions/day, {}% of hot files rotate daily",
        cfg.files,
        cfg.days,
        cfg.sessions_per_day,
        (cfg.daily_rotation * 100.0) as u32
    );

    let mut generator = WeblogGenerator::new(cfg);
    let day0 = generator.next_day().expect("day 0");
    let mut db = TransactionDb::from_transactions(day0.transactions);

    let build_start = Instant::now();
    let mut miner = BbsMiner::build(Scheme::Dfp, &db, 800, Arc::new(Md5BloomHasher::new(4)));
    println!(
        "day 0: indexed {} sessions in {:.3}s",
        db.len(),
        build_start.elapsed().as_secs_f64()
    );

    let threshold = SupportThreshold::percent(1.0);
    println!(
        "\n{:>4} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "day", "sessions", "append (s)", "DFP mine(s)", "FPS mine(s)", "patterns"
    );

    loop {
        // Mine the accumulated database with both approaches.
        let t = Instant::now();
        let dfp = miner.mine(&db, threshold);
        let dfp_secs = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let fps = FpGrowthMiner::new().mine(&db, threshold);
        let fps_secs = t.elapsed().as_secs_f64();
        assert_eq!(dfp.patterns.len(), fps.patterns.len(), "miners disagree");

        let Some(day) = generator.next_day() else {
            println!(
                "{:>4} {:>10} {:>12} {:>12.3} {:>12.3} {:>12}",
                "end",
                db.len(),
                "-",
                dfp_secs,
                fps_secs,
                dfp.patterns.len()
            );
            break;
        };

        // Absorb the new day: BBS appends; FP-tree has nothing to keep.
        let t = Instant::now();
        for txn in &day.transactions {
            miner.append(txn);
            db.push(txn.clone());
        }
        let append_secs = t.elapsed().as_secs_f64();

        println!(
            "{:>4} {:>10} {:>12.4} {:>12.3} {:>12.3} {:>12}",
            day.day,
            db.len(),
            append_secs,
            dfp_secs,
            fps_secs,
            dfp.patterns.len()
        );
    }

    let io = miner.maintenance_io();
    println!(
        "\nBBS maintenance: {} pages written total — the entire cost of keeping \
         the index current across {} days",
        io.bbs_pages_written,
        cfg.days
    );
}
