//! Market-basket analysis on a synthetic retail workload: generate an IBM
//! Quest dataset (the paper's evaluation data), mine it with all six
//! algorithms, and compare their answers and costs.
//!
//! Run with: `cargo run --release --example market_basket`

use bbs_apriori::AprioriMiner;
use bbs_core::{BbsMiner, Scheme};
use bbs_datagen::{generate_db, QuestConfig};
use bbs_fptree::FpGrowthMiner;
use bbs_hash::Md5BloomHasher;
use bbs_tdb::{FrequentPatternMiner, MineResult, SupportThreshold};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // A scaled-down version of the paper's default T10.I10.D10K dataset so
    // the example finishes in seconds even in a debug build.
    let cfg = QuestConfig {
        transactions: 2_000,
        items: 1_000,
        avg_txn_len: 10.0,
        avg_pattern_len: 6.0,
        pattern_pool: 300,
        correlation: 0.5,
        corruption_mean: 0.5,
        corruption_sd: 0.1,
        seed: 42,
    };
    println!("generating {} ({} items)…", cfg.label(), cfg.items);
    let db = generate_db(cfg);
    let threshold = SupportThreshold::percent(1.0);

    let report = |name: &str, result: &MineResult, secs: f64| {
        println!(
            "  {:4}  {:6} patterns  {:8} candidates  {:6} false drops  {:8.3}s  \
             {:5} db scans  {:7} probes",
            name,
            result.patterns.len(),
            result.stats.candidates,
            result.stats.false_drops,
            secs,
            result.stats.io.db_scans,
            result.stats.io.db_probes,
        );
    };

    println!("mining at minimum support 1%:");
    let mut reference_len = None;

    for scheme in Scheme::ALL {
        let build_start = Instant::now();
        let mut miner = BbsMiner::build(scheme, &db, 400, Arc::new(Md5BloomHasher::new(4)));
        let build_secs = build_start.elapsed().as_secs_f64();
        let start = Instant::now();
        let result = miner.mine(&db, threshold);
        report(scheme.name(), &result, start.elapsed().as_secs_f64());
        if scheme == Scheme::Sfs {
            println!("        (index build took {build_secs:.3}s, shared by all schemes)");
        }
        match reference_len {
            None => reference_len = Some(result.patterns.len()),
            Some(n) => assert_eq!(n, result.patterns.len(), "miners disagree!"),
        }
    }

    let start = Instant::now();
    let apriori = AprioriMiner::new().mine(&db, threshold);
    report("APS", &apriori, start.elapsed().as_secs_f64());
    assert_eq!(reference_len, Some(apriori.patterns.len()));

    let start = Instant::now();
    let fp = FpGrowthMiner::new().mine(&db, threshold);
    report("FPS", &fp, start.elapsed().as_secs_f64());
    assert_eq!(reference_len, Some(fp.patterns.len()));

    // Show the strongest associations found.
    println!("\ntop multi-item patterns by support:");
    let mut multi: Vec<_> = fp
        .patterns
        .sorted()
        .into_iter()
        .filter(|p| p.items.len() >= 2)
        .collect();
    multi.sort_by_key(|p| std::cmp::Reverse(p.support));
    for p in multi.iter().take(10) {
        println!("  {:?}  support {}", p.items, p.support);
    }
    if multi.is_empty() {
        println!("  (no multi-item pattern reached the threshold)");
    }

    // Close the loop: association rules from the mined patterns.
    let rules = bbs_tdb::generate_rules(&fp.patterns, 0.6, Some(db.len() as u64));
    println!(
        "\n{} association rules at confidence >= 0.6; strongest:",
        rules.len()
    );
    for rule in rules.iter().take(8) {
        println!("  {rule}");
    }
}
