//! Ad-hoc queries with constraints (§3.4 / §4.9): exact counts of arbitrary
//! patterns — frequent or not — optionally restricted by a selection
//! predicate compiled to a single constraint bit-slice.
//!
//! The paper's two example queries:
//!   Q1  "What is the count of a particular non-frequent pattern I?"
//!   Q2  "How often does itemset I occur in transactions whose TID is
//!        divisible by 7?"  (Sunday transactions, if TIDs number the days.)
//!
//! Run with: `cargo run --release --example constrained_queries`

use bbs_core::{AdhocEngine, Bbs};
use bbs_datagen::{generate_db, QuestConfig};
use bbs_hash::Md5BloomHasher;
use bbs_tdb::{IoStats, Itemset, TidModulo, TidRange};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let cfg = QuestConfig {
        transactions: 5_000,
        items: 2_000,
        avg_txn_len: 10.0,
        avg_pattern_len: 5.0,
        pattern_pool: 400,
        correlation: 0.5,
        corruption_mean: 0.5,
        corruption_sd: 0.1,
        seed: 7,
    };
    println!("generating {}…", cfg.label());
    let db = generate_db(cfg);

    let mut io = IoStats::new();
    let bbs = Bbs::build(800, Arc::new(Md5BloomHasher::new(4)), &db, &mut io);
    let engine = AdhocEngine::new(&bbs, &db);

    // Q1: exact counts of arbitrary patterns, without any scan.  Pick a few
    // low-support patterns straight from the data so the counts are nonzero.
    println!("\nQ1 — exact counts of (non-frequent) patterns:");
    let samples: Vec<Itemset> = db
        .transactions()
        .iter()
        .step_by(db.len() / 4)
        .map(|t| {
            let items = t.items.items();
            Itemset::from_items(items.iter().take(2).copied().collect())
        })
        .collect();
    for pattern in &samples {
        let mut q_io = IoStats::new();
        let t = Instant::now();
        let count = engine.count(pattern, &mut q_io);
        let est = engine.estimate(pattern, &mut q_io);
        println!(
            "  {:?}: count {} (estimate {}), {} rows probed, 0 scans, {:.4}s",
            pattern,
            count,
            est,
            q_io.db_probes,
            t.elapsed().as_secs_f64()
        );
        assert_eq!(q_io.db_scans, 0);
    }

    // Q2: the same patterns restricted to "Sunday" transactions.
    println!("\nQ2 — counts over transactions with TID divisible by 7:");
    let mut q_io = IoStats::new();
    let sunday = engine.compile_constraint(&TidModulo::divisible_by(7), &mut q_io);
    println!(
        "  (constraint slice compiled once: {} of {} rows selected)",
        sunday.count_ones(),
        db.len()
    );
    for pattern in &samples {
        let count = engine.count_with_slice(pattern, &sunday, &mut q_io);
        println!("  {pattern:?} on Sundays: {count}");
    }

    // Time-window constraint: only the first fifth of the history.
    println!("\nbonus — time-window constraint (TID in [0, 1000)):");
    let window = TidRange {
        start: 0,
        end: 1_000,
    };
    for pattern in &samples {
        let count = engine.count_constrained(pattern, &window, &mut q_io);
        println!("  {pattern:?} in window: {count}");
    }

    // Frequency test with estimate short-circuit.
    println!("\nis_frequent with Lemma-4 short-circuit:");
    let rare = &samples[0];
    let mut f_io = IoStats::new();
    let frequent = engine.is_frequent(rare, (db.len() / 10) as u64, &mut f_io);
    println!(
        "  {:?} frequent at 10%? {} ({} probes needed)",
        rare, frequent, f_io.db_probes
    );
}
