//! Quickstart: build a BBS index over a small transaction database and mine
//! its frequent patterns with the paper's best scheme (DFP).
//!
//! Run with: `cargo run --release --example quickstart`

use bbs_core::{BbsMiner, Scheme};
use bbs_hash::Md5BloomHasher;
use bbs_tdb::{FrequentPatternMiner, Itemset, SupportThreshold, Transaction, TransactionDb};
use std::sync::Arc;

fn main() {
    // The running example of the paper (Table 1): five transactions over
    // sixteen items.
    let db = TransactionDb::from_transactions(vec![
        Transaction::new(100, Itemset::from_values(&[0, 1, 2, 3, 4, 5, 14, 15])),
        Transaction::new(200, Itemset::from_values(&[1, 2, 3, 5, 6, 7])),
        Transaction::new(300, Itemset::from_values(&[1, 5, 14, 15])),
        Transaction::new(400, Itemset::from_values(&[0, 1, 2, 7])),
        Transaction::new(500, Itemset::from_values(&[1, 2, 5, 6, 11, 15])),
    ]);

    // Index it: 64-bit signatures, 4 MD5-derived hash functions per item.
    // The index persists; it is built once and can be mined repeatedly (and
    // appended to — see the dynamic_weblog example).
    let mut miner = BbsMiner::build(Scheme::Dfp, &db, 64, Arc::new(Md5BloomHasher::new(4)));

    // Mine every pattern occurring in at least 3 of the 5 transactions.
    let result = miner.mine(&db, SupportThreshold::Count(3));

    println!("frequent patterns (support >= 3):");
    for pattern in result.patterns.sorted() {
        let marker = if result.approx_supports.contains(&pattern.items) {
            " (certified, support is an upper bound)"
        } else {
            ""
        };
        println!(
            "  {:?}  support {}{}",
            pattern.items, pattern.support, marker
        );
    }

    println!("\nrun statistics:");
    println!("  candidates examined : {}", result.stats.candidates);
    println!("  false drops         : {}", result.stats.false_drops);
    println!("  certified w/o probe : {}", result.stats.certified);
    println!("  CountItemSet calls  : {}", result.stats.bbs_counts);
    println!("  db rows probed      : {}", result.stats.io.db_probes);
    println!("  db full scans       : {}", result.stats.io.db_scans);
}
