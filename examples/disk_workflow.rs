//! A full durable deployment: transaction heap file + on-disk BBS index,
//! maintained incrementally across simulated restarts, then mined.
//!
//! This exercises what the paper can only claim on paper — that BBS is a
//! *persistent* structure whose maintenance under growth is pure appends —
//! against real files with a real bounded page cache:
//!
//! 1. day 0: create the deployment, ingest sessions, flush, "shut down";
//! 2. each following day: reopen from the files alone, append that day's
//!    sessions (no reconstruction), answer a few in-place `CountItemSet`
//!    queries straight off the slice file, and mine after a one-pass load;
//! 3. report the page-cache behaviour along the way.
//!
//! Run with: `cargo run --release --example disk_workflow`

use bbs_core::{BbsMiner, Scheme};
use bbs_datagen::{WeblogConfig, WeblogGenerator};
use bbs_hash::Md5BloomHasher;
use bbs_storage::DiskDeployment;
use bbs_tdb::{FrequentPatternMiner, Itemset, SupportThreshold};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let base = std::env::temp_dir().join(format!("bbs_disk_workflow_{}", std::process::id()));
    DiskDeployment::remove_files(&base).ok();

    let cfg = WeblogConfig::paper_scaled(5, 2_000);
    let mut generator = WeblogGenerator::new(cfg);
    let hasher = Arc::new(Md5BloomHasher::new(4));
    let width = 800;
    let cache_pages = 2_048; // 8 MiB of cache over the slice + data files

    println!(
        "deployment at {} ({} files, {} sessions/day, m = {width})\n",
        base.display(),
        cfg.files,
        cfg.sessions_per_day
    );

    let mut day_count = 0usize;
    while let Some(day) = generator.next_day() {
        // Reopen from files alone — a fresh process would do exactly this.
        let open_start = Instant::now();
        let mut dep = DiskDeployment::open(&base, width, hasher.clone(), cache_pages)
            .expect("open deployment");
        let reopened_rows = dep.db.len();

        let ingest_start = Instant::now();
        for txn in &day.transactions {
            dep.append(txn).expect("append");
        }
        dep.flush().expect("flush");
        let ingest_secs = ingest_start.elapsed().as_secs_f64();

        // In-place ad-hoc counting: no load, straight off the slice pages.
        let hot = &day.hot_files[..2.min(day.hot_files.len())];
        let probe_set: Itemset = hot.iter().map(|f| f.0).collect();
        let est = dep.index.count_itemset(&probe_set).expect("count");

        // Mine: one sequential load of the index, then in-memory DFP.
        let load_start = Instant::now();
        let db = dep.db.load().expect("load db");
        let bbs = dep.index.load().expect("load index");
        let load_secs = load_start.elapsed().as_secs_f64();
        let mine_start = Instant::now();
        let result =
            BbsMiner::with_index(Scheme::Dfp, bbs).mine(&db, SupportThreshold::percent(1.0));
        let mine_secs = mine_start.elapsed().as_secs_f64();

        let cache = dep.index.cache_stats();
        println!(
            "day {}: reopened {:>6} rows in {:.3}s | +{} sessions in {:.3}s | \
             est({probe_set:?}) = {est} | load {:.3}s + mine {:.3}s -> {} patterns | \
             slice cache: {} hits / {} misses / {} evictions",
            day.day,
            reopened_rows,
            open_start.elapsed().as_secs_f64() - ingest_secs,
            day.transactions.len(),
            ingest_secs,
            load_secs,
            mine_secs,
            result.patterns.len(),
            cache.hits,
            cache.misses,
            cache.evictions,
        );
        day_count += 1;
    }

    println!(
        "\n{day_count} days ingested; the index was never rebuilt — every restart \
         resumed from the slice file."
    );
    DiskDeployment::remove_files(&base).ok();
}
