#!/bin/sh
# Full local CI: release build, every test in the workspace, a compile
# check of the benchmarks, the kernel property tests re-run with the
# native instruction set (exercising the AVX2 dispatch tier where the
# host has it), and a warning-free clippy pass.  Run from the repository
# root.
set -eux

cargo build --release
cargo test -q
cargo bench --no-run
RUSTFLAGS="-C target-cpu=native" cargo test -q -p bbs-bitslice --test kernel_props
cargo clippy --all-targets -- -D warnings
