#!/bin/sh
# Full local CI: release build, every test in the workspace, a compile
# check of the benchmarks, the kernel property tests re-run with the
# native instruction set (exercising the AVX2 dispatch tier where the
# host has it), the server's end-to-end suites (wire-protocol clients
# against a live server, and the subprocess kill/fsck recovery test),
# the sharded-deployment suites (router parity over the wire, proptest
# equivalence oracle, SIGKILL crash recovery), and a warning-free clippy
# pass.  Run from the repository root.
set -eux

cargo build --release
cargo test -q
cargo bench --no-run
RUSTFLAGS="-C target-cpu=native" cargo test -q -p bbs-bitslice --test kernel_props
# Kernel-dispatch smoke matrix: the same property tests under every
# forced tier.  Forcing a tier the host lacks falls back to detection,
# so the avx2/avx512 rows are safe no-ops on older machines.
for tier in portable scalar avx2 avx512; do
  BBS_KERNEL_TIER="${tier}" \
    RUSTFLAGS="-C target-cpu=native" cargo test -q -p bbs-bitslice --test kernel_props
done
# Bench smoke: the batched-counting benchmark end to end (in-process
# server + storage + kernel tiers), leaving BENCH_7.json in the root.
./target/release/bench_count_many BENCH_7.json
# Sharded-deployment smoke: ingest txns/s and count_many latency at 1
# and 4 shards through the shard router, leaving BENCH_8.json.
./target/release/bench_shard BENCH_8.json
# Distributed smoke: local sharded vs coordinator-over-TCP count_many
# and fan-out latency at 1 and 4 shards, leaving BENCH_9.json.
./target/release/bench_distributed BENCH_9.json
# Dynamic-workload smoke: weblog churn into a narrow index, then count/
# mine latency and measured FPR before vs after the widening compaction
# and the fold, leaving BENCH_10.json.
./target/release/bench_dynamic BENCH_10.json
# The server suites run as part of `cargo test -q` above; run them again
# by name so a failure here is unambiguous in CI logs.
cargo test -q -p bbs-server --test integration
cargo test -q -p bbs-server --test net_faults
cargo test -q -p bbs-server --test replication
cargo test -q -p bbs-cli --test server_proc
cargo test -q -p bbs-cli --test shard_proc
cargo test -q -p bbs-server --test sharded
# The randomized chaos harnesses run on a fixed seed in CI so failures
# reproduce; export CHAOS_SEED to try a different schedule.
CHAOS_SEED="${CHAOS_SEED:-2964703749}"
echo "chaos seed: ${CHAOS_SEED}"
CHAOS_SEED="${CHAOS_SEED}" cargo test -q -p bbs-server --test chaos -- --nocapture
CHAOS_SEED="${CHAOS_SEED}" cargo test -q -p bbs-cli --test failover -- --nocapture
# Dynamic-workload suite on the same pinned seed: exactly-once deletes,
# compaction/fold/FPR maintenance, delete replication + resync, and the
# weblog-churn storm whose measured FPR must heal under AUTO rounds.
CHAOS_SEED="${CHAOS_SEED}" cargo test -q -p bbs-server --test dynamic -- --nocapture
# Distributed e2e: coordinator + shard servers + replica over real
# sockets (equivalence, typed SHARD_UNAVAILABLE, failover), then the
# SIGKILL-a-shard-primary chaos run on the pinned seed.
cargo test -q -p bbs-remote --test distributed
CHAOS_SEED="${CHAOS_SEED}" cargo test -q -p bbs-cli --test distributed_chaos -- --nocapture
# Shard oracle suites: proptest equivalence against the unsharded
# deployment, and SIGKILL-mid-ingest crash recovery, on the pinned seed.
CHAOS_SEED="${CHAOS_SEED}" cargo test -q -p bbs-shard --test equivalence
CHAOS_SEED="${CHAOS_SEED}" cargo test -q -p bbs-shard --test crash -- --nocapture
cargo clippy -p bbs-shard --all-targets -- -D warnings
cargo clippy -p bbs-server --all-targets -- -D warnings
cargo clippy -p bbs-remote --all-targets -- -D warnings
cargo clippy --all-targets -- -D warnings
