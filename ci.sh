#!/bin/sh
# Full local CI: release build, every test in the workspace, and a
# warning-free clippy pass.  Run from the repository root.
set -eux

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
