//! Dynamic-database integration tests (§3.4 / §4.8): the BBS index is
//! maintained incrementally across day batches and keeps mining correctly,
//! while an FP-tree must be rebuilt from scratch each time.

use bbs_core::{BbsMiner, Scheme};
use bbs_datagen::{WeblogConfig, WeblogGenerator};
use bbs_fptree::FpGrowthMiner;
use bbs_hash::Md5BloomHasher;
use bbs_tdb::{FrequentPatternMiner, NaiveMiner, SupportThreshold, TransactionDb};
use std::sync::Arc;

#[test]
fn incremental_mining_tracks_growing_weblog() {
    let mut generator = WeblogGenerator::new(WeblogConfig::tiny());
    let day0 = generator.next_day().expect("day 0");

    let mut db = TransactionDb::from_transactions(day0.transactions.clone());
    let mut miner = BbsMiner::build(Scheme::Dfp, &db, 64, Arc::new(Md5BloomHasher::new(4)));
    let threshold = SupportThreshold::percent(8.0);

    // Mine day 0, then append each subsequent day and re-mine; every result
    // must match a from-scratch oracle over the accumulated database.
    for _ in 0..3 {
        let result = miner.mine(&db, threshold);
        let oracle = NaiveMiner::new().mine(&db, threshold).patterns;
        assert_eq!(result.patterns.len(), oracle.len());
        for (items, support) in result.patterns.iter() {
            let truth = oracle.support(items).expect("pattern in oracle");
            if result.approx_supports.contains(items) {
                assert!(support >= truth);
            } else {
                assert_eq!(support, truth, "{items:?}");
            }
        }

        let Some(day) = generator.next_day() else {
            break;
        };
        for txn in &day.transactions {
            miner.append(txn);
            db.push(txn.clone());
        }
    }
}

#[test]
fn bbs_update_is_append_only_while_fptree_rebuilds() {
    let mut generator = WeblogGenerator::new(WeblogConfig::tiny());
    let day0 = generator.next_day().expect("day 0");
    let day1 = generator.next_day().expect("day 1");

    let mut db = TransactionDb::from_transactions(day0.transactions.clone());
    let mut miner = BbsMiner::build(Scheme::Dfp, &db, 64, Arc::new(Md5BloomHasher::new(4)));
    let rows_before = miner.index().rows();

    for txn in &day1.transactions {
        miner.append(txn);
        db.push(txn.clone());
    }
    // The index grew by exactly the appended transactions — no rebuild.
    assert_eq!(miner.index().rows(), rows_before + day1.transactions.len());

    // FP-growth has no incremental path: each mine over the grown database
    // re-scans everything (2 scans per run, every run).
    let mut fp = FpGrowthMiner::new();
    let r1 = fp.mine(&db, SupportThreshold::percent(8.0));
    let r2 = fp.mine(&db, SupportThreshold::percent(8.0));
    assert_eq!(r1.stats.io.db_scans, 2);
    assert_eq!(r2.stats.io.db_scans, 2, "every FP run pays the full rebuild");

    // Both agree on the answer, of course.
    let bbs_result = miner.mine(&db, SupportThreshold::percent(8.0));
    assert_eq!(bbs_result.patterns.len(), r1.patterns.len());
}

#[test]
fn new_items_require_no_restructuring() {
    // §3.4: "for new items, since the bit vector is obtained by hashing on
    // the items, the new items do not affect BBS either."
    let db = TransactionDb::from_itemsets(vec![
        bbs_tdb::Itemset::from_values(&[1, 2]),
        bbs_tdb::Itemset::from_values(&[1, 2, 3]),
    ]);
    let mut miner = BbsMiner::build(Scheme::Dfp, &db, 64, Arc::new(Md5BloomHasher::new(4)));
    let width_before = miner.index().width();

    // Append transactions introducing items never seen before.
    let mut grown = db.clone();
    for (i, items) in [&[900u32, 901][..], &[900, 1, 2], &[901, 902]]
        .iter()
        .enumerate()
    {
        let txn = bbs_tdb::Transaction::new(100 + i as u64, bbs_tdb::Itemset::from_values(items));
        miner.append(&txn);
        grown.push(txn);
    }
    assert_eq!(miner.index().width(), width_before, "width is stable");

    let result = miner.mine(&grown, SupportThreshold::Count(2));
    let oracle = NaiveMiner::new()
        .mine(&grown, SupportThreshold::Count(2))
        .patterns;
    assert_eq!(result.patterns.len(), oracle.len());
    // The brand-new item 900 (support 2) is found.
    assert!(result
        .patterns
        .contains(&bbs_tdb::Itemset::from_values(&[900])));
}
