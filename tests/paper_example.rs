//! End-to-end reproduction of the paper's running example (Tables 1–2,
//! Examples 1–2) — experiment E1 in DESIGN.md.

use bbs_core::{Bbs, BbsMiner, Scheme};
use bbs_hash::ModuloHasher;
use bbs_tdb::{
    FrequentPatternMiner, IoStats, Itemset, SupportThreshold, Transaction, TransactionDb,
};
use std::sync::Arc;

fn set(vals: &[u32]) -> Itemset {
    Itemset::from_values(vals)
}

/// Table 1: the five transactions over 16 items.
fn table_1() -> TransactionDb {
    TransactionDb::from_transactions(vec![
        Transaction::new(100, set(&[0, 1, 2, 3, 4, 5, 14, 15])),
        Transaction::new(200, set(&[1, 2, 3, 5, 6, 7])),
        Transaction::new(300, set(&[1, 5, 14, 15])),
        Transaction::new(400, set(&[0, 1, 2, 7])),
        Transaction::new(500, set(&[1, 2, 5, 6, 11, 15])),
    ])
}

fn example_bbs() -> Bbs {
    // "one hash function of the form h(x) = x mod 8" and "8-bit vectors".
    let mut io = IoStats::new();
    Bbs::build(8, Arc::new(ModuloHasher), &table_1(), &mut io)
}

#[test]
fn table_1_bit_vectors() {
    let bbs = example_bbs();
    // The per-transaction signatures, bit positions derived from h(x)=x mod 8.
    let expected: [&[usize]; 5] = [
        &[0, 1, 2, 3, 4, 5, 6, 7], // 100: items {0..5,14,15} cover all bits
        &[1, 2, 3, 5, 6, 7],       // 200
        &[1, 5, 6, 7],             // 300: 14→6, 15→7
        &[0, 1, 2, 7],             // 400
        &[1, 2, 3, 5, 6, 7],       // 500: 11→3, 15→7
    ];
    for (row, exp) in expected.iter().enumerate() {
        let sig = bbs.matrix().row_signature(row);
        let got: Vec<usize> = sig.iter_ones().collect();
        assert_eq!(&got, exp, "transaction row {row}");
    }
    // The lossy-representation observation of Example 1: transactions 200
    // and 500 share a bit vector and are indistinguishable in the index.
    assert_eq!(
        bbs.matrix().row_signature(1),
        bbs.matrix().row_signature(4)
    );
}

#[test]
fn example_2_count_itemset() {
    let bbs = example_bbs();
    let mut io = IoStats::new();
    // "Suppose we want to determine the number of transactions containing
    //  item set I = {0,1} … there are two transactions containing I" —
    // and the answer is exact here.
    assert_eq!(bbs.est_count(&set(&[0, 1]), &mut io), 2);
    // "if we were to determine the number of transactions containing
    //  I = {1,3}, we will obtain a value of 3 … larger than the actual
    //  count of 2."
    assert_eq!(bbs.est_count(&set(&[1, 3]), &mut io), 3);
    let mut scan_io = IoStats::new();
    assert_eq!(table_1().count_support(&set(&[1, 3]), &mut scan_io), 2);
}

#[test]
fn full_mining_on_the_running_example() {
    let db = table_1();
    for scheme in Scheme::ALL {
        let mut miner = BbsMiner::build(scheme, &db, 8, Arc::new(ModuloHasher));
        let result = miner.mine(&db, SupportThreshold::Count(3));
        // 11 frequent patterns at τ = 3 (hand-verified in bbs-tdb's tests).
        assert_eq!(result.patterns.len(), 11, "{}", scheme.name());
        assert!(result.patterns.contains(&set(&[1, 2, 5])));
        assert!(result.patterns.contains(&set(&[1, 5, 15])));
        assert!(!result.patterns.contains(&set(&[1, 3])));
    }
}

#[test]
fn constraint_example_from_section_3_4() {
    // "Is the itemset {1,2,3} frequent during the month of October?" —
    // modelled as a TID range over the running example.
    let db = table_1();
    let mut io = IoStats::new();
    let bbs = Bbs::build(8, Arc::new(ModuloHasher), &db, &mut io);
    let engine = bbs_core::AdhocEngine::new(&bbs, &db);
    let october = bbs_tdb::TidRange {
        start: 100,
        end: 301,
    };
    assert_eq!(
        engine.count_constrained(&set(&[1, 2, 3]), &october, &mut io),
        2,
        "transactions 100 and 200 contain {{1,2,3}} in the window"
    );
    assert_eq!(
        engine.count_constrained(&set(&[1, 2, 3]), &bbs_tdb::TidRange { start: 301, end: 501 }, &mut io),
        0
    );
}
