//! Property-based tests for the paper's formal guarantees (Lemmas 1–5,
//! Corollary 1) and the structural invariants listed in DESIGN.md.

use bbs_core::{run_filter, AdhocEngine, Bbs, FilterKind};
use bbs_hash::{Md5BloomHasher, ModuloHasher};
use bbs_tdb::{
    FrequentPatternMiner, IoStats, ItemId, Itemset, SupportThreshold, TidModulo, TransactionDb,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a small random transaction database over items `0..items`.
fn arb_db(items: u32, max_txns: usize) -> impl Strategy<Value = TransactionDb> {
    proptest::collection::vec(
        proptest::collection::btree_set(0..items, 1..8),
        1..max_txns,
    )
    .prop_map(|txns| {
        TransactionDb::from_itemsets(
            txns.into_iter()
                .map(|s| s.into_iter().collect::<Itemset>()),
        )
    })
}

/// Strategy: a random query itemset over the same item space.
fn arb_itemset(items: u32) -> impl Strategy<Value = Itemset> {
    proptest::collection::btree_set(0..items, 1..5).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 4: the BBS estimate never undercounts, for any database, any
    /// itemset, any width, under the paper's MD5 hash family.
    #[test]
    fn estimate_is_upper_bound(
        db in arb_db(40, 30),
        query in arb_itemset(40),
        width in 8usize..96,
        k in 1usize..5,
    ) {
        let mut io = IoStats::new();
        let bbs = Bbs::build(width, Arc::new(Md5BloomHasher::new(k)), &db, &mut io);
        let est = bbs.est_count(&query, &mut io);
        let act = db.count_support(&query, &mut io);
        prop_assert!(est >= act, "est {est} < act {act} for {query:?}");
    }

    /// §2.2 extreme: with `m ≥ |items|` and the injective modulo hash the
    /// estimate is exact for every query.
    #[test]
    fn wide_identity_hash_is_exact(
        db in arb_db(32, 25),
        query in arb_itemset(32),
    ) {
        let mut io = IoStats::new();
        let bbs = Bbs::build(32, Arc::new(ModuloHasher), &db, &mut io);
        prop_assert_eq!(
            bbs.est_count(&query, &mut io),
            db.count_support(&query, &mut io)
        );
    }

    /// §2.2 other extreme: with `m = 1` every estimate equals |D|.
    #[test]
    fn width_one_estimates_cardinality(
        db in arb_db(32, 25),
        query in arb_itemset(32),
    ) {
        let mut io = IoStats::new();
        let bbs = Bbs::build(1, Arc::new(Md5BloomHasher::new(2)), &db, &mut io);
        prop_assert_eq!(bbs.est_count(&query, &mut io), db.len() as u64);
    }

    /// Monotonicity (a consequence of Lemma 2): adding items to the query
    /// can only shrink the estimate.
    #[test]
    fn estimate_is_antitone_in_the_itemset(
        db in arb_db(40, 25),
        query in arb_itemset(40),
        extra in 0u32..40,
    ) {
        let mut io = IoStats::new();
        let bbs = Bbs::build(48, Arc::new(Md5BloomHasher::new(3)), &db, &mut io);
        let base = bbs.est_count(&query, &mut io);
        let extended = bbs.est_count(&query.with_item(ItemId(extra)), &mut io);
        prop_assert!(extended <= base);
    }

    /// The SingleFilter candidate set is a superset of the true frequent
    /// patterns (no false misses — Lemma 3 applied recursively).
    #[test]
    fn filter_never_misses_frequent_patterns(
        db in arb_db(24, 30),
        tau in 2u64..6,
    ) {
        let mut io = IoStats::new();
        let bbs = Bbs::build(32, Arc::new(Md5BloomHasher::new(3)), &db, &mut io);
        let out = run_filter(&bbs, FilterKind::Single, None, tau);
        let truth = bbs_tdb::NaiveMiner::new()
            .mine(&db, SupportThreshold::Count(tau))
            .patterns;
        let candidates: std::collections::HashSet<&Itemset> =
            out.uncertain.iter().map(|(s, _)| s).collect();
        for (items, _) in truth.iter() {
            prop_assert!(candidates.contains(items), "missing {items:?}");
        }
    }

    /// DualFilter certainty: everything in the exact bucket has its true
    /// support; everything in the approx bucket is genuinely frequent.
    #[test]
    fn dual_filter_certifications_are_sound(
        db in arb_db(24, 30),
        tau in 2u64..6,
    ) {
        let mut io = IoStats::new();
        let bbs = Bbs::build(32, Arc::new(Md5BloomHasher::new(3)), &db, &mut io);
        let out = run_filter(&bbs, FilterKind::Dual, None, tau);
        for (items, count) in out.frequent.iter() {
            prop_assert_eq!(count, db.count_support(items, &mut io), "{:?}", items);
        }
        for (items, count) in out.approx.iter() {
            let act = db.count_support(items, &mut io);
            prop_assert!(act >= tau, "{items:?} certified but infrequent");
            prop_assert!(count >= act, "{items:?} estimate below actual");
        }
    }

    /// Folding (MemBBS) preserves the upper-bound property.
    #[test]
    fn folding_never_undercounts(
        db in arb_db(32, 25),
        query in arb_itemset(32),
        new_width in 1usize..48,
    ) {
        let mut io = IoStats::new();
        let bbs = Bbs::build(48, Arc::new(Md5BloomHasher::new(3)), &db, &mut io);
        let folded = bbs.fold(new_width, &mut io);
        let est_fold = folded.est_count(&query, &mut io);
        let est = bbs.est_count(&query, &mut io);
        let act = db.count_support(&query, &mut io);
        prop_assert!(est_fold >= est, "fold lost rows");
        prop_assert!(est >= act);
    }

    /// Incremental insertion is equivalent to batch construction.
    #[test]
    fn incremental_equals_batch(db in arb_db(32, 25)) {
        let mut io = IoStats::new();
        let hasher: Arc<dyn bbs_hash::ItemHasher> = Arc::new(Md5BloomHasher::new(4));
        let batch = Bbs::build(64, Arc::clone(&hasher), &db, &mut io);
        let mut inc = Bbs::new(64, hasher);
        for t in db.transactions() {
            inc.insert(t, &mut io);
        }
        for j in 0..64 {
            prop_assert_eq!(
                batch.matrix().slice(j).iter_ones().collect::<Vec<_>>(),
                inc.matrix().slice(j).iter_ones().collect::<Vec<_>>()
            );
        }
        prop_assert_eq!(batch.vocabulary(), inc.vocabulary());
    }

    /// Ad-hoc exact counting agrees with a full scan, for any pattern —
    /// frequent or not.
    #[test]
    fn adhoc_count_is_exact(
        db in arb_db(32, 25),
        query in arb_itemset(32),
    ) {
        let mut io = IoStats::new();
        let bbs = Bbs::build(48, Arc::new(Md5BloomHasher::new(3)), &db, &mut io);
        let engine = AdhocEngine::new(&bbs, &db);
        prop_assert_eq!(
            engine.count(&query, &mut io),
            db.count_support(&query, &mut io)
        );
    }

    /// Constrained ad-hoc counting equals counting over the filtered
    /// database.
    #[test]
    fn constrained_count_equals_filtered_count(
        db in arb_db(32, 25),
        query in arb_itemset(32),
        divisor in 2u64..7,
    ) {
        let mut io = IoStats::new();
        let bbs = Bbs::build(48, Arc::new(Md5BloomHasher::new(3)), &db, &mut io);
        let engine = AdhocEngine::new(&bbs, &db);
        let constraint = TidModulo::divisible_by(divisor);
        let got = engine.count_constrained(&query, &constraint, &mut io);
        let expect = db
            .transactions()
            .iter()
            .filter(|t| t.tid.0 % divisor == 0 && query.is_subset_of(&t.items))
            .count() as u64;
        prop_assert_eq!(got, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The persisted index round-trips byte-exactly: same estimates for
    /// every query, same vocabulary, same exact 1-item counts.
    #[test]
    fn persist_roundtrip_preserves_semantics(
        db in arb_db(24, 20),
        query in arb_itemset(24),
    ) {
        let mut io = IoStats::new();
        let bbs = Bbs::build(48, Arc::new(Md5BloomHasher::new(3)), &db, &mut io);
        let mut buf = Vec::new();
        bbs_core::persist::save(&bbs, &mut buf).expect("save");
        let loaded = bbs_core::persist::load(
            &mut buf.as_slice(),
            Arc::new(Md5BloomHasher::new(3)),
        ).expect("load");
        prop_assert_eq!(loaded.vocabulary(), bbs.vocabulary());
        prop_assert_eq!(
            loaded.est_count(&query, &mut io),
            bbs.est_count(&query, &mut io)
        );
        for item in bbs.vocabulary() {
            prop_assert_eq!(
                loaded.actual_singleton_count(item),
                bbs.actual_singleton_count(item)
            );
        }
    }

    /// The text format round-trips any database exactly.
    #[test]
    fn text_format_roundtrip(db in arb_db(40, 25)) {
        let mut buf = Vec::new();
        bbs_tdb::write_transactions(&db, &mut buf).expect("write");
        let again = bbs_tdb::read_transactions(buf.as_slice()).expect("read");
        prop_assert_eq!(db.transactions(), again.transactions());
    }
}
