//! Cross-validation: every miner in the workspace — the four BBS schemes,
//! Apriori, FP-growth and the naive oracle — must produce the same frequent
//! patterns on the same input.

use bbs_apriori::AprioriMiner;
use bbs_core::{BbsMiner, Scheme};
use bbs_datagen::{generate_db, QuestConfig};
use bbs_fptree::FpGrowthMiner;
use bbs_hash::{Md5BloomHasher, ModuloHasher};
use bbs_tdb::{
    FrequentPatternMiner, Itemset, MineResult, NaiveMiner, PatternSet, SupportThreshold,
    TransactionDb,
};
use std::sync::Arc;

/// Checks a result against the oracle: identical pattern sets, identical
/// supports except for certified-approximate patterns (whose reported value
/// must upper-bound the truth).
fn assert_matches(name: &str, result: &MineResult, oracle: &PatternSet) {
    assert_eq!(
        result.patterns.len(),
        oracle.len(),
        "{name}: got {} patterns, oracle has {}",
        result.patterns.len(),
        oracle.len()
    );
    for (items, support) in result.patterns.iter() {
        let truth = oracle
            .support(items)
            .unwrap_or_else(|| panic!("{name}: spurious pattern {items:?}"));
        if result.approx_supports.contains(items) {
            assert!(
                support >= truth,
                "{name}: approx support {support} < actual {truth} for {items:?}"
            );
        } else {
            assert_eq!(support, truth, "{name}: wrong support for {items:?}");
        }
    }
}

fn check_all_miners(db: &TransactionDb, threshold: SupportThreshold, width: usize) {
    let oracle = NaiveMiner::new().mine(db, threshold).patterns;

    for scheme in Scheme::ALL {
        let mut miner = BbsMiner::build(scheme, db, width, Arc::new(Md5BloomHasher::new(4)));
        let result = miner.mine(db, threshold);
        assert_matches(scheme.name(), &result, &oracle);
    }
    let apriori = AprioriMiner::new().mine(db, threshold);
    assert_matches("APS", &apriori, &oracle);
    assert!(apriori.approx_supports.is_empty());

    let fp = FpGrowthMiner::new().mine(db, threshold);
    assert_matches("FPS", &fp, &oracle);
    assert!(fp.approx_supports.is_empty());
}

#[test]
fn all_miners_agree_on_tiny_quest_data() {
    let db = generate_db(QuestConfig::tiny());
    for pct in [2.0f64, 5.0, 10.0] {
        check_all_miners(&db, SupportThreshold::percent(pct), 128);
    }
}

#[test]
fn all_miners_agree_on_denser_data() {
    let cfg = QuestConfig {
        transactions: 400,
        items: 80,
        avg_txn_len: 8.0,
        avg_pattern_len: 4.0,
        pattern_pool: 30,
        correlation: 0.5,
        corruption_mean: 0.4,
        corruption_sd: 0.1,
        seed: 11,
    };
    let db = generate_db(cfg);
    check_all_miners(&db, SupportThreshold::percent(4.0), 256);
}

#[test]
fn all_miners_agree_with_narrow_signatures() {
    // A deliberately narrow signature (many collisions, many false drops):
    // correctness must not depend on the filter being selective.  Width 48
    // with k = 2 keeps signatures from saturating outright — a *saturated*
    // signature file makes the two-phase filters enumerate exponentially
    // many candidates (the m-tuning trade-off §2.2 warns about), which the
    // next test covers for the robust probe-based schemes only.
    let db = generate_db(QuestConfig::tiny());
    let oracle = NaiveMiner::new()
        .mine(&db, SupportThreshold::percent(6.0))
        .patterns;
    for scheme in Scheme::ALL {
        let mut miner = BbsMiner::build(scheme, &db, 48, Arc::new(Md5BloomHasher::new(2)));
        let result = miner.mine(&db, SupportThreshold::percent(6.0));
        assert_matches(scheme.name(), &result, &oracle);
    }
}

#[test]
fn probe_schemes_survive_saturated_signatures() {
    // At width 16 with k = 4, nearly every signature is all-ones and the
    // estimate of *any* itemset approaches |D|.  The integrated probe
    // verifies each candidate immediately, so SFP/DFP stay correct (and
    // bounded) even in this worst case.
    let db = generate_db(QuestConfig::tiny());
    let threshold = SupportThreshold::percent(6.0);
    let oracle = NaiveMiner::new().mine(&db, threshold).patterns;
    for scheme in [Scheme::Sfp, Scheme::Dfp] {
        let mut miner = BbsMiner::build(scheme, &db, 16, Arc::new(Md5BloomHasher::new(4)));
        let result = miner.mine(&db, threshold);
        assert_matches(scheme.name(), &result, &oracle);
    }
}

#[test]
fn all_miners_agree_with_single_hash_function() {
    let db = generate_db(QuestConfig::tiny());
    let oracle = NaiveMiner::new()
        .mine(&db, SupportThreshold::percent(5.0))
        .patterns;
    for scheme in Scheme::ALL {
        let mut miner = BbsMiner::build(scheme, &db, 64, Arc::new(ModuloHasher));
        let result = miner.mine(&db, SupportThreshold::percent(5.0));
        assert_matches(scheme.name(), &result, &oracle);
    }
}

#[test]
fn all_miners_agree_on_degenerate_databases() {
    // All-identical transactions.
    let identical =
        TransactionDb::from_itemsets((0..20).map(|_| Itemset::from_values(&[1, 2, 3])));
    check_all_miners(&identical, SupportThreshold::Count(10), 32);

    // All-disjoint transactions (nothing frequent beyond singletons).
    let disjoint =
        TransactionDb::from_itemsets((0..20u32).map(|i| Itemset::from_values(&[i])));
    check_all_miners(&disjoint, SupportThreshold::Count(2), 32);

    // Single transaction.
    let single = TransactionDb::from_itemsets(vec![Itemset::from_values(&[5, 6, 7])]);
    check_all_miners(&single, SupportThreshold::Count(1), 32);
}

#[test]
fn threshold_sweep_is_monotone_for_every_miner() {
    let db = generate_db(QuestConfig::tiny());
    let mut previous_len = usize::MAX;
    for pct in [2.0f64, 4.0, 8.0, 16.0] {
        let mut miner = BbsMiner::build(
            Scheme::Dfp,
            &db,
            128,
            Arc::new(Md5BloomHasher::new(4)),
        );
        let n = miner.mine(&db, SupportThreshold::percent(pct)).patterns.len();
        assert!(n <= previous_len, "pattern count must fall as τ rises");
        previous_len = n;
    }
}

#[test]
fn threaded_miners_agree_with_serial() {
    let db = generate_db(QuestConfig::tiny());
    let threshold = SupportThreshold::percent(4.0);
    for scheme in Scheme::ALL {
        let serial = BbsMiner::build(scheme, &db, 128, Arc::new(Md5BloomHasher::new(4)))
            .mine(&db, threshold);
        let threaded = BbsMiner::build(scheme, &db, 128, Arc::new(Md5BloomHasher::new(4)))
            .with_threads(4)
            .mine(&db, threshold);
        assert_eq!(serial.patterns, threaded.patterns, "{}", scheme.name());
        assert_eq!(
            serial.stats.false_drops, threaded.stats.false_drops,
            "{}",
            scheme.name()
        );
    }
}
