//! Hashing substrate for the BBS index: a from-scratch MD5 (RFC 1321) and
//! the Bloom-filter hash family the paper derives from it.
//!
//! See [`md5`] for the digest implementation and [`bloom`] for the
//! item-to-bit-position mapping ([`ItemHasher`] and its two implementations,
//! [`Md5BloomHasher`] — the paper's scheme — and [`ModuloHasher`] — the
//! running example / exactness limit).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bloom;
pub mod md5;

pub use bloom::{ItemHasher, Md5BloomHasher, ModuloHasher};
pub use md5::{md5, Digest, Md5};
