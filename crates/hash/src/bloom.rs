//! The Bloom-filter hash family that maps items to signature bit positions.
//!
//! The paper (§4) specifies the hash family precisely: *"we take the four
//! disjoint groups of bits from the 128-bit MD5 signature of the item name;
//! if more bits are needed, we calculate the MD5 signature of the item name
//! concatenated with itself"*.  [`Md5BloomHasher`] implements exactly that:
//! hash function `h_i` is the `i`-th 32-bit group of the digest stream, taken
//! modulo the signature width `m`.
//!
//! For the paper's running example (Tables 1–2) and for exactness proofs a
//! [`ModuloHasher`] (`h(x) = x mod m`, single function) is also provided.
//! When `m` is at least the number of distinct items, `ModuloHasher` makes
//! the signature file a *lossless* item-presence bitmap — the `m = V` extreme
//! discussed at the end of §2.2.

use crate::md5::{Digest, Md5};

/// Maps an item identifier to the set of bit positions its Bloom encoding
/// sets in an `m`-bit signature.
///
/// Implementations must be deterministic: the same `(item, width)` pair must
/// always produce the same positions, because the index encodes transactions
/// at insert time and queries at mine time with independent calls.
pub trait ItemHasher: Send + Sync {
    /// Appends the bit positions (each `< width`) for `item` to `out`.
    ///
    /// Positions may repeat (several hash functions may collide); callers
    /// that build signatures simply set the bit twice.
    fn positions(&self, item: u64, width: usize, out: &mut Vec<usize>);

    /// Number of hash functions applied per item (the Bloom parameter `k`).
    fn k(&self) -> usize;

    /// A stable identity string for this hash family (e.g. `md5/4`).
    ///
    /// Two deployments whose hashers report the same identity at the
    /// same signature width produce identical per-row signatures, which
    /// is the precondition for summing per-shard counts across machines.
    fn id(&self) -> String {
        format!("bloom/{}", self.k())
    }

    /// Convenience: collect positions into a fresh vector.
    fn positions_vec(&self, item: u64, width: usize) -> Vec<usize> {
        let mut v = Vec::with_capacity(self.k());
        self.positions(item, width, &mut v);
        v
    }
}

/// The paper's MD5-derived hash family.
#[derive(Debug, Clone)]
pub struct Md5BloomHasher {
    k: usize,
}

impl Md5BloomHasher {
    /// Creates a family of `k` hash functions.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "at least one hash function is required");
        Md5BloomHasher { k }
    }
}

impl Default for Md5BloomHasher {
    /// The paper's default: four disjoint 32-bit groups of one MD5 digest.
    fn default() -> Self {
        Md5BloomHasher::new(4)
    }
}

impl ItemHasher for Md5BloomHasher {
    fn positions(&self, item: u64, width: usize, out: &mut Vec<usize>) {
        debug_assert!(width > 0);
        // The "item name" is its decimal representation, as a data generator
        // or loader would print it.
        let mut name_buf = itoa(item);
        let name: &[u8] = &name_buf;
        let mut reps = 1usize;
        let mut digest = md5_repeated(name, reps);
        let mut group = 0usize;
        for _ in 0..self.k {
            if group == 4 {
                // Digest exhausted: hash the name concatenated with itself
                // once more, per the paper.
                reps += 1;
                digest = md5_repeated(name, reps);
                group = 0;
            }
            let g = u32::from_le_bytes(
                digest[group * 4..group * 4 + 4]
                    .try_into()
                    .expect("4-byte group"),
            );
            out.push((g as usize) % width);
            group += 1;
        }
        // Keep the borrow checker happy about name_buf's lifetime.
        name_buf.clear();
    }

    fn k(&self) -> usize {
        self.k
    }

    fn id(&self) -> String {
        format!("md5/{}", self.k)
    }
}

fn md5_repeated(name: &[u8], reps: usize) -> Digest {
    let mut h = Md5::new();
    for _ in 0..reps {
        h.update(name);
    }
    h.finalize()
}

fn itoa(mut v: u64) -> Vec<u8> {
    if v == 0 {
        return vec![b'0'];
    }
    let mut buf = Vec::with_capacity(20);
    while v > 0 {
        buf.push(b'0' + (v % 10) as u8);
        v /= 10;
    }
    buf.reverse();
    buf
}

/// The single modulo hash of the paper's running example: `h(x) = x mod m`.
///
/// With `width >= number of items` this is an identity mapping and the
/// signature file becomes an exact item bitmap (zero false drops).
#[derive(Debug, Clone, Default)]
pub struct ModuloHasher;

impl ItemHasher for ModuloHasher {
    fn positions(&self, item: u64, width: usize, out: &mut Vec<usize>) {
        out.push((item % width as u64) as usize);
    }

    fn k(&self) -> usize {
        1
    }

    fn id(&self) -> String {
        "mod/1".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn modulo_hasher_matches_running_example() {
        let h = ModuloHasher;
        assert_eq!(h.positions_vec(14, 8), vec![6]);
        assert_eq!(h.positions_vec(15, 8), vec![7]);
        assert_eq!(h.positions_vec(3, 8), vec![3]);
        assert_eq!(h.k(), 1);
    }

    #[test]
    fn md5_hasher_is_deterministic() {
        let h = Md5BloomHasher::new(4);
        assert_eq!(h.positions_vec(42, 1600), h.positions_vec(42, 1600));
    }

    #[test]
    fn md5_hasher_emits_k_positions_in_range() {
        for k in [1usize, 2, 4, 5, 8, 9] {
            let h = Md5BloomHasher::new(k);
            for item in [0u64, 1, 999, 1_000_000] {
                let ps = h.positions_vec(item, 1600);
                assert_eq!(ps.len(), k, "k={k} item={item}");
                assert!(ps.iter().all(|&p| p < 1600));
            }
        }
    }

    #[test]
    fn md5_hasher_first_four_groups_stable_across_k() {
        // h_1..h_4 come from the same digest regardless of k, and h_5 onward
        // extends rather than perturbs them.
        let h4 = Md5BloomHasher::new(4).positions_vec(123, 997);
        let h8 = Md5BloomHasher::new(8).positions_vec(123, 997);
        assert_eq!(&h8[..4], &h4[..]);
    }

    #[test]
    fn md5_hasher_spreads_items() {
        // Not a rigorous uniformity test, just a sanity check that the family
        // is not degenerate: 1000 items over 1600 positions with k = 4 should
        // touch a substantial fraction of positions.
        let h = Md5BloomHasher::new(4);
        let mut seen = HashSet::new();
        for item in 0u64..1000 {
            for p in h.positions_vec(item, 1600) {
                seen.insert(p);
            }
        }
        assert!(seen.len() > 1200, "only {} positions touched", seen.len());
    }

    #[test]
    fn md5_hasher_beyond_four_groups_differ_from_first_digest() {
        // With k = 8 the last four positions come from md5(name·name); they
        // must not simply repeat the first four.
        let h = Md5BloomHasher::new(8);
        let ps = h.positions_vec(7, 1_000_003);
        assert_ne!(&ps[..4], &ps[4..8]);
    }

    #[test]
    fn zero_item_has_positions() {
        let h = Md5BloomHasher::new(4);
        let ps = h.positions_vec(0, 400);
        assert_eq!(ps.len(), 4);
    }
}
