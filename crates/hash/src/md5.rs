//! MD5 message digest (RFC 1321), implemented from scratch.
//!
//! The BBS paper derives its Bloom-filter hash family from "four disjoint
//! groups of bits from the 128-bit MD5 signature of the item name".  MD5 is
//! long broken for cryptographic purposes, but that is irrelevant here: all
//! the index needs is a cheap, well-mixed, deterministic hash, and using the
//! same function as the paper keeps the reproduction faithful.

/// Size of an MD5 digest in bytes.
pub const DIGEST_LEN: usize = 16;

/// A 128-bit MD5 digest.
pub type Digest = [u8; DIGEST_LEN];

const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
    0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
    0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
    0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
    0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
    0xeb86d391,
];

const INIT: [u32; 4] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476];

/// Incremental MD5 hasher.
///
/// Feed bytes with [`Md5::update`], finish with [`Md5::finalize`].  The
/// streaming interface lets the Bloom hash family extend a digest by
/// re-hashing an item name concatenated with itself without allocating the
/// concatenation.
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Md5 {
    fn default() -> Self {
        Md5::new()
    }
}

impl Md5 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Md5 {
            state: INIT,
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the running hash.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Completes the hash and returns the 128-bit digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: a single 0x80 byte, zeros to 56 mod 64, then the length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Append length without counting it in total_len bookkeeping
        // (total_len is already captured in bit_len).
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_le_bytes());
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// One-shot MD5 of a byte slice.
pub fn md5(data: &[u8]) -> Digest {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

/// Formats a digest as the conventional lowercase hex string.
pub fn to_hex(digest: &Digest) -> String {
    let mut s = String::with_capacity(32);
    for b in digest {
        use std::fmt::Write;
        write!(s, "{b:02x}").expect("writing to String cannot fail");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // RFC 1321 Appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: [(&str, &str); 7] = [
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(to_hex(&md5(input.as_bytes())), expect, "input {input:?}");
        }
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog, repeatedly";
        let whole = md5(data);
        for split in [0, 1, 7, 32, 55, data.len()] {
            let mut h = Md5::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn block_boundary_lengths() {
        // Lengths around the 64-byte block and 56-byte padding boundaries are
        // the classic MD5 off-by-one traps.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xABu8; len];
            let d1 = md5(&data);
            let mut h = Md5::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn known_56_byte_digest() {
        // 56 bytes of 'A': cross-checked against coreutils md5sum.
        let data = [b'A'; 56];
        assert_eq!(to_hex(&md5(&data)), "a2f3e2024931bd470555002aa5ccc010");
    }

    proptest! {
        #[test]
        fn prop_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..300),
                                         split in 0usize..300) {
            let split = split.min(data.len());
            let mut h = Md5::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), md5(&data));
        }

        #[test]
        fn prop_distinct_inputs_distinct_digests(a in 0u64..1_000_000, b in 0u64..1_000_000) {
            prop_assume!(a != b);
            prop_assert_ne!(md5(&a.to_le_bytes()), md5(&b.to_le_bytes()));
        }
    }
}
