//! Tiered indexes: the paper's footnote-6 alternative to adaptive folding.
//!
//! §3.1's memory-constrained scheme folds the one big BBS down to whatever
//! fits (*MemBBS*).  Footnote 6 sketches the alternative: *"create multiple
//! BBSs with different memory requirement.  At runtime, we only need to
//! load into memory the appropriate BBS that fits in the memory.  This
//! method, however, incurs higher storage overhead as well as maintenance
//! overhead."*
//!
//! [`TieredBbs`] implements that alternative so the trade-off can be
//! measured (ablation A3): each tier is a full BBS at its own width, every
//! insert maintains every tier, and [`TieredBbs::select`] picks the widest
//! tier fitting a memory budget.  Compared with folding the big index, a
//! selected tier has *better-distributed* bits at the same width — folding
//! ORs hash positions `j` and `j + k` together, while a native tier hashes
//! into the small width directly — at `Σ widths` bits/row of storage and
//! `k × tiers` hash work per insert.

use crate::bbs::Bbs;
use bbs_hash::ItemHasher;
use bbs_tdb::{IoStats, MemoryBudget, Transaction, TransactionDb};
use std::sync::Arc;

/// A family of BBS indexes over the same transactions at different widths.
pub struct TieredBbs {
    /// Tiers sorted by width ascending.
    tiers: Vec<Bbs>,
}

impl TieredBbs {
    /// Builds one tier per width over `db`.
    ///
    /// # Panics
    /// Panics if `widths` is empty or contains duplicates.
    pub fn build(
        db: &TransactionDb,
        widths: &[usize],
        hasher: Arc<dyn ItemHasher>,
        stats: &mut IoStats,
    ) -> Self {
        let mut widths = widths.to_vec();
        widths.sort_unstable();
        assert!(!widths.is_empty(), "need at least one tier");
        assert!(
            widths.windows(2).all(|w| w[0] < w[1]),
            "tier widths must be distinct"
        );
        let tiers = widths
            .iter()
            .map(|&w| Bbs::build(w, Arc::clone(&hasher), db, stats))
            .collect();
        TieredBbs { tiers }
    }

    /// Number of tiers.
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// True if there are no tiers (never the case for a built family).
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// The tiers, width-ascending.
    pub fn tiers(&self) -> &[Bbs] {
        &self.tiers
    }

    /// Appends a transaction to **every** tier — the maintenance overhead
    /// footnote 6 warns about, measurable via `stats`.
    pub fn insert(&mut self, txn: &Transaction, stats: &mut IoStats) {
        for tier in &mut self.tiers {
            tier.insert(txn, stats);
        }
    }

    /// The widest tier whose dense image fits `budget`; the narrowest tier
    /// when none fits (the caller can still fold that one further).
    pub fn select(&self, budget: MemoryBudget) -> &Bbs {
        self.tiers
            .iter()
            .rev()
            .find(|t| budget.fits(t.dense_bytes()))
            .unwrap_or_else(|| self.tiers.first().expect("non-empty"))
    }

    /// Total dense storage across tiers (the footnote's storage overhead).
    pub fn storage_bytes(&self) -> usize {
        self.tiers.iter().map(|t| t.dense_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miners::{BbsMiner, Scheme};
    use bbs_hash::Md5BloomHasher;
    use bbs_tdb::{
        FrequentPatternMiner, Itemset, NaiveMiner, SupportThreshold,
    };

    fn fixture() -> TransactionDb {
        TransactionDb::from_itemsets((0..80u32).map(|i| {
            Itemset::from_values(&[i % 16, (i + 1) % 16, (i * 3) % 16])
        }))
    }

    fn family(db: &TransactionDb) -> TieredBbs {
        let mut io = IoStats::new();
        TieredBbs::build(
            db,
            &[64, 128, 256],
            Arc::new(Md5BloomHasher::new(3)),
            &mut io,
        )
    }

    #[test]
    fn tiers_are_width_sorted() {
        let db = fixture();
        let t = family(&db);
        assert_eq!(t.len(), 3);
        let widths: Vec<usize> = t.tiers().iter().map(|b| b.width()).collect();
        assert_eq!(widths, vec![64, 128, 256]);
    }

    #[test]
    fn select_picks_widest_fitting() {
        let db = fixture();
        let t = family(&db);
        // 80 rows → 10 bytes/slice → tiers occupy 640 / 1280 / 2560 bytes.
        assert_eq!(t.select(MemoryBudget::unlimited()).width(), 256);
        assert_eq!(t.select(MemoryBudget::bytes(2000)).width(), 128);
        assert_eq!(t.select(MemoryBudget::bytes(700)).width(), 64);
        // Nothing fits: fall back to the narrowest.
        assert_eq!(t.select(MemoryBudget::bytes(10)).width(), 64);
    }

    #[test]
    fn storage_overhead_is_sum_of_tiers() {
        let db = fixture();
        let t = family(&db);
        assert_eq!(t.storage_bytes(), 640 + 1280 + 2560);
    }

    #[test]
    fn insert_maintains_every_tier() {
        let db = fixture();
        let mut t = family(&db);
        let mut io = IoStats::new();
        t.insert(
            &Transaction::new(999, Itemset::from_values(&[1, 2])),
            &mut io,
        );
        for tier in t.tiers() {
            assert_eq!(tier.rows(), 81, "width {}", tier.width());
            assert_eq!(tier.actual_singleton_count(bbs_tdb::ItemId(1)), 16);
        }
    }

    #[test]
    fn every_tier_mines_the_same_answer() {
        let db = fixture();
        let t = family(&db);
        let threshold = SupportThreshold::Count(8);
        let oracle = NaiveMiner::new().mine(&db, threshold).patterns;
        for tier in t.tiers() {
            let mut miner = BbsMiner::with_index(Scheme::Dfp, tier.clone());
            let result = miner.mine(&db, threshold);
            assert_eq!(
                result.patterns.len(),
                oracle.len(),
                "width {}",
                tier.width()
            );
        }
    }

    #[test]
    fn native_tier_estimates_no_worse_than_fold() {
        // The trade-off footnote 6 implies: a native small-width tier should
        // not systematically overestimate more than a fold of the wide one
        // down to the same width.  Compare total estimates over singletons.
        let db = fixture();
        let t = family(&db);
        let wide = &t.tiers()[2];
        let native_small = &t.tiers()[0];
        let mut io = IoStats::new();
        let folded = wide.fold(64, &mut io);
        let mut native_total = 0u64;
        let mut folded_total = 0u64;
        for item in db.vocabulary() {
            let s = Itemset::from_items(vec![item]);
            native_total += native_small.est_count(&s, &mut io);
            folded_total += folded.est_count(&s, &mut io);
        }
        assert!(
            native_total <= folded_total,
            "native {native_total} vs folded {folded_total}"
        );
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_widths_rejected() {
        let db = fixture();
        let mut io = IoStats::new();
        TieredBbs::build(&db, &[64, 64], Arc::new(Md5BloomHasher::new(3)), &mut io);
    }
}
