//! The refinement phase: SequentialScan and Probe (§3.2).
//!
//! The filtering phase hands over candidates that *may* be frequent; the
//! refinement phase establishes each one's actual support and discards the
//! false drops.
//!
//! * [`sequential_scan`] loads as many candidates as the memory budget
//!   allows and verifies them in one database pass, repeating until all
//!   candidates are processed (so a small budget costs extra passes —
//!   exactly the behaviour Fig. 11 measures).
//! * [`probe_candidates`] retrieves only the rows named by each candidate's
//!   BBS AND-result through the positional index and verifies containment.

use crate::bbs::Bbs;
use bbs_bitslice::BitVec;
use bbs_tdb::{BufferPool, IoStats, Itemset, MemoryBudget, PatternSet, TransactionDb};

/// Outcome of a refinement pass.
#[derive(Debug, Default)]
pub struct RefineOutput {
    /// Candidates confirmed frequent, with exact supports.
    pub confirmed: PatternSet,
    /// Number of candidates rejected (false drops).
    pub false_drops: u64,
    /// I/O spent refining.
    pub io: IoStats,
}

/// Approximate in-memory footprint of one candidate during verification:
/// the itemset's items plus a counter and bookkeeping.
fn candidate_bytes(itemset: &Itemset) -> usize {
    32 + 4 * itemset.len()
}

/// Algorithm SequentialScan: verify `candidates` by full database passes,
/// chunked to fit the memory budget.
pub fn sequential_scan(
    db: &TransactionDb,
    candidates: &[(Itemset, u64)],
    tau: u64,
    budget: MemoryBudget,
) -> RefineOutput {
    let mut out = RefineOutput::default();
    if candidates.is_empty() {
        return out;
    }

    let mut start = 0usize;
    while start < candidates.len() {
        // Fill memory with as many candidates as fit.
        let mut end = start;
        let mut used = 0usize;
        while end < candidates.len() {
            let b = candidate_bytes(&candidates[end].0);
            if end > start && !budget.fits(used + b) {
                break;
            }
            used += b;
            end += 1;
            if !budget.fits(used) {
                break;
            }
        }

        let chunk = &candidates[start..end];
        let mut counts = vec![0u64; chunk.len()];
        for txn in db.scan(&mut out.io) {
            for (i, (items, _)) in chunk.iter().enumerate() {
                if items.is_subset_of(&txn.items) {
                    counts[i] += 1;
                }
            }
        }
        for ((items, _), count) in chunk.iter().zip(&counts) {
            if *count >= tau {
                out.confirmed.insert(items.clone(), *count);
            } else {
                out.false_drops += 1;
            }
        }
        start = end;
    }
    out
}

/// Algorithm Probe as a standalone (two-phase) refiner: for each candidate,
/// recompute its BBS AND-result, fetch exactly those rows through the
/// positional index, and verify containment.
///
/// The integrated SFP/DFP variants live in the filter engine; this function
/// serves the adaptive (memory-constrained) pipeline and ad-hoc queries,
/// where filtering and probing are necessarily separate.
pub fn probe_candidates(
    db: &TransactionDb,
    bbs: &Bbs,
    candidates: &[(Itemset, u64)],
    tau: u64,
) -> RefineOutput {
    assert_eq!(db.len(), bbs.rows(), "BBS rows must match database rows");
    let mut out = RefineOutput::default();
    let mut result = BitVec::new();
    let mut rows: Vec<usize> = Vec::new();
    let mut pool = BufferPool::new();
    for (items, _) in candidates {
        bbs.est_result(items, &mut result, &mut out.io);
        rows.clear();
        rows.extend(result.iter_ones());
        let txns = db.probe_cached(&rows, &mut pool, &mut out.io);
        let actual = txns.iter().filter(|t| items.is_subset_of(&t.items)).count() as u64;
        if actual >= tau {
            out.confirmed.insert(items.clone(), actual);
        } else {
            out.false_drops += 1;
        }
    }
    out
}

/// Probes the actual support of a single itemset (ad-hoc queries, §4.9),
/// optionally restricted by a constraint slice.
pub fn probe_support(
    db: &TransactionDb,
    bbs: &Bbs,
    items: &Itemset,
    constraint: Option<&BitVec>,
    io: &mut IoStats,
) -> u64 {
    assert_eq!(db.len(), bbs.rows(), "BBS rows must match database rows");
    let mut result = BitVec::new();
    match constraint {
        Some(c) => bbs.est_result_constrained(items, c, &mut result, io),
        None => bbs.est_result(items, &mut result, io),
    };
    let rows: Vec<usize> = result.iter_ones().collect();
    let txns = db.probe(&rows, io);
    txns.iter().filter(|t| items.is_subset_of(&t.items)).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_hash::ModuloHasher;
    use bbs_tdb::{Transaction, TransactionDb};
    use std::sync::Arc;

    fn set(vals: &[u32]) -> Itemset {
        Itemset::from_values(vals)
    }

    fn fixture() -> (Bbs, TransactionDb) {
        let db = TransactionDb::from_transactions(vec![
            Transaction::new(100, set(&[0, 1, 2, 3, 4, 5, 14, 15])),
            Transaction::new(200, set(&[1, 2, 3, 5, 6, 7])),
            Transaction::new(300, set(&[1, 5, 14, 15])),
            Transaction::new(400, set(&[0, 1, 2, 7])),
            Transaction::new(500, set(&[1, 2, 5, 6, 11, 15])),
        ]);
        let mut io = IoStats::new();
        let bbs = Bbs::build(8, Arc::new(ModuloHasher), &db, &mut io);
        (bbs, db)
    }

    #[test]
    fn sequential_scan_confirms_and_rejects() {
        let (_, db) = fixture();
        let candidates = vec![
            (set(&[1]), 5),      // frequent (5)
            (set(&[1, 3]), 3),   // false drop (actual 2)
            (set(&[5, 15]), 3),  // frequent (3)
        ];
        let out = sequential_scan(&db, &candidates, 3, MemoryBudget::unlimited());
        assert_eq!(out.confirmed.support(&set(&[1])), Some(5));
        assert_eq!(out.confirmed.support(&set(&[5, 15])), Some(3));
        assert!(!out.confirmed.contains(&set(&[1, 3])));
        assert_eq!(out.false_drops, 1);
        assert_eq!(out.io.db_scans, 1, "all candidates fit in one chunk");
    }

    #[test]
    fn sequential_scan_chunks_under_small_budget() {
        let (_, db) = fixture();
        let candidates: Vec<(Itemset, u64)> =
            (0u32..8).map(|i| (set(&[i]), 1)).collect();
        // Budget fits roughly one candidate (36 bytes each): expect several
        // passes but identical results.
        let tight = sequential_scan(&db, &candidates, 2, MemoryBudget::bytes(40));
        let loose = sequential_scan(&db, &candidates, 2, MemoryBudget::unlimited());
        assert_eq!(tight.confirmed, loose.confirmed);
        assert_eq!(tight.false_drops, loose.false_drops);
        assert!(tight.io.db_scans > loose.io.db_scans);
        assert_eq!(loose.io.db_scans, 1);
    }

    #[test]
    fn sequential_scan_empty_candidates() {
        let (_, db) = fixture();
        let out = sequential_scan(&db, &[], 3, MemoryBudget::unlimited());
        assert!(out.confirmed.is_empty());
        assert_eq!(out.io.db_scans, 0, "no candidates, no passes");
    }

    #[test]
    fn probe_candidates_matches_sequential_scan() {
        let (bbs, db) = fixture();
        let candidates = vec![
            (set(&[1]), 5),
            (set(&[1, 3]), 3),
            (set(&[5, 15]), 3),
            (set(&[2, 5]), 3),
        ];
        let scanned = sequential_scan(&db, &candidates, 3, MemoryBudget::unlimited());
        let probed = probe_candidates(&db, &bbs, &candidates, 3);
        assert_eq!(scanned.confirmed, probed.confirmed);
        assert_eq!(scanned.false_drops, probed.false_drops);
        assert!(probed.io.db_probes > 0);
        assert_eq!(probed.io.db_scans, 0, "probe never scans");
    }

    #[test]
    fn probe_support_single_itemset() {
        let (bbs, db) = fixture();
        let mut io = IoStats::new();
        assert_eq!(probe_support(&db, &bbs, &set(&[1, 3]), None, &mut io), 2);
        assert_eq!(probe_support(&db, &bbs, &set(&[9]), None, &mut io), 0);
        assert!(io.db_probes >= 2, "candidate rows were fetched");
    }

    #[test]
    fn probe_support_with_constraint() {
        let (bbs, db) = fixture();
        let mut io = IoStats::new();
        // Restrict to rows 0..=2 (transactions 100, 200, 300).
        let constraint = BitVec::from_indices(5, &[0, 1, 2]);
        assert_eq!(
            probe_support(&db, &bbs, &set(&[1, 2]), Some(&constraint), &mut io),
            2,
            "{{1,2}} occurs in rows 0 and 1 within the constraint"
        );
        assert_eq!(
            probe_support(&db, &bbs, &set(&[1, 2]), None, &mut io),
            4
        );
    }
}
