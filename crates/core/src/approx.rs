//! Approximate mining without a refinement phase — the paper's future-work
//! direction (§5).
//!
//! > "We are extending this work by exploring the possibility of doing away
//! > with phase 2. … For the results to be meaningful, we are looking into
//! > mechanisms to provide some kind of probability on the likelihood of a
//! > pattern to be a frequent pattern."
//!
//! This module implements that mechanism.  The key observation: a BBS row
//! that does *not* contain a queried itemset still passes `CountItemSet` if
//! all of the query's bits happen to be set in its signature by other items.
//! Treating the slices as independent, the chance of that is the product of
//! the selected slices' bit densities.  From the estimate `est`, the model
//!
//! ```text
//! est = act + (rows − act) · p        p = Π density(slice_j)
//! ```
//!
//! yields a point estimate of the actual support and — with a normal
//! approximation of the binomial false-drop count — the probability that
//! the pattern truly reaches the threshold.  Everything here touches only
//! the index: no database scan, no probe.

use crate::bbs::Bbs;
use crate::filter::{run_filter, FilterKind};
use bbs_tdb::{IoStats, Itemset, MineStats};

/// A pattern mined without refinement: the estimate, the model's corrected
/// support, and the probability that the pattern is genuinely frequent.
#[derive(Debug, Clone)]
pub struct ApproxPattern {
    /// The itemset.
    pub items: Itemset,
    /// The raw `CountItemSet` estimate (an upper bound on the support).
    pub est: u64,
    /// The model-corrected point estimate of the actual support.
    pub corrected: f64,
    /// `P(actual support ≥ τ)` under the independence model, in `[0, 1]`.
    pub confidence: f64,
    /// True when the DualFilter certified the pattern (Lemma 5 /
    /// Corollary 1) — the confidence is then exactly 1.
    pub certified: bool,
}

/// The result of an approximate mining run.
#[derive(Debug, Default)]
pub struct ApproxResult {
    /// Patterns with their confidences, most confident first.
    pub patterns: Vec<ApproxPattern>,
    /// Filter statistics (no refinement I/O by construction).
    pub stats: MineStats,
}

/// The per-slice bit densities of an index (fraction of rows with the bit
/// set), used as the independence model's parameters.
pub fn slice_densities(bbs: &Bbs) -> Vec<f64> {
    let rows = bbs.rows().max(1) as f64;
    (0..bbs.width())
        .map(|j| bbs.matrix().slice(j).count_ones() as f64 / rows)
        .collect()
}

/// Probability that a random row's signature covers the itemset's bits "by
/// chance" under slice independence.
pub fn chance_cover_probability(bbs: &Bbs, densities: &[f64], items: &Itemset) -> f64 {
    bbs.signature_of(items)
        .iter_ones()
        .map(|j| densities[j])
        .product()
}

/// Model-corrected support: solves `est = act + (rows − act)·p` for `act`,
/// clamped to `[0, est]`.
pub fn corrected_support(rows: u64, est: u64, p: f64) -> f64 {
    if p >= 1.0 {
        // Saturated slices carry no information; the estimate is all we have.
        return est as f64;
    }
    let n = rows as f64;
    ((est as f64 - n * p) / (1.0 - p)).clamp(0.0, est as f64)
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 approximation
/// (|error| < 7.5e-8 — far below the model error here).
pub fn phi(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * x.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let upper = pdf * poly;
    if x >= 0.0 {
        1.0 - upper
    } else {
        upper
    }
}

/// `P(actual ≥ τ)` for a pattern with estimate `est` over `rows` rows under
/// chance-cover probability `p`.
///
/// The false-drop count `F = est − act` is modelled as
/// `Binomial(rows − act, p) ≈ Normal(μ, σ²)` at the corrected point
/// estimate; the confidence is the normal tail mass of `act ≥ τ`.
pub fn frequent_probability(rows: u64, est: u64, p: f64, tau: u64) -> f64 {
    if (est as f64) < tau as f64 {
        return 0.0;
    }
    let act_hat = corrected_support(rows, est, p);
    let exposed = (rows as f64 - act_hat).max(0.0);
    let sigma = (exposed * p * (1.0 - p)).sqrt();
    if sigma < 1e-9 {
        // Deterministic model: no chance coverage (p≈0) or none exposed.
        return if act_hat + 0.5 >= tau as f64 { 1.0 } else { 0.0 };
    }
    // act = est − F; act ≥ τ  ⇔  F ≤ est − τ.  F ~ N(exposed·p, σ²).
    let mu_f = exposed * p;
    phi(((est - tau) as f64 + 0.5 - mu_f) / sigma)
}

/// Mines frequent patterns from the index alone — no refinement phase.
///
/// `kind` selects the filter; with [`FilterKind::Dual`] the certified
/// patterns come back with confidence 1.  `min_confidence` drops patterns
/// the model considers unlikely (pass 0.0 to keep every candidate).
pub fn mine_approximate(
    bbs: &Bbs,
    kind: FilterKind,
    tau: u64,
    min_confidence: f64,
) -> ApproxResult {
    let mut filter = run_filter(bbs, kind, None, tau);
    bbs.charge_cold_load(&mut filter.stats.io);
    let densities = slice_densities(bbs);
    let rows = bbs.rows() as u64;
    let mut result = ApproxResult {
        patterns: Vec::new(),
        stats: filter.stats,
    };

    for (items, count) in filter.frequent.iter().chain(filter.approx.iter()) {
        result.patterns.push(ApproxPattern {
            items: items.clone(),
            est: count,
            corrected: count as f64,
            confidence: 1.0,
            certified: true,
        });
    }
    for (items, est) in &filter.uncertain {
        let p = chance_cover_probability(bbs, &densities, items);
        let confidence = frequent_probability(rows, *est, p, tau);
        if confidence >= min_confidence {
            result.patterns.push(ApproxPattern {
                items: items.clone(),
                est: *est,
                corrected: corrected_support(rows, *est, p),
                confidence,
                certified: false,
            });
        }
    }
    result
        .patterns
        .sort_by(|a, b| b.confidence.partial_cmp(&a.confidence).expect("no NaN"));
    result
}

/// Convenience wrapper: approximate mining directly from an index with I/O
/// tracking of the filter pass only.
pub fn mine_approximate_with_io(
    bbs: &Bbs,
    kind: FilterKind,
    tau: u64,
    min_confidence: f64,
    io: &mut IoStats,
) -> ApproxResult {
    let r = mine_approximate(bbs, kind, tau, min_confidence);
    io.merge(&r.stats.io);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_hash::Md5BloomHasher;
    use bbs_tdb::{FrequentPatternMiner, NaiveMiner, SupportThreshold, TransactionDb};
    use std::sync::Arc;

    fn fixture() -> (Bbs, TransactionDb) {
        let itemsets: Vec<Itemset> = (0..60u32)
            .map(|i| {
                let mut v = vec![i % 12, (i + 1) % 12];
                if i % 2 == 0 {
                    v.push(100);
                    v.push(101);
                }
                Itemset::from_values(&v)
            })
            .collect();
        let db = TransactionDb::from_itemsets(itemsets);
        let mut io = IoStats::new();
        let bbs = Bbs::build(96, Arc::new(Md5BloomHasher::new(3)), &db, &mut io);
        (bbs, db)
    }

    #[test]
    fn phi_is_a_cdf() {
        assert!((phi(0.0) - 0.5).abs() < 1e-7);
        assert!(phi(5.0) > 0.999_999);
        assert!(phi(-5.0) < 1e-6);
        assert!((phi(1.96) - 0.975).abs() < 1e-3);
        let mut prev = 0.0;
        for i in -40..=40 {
            let v = phi(i as f64 / 10.0);
            assert!(v >= prev, "phi must be monotone");
            prev = v;
        }
    }

    #[test]
    fn corrected_support_basics() {
        // No chance coverage: corrected == est.
        assert_eq!(corrected_support(100, 30, 0.0), 30.0);
        // Saturated: fall back to est.
        assert_eq!(corrected_support(100, 100, 1.0), 100.0);
        // est entirely explainable by chance: corrected ~ 0.
        assert!(corrected_support(100, 10, 0.1) < 1.0);
        // Clamped to non-negative.
        assert!(corrected_support(100, 5, 0.2) >= 0.0);
    }

    #[test]
    fn confidence_zero_below_threshold() {
        assert_eq!(frequent_probability(100, 5, 0.01, 10), 0.0);
    }

    #[test]
    fn certified_patterns_have_confidence_one() {
        let (bbs, _) = fixture();
        let r = mine_approximate(&bbs, FilterKind::Dual, 20, 0.0);
        assert!(r.patterns.iter().any(|p| p.certified));
        for p in r.patterns.iter().filter(|p| p.certified) {
            assert_eq!(p.confidence, 1.0);
        }
    }

    #[test]
    fn approximate_set_covers_truth_and_scores_it_high() {
        let (bbs, db) = fixture();
        let tau = 20u64;
        let truth = NaiveMiner::new()
            .mine(&db, SupportThreshold::Count(tau))
            .patterns;
        let r = mine_approximate(&bbs, FilterKind::Single, tau, 0.0);
        // No false misses: every true pattern appears.
        for (items, _) in truth.iter() {
            let found = r
                .patterns
                .iter()
                .find(|p| &p.items == items)
                .unwrap_or_else(|| panic!("missing {items:?}"));
            assert!(
                found.confidence > 0.5,
                "true pattern {items:?} scored {}",
                found.confidence
            );
        }
    }

    #[test]
    fn min_confidence_filters() {
        let (bbs, _) = fixture();
        let all = mine_approximate(&bbs, FilterKind::Single, 20, 0.0);
        let strict = mine_approximate(&bbs, FilterKind::Single, 20, 0.9);
        assert!(strict.patterns.len() <= all.patterns.len());
        assert!(strict.patterns.iter().all(|p| p.confidence >= 0.9));
    }

    #[test]
    fn output_sorted_by_confidence() {
        let (bbs, _) = fixture();
        let r = mine_approximate(&bbs, FilterKind::Dual, 20, 0.0);
        for w in r.patterns.windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
    }

    #[test]
    fn densities_in_unit_interval() {
        let (bbs, _) = fixture();
        let d = slice_densities(&bbs);
        assert_eq!(d.len(), 96);
        assert!(d.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // The index is non-trivial: some slice is in active use.
        assert!(d.iter().any(|&x| x > 0.1));
    }

    #[test]
    fn no_database_io_at_all() {
        let (bbs, _) = fixture();
        let r = mine_approximate(&bbs, FilterKind::Dual, 20, 0.5);
        assert_eq!(r.stats.io.db_scans, 0);
        assert_eq!(r.stats.io.db_probes, 0);
    }
}
