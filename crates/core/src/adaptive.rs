//! Adaptive (memory-constrained) filtering: the three-phase scheme of §3.1.
//!
//! When the BBS is larger than the memory budget, repeated slice reads would
//! thrash.  The paper bounds the I/O at **two passes over the BBS**:
//!
//! 1. **Preprocessing** — fold the `m` slices down to the `k` that fit in
//!    memory (*MemBBS*), one sequential pass over the slice file.
//! 2. **Filtering** — run SingleFilter or DualFilter entirely against the
//!    in-memory MemBBS.  Folding only ORs slices together, so every estimate
//!    remains an upper bound; the candidate set merely grows.
//! 3. **Postprocessing** — one more pass over the original BBS re-estimates
//!    each surviving candidate at full width and prunes those now below the
//!    threshold.  The survivors still need ordinary refinement.

use crate::bbs::Bbs;
use crate::filter::{run_filter, FilterKind, FilterOutput};
use bbs_tdb::io::pages_for;
use bbs_tdb::{IoStats, MemoryBudget};

/// Picks the number of slices of `bbs` that fit into `budget` (at least 1,
/// at most the full width).  Returns `None` when the whole index fits and no
/// folding is needed.
pub fn slices_for_budget(bbs: &Bbs, budget: MemoryBudget) -> Option<usize> {
    let limit = budget.limit()?;
    if bbs.dense_bytes() <= limit {
        return None;
    }
    let slice_bytes = bbs.rows().div_ceil(8).max(1);
    Some((limit / slice_bytes).clamp(1, bbs.width()))
}

/// Runs the three-phase adaptive filter.
///
/// Returns the filter output exactly as [`run_filter`] would, except that
/// uncertain candidates carry full-width re-estimates and phases 1 and 3
/// have charged their BBS passes.  When the index already fits the budget
/// this degrades gracefully to the ordinary memory-resident filter.
pub fn adaptive_filter(
    bbs: &Bbs,
    kind: FilterKind,
    tau: u64,
    budget: MemoryBudget,
) -> FilterOutput {
    let Some(k) = slices_for_budget(bbs, budget) else {
        return run_filter(bbs, kind, None, tau);
    };

    // Phase 1: build MemBBS (charges one BBS pass).
    let mut fold_io = IoStats::new();
    let membbs = bbs.fold(k, &mut fold_io);

    // Phase 2: filter against the in-memory fold.  The folded slices live in
    // memory, so their reads are free; we drop the per-count charges and
    // keep only the counters.
    let mut out = run_filter(&membbs, kind, None, tau);
    out.stats.io.bbs_pages_read = 0;
    out.stats.io.merge(&fold_io);

    // Phase 3: one pass over the original BBS re-estimates the uncertain
    // candidates at full width.  The pass is charged once, not per count —
    // a real implementation streams row-chunks of the slice file and
    // accumulates every candidate's count as it goes.
    out.stats.io.bbs_passes += 1;
    out.stats.io.bbs_pages_read += pages_for(bbs.dense_bytes(), page_size_of(bbs));

    let mut scratch = IoStats::new();
    let mut kept = Vec::with_capacity(out.uncertain.len());
    for (items, _) in out.uncertain.drain(..) {
        let full_est = bbs.est_count(&items, &mut scratch);
        if full_est >= tau {
            kept.push((items, full_est));
        } else {
            out.stats.false_drops += 1;
        }
    }
    out.uncertain = kept;
    out
}

/// The page size a BBS charges against (mirrors its construction).
fn page_size_of(_bbs: &Bbs) -> usize {
    bbs_tdb::DEFAULT_PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_hash::Md5BloomHasher;
    use bbs_tdb::{Itemset, TransactionDb};
    use std::sync::Arc;

    fn fixture(width: usize) -> (Bbs, TransactionDb) {
        // 64 transactions over 32 items with planted structure.
        let mut itemsets = Vec::new();
        for i in 0..64u32 {
            let mut v = vec![i % 32, (i + 1) % 32, (i * 7) % 32];
            if i % 2 == 0 {
                v.push(0);
                v.push(1);
            }
            itemsets.push(Itemset::from_values(&v));
        }
        let db = TransactionDb::from_itemsets(itemsets);
        let mut io = IoStats::new();
        let bbs = Bbs::build(width, Arc::new(Md5BloomHasher::new(4)), &db, &mut io);
        (bbs, db)
    }

    #[test]
    fn slices_for_budget_cases() {
        let (bbs, _) = fixture(256);
        // 64 rows → 8 bytes/slice → 256 slices → 2048 dense bytes.
        assert_eq!(bbs.dense_bytes(), 2048);
        assert_eq!(slices_for_budget(&bbs, MemoryBudget::unlimited()), None);
        assert_eq!(slices_for_budget(&bbs, MemoryBudget::bytes(4096)), None);
        assert_eq!(
            slices_for_budget(&bbs, MemoryBudget::bytes(800)),
            Some(100)
        );
        assert_eq!(slices_for_budget(&bbs, MemoryBudget::bytes(4)), Some(1));
    }

    #[test]
    fn adaptive_superset_and_two_passes() {
        let (bbs, db) = fixture(256);
        let tau = 16;
        let resident = run_filter(&bbs, FilterKind::Single, None, tau);
        let adaptive = adaptive_filter(&bbs, FilterKind::Single, tau, MemoryBudget::bytes(512));

        // Every memory-resident candidate must survive the adaptive pipeline
        // (folding only adds false drops; phase 3 prunes at full width, so
        // the final uncertain sets match exactly).
        let resident_sets: Vec<&Itemset> = resident.uncertain.iter().map(|(s, _)| s).collect();
        let adaptive_sets: Vec<&Itemset> = adaptive.uncertain.iter().map(|(s, _)| s).collect();
        for s in &resident_sets {
            assert!(adaptive_sets.contains(s), "lost candidate {s:?}");
        }
        // Phase-3 estimates are full-width, so adaptive candidates are
        // exactly the full-width candidates.
        assert_eq!(resident_sets.len(), adaptive_sets.len());

        // I/O bound: exactly two BBS passes.
        assert_eq!(adaptive.stats.io.bbs_passes, 2);
        let _ = db;
    }

    #[test]
    fn adaptive_dual_keeps_certainty_guarantees() {
        let (bbs, db) = fixture(256);
        let tau = 16;
        let out = adaptive_filter(&bbs, FilterKind::Dual, tau, MemoryBudget::bytes(512));
        let mut io = IoStats::new();
        for (items, count) in out.frequent.iter() {
            assert_eq!(count, db.count_support(items, &mut io), "{items:?}");
        }
        for (items, count) in out.approx.iter() {
            let act = db.count_support(items, &mut io);
            assert!(act >= tau, "{items:?} certified but infrequent");
            assert!(count >= act, "{items:?} estimate below actual");
        }
    }

    #[test]
    fn unlimited_budget_is_plain_filter() {
        let (bbs, _) = fixture(128);
        let a = adaptive_filter(&bbs, FilterKind::Single, 16, MemoryBudget::unlimited());
        let b = run_filter(&bbs, FilterKind::Single, None, 16);
        assert_eq!(a.uncertain.len(), b.uncertain.len());
        assert_eq!(a.stats.io.bbs_passes, 0);
    }
}
