//! Ad-hoc queries (§3.4, §4.9): exact counting of arbitrary — including
//! non-frequent — patterns, with optional selection constraints.
//!
//! These are the queries neither Apriori's materialised frequent sets nor an
//! FP-tree can answer: an FP-tree discards infrequent items at construction
//! time and cannot encode constraints, whereas BBS keeps every transaction's
//! signature and reduces a constraint to one extra slice in the AND.

use crate::bbs::Bbs;
use crate::refine::probe_support;
use bbs_bitslice::BitVec;
use bbs_tdb::{build_constraint_slice, Constraint, IoStats, Itemset, TransactionDb};

/// A query engine pairing an index with its database.
pub struct AdhocEngine<'a> {
    bbs: &'a Bbs,
    db: &'a TransactionDb,
}

impl<'a> AdhocEngine<'a> {
    /// Creates the engine.
    ///
    /// # Panics
    /// Panics if index rows and database rows do not correspond.
    pub fn new(bbs: &'a Bbs, db: &'a TransactionDb) -> Self {
        assert_eq!(bbs.rows(), db.len(), "index rows must match database rows");
        AdhocEngine { bbs, db }
    }

    /// Upper-bound estimate of a pattern's support (no database access).
    pub fn estimate(&self, items: &Itemset, io: &mut IoStats) -> u64 {
        self.bbs.est_count(items, io)
    }

    /// Exact support of any pattern: estimate, then probe only the
    /// nominated rows (the paper's Query 1).
    pub fn count(&self, items: &Itemset, io: &mut IoStats) -> u64 {
        probe_support(self.db, self.bbs, items, None, io)
    }

    /// Exact support of a pattern among the transactions satisfying a
    /// constraint (the paper's Query 2): the constraint compiles to one
    /// extra bit-slice ANDed into `CountItemSet`'s result.
    pub fn count_constrained<C: Constraint + ?Sized>(
        &self,
        items: &Itemset,
        constraint: &C,
        io: &mut IoStats,
    ) -> u64 {
        let slice = self.compile_constraint(constraint, io);
        probe_support(self.db, self.bbs, items, Some(&slice), io)
    }

    /// Exact support against a pre-compiled constraint slice (reuse the
    /// slice across many queries).
    pub fn count_with_slice(&self, items: &Itemset, slice: &BitVec, io: &mut IoStats) -> u64 {
        probe_support(self.db, self.bbs, items, Some(slice), io)
    }

    /// Compiles a constraint to a bit-slice (one database pass, charged).
    pub fn compile_constraint<C: Constraint + ?Sized>(
        &self,
        constraint: &C,
        io: &mut IoStats,
    ) -> BitVec {
        // Building the slice inspects every transaction once.
        io.db_scans += 1;
        io.db_pages_read += self.db.total_pages();
        build_constraint_slice(self.db, constraint)
    }

    /// Whether a pattern is frequent at an absolute threshold, answered with
    /// as little work as possible: the estimate alone settles the "no" case
    /// (Lemma 4 — an estimate below the threshold is conclusive); otherwise
    /// one probe settles the "yes/no" exactly.
    pub fn is_frequent(&self, items: &Itemset, tau: u64, io: &mut IoStats) -> bool {
        if self.estimate(items, io) < tau {
            return false;
        }
        self.count(items, io) >= tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_hash::ModuloHasher;
    use bbs_tdb::{TidModulo, TidRange, Transaction};
    use std::sync::Arc;

    fn set(vals: &[u32]) -> Itemset {
        Itemset::from_values(vals)
    }

    fn fixture() -> (Bbs, TransactionDb) {
        let db = TransactionDb::from_transactions(vec![
            Transaction::new(100, set(&[0, 1, 2, 3, 4, 5, 14, 15])),
            Transaction::new(200, set(&[1, 2, 3, 5, 6, 7])),
            Transaction::new(300, set(&[1, 5, 14, 15])),
            Transaction::new(400, set(&[0, 1, 2, 7])),
            Transaction::new(500, set(&[1, 2, 5, 6, 11, 15])),
        ]);
        let mut io = IoStats::new();
        let bbs = Bbs::build(8, Arc::new(ModuloHasher), &db, &mut io);
        (bbs, db)
    }

    #[test]
    fn query_1_nonfrequent_pattern_count() {
        let (bbs, db) = fixture();
        let engine = AdhocEngine::new(&bbs, &db);
        let mut io = IoStats::new();
        // {1,3} is not frequent at τ=3 (support 2) — exactly the kind of
        // pattern Apriori's result set cannot answer.
        assert_eq!(engine.count(&set(&[1, 3]), &mut io), 2);
        assert_eq!(engine.count(&set(&[4]), &mut io), 1);
        assert_eq!(engine.count(&set(&[8]), &mut io), 0);
        assert_eq!(io.db_scans, 0, "ad-hoc counting never scans");
    }

    #[test]
    fn query_2_constrained_count() {
        let (bbs, db) = fixture();
        let engine = AdhocEngine::new(&bbs, &db);
        let mut io = IoStats::new();
        // TIDs divisible by 200: transactions 200 and 400.
        let c = TidModulo::divisible_by(200);
        assert_eq!(engine.count_constrained(&set(&[1, 2]), &c, &mut io), 2);
        assert_eq!(engine.count_constrained(&set(&[5]), &c, &mut io), 1);
        // Range constraint: TIDs in [100, 300) → transactions 100, 200.
        let r = TidRange {
            start: 100,
            end: 300,
        };
        assert_eq!(engine.count_constrained(&set(&[5]), &r, &mut io), 2);
    }

    #[test]
    fn constrained_count_equals_filtered_recount() {
        let (bbs, db) = fixture();
        let engine = AdhocEngine::new(&bbs, &db);
        let c = TidModulo::divisible_by(300);
        for items in [&[1u32][..], &[1, 5], &[0, 1], &[9]] {
            let s = set(items);
            let mut io = IoStats::new();
            let constrained = engine.count_constrained(&s, &c, &mut io);
            // Oracle: filter the database manually, then count.
            let expect = db
                .transactions()
                .iter()
                .filter(|t| t.tid.0 % 300 == 0 && s.is_subset_of(&t.items))
                .count() as u64;
            assert_eq!(constrained, expect, "{s:?}");
        }
    }

    #[test]
    fn reusable_constraint_slice() {
        let (bbs, db) = fixture();
        let engine = AdhocEngine::new(&bbs, &db);
        let mut io = IoStats::new();
        let slice = engine.compile_constraint(&TidModulo::divisible_by(200), &mut io);
        let scans_after_compile = io.db_scans;
        assert_eq!(engine.count_with_slice(&set(&[1, 2]), &slice, &mut io), 2);
        assert_eq!(engine.count_with_slice(&set(&[7]), &slice, &mut io), 2);
        assert_eq!(io.db_scans, scans_after_compile, "slice reuse avoids scans");
    }

    #[test]
    fn is_frequent_short_circuits_on_estimate() {
        let (bbs, db) = fixture();
        let engine = AdhocEngine::new(&bbs, &db);
        let mut io = IoStats::new();
        // Item 4 sets only bit 4, whose slice holds a single row, so the
        // estimate (1) is below τ = 2 and the probe is skipped entirely.
        assert!(!engine.is_frequent(&set(&[4]), 2, &mut io));
        assert_eq!(io.db_probes, 0);
        assert!(engine.is_frequent(&set(&[1, 5]), 4, &mut io));
        assert!(!engine.is_frequent(&set(&[1, 5]), 5, &mut io));
    }

    #[test]
    fn estimate_dominates_count() {
        let (bbs, db) = fixture();
        let engine = AdhocEngine::new(&bbs, &db);
        let mut io = IoStats::new();
        for items in [&[1u32, 3][..], &[0], &[2, 5, 15], &[6, 7]] {
            let s = set(items);
            assert!(engine.estimate(&s, &mut io) >= engine.count(&s, &mut io));
        }
    }
}
