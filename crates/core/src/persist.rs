//! On-disk persistence for the BBS index.
//!
//! The paper's title feature is that BBS is a *persistent* structure: build
//! it once, keep it next to the database, append to it as transactions
//! arrive, and never rebuild.  This module gives the index a simple binary
//! file format:
//!
//! ```text
//! magic  "BBS1"            4 bytes
//! width  u64 LE            signature width m
//! rows   u64 LE            number of indexed transactions
//! nitems u64 LE            number of distinct items with exact counts
//! then nitems × (item u32 LE, count u64 LE)
//! then width slices, each: len_bits u64 LE, nwords u64 LE, words u64 LE…
//! ```
//!
//! The hash family is *not* serialized (it is code, not data); the loader
//! takes the hasher as an argument and the caller is responsible for
//! supplying the same family the index was built with — the same contract a
//! database has with its collation functions.

use crate::bbs::Bbs;
use bbs_bitslice::{BitVec, SliceMatrix};
use bbs_hash::ItemHasher;
use bbs_tdb::ItemId;
use std::io::{self, Read, Write};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"BBS1";

/// Errors produced by loading a persisted index.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the BBS magic.
    BadMagic,
    /// Structural inconsistency (e.g. slice longer than the row count).
    Corrupt(&'static str),
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a BBS index file"),
            PersistError::Corrupt(what) => write!(f, "corrupt index file: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Serializes an index to a writer.
pub fn save<W: Write>(bbs: &Bbs, w: &mut W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u64(w, bbs.width() as u64)?;
    write_u64(w, bbs.rows() as u64)?;
    let vocab = bbs.vocabulary();
    write_u64(w, vocab.len() as u64)?;
    for item in &vocab {
        w.write_all(&item.0.to_le_bytes())?;
        write_u64(w, bbs.actual_singleton_count(*item))?;
    }
    for j in 0..bbs.width() {
        let slice = bbs.matrix().slice(j);
        write_u64(w, slice.len() as u64)?;
        let words = slice.words();
        write_u64(w, words.len() as u64)?;
        for word in words {
            write_u64(w, *word)?;
        }
    }
    Ok(())
}

/// Caps speculative preallocation from untrusted header fields.  Every
/// element still has to be *read* before it exists, so a length-inflated
/// header runs into end-of-stream instead of a giant allocation; this
/// bound only limits how much memory is reserved ahead of the reads.
fn bounded_cap(claimed: usize) -> usize {
    claimed.min(1 << 16)
}

/// Deserializes an index from a reader, attaching the hash family it was
/// built with.
///
/// The stream is untrusted: truncated, bit-flipped, or length-inflated
/// input yields a [`PersistError`], never a panic or an allocation
/// proportional to a corrupt header field.
pub fn load<R: Read>(r: &mut R, hasher: Arc<dyn ItemHasher>) -> Result<Bbs, PersistError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let width = read_u64(r)? as usize;
    let rows = read_u64(r)? as usize;
    if width == 0 {
        return Err(PersistError::Corrupt("zero width"));
    }
    let nitems = read_u64(r)? as usize;
    let mut item_counts = Vec::with_capacity(bounded_cap(nitems));
    for _ in 0..nitems {
        let item = ItemId(read_u32(r)?);
        let count = read_u64(r)?;
        item_counts.push((item, count));
    }
    let mut slices: Vec<BitVec> = Vec::with_capacity(bounded_cap(width));
    for _ in 0..width {
        let len_bits = read_u64(r)? as usize;
        if len_bits > rows {
            return Err(PersistError::Corrupt("slice longer than row count"));
        }
        let nwords = read_u64(r)? as usize;
        if nwords != bbs_bitslice::words_for(len_bits) {
            return Err(PersistError::Corrupt("slice word count mismatch"));
        }
        let mut words = Vec::with_capacity(bounded_cap(nwords));
        for _ in 0..nwords {
            words.push(read_u64(r)?);
        }
        slices.push(BitVec::from_words(words, len_bits));
    }
    let matrix =
        SliceMatrix::from_slices(width, rows, slices).map_err(PersistError::Corrupt)?;
    Ok(Bbs::from_parts(
        hasher,
        matrix,
        item_counts,
        bbs_tdb::DEFAULT_PAGE_SIZE,
    ))
}

/// Saves an index to a file path.
pub fn save_to_path(bbs: &Bbs, path: &std::path::Path) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    save(bbs, &mut f)?;
    f.flush()
}

/// Loads an index from a file path.
pub fn load_from_path(
    path: &std::path::Path,
    hasher: Arc<dyn ItemHasher>,
) -> Result<Bbs, PersistError> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    load(&mut f, hasher)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_hash::Md5BloomHasher;
    use bbs_tdb::{IoStats, Itemset, Transaction, TransactionDb};

    fn fixture() -> (Bbs, TransactionDb) {
        let db = TransactionDb::from_transactions(vec![
            Transaction::new(1, Itemset::from_values(&[1, 2, 3])),
            Transaction::new(2, Itemset::from_values(&[2, 3, 4])),
            Transaction::new(3, Itemset::from_values(&[1, 3])),
        ]);
        let mut io = IoStats::new();
        let bbs = Bbs::build(64, Arc::new(Md5BloomHasher::new(4)), &db, &mut io);
        (bbs, db)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (bbs, db) = fixture();
        let mut buf = Vec::new();
        save(&bbs, &mut buf).expect("save");
        let loaded = load(&mut buf.as_slice(), Arc::new(Md5BloomHasher::new(4)))
            .expect("load");
        assert_eq!(loaded.width(), bbs.width());
        assert_eq!(loaded.rows(), bbs.rows());
        assert_eq!(loaded.vocabulary(), bbs.vocabulary());
        let mut io = IoStats::new();
        for q in [&[1u32][..], &[2, 3], &[1, 2, 3], &[9]] {
            let items = Itemset::from_values(q);
            assert_eq!(
                loaded.est_count(&items, &mut io),
                bbs.est_count(&items, &mut io),
                "{items:?}"
            );
        }
        // The loaded index keeps working incrementally.
        let mut loaded = loaded;
        loaded.insert(
            &Transaction::new(4, Itemset::from_values(&[1, 2])),
            &mut io,
        );
        assert_eq!(loaded.rows(), db.len() + 1);
        assert_eq!(loaded.actual_singleton_count(bbs_tdb::ItemId(1)), 3);
    }

    #[test]
    fn roundtrip_via_file() {
        let (bbs, _) = fixture();
        let path = std::env::temp_dir().join("bbs_persist_test.idx");
        save_to_path(&bbs, &path).expect("save file");
        let loaded =
            load_from_path(&path, Arc::new(Md5BloomHasher::new(4))).expect("load file");
        assert_eq!(loaded.rows(), bbs.rows());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let err = load(&mut &b"NOPE0000"[..], Arc::new(Md5BloomHasher::new(4)));
        assert!(matches!(err, Err(PersistError::BadMagic)));
    }

    #[test]
    fn rejects_truncated_stream() {
        let (bbs, _) = fixture();
        let mut buf = Vec::new();
        save(&bbs, &mut buf).expect("save");
        buf.truncate(buf.len() / 2);
        let err = load(&mut buf.as_slice(), Arc::new(Md5BloomHasher::new(4)));
        assert!(matches!(err, Err(PersistError::Io(_))));
    }

    #[test]
    fn rejects_corrupt_slice_length() {
        let (bbs, _) = fixture();
        let mut buf = Vec::new();
        save(&bbs, &mut buf).expect("save");
        // rows field lives at offset 4 (magic) + 8 (width) = 12; shrink it.
        buf[12] = 0;
        buf[13] = 0;
        let err = load(&mut buf.as_slice(), Arc::new(Md5BloomHasher::new(4)));
        assert!(matches!(err, Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn rejects_length_inflated_headers_without_huge_allocation() {
        let (bbs, _) = fixture();
        let mut buf = Vec::new();
        save(&bbs, &mut buf).expect("save");

        // nitems lives at offset 4 (magic) + 8 (width) + 8 (rows) = 20.
        let mut inflated = buf.clone();
        inflated[20..28].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = load(&mut inflated.as_slice(), Arc::new(Md5BloomHasher::new(4)));
        assert!(matches!(err, Err(PersistError::Io(_))));

        // width lives at offset 4.
        let mut inflated = buf.clone();
        inflated[4..12].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(load(&mut inflated.as_slice(), Arc::new(Md5BloomHasher::new(4))).is_err());

        // A slice's claimed word count (can only EOF or mismatch, never
        // allocate): first slice header follows the item table.
        let vocab_bytes = 12 * bbs.vocabulary().len();
        let at = 28 + vocab_bytes + 8;
        let mut inflated = buf;
        inflated[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(load(&mut inflated.as_slice(), Arc::new(Md5BloomHasher::new(4))).is_err());
    }

    #[test]
    fn every_truncation_is_an_error_not_a_panic() {
        let (bbs, _) = fixture();
        let mut buf = Vec::new();
        save(&bbs, &mut buf).expect("save");
        for len in 0..buf.len() {
            let err = load(&mut &buf[..len], Arc::new(Md5BloomHasher::new(4)));
            assert!(err.is_err(), "prefix of {len} bytes must not load");
        }
    }

    #[test]
    fn single_bit_flips_never_panic() {
        let (bbs, _) = fixture();
        let mut buf = Vec::new();
        save(&bbs, &mut buf).expect("save");
        for pos in 0..buf.len() {
            for bit in [0u8, 3, 7] {
                let mut corrupt = buf.clone();
                corrupt[pos] ^= 1 << bit;
                // Flips in slice payload words load fine (they are data);
                // everything else must degrade to a typed error.
                let _ = load(&mut corrupt.as_slice(), Arc::new(Md5BloomHasher::new(4)));
            }
        }
    }

    #[test]
    fn mining_from_a_loaded_index_matches() {
        use crate::miners::{BbsMiner, Scheme};
        use bbs_tdb::{FrequentPatternMiner, SupportThreshold};
        let (bbs, db) = fixture();
        let mut buf = Vec::new();
        save(&bbs, &mut buf).expect("save");
        let loaded =
            load(&mut buf.as_slice(), Arc::new(Md5BloomHasher::new(4))).expect("load");
        let a = BbsMiner::with_index(Scheme::Dfp, bbs).mine(&db, SupportThreshold::Count(2));
        let b = BbsMiner::with_index(Scheme::Dfp, loaded).mine(&db, SupportThreshold::Count(2));
        assert_eq!(a.patterns, b.patterns);
    }
}
