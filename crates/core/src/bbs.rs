//! The Bit-Sliced Bloom-Filtered Signature File itself.

use bbs_bitslice::matrix::fold_signature;
use bbs_bitslice::{BitVec, Signature, SliceMatrix};
use bbs_hash::ItemHasher;
use bbs_tdb::io::pages_for;
use bbs_tdb::{IoStats, ItemId, Itemset, Transaction, TransactionDb, DEFAULT_PAGE_SIZE};
use std::collections::HashMap;
use std::sync::Arc;

/// The BBS index (§2 of the paper).
///
/// A `Bbs` is a dynamic, persistent companion structure to a
/// [`TransactionDb`]: row `r` of the index is the `m`-bit Bloom-filter
/// signature of row `r` of the database, stored slice-major.  It supports:
///
/// * **Incremental insertion** — adding a transaction appends one row; no
///   reconstruction is ever required (the paper's key advantage over
///   FP-trees, §3.4).
/// * **`CountItemSet`** — an upper-bound estimate of an itemset's support,
///   computed by ANDing the slices selected by the itemset's signature and
///   popcounting (Fig. 1; never undercounts, Lemmas 3–4).
/// * **Exact 1-itemset counts** — the "additional information" (§3.1) that
///   powers the DualFilter's certainty logic: maintaining these is O(items)
///   per insert, and they let Lemma 5 / Corollary 1 certify longer patterns
///   without touching the database.
///
/// All read operations charge a simulated I/O ledger at page granularity;
/// see the crate-level docs for the cost model.
///
/// Cloning is cheap relative to rebuilding (it copies the slice storage but
/// shares the hasher) and lets several miners run over one index.
#[derive(Clone)]
pub struct Bbs {
    width: usize,
    hasher: Arc<dyn ItemHasher>,
    matrix: SliceMatrix,
    /// Exact support of every 1-itemset ever inserted.
    item_counts: HashMap<ItemId, u64>,
    /// Deduplicated hash positions per inserted item (populated at insert
    /// time, so lookups need no interior mutability and `Bbs` stays `Sync`).
    positions_cache: HashMap<ItemId, Arc<[usize]>>,
    /// Bytes appended since the last full simulated page was charged.
    unflushed_write_bytes: usize,
    page_size: usize,
}

impl Bbs {
    /// Creates an empty index with `width`-bit signatures (the paper's `m`)
    /// and the given hash family.
    pub fn new(width: usize, hasher: Arc<dyn ItemHasher>) -> Self {
        Bbs::with_page_size(width, hasher, DEFAULT_PAGE_SIZE)
    }

    /// Creates an empty index with an explicit page size for I/O accounting.
    pub fn with_page_size(
        width: usize,
        hasher: Arc<dyn ItemHasher>,
        page_size: usize,
    ) -> Self {
        assert!(width > 0, "signature width must be positive");
        Bbs {
            width,
            hasher,
            matrix: SliceMatrix::new(width),
            item_counts: HashMap::new(),
            positions_cache: HashMap::new(),
            unflushed_write_bytes: 0,
            page_size,
        }
    }

    /// Builds an index over every transaction of `db`, charging the inserts
    /// to `stats`.
    pub fn build(
        width: usize,
        hasher: Arc<dyn ItemHasher>,
        db: &TransactionDb,
        stats: &mut IoStats,
    ) -> Self {
        let mut bbs = Bbs::with_page_size(width, hasher, db.page_size());
        for txn in db.transactions() {
            bbs.insert(txn, stats);
        }
        bbs
    }

    /// Signature width `m`.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of indexed transactions.
    #[inline]
    pub fn rows(&self) -> usize {
        self.matrix.rows()
    }

    /// The hash family in use.
    pub fn hasher(&self) -> &Arc<dyn ItemHasher> {
        &self.hasher
    }

    /// Bytes a dense slice-major file image of the index occupies.
    pub fn dense_bytes(&self) -> usize {
        self.matrix.dense_bytes()
    }

    /// The deduplicated hash positions of one item.
    ///
    /// Positions of inserted items come from the cache; an item never seen
    /// by the index (possible in ad-hoc queries) is hashed on the fly.
    pub fn positions(&self, item: ItemId) -> Arc<[usize]> {
        if let Some(p) = self.positions_cache.get(&item) {
            return Arc::clone(p);
        }
        self.compute_positions(item)
    }

    fn compute_positions(&self, item: ItemId) -> Arc<[usize]> {
        let mut v = self.hasher.positions_vec(item.value(), self.width);
        v.sort_unstable();
        v.dedup();
        v.into()
    }

    /// The Bloom signature of an itemset (union of its items' positions).
    pub fn signature_of(&self, itemset: &Itemset) -> Signature {
        let mut sig = Signature::zeros(self.width);
        for &item in itemset.items() {
            for &p in self.positions(item).iter() {
                sig.set(p);
            }
        }
        sig
    }

    /// Inserts one transaction, appending a row and updating the exact
    /// 1-itemset counts.  Charges amortised write I/O.
    pub fn insert(&mut self, txn: &Transaction, stats: &mut IoStats) -> usize {
        for &item in txn.items.items() {
            if !self.positions_cache.contains_key(&item) {
                let p = self.compute_positions(item);
                self.positions_cache.insert(item, p);
            }
        }
        let sig = self.signature_of(&txn.items);
        let row = self.matrix.push_row(&sig);
        for &item in txn.items.items() {
            *self.item_counts.entry(item).or_insert(0) += 1;
        }
        // A row adds m bits = m/8 bytes to the slice file (amortised across
        // slices); charge full pages as they fill.
        self.unflushed_write_bytes += self.width.div_ceil(8);
        let pages = self.unflushed_write_bytes / self.page_size;
        if pages > 0 {
            stats.bbs_pages_written += pages as u64;
            self.unflushed_write_bytes -= pages * self.page_size;
        }
        row
    }

    /// The exact support of a 1-itemset (0 if the item never occurred).
    pub fn actual_singleton_count(&self, item: ItemId) -> u64 {
        self.item_counts.get(&item).copied().unwrap_or(0)
    }

    /// Every distinct item ever inserted, sorted ascending.
    pub fn vocabulary(&self) -> Vec<ItemId> {
        let mut v: Vec<ItemId> = self.item_counts.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Bytes of one slice in a dense file image.
    fn slice_bytes(&self) -> usize {
        self.rows().div_ceil(8)
    }

    /// Charges the read of `n_slices` full slices (batched: the slices of
    /// one query are read together, so partial pages coalesce).
    fn charge_slice_reads(&self, n_slices: usize, stats: &mut IoStats) {
        stats.bbs_pages_read += pages_for(n_slices * self.slice_bytes(), self.page_size);
    }

    /// Charges one cold sequential load of the whole slice file.
    ///
    /// The mining algorithms call this once per run: after the first pass a
    /// memory-resident index serves every subsequent `CountItemSet` from
    /// RAM ("BBS is typically small and will not take too many scans if it
    /// does not fit into the memory", §1) — which is why the incremental
    /// [`Bbs::est_count_extend`] does not charge per call.
    pub fn charge_cold_load(&self, stats: &mut IoStats) {
        stats.bbs_passes += 1;
        stats.bbs_pages_read += pages_for(self.dense_bytes(), self.page_size);
    }

    /// `CountItemSet` (Fig. 1): upper-bound estimate of the itemset's
    /// support.  An empty itemset counts every transaction.
    pub fn est_count(&self, itemset: &Itemset, stats: &mut IoStats) -> u64 {
        let sig = self.signature_of(itemset);
        self.charge_slice_reads(sig.weight(), stats);
        self.matrix.count_selected(&sig) as u64
    }

    /// `CountItemSet`, returning the result bit vector as well (the set of
    /// candidate rows, which the Probe refiner fetches).
    pub fn est_result(&self, itemset: &Itemset, out: &mut BitVec, stats: &mut IoStats) -> u64 {
        let sig = self.signature_of(itemset);
        self.charge_slice_reads(sig.weight(), stats);
        self.matrix.and_selected(&sig, out);
        out.count_ones() as u64
    }

    /// Incremental estimate: the support estimate of `parent_itemset ∪
    /// {item}` given the materialised AND-result of the parent.
    ///
    /// Only the item's own (deduplicated) slices are touched — the
    /// incremental step that makes the recursive filters cheap.  No I/O is
    /// charged: filter enumeration runs against a resident index whose cold
    /// load the miner charges once ([`Bbs::charge_cold_load`]); the `stats`
    /// parameter is kept for future cost models and API stability.
    pub fn est_count_extend(
        &self,
        parent: &BitVec,
        item: ItemId,
        stats: &mut IoStats,
    ) -> u64 {
        let _ = &*stats;
        let positions = self.positions(item);
        let words = bbs_bitslice::words_for(self.rows());
        // Hot path of every filter: avoid a per-call Vec for the common
        // Bloom parameters (k ≤ 15) by staging operand refs on the stack.
        const MAX_INLINE: usize = 16;
        if positions.len() < MAX_INLINE {
            let empty: &[u64] = &[];
            let mut operands: [&[u64]; MAX_INLINE] = [empty; MAX_INLINE];
            operands[0] = parent.words();
            for (slot, &p) in operands[1..].iter_mut().zip(positions.iter()) {
                *slot = self.matrix.slice_words(p);
            }
            return bbs_bitslice::ops::and_all_count(&operands[..positions.len() + 1], words)
                as u64;
        }
        let mut operands: Vec<&[u64]> = Vec::with_capacity(positions.len() + 1);
        operands.push(parent.words());
        for &p in positions.iter() {
            operands.push(self.matrix.slice_words(p));
        }
        bbs_bitslice::ops::and_all_count(&operands, words) as u64
    }

    /// Materialises the AND-result of `parent ∪ {item}` into `out`.
    ///
    /// Charges no additional reads: callers always call
    /// [`Bbs::est_count_extend`] first, which already paid for the item's
    /// slices (in a real system the pages would still be hot).
    pub fn extend_result(&self, parent: &BitVec, item: ItemId, out: &mut BitVec) {
        out.clear_all();
        out.grow_to(self.rows());
        out.truncate(self.rows());
        {
            let dst = out.words_mut();
            let src = parent.words();
            let n = src.len().min(dst.len());
            dst[..n].copy_from_slice(&src[..n]);
            for w in dst[n..].iter_mut() {
                *w = 0;
            }
        }
        for &p in self.positions(item).iter() {
            bbs_bitslice::ops::and_assign(out.words_mut(), self.matrix.slice_words(p));
        }
    }

    /// The all-rows vector (AND-result of the empty itemset).
    pub fn all_rows_vector(&self) -> BitVec {
        BitVec::ones(self.rows())
    }

    /// Constrained estimate (§3.4): `CountItemSet` with one extra
    /// constraint slice ANDed into the result.
    pub fn est_count_constrained(
        &self,
        itemset: &Itemset,
        constraint: &BitVec,
        stats: &mut IoStats,
    ) -> u64 {
        let sig = self.signature_of(itemset);
        // The constraint slice is one more slice read.
        self.charge_slice_reads(sig.weight() + 1, stats);
        let words = bbs_bitslice::words_for(self.rows());
        let mut operands: Vec<&[u64]> = Vec::with_capacity(sig.weight() + 1);
        let slice_refs: Vec<&[u64]> = sig.iter_ones().map(|p| self.matrix.slice_words(p)).collect();
        operands.extend(slice_refs);
        operands.push(constraint.words());
        bbs_bitslice::ops::and_all_count(&operands, words) as u64
    }

    /// Constrained estimate returning the result rows as well.
    pub fn est_result_constrained(
        &self,
        itemset: &Itemset,
        constraint: &BitVec,
        out: &mut BitVec,
        stats: &mut IoStats,
    ) -> u64 {
        self.est_result(itemset, out, stats);
        self.charge_slice_reads(1, stats);
        out.and_assign(constraint);
        out.count_ones() as u64
    }

    /// Folds the index to `new_width` slices (the adaptive filter's
    /// *MemBBS*, §3.1): slice `j` is ORed into slice `j % new_width`, and
    /// the item position cache is rebuilt through [`fold_signature`]'s
    /// mapping.  Exact 1-itemset counts are carried over unchanged.
    ///
    /// Charges one full read pass over the original slice file.
    pub fn fold(&self, new_width: usize, stats: &mut IoStats) -> Bbs {
        assert!(new_width > 0);
        stats.bbs_passes += 1;
        stats.bbs_pages_read += pages_for(self.dense_bytes(), self.page_size);
        let folded_hasher = Arc::new(FoldedHasher {
            inner: Arc::clone(&self.hasher),
            original_width: self.width,
        });
        let width = new_width.min(self.width);
        // Fold the cached positions through the same j → j mod k map.
        let positions_cache = self
            .positions_cache
            .iter()
            .map(|(&item, ps)| {
                let mut v: Vec<usize> = ps.iter().map(|&p| p % width).collect();
                v.sort_unstable();
                v.dedup();
                (item, Arc::<[usize]>::from(v))
            })
            .collect();
        Bbs {
            width,
            hasher: folded_hasher,
            matrix: self.matrix.fold(new_width),
            item_counts: self.item_counts.clone(),
            positions_cache,
            unflushed_write_bytes: 0,
            page_size: self.page_size,
        }
    }

    /// Read access to the underlying slice matrix (benchmarks, tests).
    pub fn matrix(&self) -> &SliceMatrix {
        &self.matrix
    }

    /// Assembles an index from externally stored parts: the slices (each at
    /// most `rows` bits; shorter slices zero-extend), the exact 1-itemset
    /// counts, and the hash family the signatures were built with.
    ///
    /// This is the integration point for external storage layers (e.g. the
    /// `bbs-storage` crate's disk-backed slice file): load the columns
    /// however you store them, hand them over, and mine.
    ///
    /// # Errors
    /// Returns a description of the structural inconsistency if the slices
    /// do not form a valid matrix.
    pub fn from_raw_parts(
        hasher: Arc<dyn ItemHasher>,
        width: usize,
        rows: usize,
        slices: Vec<BitVec>,
        item_counts: Vec<(ItemId, u64)>,
    ) -> Result<Bbs, &'static str> {
        let matrix = SliceMatrix::from_slices(width, rows, slices)?;
        Ok(Bbs::from_parts(
            hasher,
            matrix,
            item_counts,
            DEFAULT_PAGE_SIZE,
        ))
    }

    /// Reassembles an index from deserialized parts (see [`crate::persist`]).
    pub(crate) fn from_parts(
        hasher: Arc<dyn ItemHasher>,
        matrix: SliceMatrix,
        item_counts: Vec<(ItemId, u64)>,
        page_size: usize,
    ) -> Bbs {
        let mut bbs = Bbs {
            width: matrix.width(),
            hasher,
            matrix,
            item_counts: item_counts.into_iter().collect(),
            positions_cache: HashMap::new(),
            unflushed_write_bytes: 0,
            page_size,
        };
        let items: Vec<ItemId> = bbs.item_counts.keys().copied().collect();
        for item in items {
            let p = bbs.compute_positions(item);
            bbs.positions_cache.insert(item, p);
        }
        bbs
    }
}

/// A hasher that first hashes at an original width and then folds the
/// positions down, so that a folded [`Bbs`] produces query signatures
/// consistent with its folded slices.
struct FoldedHasher {
    inner: Arc<dyn ItemHasher>,
    original_width: usize,
}

impl ItemHasher for FoldedHasher {
    fn positions(&self, item: u64, width: usize, out: &mut Vec<usize>) {
        let start = out.len();
        self.inner.positions(item, self.original_width, out);
        for p in out[start..].iter_mut() {
            *p %= width;
        }
    }

    fn k(&self) -> usize {
        self.inner.k()
    }
}

/// Consistency check used by tests: folding the signature of an itemset at
/// the original width must equal the signature the folded BBS computes.
pub fn folded_signature_of(original: &Bbs, itemset: &Itemset, new_width: usize) -> Signature {
    fold_signature(&original.signature_of(itemset), new_width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_hash::{Md5BloomHasher, ModuloHasher};

    fn set(vals: &[u32]) -> Itemset {
        Itemset::from_values(vals)
    }

    /// Table 1 of the paper, indexed with h(x) = x mod 8, m = 8.
    fn paper_bbs() -> (Bbs, TransactionDb, IoStats) {
        let db = TransactionDb::from_transactions(vec![
            Transaction::new(100, set(&[0, 1, 2, 3, 4, 5, 14, 15])),
            Transaction::new(200, set(&[1, 2, 3, 5, 6, 7])),
            Transaction::new(300, set(&[1, 5, 14, 15])),
            Transaction::new(400, set(&[0, 1, 2, 7])),
            Transaction::new(500, set(&[1, 2, 5, 6, 11, 15])),
        ]);
        let mut io = IoStats::new();
        let bbs = Bbs::build(8, Arc::new(ModuloHasher), &db, &mut io);
        (bbs, db, io)
    }

    #[test]
    fn example_2_counts() {
        let (bbs, _, _) = paper_bbs();
        let mut io = IoStats::new();
        // {0,1}: exact count 2.
        assert_eq!(bbs.est_count(&set(&[0, 1]), &mut io), 2);
        // {1,3}: overestimate 3 (true count 2).
        assert_eq!(bbs.est_count(&set(&[1, 3]), &mut io), 3);
    }

    #[test]
    fn est_never_undercounts_lemma_4() {
        let (bbs, db, _) = paper_bbs();
        let mut io = IoStats::new();
        // Check every 1- and 2-itemset over the vocabulary.
        let vocab = db.vocabulary();
        for (i, &a) in vocab.iter().enumerate() {
            let ia = Itemset::from_items(vec![a]);
            let act = db.count_support(&ia, &mut io);
            assert!(bbs.est_count(&ia, &mut io) >= act, "{ia:?}");
            for &b in &vocab[i + 1..] {
                let iab = ia.with_item(b);
                let act = db.count_support(&iab, &mut io);
                assert!(bbs.est_count(&iab, &mut io) >= act, "{iab:?}");
            }
        }
    }

    #[test]
    fn exact_when_width_covers_items() {
        // §2.2 extreme: m ≥ number of items with an injective hash makes the
        // estimate exact for every itemset.
        let (_, db, _) = paper_bbs();
        let mut io = IoStats::new();
        let bbs = Bbs::build(16, Arc::new(ModuloHasher), &db, &mut io);
        let vocab = db.vocabulary();
        for (i, &a) in vocab.iter().enumerate() {
            for &b in &vocab[i..] {
                let s = Itemset::from_items(vec![a, b]);
                assert_eq!(
                    bbs.est_count(&s, &mut io),
                    db.count_support(&s, &mut io),
                    "{s:?}"
                );
            }
        }
    }

    #[test]
    fn width_one_estimates_db_size() {
        // §2.2 other extreme: m = 1 returns |D| for every itemset.
        let (_, db, _) = paper_bbs();
        let mut io = IoStats::new();
        let bbs = Bbs::build(1, Arc::new(ModuloHasher), &db, &mut io);
        for items in [&[0u32][..], &[1, 3], &[9, 10, 11]] {
            assert_eq!(bbs.est_count(&set(items), &mut io), 5);
        }
    }

    #[test]
    fn singleton_counts_maintained_on_insert() {
        let (bbs, _, _) = paper_bbs();
        assert_eq!(bbs.actual_singleton_count(ItemId(1)), 5);
        assert_eq!(bbs.actual_singleton_count(ItemId(15)), 3);
        assert_eq!(bbs.actual_singleton_count(ItemId(11)), 1);
        assert_eq!(bbs.actual_singleton_count(ItemId(99)), 0);
    }

    #[test]
    fn vocabulary_sorted() {
        let (bbs, _, _) = paper_bbs();
        let v = bbs.vocabulary();
        assert_eq!(v.first(), Some(&ItemId(0)));
        assert_eq!(v.last(), Some(&ItemId(15)));
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_itemset_counts_all_rows() {
        let (bbs, _, _) = paper_bbs();
        let mut io = IoStats::new();
        assert_eq!(bbs.est_count(&Itemset::empty(), &mut io), 5);
    }

    #[test]
    fn est_result_names_candidate_rows() {
        let (bbs, _, _) = paper_bbs();
        let mut io = IoStats::new();
        let mut out = BitVec::new();
        let n = bbs.est_result(&set(&[1, 3]), &mut out, &mut io);
        assert_eq!(n, 3);
        assert_eq!(out.iter_ones().collect::<Vec<_>>(), vec![0, 1, 4]);
    }

    #[test]
    fn incremental_extend_matches_full_count() {
        let (bbs, _, _) = paper_bbs();
        let mut io = IoStats::new();
        let mut parent = BitVec::new();
        bbs.est_result(&set(&[1]), &mut parent, &mut io);
        let est = bbs.est_count_extend(&parent, ItemId(3), &mut io);
        assert_eq!(est, bbs.est_count(&set(&[1, 3]), &mut io));
        let mut child = BitVec::new();
        bbs.extend_result(&parent, ItemId(3), &mut child);
        assert_eq!(child.count_ones() as u64, est);
    }

    #[test]
    fn extend_from_all_rows_matches_singleton() {
        let (bbs, _, _) = paper_bbs();
        let mut io = IoStats::new();
        let all = bbs.all_rows_vector();
        for item in [0u32, 1, 5, 9, 15] {
            assert_eq!(
                bbs.est_count_extend(&all, ItemId(item), &mut io),
                bbs.est_count(&set(&[item]), &mut io),
                "item {item}"
            );
        }
    }

    #[test]
    fn constrained_count_restricts_rows() {
        let (bbs, _, _) = paper_bbs();
        let mut io = IoStats::new();
        // Constraint selecting rows 0 and 4 only.
        let constraint = BitVec::from_indices(5, &[0, 4]);
        // {1} matches all rows; constrained to 2.
        assert_eq!(
            bbs.est_count_constrained(&set(&[1]), &constraint, &mut io),
            2
        );
        let mut out = BitVec::new();
        let n = bbs.est_result_constrained(&set(&[1]), &constraint, &mut out, &mut io);
        assert_eq!(n, 2);
        assert_eq!(out.iter_ones().collect::<Vec<_>>(), vec![0, 4]);
    }

    #[test]
    fn fold_preserves_upper_bound() {
        let (bbs, db, _) = paper_bbs();
        let mut io = IoStats::new();
        let folded = bbs.fold(3, &mut io);
        assert_eq!(folded.width(), 3);
        assert_eq!(folded.rows(), 5);
        assert_eq!(io.bbs_passes, 1);
        for items in [&[0u32][..], &[1, 3], &[1, 2, 5], &[15]] {
            let s = set(items);
            let est_folded = folded.est_count(&s, &mut io);
            let est_orig = bbs.est_count(&s, &mut io);
            let act = db.count_support(&s, &mut io);
            assert!(est_folded >= est_orig, "{s:?}: folded < original");
            assert!(est_orig >= act, "{s:?}");
        }
    }

    #[test]
    fn fold_signature_consistency() {
        let (bbs, _, _) = paper_bbs();
        let mut io = IoStats::new();
        let folded = bbs.fold(3, &mut io);
        for items in [&[1u32, 3][..], &[0, 7], &[14, 15]] {
            let s = set(items);
            assert_eq!(
                folded.signature_of(&s).iter_ones().collect::<Vec<_>>(),
                folded_signature_of(&bbs, &s, 3).iter_ones().collect::<Vec<_>>(),
                "{s:?}"
            );
        }
    }

    #[test]
    fn incremental_equals_batch_build() {
        let (_, db, _) = paper_bbs();
        let mut io = IoStats::new();
        let batch = Bbs::build(8, Arc::new(ModuloHasher), &db, &mut io);
        let mut incremental = Bbs::new(8, Arc::new(ModuloHasher));
        for txn in db.transactions() {
            incremental.insert(txn, &mut io);
        }
        for j in 0..8 {
            assert_eq!(
                batch.matrix().slice(j).iter_ones().collect::<Vec<_>>(),
                incremental.matrix().slice(j).iter_ones().collect::<Vec<_>>(),
                "slice {j}"
            );
        }
        assert_eq!(batch.vocabulary(), incremental.vocabulary());
    }

    #[test]
    fn md5_hasher_bbs_upper_bound_holds() {
        let (_, db, _) = paper_bbs();
        let mut io = IoStats::new();
        let bbs = Bbs::build(64, Arc::new(Md5BloomHasher::new(4)), &db, &mut io);
        let vocab = db.vocabulary();
        for (i, &a) in vocab.iter().enumerate() {
            for &b in &vocab[i + 1..] {
                let s = Itemset::from_items(vec![a, b]);
                assert!(
                    bbs.est_count(&s, &mut io) >= db.count_support(&s, &mut io),
                    "{s:?}"
                );
            }
        }
    }

    #[test]
    fn io_charging_counts_slice_pages() {
        let (_, db, _) = paper_bbs();
        let mut io = IoStats::new();
        let bbs = Bbs::with_page_size(8, Arc::new(ModuloHasher), 4096, );
        let mut bbs = bbs;
        for t in db.transactions() {
            bbs.insert(t, &mut io);
        }
        let mut read_io = IoStats::new();
        bbs.est_count(&set(&[1, 3]), &mut read_io);
        // Two 1-byte slices selected: coalesce into a single page read.
        assert_eq!(read_io.bbs_pages_read, 1);
        // A cold load of the whole (8-byte dense) file is also one page.
        let mut cold_io = IoStats::new();
        bbs.charge_cold_load(&mut cold_io);
        assert_eq!(cold_io.bbs_pages_read, 1);
        assert_eq!(cold_io.bbs_passes, 1);
    }

    #[test]
    fn insert_write_charging_accumulates() {
        let hasher: Arc<dyn ItemHasher> = Arc::new(ModuloHasher);
        let mut bbs = Bbs::with_page_size(1600, Arc::clone(&hasher), 4096);
        let mut io = IoStats::new();
        // Each insert appends 200 bytes; the 21st crosses the 4096 boundary.
        for i in 0..20 {
            bbs.insert(&Transaction::new(i, set(&[1])), &mut io);
        }
        assert_eq!(io.bbs_pages_written, 0);
        bbs.insert(&Transaction::new(20, set(&[1])), &mut io);
        assert_eq!(io.bbs_pages_written, 1);
    }
}
