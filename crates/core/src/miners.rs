//! The four filter-and-refine mining algorithms of §3.3:
//! SFS, SFP, DFS and DFP, behind the common [`FrequentPatternMiner`] trait.

use crate::adaptive::{adaptive_filter, slices_for_budget};
use crate::bbs::Bbs;
use crate::filter::{run_filter_threaded, FilterKind};
use crate::refine::{probe_candidates, sequential_scan};
use bbs_hash::ItemHasher;
use bbs_tdb::{
    FrequentPatternMiner, IoStats, MemoryBudget, MineResult, SupportThreshold, Transaction,
    TransactionDb,
};
use std::sync::Arc;

/// Which refinement mechanism to use (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineKind {
    /// Verify candidates by (chunked) full database scans.
    SequentialScan,
    /// Verify candidates by fetching only their BBS-nominated rows.  The
    /// memory-resident runs integrate this with filtering (§3.3's SFP/DFP).
    Probe,
}

/// One of the paper's four mining algorithms, selected by its filter and
/// refinement mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Single filter + sequential scan.
    Sfs,
    /// Single filter + integrated probe.
    Sfp,
    /// Dual filter + sequential scan.
    Dfs,
    /// Dual filter + integrated probe (the paper's overall winner).
    Dfp,
}

impl Scheme {
    /// All four schemes, in the paper's order.
    pub const ALL: [Scheme; 4] = [Scheme::Sfs, Scheme::Sfp, Scheme::Dfs, Scheme::Dfp];

    /// The scheme's filter mechanism.
    pub fn filter(self) -> FilterKind {
        match self {
            Scheme::Sfs | Scheme::Sfp => FilterKind::Single,
            Scheme::Dfs | Scheme::Dfp => FilterKind::Dual,
        }
    }

    /// The scheme's refinement mechanism.
    pub fn refine(self) -> RefineKind {
        match self {
            Scheme::Sfs | Scheme::Dfs => RefineKind::SequentialScan,
            Scheme::Sfp | Scheme::Dfp => RefineKind::Probe,
        }
    }

    /// The paper's name for the scheme.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Sfs => "SFS",
            Scheme::Sfp => "SFP",
            Scheme::Dfs => "DFS",
            Scheme::Dfp => "DFP",
        }
    }

    /// Stable single-byte identifier for wire protocols and file formats.
    pub fn id(self) -> u8 {
        match self {
            Scheme::Sfs => 0,
            Scheme::Sfp => 1,
            Scheme::Dfs => 2,
            Scheme::Dfp => 3,
        }
    }

    /// Inverse of [`Scheme::id`]; `None` for unknown identifiers.
    pub fn from_id(id: u8) -> Option<Scheme> {
        Scheme::ALL.into_iter().find(|s| s.id() == id)
    }
}

impl std::str::FromStr for Scheme {
    type Err = String;

    /// Parses a scheme by its paper name, case-insensitively
    /// (`sfs`/`SFP`/`dfs`/`DFP`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scheme::ALL
            .into_iter()
            .find(|sc| sc.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown scheme `{s}` (expected SFS, SFP, DFS, or DFP)"))
    }
}

/// A BBS-backed frequent-pattern miner.
///
/// The miner owns its index.  Build it once with [`BbsMiner::build`]
/// (charging construction I/O) and mine as many times as needed — the index
/// is persistent, and new transactions can be appended incrementally with
/// [`BbsMiner::append`] (the dynamic-database workflow of §3.4 / Fig. 12).
pub struct BbsMiner {
    scheme: Scheme,
    bbs: Bbs,
    budget: MemoryBudget,
    threads: usize,
    /// I/O spent building/maintaining the index, reported separately from
    /// per-mine I/O.
    maintenance_io: IoStats,
}

impl BbsMiner {
    /// Builds the index over `db` with `width`-bit signatures.
    pub fn build(
        scheme: Scheme,
        db: &TransactionDb,
        width: usize,
        hasher: Arc<dyn ItemHasher>,
    ) -> Self {
        let mut io = IoStats::new();
        let bbs = Bbs::build(width, hasher, db, &mut io);
        BbsMiner {
            scheme,
            bbs,
            budget: MemoryBudget::unlimited(),
            threads: 1,
            maintenance_io: io,
        }
    }

    /// Wraps an existing index.
    pub fn with_index(scheme: Scheme, bbs: Bbs) -> Self {
        BbsMiner {
            scheme,
            bbs,
            budget: MemoryBudget::unlimited(),
            threads: 1,
            maintenance_io: IoStats::new(),
        }
    }

    /// Sets the memory budget (enables the adaptive three-phase filter when
    /// the index outgrows it, and chunks sequential-scan refinement).
    pub fn with_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Runs the filtering phase on `threads` worker threads (memory-resident
    /// runs only; the adaptive pipeline stays single-threaded).  Results are
    /// identical to the single-threaded engine's.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The scheme this miner runs.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Read access to the index.
    pub fn index(&self) -> &Bbs {
        &self.bbs
    }

    /// Appends one transaction to the index (the caller appends the same
    /// transaction to its database).  This is the *entire* maintenance cost
    /// of a dynamic database — no reconstruction, unlike an FP-tree.
    pub fn append(&mut self, txn: &Transaction) {
        let mut io = IoStats::new();
        self.bbs.insert(txn, &mut io);
        self.maintenance_io.merge(&io);
    }

    /// Cumulative index build + maintenance I/O.
    pub fn maintenance_io(&self) -> IoStats {
        self.maintenance_io
    }

    fn mine_inner(&mut self, db: &TransactionDb, tau: u64) -> MineResult {
        assert_eq!(
            self.bbs.rows(),
            db.len(),
            "index rows must correspond 1:1 to database rows"
        );
        let kind = self.scheme.filter();
        let needs_fold = slices_for_budget(&self.bbs, self.budget).is_some();

        let (mut filter_out, integrated) = if needs_fold {
            // Memory-constrained: two-phase filtering regardless of scheme;
            // probing happens afterwards against the surviving candidates.
            // (adaptive_filter charges its own two BBS passes.)
            (adaptive_filter(&self.bbs, kind, tau, self.budget), false)
        } else {
            match self.scheme.refine() {
                RefineKind::Probe => (
                    run_filter_threaded(&self.bbs, kind, Some(db), tau, self.threads),
                    true,
                ),
                RefineKind::SequentialScan => (
                    run_filter_threaded(&self.bbs, kind, None, tau, self.threads),
                    false,
                ),
            }
        };
        if !needs_fold {
            // Memory-resident run: one cold sequential load of the index.
            self.bbs.charge_cold_load(&mut filter_out.stats.io);
        }

        let mut result = MineResult::default();
        result.stats.candidates = filter_out.stats.candidates;
        result.stats.false_drops = filter_out.stats.false_drops;
        result.stats.certified = filter_out.stats.certified;
        result.stats.bbs_counts = filter_out.stats.bbs_counts;
        result.stats.io.merge(&filter_out.stats.io);

        result.patterns.extend_from(&filter_out.frequent);
        for (items, count) in filter_out.approx.iter() {
            result.patterns.insert(items.clone(), count);
            result.approx_supports.insert(items.clone());
        }

        if !integrated && !filter_out.uncertain.is_empty() {
            let refine_out = match self.scheme.refine() {
                RefineKind::SequentialScan => {
                    sequential_scan(db, &filter_out.uncertain, tau, self.budget)
                }
                RefineKind::Probe => probe_candidates(db, &self.bbs, &filter_out.uncertain, tau),
            };
            result.stats.false_drops += refine_out.false_drops;
            result.stats.io.merge(&refine_out.io);
            result.patterns.extend_from(&refine_out.confirmed);
        }
        result
    }
}

impl FrequentPatternMiner for BbsMiner {
    fn name(&self) -> &str {
        self.scheme.name()
    }

    fn mine(&mut self, db: &TransactionDb, min_support: SupportThreshold) -> MineResult {
        let tau = min_support.resolve(db.len());
        self.mine_inner(db, tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_hash::{Md5BloomHasher, ModuloHasher};
    use bbs_tdb::{Itemset, NaiveMiner, PatternSet};

    fn set(vals: &[u32]) -> Itemset {
        Itemset::from_values(vals)
    }

    fn paper_db() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            Transaction::new(100, set(&[0, 1, 2, 3, 4, 5, 14, 15])),
            Transaction::new(200, set(&[1, 2, 3, 5, 6, 7])),
            Transaction::new(300, set(&[1, 5, 14, 15])),
            Transaction::new(400, set(&[0, 1, 2, 7])),
            Transaction::new(500, set(&[1, 2, 5, 6, 11, 15])),
        ])
    }

    /// Compares a result against the exact oracle: identical pattern sets;
    /// identical supports except for certified-approximate patterns, whose
    /// reported support must upper-bound the truth.
    fn assert_matches_oracle(result: &MineResult, oracle: &PatternSet) {
        assert_eq!(
            result.patterns.len(),
            oracle.len(),
            "pattern sets differ in size: got {:?}, want {:?}",
            result.patterns,
            oracle
        );
        for (items, support) in result.patterns.iter() {
            let truth = oracle
                .support(items)
                .unwrap_or_else(|| panic!("spurious pattern {items:?}"));
            if result.approx_supports.contains(items) {
                assert!(support >= truth, "{items:?}: approx {support} < {truth}");
            } else {
                assert_eq!(support, truth, "{items:?}");
            }
        }
    }

    #[test]
    fn all_four_schemes_agree_with_oracle_on_paper_db() {
        let db = paper_db();
        let tau = SupportThreshold::Count(3);
        let oracle = NaiveMiner::new().mine(&db, tau).patterns;
        for scheme in Scheme::ALL {
            let mut miner = BbsMiner::build(scheme, &db, 8, Arc::new(ModuloHasher));
            let result = miner.mine(&db, tau);
            assert_matches_oracle(&result, &oracle);
        }
    }

    #[test]
    fn schemes_agree_with_md5_hashing() {
        let db = paper_db();
        let tau = SupportThreshold::Count(2);
        let oracle = NaiveMiner::new().mine(&db, tau).patterns;
        for scheme in Scheme::ALL {
            let mut miner = BbsMiner::build(scheme, &db, 64, Arc::new(Md5BloomHasher::new(4)));
            let result = miner.mine(&db, tau);
            assert_matches_oracle(&result, &oracle);
        }
    }

    #[test]
    fn adaptive_budget_path_agrees() {
        let db = paper_db();
        let tau = SupportThreshold::Count(3);
        let oracle = NaiveMiner::new().mine(&db, tau).patterns;
        for scheme in Scheme::ALL {
            // 8 slices × 1 byte = 8 dense bytes; a 4-byte budget forces the fold.
            let mut miner = BbsMiner::build(scheme, &db, 8, Arc::new(ModuloHasher))
                .with_budget(MemoryBudget::bytes(4));
            let result = miner.mine(&db, tau);
            assert_matches_oracle(&result, &oracle);
            assert_eq!(result.stats.io.bbs_passes, 2, "{}", scheme.name());
        }
    }

    #[test]
    fn incremental_append_then_mine() {
        let db = paper_db();
        let tau = SupportThreshold::Count(3);
        // Build over the first 3 transactions, then append the rest.
        let mut partial = TransactionDb::new();
        for t in &db.transactions()[..3] {
            partial.push(t.clone());
        }
        let mut miner = BbsMiner::build(Scheme::Dfp, &partial, 8, Arc::new(ModuloHasher));
        let mut full = partial.clone();
        for t in &db.transactions()[3..] {
            miner.append(t);
            full.push(t.clone());
        }
        let result = miner.mine(&full, tau);
        let oracle = NaiveMiner::new().mine(&db, tau).patterns;
        assert_matches_oracle(&result, &oracle);
    }

    #[test]
    fn scheme_metadata() {
        assert_eq!(Scheme::Dfp.name(), "DFP");
        assert_eq!(Scheme::Dfp.filter(), FilterKind::Dual);
        assert_eq!(Scheme::Dfp.refine(), RefineKind::Probe);
        assert_eq!(Scheme::Sfs.filter(), FilterKind::Single);
        assert_eq!(Scheme::Sfs.refine(), RefineKind::SequentialScan);
    }

    #[test]
    fn probe_schemes_have_no_more_false_drops_than_scan_schemes() {
        let db = paper_db();
        let tau = SupportThreshold::Count(3);
        let fd = |scheme| {
            BbsMiner::build(scheme, &db, 8, Arc::new(ModuloHasher))
                .mine(&db, tau)
                .stats
                .false_drops
        };
        assert!(fd(Scheme::Sfp) <= fd(Scheme::Sfs));
        assert!(fd(Scheme::Dfp) <= fd(Scheme::Dfs));
    }

    #[test]
    fn dfp_probes_less_than_sfp() {
        let db = paper_db();
        let tau = SupportThreshold::Count(3);
        let probes = |scheme| {
            BbsMiner::build(scheme, &db, 8, Arc::new(ModuloHasher))
                .mine(&db, tau)
                .stats
                .io
                .db_probes
        };
        assert!(probes(Scheme::Dfp) < probes(Scheme::Sfp));
    }

    #[test]
    #[should_panic(expected = "1:1")]
    fn mismatched_index_panics() {
        let db = paper_db();
        let small = TransactionDb::from_itemsets(vec![set(&[1])]);
        let mut miner = BbsMiner::build(Scheme::Dfp, &small, 8, Arc::new(ModuloHasher));
        miner.mine(&db, SupportThreshold::Count(1));
    }
}
