//! The filtering phase: SingleFilter, DualFilter and CheckCount (§3.1).
//!
//! One recursive engine implements all four of the paper's algorithms:
//!
//! * **SingleFilter** (Fig. 2) — depth-first enumeration; a candidate is any
//!   itemset whose `CountItemSet` estimate reaches the threshold.
//! * **DualFilter** (Fig. 4) — additionally consults [`check_count`]
//!   (Fig. 3), which uses the exact 1-itemset counts the index maintains to
//!   certify candidates through Lemma 5 and Corollary 1.
//! * **Integrated probing** (§3.3, SFP/DFP) — when a database handle is
//!   supplied, every still-uncertain candidate is verified against the
//!   database *the moment it is generated*, so false drops never trigger
//!   chains of further false drops.

use crate::bbs::Bbs;
use bbs_bitslice::BitVec;
use bbs_tdb::{BufferPool, IoStats, ItemId, Itemset, MineStats, PatternSet, TransactionDb};
use std::collections::HashMap;
use std::io;

/// Which filtering algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterKind {
    /// Fig. 2: estimates only.
    Single,
    /// Fig. 4: estimates + exact 1-itemset counts + CheckCount certainty.
    Dual,
}

/// The certainty flag of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flag {
    /// `flag = -1`: certainly not frequent.
    Infrequent,
    /// `flag = 0`: frequent according to the estimate, validity uncertain.
    Uncertain,
    /// `flag = 1`: certainly frequent, count is *actual*.
    CertainExact,
    /// `flag = 2`: certainly frequent, count is an estimate (lower bound
    /// reached the threshold via Lemma 5).
    CertainEstimated,
}

/// Per-node state threaded through the recursion: the itemset's estimate,
/// its best-known count, and the certainty flag describing that count.
#[derive(Debug, Clone, Copy)]
struct NodeState {
    est: u64,
    count: u64,
    flag: Flag,
}

/// Result of a filtering run.
#[derive(Debug, Default)]
pub struct FilterOutput {
    /// Patterns certain to be frequent with exact counts
    /// (DualFilter flag 1, or any pattern verified by an integrated probe).
    pub frequent: PatternSet,
    /// Patterns certain to be frequent whose reported count is the BBS
    /// estimate (DualFilter flag 2).  The estimate is an upper bound on the
    /// actual support, and Lemma 5's lower bound reached the threshold.
    pub approx: PatternSet,
    /// Candidates that still need refinement: `(itemset, estimated count)`.
    /// Empty for the integrated-probe runs.
    pub uncertain: Vec<(Itemset, u64)>,
    /// Filter-phase statistics (BBS counts, candidates, certified patterns,
    /// probe I/O for integrated runs, false drops discovered so far).
    pub stats: MineStats,
}

impl FilterOutput {
    /// Total candidates that are certainly frequent.
    pub fn certain_len(&self) -> usize {
        self.frequent.len() + self.approx.len()
    }
}

/// `CheckCount` (Fig. 3), expressed over the node states.
///
/// `item` is the paper's `I1 = {i}`; `parent` describes `I2` (its flag and
/// count) together with its cached estimate `parent_est`; `union_est` is
/// `estCount(I1 ∪ I2)`; `act1`/`est1` are the exact and estimated supports
/// of the single item; `tau` the threshold.
///
/// Returns the flag and count for `I1 ∪ I2`.
fn check_count(
    parent_items_is_empty: bool,
    parent: NodeState,
    act1: u64,
    est1: u64,
    union_est: u64,
    tau: u64,
) -> (Flag, u64) {
    if parent_items_is_empty {
        // Lines 1–3: a 1-itemset's actual count is maintained directly.
        return if act1 < tau {
            (Flag::Infrequent, act1)
        } else {
            (Flag::CertainExact, act1)
        };
    }
    if parent.flag == Flag::CertainExact {
        // Lines 5–12: parent count is actual.
        let act2 = parent.count;
        let est2 = parent.est;
        if est1 == act1 && act2 == est2 {
            // Corollary 1: both operands exact ⇒ union exact.
            return (Flag::CertainExact, union_est);
        }
        if est1 == act1 && union_est.saturating_sub(est2 - act2) >= tau {
            // Lemma 5 lower bound through I1's exactness.
            return (Flag::CertainEstimated, union_est);
        }
        if est2 == act2 && union_est.saturating_sub(est1 - act1) >= tau {
            // Lemma 5 lower bound through I2's exactness.
            return (Flag::CertainEstimated, union_est);
        }
    }
    (Flag::Uncertain, union_est)
}

/// A single filtering run.  See [`run_filter`].
struct FilterRun<'a> {
    bbs: &'a Bbs,
    db: Option<&'a TransactionDb>,
    kind: FilterKind,
    tau: u64,
    /// AND-result buffers, one per recursion depth.
    levels: Vec<BitVec>,
    /// Estimated singleton supports, filled during level-1 enumeration.
    est_singleton: HashMap<ItemId, u64>,
    out: FilterOutput,
    /// Scratch buffer of row indices for probing.
    probe_rows: Vec<usize>,
    /// Buffer pool for the integrated probe: pages are charged on first
    /// touch only, modelling a run whose working set stays cached.
    pool: BufferPool,
}

/// Runs a filtering pass over `bbs`.
///
/// * `kind` selects SingleFilter or DualFilter.
/// * `db: Some(..)` selects the integrated probe (§3.3 SFP/DFP): every
///   uncertain candidate is verified immediately and its actual count feeds
///   the recursion; `FilterOutput::uncertain` comes back empty.
/// * `db: None` is the pure two-phase filter (SFS/DFS before refinement).
///
/// `tau` is the absolute support threshold.
pub fn run_filter(
    bbs: &Bbs,
    kind: FilterKind,
    db: Option<&TransactionDb>,
    tau: u64,
) -> FilterOutput {
    if let Some(db) = db {
        assert_eq!(
            db.len(),
            bbs.rows(),
            "BBS rows must correspond 1:1 to database rows"
        );
    }
    let mut run = FilterRun {
        bbs,
        db,
        kind,
        tau,
        levels: vec![bbs.all_rows_vector()],
        est_singleton: HashMap::new(),
        out: FilterOutput::default(),
        probe_rows: Vec::new(),
        pool: BufferPool::new(),
    };
    let vocab = bbs.vocabulary();
    // Precompute every singleton estimate up front: the recursion consults
    // est({i}) for items it has not yet reached in its own level-1 loop
    // (CheckCount at depth ≥ 1 needs est(I1) for the item being added).
    for &item in &vocab {
        let mut io = IoStats::new();
        let est = run.bbs.est_count_extend(&run.levels[0], item, &mut io);
        run.out.stats.io.merge(&io);
        run.out.stats.bbs_counts += 1;
        run.est_singleton.insert(item, est);
    }
    // Anti-monotonicity (Lemma 2 applied per item): est({i} ∪ X) ≤ est({i}),
    // so an item whose singleton estimate is already below τ can never
    // appear in a candidate.  Restricting the enumeration alphabet to the
    // "live" items cuts every level's inner loop from |V| to the frequent
    // vocabulary — the filter-side analogue of Apriori's L1 restriction.
    let live: Vec<ItemId> = vocab
        .iter()
        .copied()
        .filter(|item| run.est_singleton[item] >= tau)
        .collect();
    // The root: the empty itemset, whose count |D| is trivially exact.
    let root = NodeState {
        est: bbs.rows() as u64,
        count: bbs.rows() as u64,
        flag: Flag::CertainExact,
    };
    run.recurse(&live, 0, &Itemset::empty(), 0, root);
    run.out
}

impl FilterRun<'_> {
    fn recurse(
        &mut self,
        items: &[ItemId],
        start: usize,
        itemset: &Itemset,
        depth: usize,
        state: NodeState,
    ) {
        for idx in start..items.len() {
            self.visit(items, idx, itemset, depth, state);
        }
    }

    /// Processes one extension `itemset ∪ {items[idx]}` (filter test,
    /// CheckCount / probe, and recursion into its subtree).
    fn visit(
        &mut self,
        items: &[ItemId],
        idx: usize,
        itemset: &Itemset,
        depth: usize,
        state: NodeState,
    ) {
        {
            let item = items[idx];
            // CountItemSet({i} ∪ itemset) via the incremental AND.  Depth 0
            // reuses the precomputed singleton estimates.
            let union_est = if depth == 0 {
                *self
                    .est_singleton
                    .get(&item)
                    .expect("precomputed in run_filter")
            } else {
                let mut io = IoStats::new();
                let e = self.bbs.est_count_extend(&self.levels[depth], item, &mut io);
                self.out.stats.io.merge(&io);
                self.out.stats.bbs_counts += 1;
                e
            };
            if union_est < self.tau {
                return; // rejected outright by the filter
            }
            self.out.stats.candidates += 1;
            let candidate = itemset.with_item(item);

            let (flag, count) = match self.kind {
                FilterKind::Single => (Flag::Uncertain, union_est),
                FilterKind::Dual => {
                    let act1 = self.bbs.actual_singleton_count(item);
                    let est1 = *self
                        .est_singleton
                        .get(&item)
                        .expect("level-1 pass caches every singleton estimate");
                    check_count(itemset.is_empty(), state, act1, est1, union_est, self.tau)
                }
            };

            match flag {
                Flag::Infrequent => {
                    // A filter-time false drop, discovered for free.
                    self.out.stats.false_drops += 1;
                }
                Flag::CertainExact => {
                    self.out.stats.certified += 1;
                    self.out.frequent.insert(candidate.clone(), count);
                    self.descend(items, idx + 1, &candidate, depth, NodeState {
                        est: union_est,
                        count,
                        flag,
                    });
                }
                Flag::CertainEstimated => {
                    self.out.stats.certified += 1;
                    self.out.approx.insert(candidate.clone(), count);
                    self.descend(items, idx + 1, &candidate, depth, NodeState {
                        est: union_est,
                        count,
                        flag,
                    });
                }
                Flag::Uncertain => {
                    if self.db.is_some() {
                        // Integrated probe: resolve immediately.
                        let actual = self.probe_candidate(&candidate, item, depth);
                        if actual >= self.tau {
                            self.out.frequent.insert(candidate.clone(), actual);
                            self.descend(items, idx + 1, &candidate, depth, NodeState {
                                est: union_est,
                                count: actual,
                                flag: Flag::CertainExact,
                            });
                        } else {
                            self.out.stats.false_drops += 1;
                            // No recursion: the chain of false drops is cut.
                        }
                    } else {
                        self.out.uncertain.push((candidate.clone(), union_est));
                        self.descend(items, idx + 1, &candidate, depth, NodeState {
                            est: union_est,
                            count: union_est,
                            flag,
                        });
                    }
                }
            }
        }
    }

    /// Materialises the child AND-result into `levels[depth + 1]` and
    /// recurses.
    fn descend(
        &mut self,
        items: &[ItemId],
        start: usize,
        candidate: &Itemset,
        depth: usize,
        state: NodeState,
    ) {
        if start >= items.len() {
            return;
        }
        self.materialize_child(candidate, depth);
        self.recurse(items, start, candidate, depth + 1, state);
    }

    /// Writes the AND-result of `candidate` (parent at `depth` extended by
    /// its last item) into the `depth + 1` buffer.
    fn materialize_child(&mut self, candidate: &Itemset, depth: usize) {
        if self.levels.len() <= depth + 1 {
            self.levels.push(BitVec::new());
        }
        let last = *candidate
            .items()
            .last()
            .expect("candidate itemsets are non-empty");
        let (parents, children) = self.levels.split_at_mut(depth + 1);
        self.bbs
            .extend_result(&parents[depth], last, &mut children[0]);
    }

    /// Probes the database for the candidate's actual support: the child
    /// AND-result names the candidate rows; fetch and verify each.
    fn probe_candidate(&mut self, candidate: &Itemset, item: ItemId, depth: usize) -> u64 {
        let db = self.db.expect("probe requires a database handle");
        // Materialise the candidate rows (reuses the child-level buffer,
        // which descend() will overwrite identically if we recurse).
        if self.levels.len() <= depth + 1 {
            self.levels.push(BitVec::new());
        }
        let (parents, children) = self.levels.split_at_mut(depth + 1);
        self.bbs.extend_result(&parents[depth], item, &mut children[0]);

        self.probe_rows.clear();
        self.probe_rows.extend(children[0].iter_ones());
        let mut io = IoStats::new();
        let txns = db.probe_cached(&self.probe_rows, &mut self.pool, &mut io);
        self.out.stats.io.merge(&io);
        txns.iter()
            .filter(|t| candidate.is_subset_of(&t.items))
            .count() as u64
    }
}


/// Multi-threaded variant of [`run_filter`]: the top-level live items are
/// dealt round-robin to `threads` workers, each of which enumerates its
/// subtrees independently (a top-level item's subtree never touches another
/// top-level item's, so the partition is exact, not heuristic).
///
/// Results are identical to the serial engine's — same pattern buckets,
/// same candidate/false-drop/certified counts — except that `uncertain`
/// ordering differs and probe page charges are per-worker (each worker has
/// its own buffer pool, so shared pages may be charged up to `threads`
/// times).
pub fn run_filter_threaded(
    bbs: &Bbs,
    kind: FilterKind,
    db: Option<&TransactionDb>,
    tau: u64,
    threads: usize,
) -> FilterOutput {
    if threads <= 1 {
        return run_filter(bbs, kind, db, tau);
    }
    if let Some(db) = db {
        assert_eq!(
            db.len(),
            bbs.rows(),
            "BBS rows must correspond 1:1 to database rows"
        );
    }

    // Shared preparation: singleton estimates and the live alphabet.
    let all_rows = bbs.all_rows_vector();
    let vocab = bbs.vocabulary();
    let mut est_singleton = HashMap::with_capacity(vocab.len());
    let mut prep_stats = MineStats::default();
    for &item in &vocab {
        let mut io = IoStats::new();
        let est = bbs.est_count_extend(&all_rows, item, &mut io);
        prep_stats.io.merge(&io);
        prep_stats.bbs_counts += 1;
        est_singleton.insert(item, est);
    }
    let live: Vec<ItemId> = vocab
        .iter()
        .copied()
        .filter(|item| est_singleton[item] >= tau)
        .collect();
    let root = NodeState {
        est: bbs.rows() as u64,
        count: bbs.rows() as u64,
        flag: Flag::CertainExact,
    };

    let workers = threads.min(live.len().max(1));
    let outputs: Vec<FilterOutput> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for t in 0..workers {
            let live = &live;
            let est_singleton = &est_singleton;
            handles.push(scope.spawn(move || {
                let mut run = FilterRun {
                    bbs,
                    db,
                    kind,
                    tau,
                    levels: vec![bbs.all_rows_vector()],
                    est_singleton: est_singleton.clone(),
                    out: FilterOutput::default(),
                    probe_rows: Vec::new(),
                    pool: BufferPool::new(),
                };
                // Round-robin deal balances the skew of early (deep) vs
                // late (shallow) subtrees.
                let empty = Itemset::empty();
                let mut idx = t;
                while idx < live.len() {
                    run.visit(live, idx, &empty, 0, root);
                    idx += workers;
                }
                run.out
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("filter worker panicked"))
            .collect()
    });

    let mut merged = FilterOutput {
        stats: prep_stats,
        ..FilterOutput::default()
    };
    for out in outputs {
        merged.frequent.extend_from(&out.frequent);
        merged.approx.extend_from(&out.approx);
        merged.uncertain.extend(out.uncertain);
        merged.stats.candidates += out.stats.candidates;
        merged.stats.false_drops += out.stats.false_drops;
        merged.stats.certified += out.stats.certified;
        merged.stats.bbs_counts += out.stats.bbs_counts;
        merged.stats.io.merge(&out.stats.io);
    }
    merged
}

/// A fallible `CountItemSet` provider for the source-generic filter engine
/// — how the enumeration of Figs. 2/4 runs against an index that is not
/// memory-resident (e.g. a disk-backed BBS counting cached pages in place).
///
/// Implementations may exploit the early-exit contract of
/// [`bbs_bitslice::ops::and_count_many`]: the returned value must be exact
/// whenever it is `≥ tau`, and may be any **upper bound** on the true
/// estimate when it is `< tau`.  BBS estimates never undercount (Lemmas
/// 1–4) and the engine only ever compares the value against `tau` — or
/// uses it in CheckCount, which it reaches only when the value is `≥ tau`
/// and therefore exact — so the accept/prune/certify decisions are
/// identical to those made with exact estimates.
pub trait CountSource {
    /// Estimated support of `itemset` (`CountItemSet`), fallible.
    fn count_itemset(&mut self, itemset: &Itemset, tau: u64) -> io::Result<u64>;

    /// Batched estimates of every sibling extension `prefix ∪ {item}` for
    /// `item` in `extensions` — the shape the enumeration generates one
    /// whole node at a time.  Each returned value obeys the same τ
    /// contract as [`CountSource::count_itemset`], and the results must be
    /// identical to counting the extensions one at a time.
    ///
    /// The default implementation is that per-item loop; batched backends
    /// (e.g. the shared-scan disk executor) override it to walk the shared
    /// slice pages once per batch and to AND the common prefix once
    /// instead of once per sibling.
    fn count_extensions(
        &mut self,
        prefix: &Itemset,
        extensions: &[ItemId],
        tau: u64,
    ) -> io::Result<Vec<u64>> {
        extensions
            .iter()
            .map(|&item| self.count_itemset(&prefix.with_item(item), tau))
            .collect()
    }
}

/// Upper bound on the number of sibling candidates submitted to
/// [`CountSource::count_extensions`] in one call.  The number of
/// extensions of a node is bounded by the live alphabet (and, in
/// aggregate per level, by the Geerts–Goethals–Van den Bussche tight
/// candidate bound), but a single batch also bounds the executor's
/// accumulator scratch, so outsized alphabets are split.
const MAX_COUNT_BATCH: usize = 256;

/// One worker's walk over the enumeration tree, counting through a
/// [`CountSource`].  Unlike [`FilterRun`] there are no per-depth AND-result
/// buffers: the source counts whole itemsets, so the recursion threads only
/// the candidate itemset and the parent's [`NodeState`].
struct SourceRun<'a, C: CountSource> {
    src: &'a mut C,
    kind: FilterKind,
    tau: u64,
    est_singleton: &'a HashMap<ItemId, u64>,
    /// Exact 1-itemset supports (DualFilter's CheckCount input).
    actuals: &'a HashMap<ItemId, u64>,
    out: FilterOutput,
}

impl<C: CountSource> SourceRun<'_, C> {
    /// Filter test + CheckCount + bucket insert for one candidate whose
    /// estimate is already known.  Returns the child [`NodeState`] when
    /// the candidate's subtree should be explored, `None` when the
    /// candidate was pruned or its false drop was discovered.
    fn admit(
        &mut self,
        item: ItemId,
        itemset: &Itemset,
        state: NodeState,
        union_est: u64,
        candidate: &Itemset,
    ) -> Option<NodeState> {
        if union_est < self.tau {
            return None; // rejected outright by the filter
        }
        self.out.stats.candidates += 1;
        let (flag, count) = match self.kind {
            FilterKind::Single => (Flag::Uncertain, union_est),
            FilterKind::Dual => {
                let act1 = self.actuals.get(&item).copied().unwrap_or(0);
                let est1 = *self
                    .est_singleton
                    .get(&item)
                    .expect("singleton estimates are precomputed");
                check_count(itemset.is_empty(), state, act1, est1, union_est, self.tau)
            }
        };
        match flag {
            Flag::Infrequent => {
                self.out.stats.false_drops += 1;
                return None;
            }
            Flag::CertainExact => {
                self.out.stats.certified += 1;
                self.out.frequent.insert(candidate.clone(), count);
            }
            Flag::CertainEstimated => {
                self.out.stats.certified += 1;
                self.out.approx.insert(candidate.clone(), count);
            }
            Flag::Uncertain => {
                self.out.uncertain.push((candidate.clone(), union_est));
            }
        }
        Some(NodeState {
            est: union_est,
            count,
            flag,
        })
    }

    /// Processes one top-level extension `itemset ∪ {items[idx]}` (the
    /// entry point the round-robin deal of the threaded runner targets;
    /// singletons reuse the precomputed estimates) and expands its subtree
    /// through the batched path.
    fn visit(
        &mut self,
        items: &[ItemId],
        idx: usize,
        itemset: &Itemset,
        state: NodeState,
    ) -> io::Result<()> {
        let item = items[idx];
        let candidate = itemset.with_item(item);
        let union_est = if itemset.is_empty() {
            *self
                .est_singleton
                .get(&item)
                .expect("singleton estimates are precomputed")
        } else {
            self.out.stats.bbs_counts += 1;
            self.src.count_itemset(&candidate, self.tau)?
        };
        if let Some(child) = self.admit(item, itemset, state, union_est, &candidate) {
            self.expand(items, idx + 1, &candidate, child)?;
        }
        Ok(())
    }

    /// Expands every extension of `itemset` by the alphabet tail
    /// `items[start..]`: all sibling candidates of the node are counted
    /// through **one** batched [`CountSource::count_extensions`] call
    /// (split at [`MAX_COUNT_BATCH`]), then each survivor's subtree is
    /// explored depth-first.  The candidates counted — and every output
    /// bucket — are identical to the one-at-a-time recursion; only the
    /// counting is grouped so a batched source can share its scan.
    fn expand(
        &mut self,
        items: &[ItemId],
        start: usize,
        itemset: &Itemset,
        state: NodeState,
    ) -> io::Result<()> {
        if start >= items.len() {
            return Ok(());
        }
        let exts = &items[start..];
        let mut ests = Vec::with_capacity(exts.len());
        for batch in exts.chunks(MAX_COUNT_BATCH) {
            self.out.stats.bbs_counts += batch.len() as u64;
            ests.extend(self.src.count_extensions(itemset, batch, self.tau)?);
        }
        for (k, &item) in exts.iter().enumerate() {
            let candidate = itemset.with_item(item);
            if let Some(child) = self.admit(item, itemset, state, ests[k], &candidate) {
                self.expand(items, start + k + 1, &candidate, child)?;
            }
        }
        Ok(())
    }
}

/// Computes the singleton estimates and live alphabet for a source run.
fn source_prep<C: CountSource>(
    src: &mut C,
    vocab: &[ItemId],
    tau: u64,
) -> io::Result<(HashMap<ItemId, u64>, Vec<ItemId>, u64)> {
    let mut est_singleton = HashMap::with_capacity(vocab.len());
    for &item in vocab {
        let est = src.count_itemset(&Itemset::empty().with_item(item), tau)?;
        est_singleton.insert(item, est);
    }
    let live: Vec<ItemId> = vocab
        .iter()
        .copied()
        .filter(|item| est_singleton[item] >= tau)
        .collect();
    Ok((est_singleton, live, vocab.len() as u64))
}

/// [`run_filter`] over an arbitrary [`CountSource`]: same SingleFilter /
/// DualFilter semantics, but every `CountItemSet` goes through `src` and
/// I/O failures propagate instead of panicking.
///
/// `vocab` is the enumeration alphabet (typically every item the index has
/// seen, sorted), `actuals` the exact 1-itemset supports, and `rows` the
/// number of indexed transactions.
pub fn run_filter_source<C: CountSource>(
    src: &mut C,
    vocab: &[ItemId],
    actuals: &HashMap<ItemId, u64>,
    rows: u64,
    kind: FilterKind,
    tau: u64,
) -> io::Result<FilterOutput> {
    let (est_singleton, live, prep_counts) = source_prep(src, vocab, tau)?;
    let root = NodeState {
        est: rows,
        count: rows,
        flag: Flag::CertainExact,
    };
    let mut run = SourceRun {
        src,
        kind,
        tau,
        est_singleton: &est_singleton,
        actuals,
        out: FilterOutput::default(),
    };
    let empty = Itemset::empty();
    for idx in 0..live.len() {
        run.visit(&live, idx, &empty, root)?;
    }
    let mut out = run.out;
    out.stats.bbs_counts += prep_counts;
    Ok(out)
}

/// Multi-threaded [`run_filter_source`]: the top-level live items are dealt
/// round-robin to `threads` workers exactly as in [`run_filter_threaded`],
/// and each worker counts through its **own** source (`make_source` is
/// called once per worker — e.g. an independent reader with its own page
/// cache over the same slice file).
///
/// Pattern buckets and candidate/false-drop/certified counts are identical
/// to the serial run; only the order of `uncertain` differs.
pub fn run_filter_source_threaded<C, F>(
    make_source: F,
    vocab: &[ItemId],
    actuals: &HashMap<ItemId, u64>,
    rows: u64,
    kind: FilterKind,
    tau: u64,
    threads: usize,
) -> io::Result<FilterOutput>
where
    C: CountSource + Send,
    F: Fn() -> io::Result<C> + Sync,
{
    let mut prep_src = make_source()?;
    let (est_singleton, live, prep_counts) = source_prep(&mut prep_src, vocab, tau)?;
    let root = NodeState {
        est: rows,
        count: rows,
        flag: Flag::CertainExact,
    };
    let empty = Itemset::empty();
    let workers = threads.max(1).min(live.len().max(1));
    if workers <= 1 {
        let mut run = SourceRun {
            src: &mut prep_src,
            kind,
            tau,
            est_singleton: &est_singleton,
            actuals,
            out: FilterOutput::default(),
        };
        for idx in 0..live.len() {
            run.visit(&live, idx, &empty, root)?;
        }
        let mut out = run.out;
        out.stats.bbs_counts += prep_counts;
        return Ok(out);
    }
    drop(prep_src);

    let outputs: Vec<io::Result<FilterOutput>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for t in 0..workers {
            let live = &live;
            let est_singleton = &est_singleton;
            let make_source = &make_source;
            let empty = &empty;
            handles.push(scope.spawn(move || -> io::Result<FilterOutput> {
                let mut src = make_source()?;
                let mut run = SourceRun {
                    src: &mut src,
                    kind,
                    tau,
                    est_singleton,
                    actuals,
                    out: FilterOutput::default(),
                };
                let mut idx = t;
                while idx < live.len() {
                    run.visit(live, idx, empty, root)?;
                    idx += workers;
                }
                Ok(run.out)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("source filter worker panicked"))
            .collect()
    });

    let mut merged = FilterOutput::default();
    merged.stats.bbs_counts = prep_counts;
    for out in outputs {
        let out = out?;
        merged.frequent.extend_from(&out.frequent);
        merged.approx.extend_from(&out.approx);
        merged.uncertain.extend(out.uncertain);
        merged.stats.candidates += out.stats.candidates;
        merged.stats.false_drops += out.stats.false_drops;
        merged.stats.certified += out.stats.certified;
        merged.stats.bbs_counts += out.stats.bbs_counts;
        merged.stats.io.merge(&out.stats.io);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_hash::ModuloHasher;
    use bbs_tdb::{Transaction, TransactionDb};
    use std::sync::Arc;

    fn set(vals: &[u32]) -> Itemset {
        Itemset::from_values(vals)
    }

    fn paper_fixture() -> (Bbs, TransactionDb) {
        let db = TransactionDb::from_transactions(vec![
            Transaction::new(100, set(&[0, 1, 2, 3, 4, 5, 14, 15])),
            Transaction::new(200, set(&[1, 2, 3, 5, 6, 7])),
            Transaction::new(300, set(&[1, 5, 14, 15])),
            Transaction::new(400, set(&[0, 1, 2, 7])),
            Transaction::new(500, set(&[1, 2, 5, 6, 11, 15])),
        ]);
        let mut io = IoStats::new();
        let bbs = Bbs::build(8, Arc::new(ModuloHasher), &db, &mut io);
        (bbs, db)
    }

    /// The true frequent patterns of the fixture at τ = 3 (hand-checked in
    /// the tdb crate's NaiveMiner tests).
    fn truth() -> Vec<Itemset> {
        vec![
            set(&[1]),
            set(&[2]),
            set(&[5]),
            set(&[15]),
            set(&[1, 2]),
            set(&[1, 5]),
            set(&[2, 5]),
            set(&[1, 15]),
            set(&[5, 15]),
            set(&[1, 2, 5]),
            set(&[1, 5, 15]),
        ]
    }

    #[test]
    fn single_filter_yields_superset_of_truth() {
        let (bbs, _) = paper_fixture();
        let out = run_filter(&bbs, FilterKind::Single, None, 3);
        assert!(out.frequent.is_empty() && out.approx.is_empty());
        let candidates: Vec<&Itemset> = out.uncertain.iter().map(|(s, _)| s).collect();
        for t in truth() {
            assert!(candidates.contains(&&t), "missing {t:?}");
        }
        // And estimates dominate the threshold.
        assert!(out.uncertain.iter().all(|&(_, e)| e >= 3));
    }

    #[test]
    fn dual_filter_partitions_candidates() {
        let (bbs, db) = paper_fixture();
        let out = run_filter(&bbs, FilterKind::Dual, None, 3);
        // Everything certain must genuinely be frequent with a correct count
        // (exact bucket) or a guaranteed-frequent upper bound (approx).
        let mut io = IoStats::new();
        for (items, count) in out.frequent.iter() {
            let act = db.count_support(items, &mut io);
            assert_eq!(count, act, "exact bucket wrong for {items:?}");
            assert!(act >= 3);
        }
        for (items, count) in out.approx.iter() {
            let act = db.count_support(items, &mut io);
            assert!(act >= 3, "approx bucket has infrequent {items:?}");
            assert!(count >= act, "estimate below actual for {items:?}");
        }
        // Union of all three buckets covers the truth.
        for t in truth() {
            let covered = out.frequent.contains(&t)
                || out.approx.contains(&t)
                || out.uncertain.iter().any(|(s, _)| s == &t);
            assert!(covered, "missing {t:?}");
        }
    }

    #[test]
    fn dual_filter_certifies_all_true_singletons() {
        let (bbs, _) = paper_fixture();
        let out = run_filter(&bbs, FilterKind::Dual, None, 3);
        for s in [set(&[1]), set(&[2]), set(&[5]), set(&[15])] {
            assert!(
                out.frequent.contains(&s),
                "singleton {s:?} should be certified exact"
            );
        }
    }

    #[test]
    fn integrated_probe_returns_exactly_the_truth() {
        let (bbs, db) = paper_fixture();
        for kind in [FilterKind::Single, FilterKind::Dual] {
            let out = run_filter(&bbs, kind, Some(&db), 3);
            assert!(out.uncertain.is_empty(), "{kind:?}");
            let mut got: Vec<Itemset> = out
                .frequent
                .iter()
                .map(|(s, _)| s.clone())
                .chain(out.approx.iter().map(|(s, _)| s.clone()))
                .collect();
            got.sort_unstable();
            let mut want = truth();
            want.sort_unstable();
            assert_eq!(got, want, "{kind:?}");
            // Exact bucket counts are actual supports.
            let mut io = IoStats::new();
            for (items, count) in out.frequent.iter() {
                assert_eq!(count, db.count_support(items, &mut io), "{items:?}");
            }
        }
    }

    #[test]
    fn probe_counts_rows_fetched() {
        let (bbs, db) = paper_fixture();
        let out = run_filter(&bbs, FilterKind::Single, Some(&db), 3);
        assert!(out.stats.io.db_probes > 0, "SFP must probe");
        let dual = run_filter(&bbs, FilterKind::Dual, Some(&db), 3);
        assert!(
            dual.stats.io.db_probes < out.stats.io.db_probes,
            "DFP ({}) should probe less than SFP ({})",
            dual.stats.io.db_probes,
            out.stats.io.db_probes
        );
    }

    #[test]
    fn dual_certification_rate_nontrivial() {
        let (bbs, db) = paper_fixture();
        let out = run_filter(&bbs, FilterKind::Dual, Some(&db), 3);
        // The paper reports 80–90 % of candidates certified without probing;
        // on this tiny fixture we just require a meaningful fraction.
        assert!(out.stats.certified > 0);
    }

    #[test]
    fn threshold_one_and_huge_threshold() {
        let (bbs, db) = paper_fixture();
        let all = run_filter(&bbs, FilterKind::Dual, Some(&db), 1);
        assert!(all.certain_len() >= 11);
        let none = run_filter(&bbs, FilterKind::Dual, Some(&db), 6);
        assert_eq!(none.certain_len(), 0);
        assert!(none.uncertain.is_empty());
    }


    #[test]
    fn threaded_filter_matches_serial() {
        let (bbs, db) = paper_fixture();
        for kind in [FilterKind::Single, FilterKind::Dual] {
            for threads in [1usize, 2, 4, 9] {
                let serial = run_filter(&bbs, kind, None, 3);
                let par = run_filter_threaded(&bbs, kind, None, 3, threads);
                assert_eq!(par.frequent, serial.frequent, "{kind:?} x{threads}");
                assert_eq!(par.approx, serial.approx, "{kind:?} x{threads}");
                let mut a: Vec<_> = par.uncertain.clone();
                let mut b: Vec<_> = serial.uncertain.clone();
                a.sort();
                b.sort();
                assert_eq!(a, b, "{kind:?} x{threads}");
                assert_eq!(par.stats.candidates, serial.stats.candidates);
                assert_eq!(par.stats.false_drops, serial.stats.false_drops);
                assert_eq!(par.stats.certified, serial.stats.certified);
            }
        }
        let _ = db;
    }

    #[test]
    fn threaded_integrated_probe_matches_serial() {
        let (bbs, db) = paper_fixture();
        for kind in [FilterKind::Single, FilterKind::Dual] {
            let serial = run_filter(&bbs, kind, Some(&db), 3);
            let par = run_filter_threaded(&bbs, kind, Some(&db), 3, 3);
            assert_eq!(par.frequent, serial.frequent, "{kind:?}");
            assert_eq!(par.approx, serial.approx, "{kind:?}");
            assert!(par.uncertain.is_empty());
            assert_eq!(par.stats.false_drops, serial.stats.false_drops);
        }
    }

    #[test]
    fn threaded_with_more_threads_than_items() {
        let (bbs, db) = paper_fixture();
        let par = run_filter_threaded(&bbs, FilterKind::Dual, Some(&db), 3, 64);
        assert_eq!(par.certain_len(), 11);
    }

    /// A [`CountSource`] over the in-memory index: counts whole itemsets,
    /// which for the incremental engine's AND chain is the same value.
    struct MemSource<'a>(&'a Bbs);

    impl CountSource for MemSource<'_> {
        fn count_itemset(&mut self, itemset: &Itemset, _tau: u64) -> io::Result<u64> {
            let mut io = IoStats::new();
            Ok(self.0.est_count(itemset, &mut io))
        }
    }

    fn fixture_actuals(bbs: &Bbs) -> HashMap<ItemId, u64> {
        bbs.vocabulary()
            .into_iter()
            .map(|i| (i, bbs.actual_singleton_count(i)))
            .collect()
    }

    #[test]
    fn source_engine_matches_memory_engine() {
        let (bbs, _) = paper_fixture();
        let vocab = bbs.vocabulary();
        let actuals = fixture_actuals(&bbs);
        for kind in [FilterKind::Single, FilterKind::Dual] {
            let mem = run_filter(&bbs, kind, None, 3);
            let mut src = MemSource(&bbs);
            let out = run_filter_source(&mut src, &vocab, &actuals, bbs.rows() as u64, kind, 3)
                .expect("source run");
            assert_eq!(out.frequent, mem.frequent, "{kind:?}");
            assert_eq!(out.approx, mem.approx, "{kind:?}");
            let mut a: Vec<_> = out.uncertain.clone();
            let mut b: Vec<_> = mem.uncertain.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{kind:?}");
            assert_eq!(out.stats.candidates, mem.stats.candidates, "{kind:?}");
            assert_eq!(out.stats.false_drops, mem.stats.false_drops, "{kind:?}");
            assert_eq!(out.stats.certified, mem.stats.certified, "{kind:?}");
        }
    }

    #[test]
    fn threaded_source_engine_matches_serial() {
        let (bbs, _) = paper_fixture();
        let vocab = bbs.vocabulary();
        let actuals = fixture_actuals(&bbs);
        for kind in [FilterKind::Single, FilterKind::Dual] {
            let mut src = MemSource(&bbs);
            let serial = run_filter_source(&mut src, &vocab, &actuals, bbs.rows() as u64, kind, 3)
                .expect("serial");
            for threads in [1usize, 2, 4, 9] {
                let par = run_filter_source_threaded(
                    || Ok(MemSource(&bbs)),
                    &vocab,
                    &actuals,
                    bbs.rows() as u64,
                    kind,
                    3,
                    threads,
                )
                .expect("threaded");
                assert_eq!(par.frequent, serial.frequent, "{kind:?} x{threads}");
                assert_eq!(par.approx, serial.approx, "{kind:?} x{threads}");
                let mut a: Vec<_> = par.uncertain.clone();
                let mut b: Vec<_> = serial.uncertain.clone();
                a.sort();
                b.sort();
                assert_eq!(a, b, "{kind:?} x{threads}");
                assert_eq!(par.stats.candidates, serial.stats.candidates);
                assert_eq!(par.stats.certified, serial.stats.certified);
            }
        }
    }

    #[test]
    fn check_count_corollary_1() {
        // Both operands exact ⇒ union exact.
        let parent = NodeState {
            est: 10,
            count: 10,
            flag: Flag::CertainExact,
        };
        let (flag, count) = check_count(false, parent, 7, 7, 6, 3);
        assert_eq!(flag, Flag::CertainExact);
        assert_eq!(count, 6);
    }

    #[test]
    fn check_count_lemma5_lower_bound() {
        // I1 exact, I2 inexact, but est(union) − slack ≥ τ ⇒ flag 2.
        let parent = NodeState {
            est: 12,
            count: 10, // actual
            flag: Flag::CertainExact,
        };
        // slack = est2 − act2 = 2; union_est = 6 ⇒ lower bound 4 ≥ τ = 3.
        let (flag, count) = check_count(false, parent, 7, 7, 6, 3);
        assert_eq!(flag, Flag::CertainEstimated);
        assert_eq!(count, 6);
        // With τ = 5 the lower bound 4 no longer suffices.
        let (flag, _) = check_count(false, parent, 7, 7, 6, 5);
        assert_eq!(flag, Flag::Uncertain);
    }

    #[test]
    fn check_count_symmetric_case() {
        // I2 exact (est == count), I1 inexact but small slack.
        let parent = NodeState {
            est: 10,
            count: 10,
            flag: Flag::CertainExact,
        };
        // est1 − act1 = 1; union_est = 5 ⇒ bound 4 ≥ τ = 4.
        let (flag, _) = check_count(false, parent, 6, 7, 5, 4);
        assert_eq!(flag, Flag::CertainEstimated);
    }

    #[test]
    fn check_count_singleton_cases() {
        let parent = NodeState {
            est: 5,
            count: 5,
            flag: Flag::CertainExact,
        };
        assert_eq!(
            check_count(true, parent, 2, 4, 4, 3),
            (Flag::Infrequent, 2)
        );
        assert_eq!(
            check_count(true, parent, 4, 4, 4, 3),
            (Flag::CertainExact, 4)
        );
    }

    #[test]
    fn check_count_uncertain_parent_stays_uncertain() {
        let parent = NodeState {
            est: 10,
            count: 10,
            flag: Flag::Uncertain,
        };
        let (flag, _) = check_count(false, parent, 7, 7, 6, 3);
        assert_eq!(flag, Flag::Uncertain);
        let parent2 = NodeState {
            est: 10,
            count: 10,
            flag: Flag::CertainEstimated,
        };
        let (flag2, _) = check_count(false, parent2, 7, 7, 6, 3);
        assert_eq!(flag2, Flag::Uncertain);
    }
}
