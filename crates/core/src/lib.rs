//! **BBS** — the Bit-Sliced Bloom-Filtered Signature File index and its
//! filter-and-refine frequent-pattern mining algorithms.
//!
//! This crate is the primary contribution of *"Efficient Indexing
//! Structures for Mining Frequent Patterns"* (Lan, Ooi & Tan, ICDE 2002):
//!
//! * [`bbs::Bbs`] — the index itself: per-transaction Bloom signatures
//!   stored slice-major, supporting incremental insertion, `CountItemSet`
//!   upper-bound support estimation, constraint slices and folding.
//! * [`filter`] — SingleFilter / DualFilter candidate generation with the
//!   CheckCount certainty logic (Lemma 5 / Corollary 1), optionally
//!   integrated with database probing.
//! * [`refine`] — SequentialScan and Probe refinement.
//! * [`adaptive`] — the three-phase memory-constrained pipeline bounding
//!   I/O at two BBS passes.
//! * [`miners`] — the four algorithms SFS, SFP, DFS, DFP behind the
//!   workspace-wide [`bbs_tdb::FrequentPatternMiner`] trait.
//! * [`adhoc`] — exact counting of arbitrary (even non-frequent) patterns,
//!   with optional constraints.
//!
//! # Quick start
//!
//! ```
//! use bbs_core::{BbsMiner, Scheme};
//! use bbs_hash::Md5BloomHasher;
//! use bbs_tdb::{FrequentPatternMiner, Itemset, SupportThreshold, TransactionDb};
//! use std::sync::Arc;
//!
//! let db = TransactionDb::from_itemsets(vec![
//!     Itemset::from_values(&[1, 2, 3]),
//!     Itemset::from_values(&[1, 2]),
//!     Itemset::from_values(&[1, 2, 4]),
//! ]);
//! let mut miner = BbsMiner::build(Scheme::Dfp, &db, 64, Arc::new(Md5BloomHasher::new(4)));
//! let result = miner.mine(&db, SupportThreshold::Count(3));
//! assert_eq!(result.patterns.support(&Itemset::from_values(&[1, 2])), Some(3));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod adhoc;
pub mod approx;
pub mod bbs;
pub mod filter;
pub mod miners;
pub mod persist;
pub mod refine;
pub mod tiered;

pub use adaptive::{adaptive_filter, slices_for_budget};
pub use adhoc::AdhocEngine;
pub use approx::{mine_approximate, ApproxPattern, ApproxResult};
pub use bbs::Bbs;
pub use filter::{
    run_filter, run_filter_source, run_filter_source_threaded, run_filter_threaded, CountSource,
    FilterKind, FilterOutput, Flag,
};
pub use miners::{BbsMiner, RefineKind, Scheme};
pub use persist::{load_from_path, save_to_path, PersistError};
pub use refine::{probe_candidates, probe_support, sequential_scan, RefineOutput};
pub use tiered::TieredBbs;
