//! Per-shard crash safety: every shard owns its own commit record, so an
//! interrupted ingest rolls each shard back to *its* committed prefix
//! independently, the surviving TID set is exactly the routed partition
//! of the committed transactions, and fsck verifies shards in parallel.

use bbs_hash::{ItemHasher, Md5BloomHasher};
use bbs_shard::{route, ShardedDeployment};
use bbs_tdb::{Itemset, Transaction};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "bbs_shard_crash_{}_{}_{}",
        std::process::id(),
        name,
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        ShardedDeployment::remove_files(&self.0).ok();
    }
}

fn hasher() -> Arc<dyn ItemHasher> {
    Arc::new(Md5BloomHasher::new(4))
}

fn txn(tid: u64) -> Transaction {
    Transaction::new(tid, Itemset::from_values(&[7, 100 + (tid % 5) as u32]))
}

/// The TIDs a shard holds, in append order.
fn shard_tids(dep: &mut ShardedDeployment, shard: usize) -> Vec<u64> {
    let mut tids = Vec::new();
    dep.shards_mut()[shard]
        .db
        .for_each(|_, t| tids.push(t.tid.0))
        .expect("scan shard");
    tids
}

#[test]
fn unflushed_tail_rolls_back_per_shard_with_exact_tid_sets() {
    const SHARDS: usize = 3;
    const COMMITTED: u64 = 90;
    const LOST: u64 = 31;
    let d = dir("rollback");
    let _g = Cleanup(d.clone());
    {
        let mut dep =
            ShardedDeployment::create(&d, SHARDS, 64, hasher(), 64).expect("create");
        for t in 0..COMMITTED {
            dep.append(&txn(t)).expect("append");
        }
        dep.flush().expect("flush");
        // A torn ingest: appended but never committed (no flush).
        for t in COMMITTED..COMMITTED + LOST {
            dep.append(&txn(t)).expect("append tail");
        }
        // Dropped without flush — every shard's commit record still
        // describes only the flushed prefix.
    }

    let mut dep = ShardedDeployment::open(&d, hasher(), 64).expect("reopen");
    assert_eq!(dep.rows(), COMMITTED, "recovery rolled back to the commit");

    // Exact TID set per shard: the residue class of the committed
    // prefix, in TID order — nothing lost, nothing duplicated, nothing
    // that crossed shards.
    for shard in 0..SHARDS {
        let want: Vec<u64> = (0..COMMITTED)
            .filter(|t| route(*t, SHARDS) == shard)
            .collect();
        assert_eq!(shard_tids(&mut dep, shard), want, "shard {shard}");
    }

    // Counting sees exactly the committed prefix.
    assert_eq!(
        dep.count(&Itemset::from_values(&[7]), None).expect("count"),
        COMMITTED
    );

    // And fsck says every shard is clean.
    let reports = ShardedDeployment::verify(&d).expect("verify");
    assert_eq!(reports.len(), SHARDS);
    for r in &reports {
        assert!(r.report.is_clean(), "shard {} dirty: {}", r.shard, r.report);
        assert_eq!(r.report.committed_rows, dep.shard_rows()[r.shard]);
    }
}

/// Shards commit independently: flushing after a partial re-ingest may
/// leave shards at different prefixes, and recovery must respect each
/// shard's own commit record rather than any global row count.
#[test]
fn shards_recover_to_independent_commit_points() {
    const SHARDS: usize = 4;
    let d = dir("independent");
    let _g = Cleanup(d.clone());
    {
        let mut dep = ShardedDeployment::create(&d, SHARDS, 64, hasher(), 64).expect("create");
        for t in 0..40u64 {
            dep.append(&txn(t)).expect("append");
        }
        dep.flush().expect("flush");
        // Append only to the shards owning residues 0 and 1, then crash.
        for t in 40..60u64 {
            if route(t, SHARDS) < 2 {
                dep.append(&txn(t)).expect("append");
            }
        }
    }
    let dep = ShardedDeployment::open(&d, hasher(), 64).expect("reopen");
    assert_eq!(dep.shard_rows(), vec![10, 10, 10, 10]);

    // Now commit an uneven state and verify it survives a clean reopen.
    {
        let mut dep = ShardedDeployment::open(&d, hasher(), 64).expect("open");
        for t in 40..60u64 {
            if route(t, SHARDS) < 2 {
                dep.append(&txn(t)).expect("append");
            }
        }
        dep.flush().expect("flush");
    }
    let dep = ShardedDeployment::open(&d, hasher(), 64).expect("reopen 2");
    assert_eq!(dep.shard_rows(), vec![15, 15, 10, 10], "uneven commits persist");
    assert_eq!(dep.rows(), 50);
}

#[test]
fn create_refuses_to_overwrite_and_open_requires_manifest() {
    let d = dir("guards");
    let _g = Cleanup(d.clone());
    ShardedDeployment::create(&d, 2, 64, hasher(), 16).expect("create");
    match ShardedDeployment::create(&d, 2, 64, hasher(), 16) {
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists),
        Ok(_) => panic!("create over an existing manifest must fail"),
    }
    assert!(ShardedDeployment::is_sharded(&d));

    let missing = dir("missing");
    assert!(!ShardedDeployment::is_sharded(&missing));
    assert!(ShardedDeployment::open(&missing, hasher(), 16).is_err());
    assert!(ShardedDeployment::verify(&missing).is_err());
}

/// A shard whose files were removed or renamed must show up as a dirty
/// report naming the failure, not abort the whole verify — `bbs fsck`
/// then prints that shard DIRTY and exits nonzero while the other
/// shards still get checked.
#[test]
fn verify_reports_a_missing_shard_dirty_instead_of_failing() {
    const SHARDS: usize = 3;
    let d = dir("missing_shard");
    let _g = Cleanup(d.clone());
    {
        let mut dep = ShardedDeployment::create(&d, SHARDS, 64, hasher(), 64).expect("create");
        for t in 0..30u64 {
            dep.append(&txn(t)).expect("append");
        }
        dep.flush().expect("flush");
    }
    // Rename shard 1's heap file and shard 2's commit record out from
    // under the deployment: the first is caught inside the per-shard
    // verify, the second used to abort the whole sharded check with an
    // `Err` before any report came back.
    std::fs::rename(d.join("shard-001.dat"), d.join("shard-001.dat.bak")).expect("rename heap");
    std::fs::rename(d.join("shard-002.commit"), d.join("shard-002.commit.bak"))
        .expect("rename commit");

    let reports = ShardedDeployment::verify(&d).expect("verify must not abort");
    assert_eq!(reports.len(), SHARDS);
    assert!(reports[0].report.is_clean(), "shard 0: {}", reports[0].report);
    let no_heap = &reports[1].report;
    assert!(!no_heap.is_clean(), "missing heap must read as dirty");
    assert!(
        no_heap.problems.iter().any(|p| p.contains("dat file")),
        "problems: {:?}",
        no_heap.problems
    );
    let no_commit = &reports[2].report;
    assert!(!no_commit.is_clean(), "missing commit must read as dirty");
    assert!(
        no_commit.problems.iter().any(|p| p.contains("verify failed")),
        "problems: {:?}",
        no_commit.problems
    );
}
