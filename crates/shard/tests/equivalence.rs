//! The sharding oracle: a sharded deployment must be *indistinguishable*
//! from the unsharded deployment holding the same transactions — exact
//! `count`/`count_many` answers bit-for-bit equal, τ'd answers obeying
//! the same τ contract against the same exact values, and `mine`
//! producing bit-for-bit the same patterns, supports and approx markers,
//! for any shard count, any TID skew, and any worker count.

use bbs_hash::{ItemHasher, Md5BloomHasher};
use bbs_shard::ShardedDeployment;
use bbs_storage::diskbbs::DiskDeployment;
use bbs_storage::mine_in_place;
use bbs_tdb::{Itemset, MineResult, SupportThreshold, Transaction};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn base(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "bbs_shard_eq_{}_{}_{}",
        std::process::id(),
        name,
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

struct Cleanup(PathBuf, PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        DiskDeployment::remove_files(&self.0).ok();
        ShardedDeployment::remove_files(&self.1).ok();
    }
}

fn hasher() -> Arc<dyn ItemHasher> {
    Arc::new(Md5BloomHasher::new(3))
}

/// TIDs are deliberately non-contiguous (`3i + i mod 2`) so the residue
/// classes are skewed across shards.
fn tid(i: usize) -> u64 {
    (3 * i + i % 2) as u64
}

/// Builds the same transactions into an unsharded deployment and an
/// N-shard deployment (same width, same hasher).
fn build_pair(
    ub: &std::path::Path,
    sb: &std::path::Path,
    rows: &[Vec<u32>],
    shards: usize,
) -> (DiskDeployment, ShardedDeployment) {
    let mut dep = DiskDeployment::open(ub, 64, hasher(), 16).expect("open unsharded");
    let mut sdep =
        ShardedDeployment::create(sb, shards, 64, hasher(), 16).expect("create sharded");
    for (i, r) in rows.iter().enumerate() {
        let txn = Transaction::new(tid(i), Itemset::from_values(r));
        dep.append(&txn).expect("append unsharded");
        sdep.append(&txn).expect("append sharded");
    }
    dep.flush().expect("flush unsharded");
    sdep.flush().expect("flush sharded");
    (dep, sdep)
}

fn rows_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..24, 0..6), 1..60)
}

fn queries_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..30, 0..4), 1..8)
}

fn canon(r: &MineResult) -> Vec<(Itemset, u64)> {
    let mut v: Vec<(Itemset, u64)> = r.patterns.iter().map(|(k, s)| (k.clone(), s)).collect();
    v.sort();
    v
}

proptest! {
    // Every case builds two real on-disk deployments; keep counts modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exact scatter-gather sums are bit-for-bit the unsharded answers;
    /// τ'd answers obey the single-deployment τ contract against those
    /// same exact values.
    #[test]
    fn counts_match_unsharded_bit_for_bit(
        rows in rows_strategy(),
        queries in queries_strategy(),
        shards in 1usize..5,
        // The vendored proptest has no `option::of`; fold "no tau" into
        // the top of the range instead.
        tau in (0u64..80).prop_map(|t| if t >= 64 { None } else { Some(t) }),
    ) {
        let (ub, sb) = (base("cnt_u"), base("cnt_s"));
        let _g = Cleanup(ub.clone(), sb.clone());
        let (dep, sdep) = build_pair(&ub, &sb, &rows, shards);
        prop_assert_eq!(sdep.rows(), rows.len() as u64);
        prop_assert_eq!(sdep.shard_rows().iter().sum::<u64>(), rows.len() as u64);

        let itemsets: Vec<Itemset> =
            queries.iter().map(|q| Itemset::from_values(q)).collect();
        let exact = dep.index.count_itemsets(&itemsets, None).expect("unsharded exact");

        // Exact path: bit-for-bit equality, batched and per-query.
        let sharded_exact = sdep.count_many(&itemsets, None).expect("sharded exact");
        prop_assert_eq!(&sharded_exact, &exact);
        for (i, q) in itemsets.iter().enumerate() {
            prop_assert_eq!(sdep.count(q, None).expect("sharded count"), exact[i]);
        }

        // τ path: ≥ τ answers are exact (hence equal to the unsharded
        // exact value); < τ answers never undercount.
        if let Some(t) = tau {
            let bounded = sdep.count_many(&itemsets, Some(t)).expect("sharded bounded");
            for (i, q) in itemsets.iter().enumerate() {
                if bounded[i] >= t {
                    prop_assert_eq!(bounded[i], exact[i], "≥τ must be exact {:?}", q);
                } else {
                    prop_assert!(bounded[i] >= exact[i], "bound undercounts {:?}", q);
                }
            }
        }
    }

    /// Sharded mining returns bit-for-bit the unsharded result: same
    /// patterns, same supports, same approx markers — across shard
    /// counts, worker counts and both filter kinds.
    #[test]
    fn mine_matches_unsharded_bit_for_bit(
        rows in rows_strategy(),
        shards in 1usize..5,
        threads in 1usize..4,
        tau in 1u64..16,
        dual in (0u8..2).prop_map(|b| b == 1),
    ) {
        let (ub, sb) = (base("mine_u"), base("mine_s"));
        let _g = Cleanup(ub.clone(), sb.clone());
        let (mut dep, mut sdep) = build_pair(&ub, &sb, &rows, shards);
        let scheme = if dual { bbs_core::Scheme::Dfs } else { bbs_core::Scheme::Sfs };
        let threshold = SupportThreshold::Count(tau);
        let (unsharded, _) =
            mine_in_place(&mut dep, scheme, threshold, threads).expect("unsharded mine");
        let (sharded, stats) =
            bbs_shard::mine_sharded(&mut sdep, scheme, threshold, threads).expect("sharded mine");
        prop_assert_eq!(canon(&sharded), canon(&unsharded));
        prop_assert_eq!(&sharded.approx_supports, &unsharded.approx_supports);
        prop_assert!(stats.readers >= shards);
    }
}

/// Deterministic cross-check over every scheme and several worker
/// counts, on a database dense enough to exercise certification,
/// approx supports and refinement.
#[test]
fn all_schemes_and_thread_counts_agree_with_unsharded() {
    let (ub, sb) = (base("schemes_u"), base("schemes_s"));
    let _g = Cleanup(ub.clone(), sb.clone());
    let rows: Vec<Vec<u32>> = (0..300u64)
        .map(|i| {
            let mut items: Vec<u32> = vec![(i % 20) as u32];
            if i % 3 == 0 {
                items.extend([50, 51]);
            }
            if i % 5 == 0 {
                items.extend([60, 61, 62]);
            }
            items
        })
        .collect();
    let (mut dep, mut sdep) = build_pair(&ub, &sb, &rows, 4);
    let threshold = SupportThreshold::Count(30);
    for scheme in [
        bbs_core::Scheme::Sfs,
        bbs_core::Scheme::Sfp,
        bbs_core::Scheme::Dfs,
        bbs_core::Scheme::Dfp,
    ] {
        let (unsharded, _) = mine_in_place(&mut dep, scheme, threshold, 1).expect("unsharded");
        for threads in [1, 2, 5] {
            let (sharded, _) =
                bbs_shard::mine_sharded(&mut sdep, scheme, threshold, threads).expect("sharded");
            assert_eq!(canon(&sharded), canon(&unsharded), "{scheme:?} threads={threads}");
            assert_eq!(
                sharded.approx_supports, unsharded.approx_supports,
                "{scheme:?} threads={threads}"
            );
        }
    }
}
