//! A [`CountSource`] that sums per-shard counts — the mining-side
//! executor one filter worker drives.
//!
//! The threaded filter deals top-level candidate subtrees round-robin to
//! workers ("shards × cores": every worker owns one reader per shard and
//! walks its subtrees against *all* shards).  Each `CountItemSet` visits
//! the shards serially with the scaled per-shard budget of
//! [`crate::gather`], plus one optimisation only the serial walk can
//! make: a **cross-shard running-total exit**.  After shard `i`, if the
//! accumulated count plus the total rows of every unvisited shard cannot
//! reach τ, the remaining shards are skipped entirely and that sum is
//! returned — an upper bound below τ, exactly what the contract allows.
//!
//! Answers at or above τ are made exact by re-querying possibly-inexact
//! shards (skipping any whose need evaporated as refinement deflated the
//! total), so the values the filter engine records are bit-for-bit the
//! unsharded estimates and the mined patterns are identical.

use crate::gather::scaled_tau;
use crate::handle::ShardCounter;
use bbs_core::CountSource;
use bbs_tdb::{ItemId, Itemset};
use std::io;

/// Per-worker cross-shard counter: one [`ShardCounter`] per shard plus
/// each shard's committed row count (the running-total bound).
pub struct ShardedCounter<C: ShardCounter> {
    shards: Vec<C>,
    rows: Vec<u64>,
    total_rows: u64,
}

impl<C: ShardCounter> ShardedCounter<C> {
    /// Builds the counter from per-shard readers and row counts
    /// (`shards[i]` covers `rows[i]` committed rows).
    pub fn new(shards: Vec<C>, rows: Vec<u64>) -> Self {
        assert_eq!(shards.len(), rows.len());
        let total_rows = rows.iter().sum();
        ShardedCounter {
            shards,
            rows,
            total_rows,
        }
    }

    /// The per-shard readers, in shard order (stats reporting walks
    /// these when the counter is retired).
    pub fn readers(&self) -> &[C] {
        &self.shards
    }
}

impl<C: ShardCounter> CountSource for ShardedCounter<C> {
    fn count_itemset(&mut self, itemset: &Itemset, tau: u64) -> io::Result<u64> {
        let n = self.shards.len();
        let t_i = scaled_tau(tau, n);
        let mut per = Vec::with_capacity(n);
        let mut acc = 0u64;
        let mut after = self.total_rows;
        for (shard, &rows) in self.shards.iter_mut().zip(&self.rows) {
            after -= rows;
            let r = shard.count(itemset, Some(t_i))?;
            per.push(r);
            acc += r;
            // Cross-shard running total: even if every remaining row
            // matched, τ is out of reach — prune without touching them.
            if acc.saturating_add(after) < tau {
                return Ok(acc + after);
            }
        }
        if acc < tau {
            return Ok(acc);
        }
        // The total crossed τ: patch every possibly-inexact addend (below
        // its budget but nonzero) with the exact shard count.  Refinement
        // only deflates, so once the total drops below τ the remaining
        // bounds can stay — the answer is then a < τ upper bound.
        for (shard, &r) in self.shards.iter_mut().zip(&per) {
            if acc < tau {
                break;
            }
            if r > 0 && r < t_i {
                let exact = shard.count(itemset, None)?;
                acc = acc - r + exact;
            }
        }
        Ok(acc)
    }

    fn count_extensions(
        &mut self,
        prefix: &Itemset,
        extensions: &[ItemId],
        tau: u64,
    ) -> io::Result<Vec<u64>> {
        let n = self.shards.len();
        let t_i = scaled_tau(tau, n);
        let mut per: Vec<Vec<u64>> = Vec::with_capacity(n);
        let mut accs = vec![0u64; extensions.len()];
        let mut after = self.total_rows;
        for (shard, &rows) in self.shards.iter_mut().zip(&self.rows) {
            after -= rows;
            let r = shard.count_extensions(prefix, extensions, Some(t_i))?;
            for (acc, &v) in accs.iter_mut().zip(&r) {
                *acc += v;
            }
            per.push(r);
            // The batch-wide running total: stop visiting shards once
            // *every* sibling is out of reach of τ.
            if accs.iter().all(|&a| a.saturating_add(after) < tau) {
                for acc in accs.iter_mut() {
                    *acc += after;
                }
                return Ok(accs);
            }
        }
        for (shard, pi) in self.shards.iter_mut().zip(per.iter_mut()) {
            let need: Vec<usize> = (0..extensions.len())
                .filter(|&e| accs[e] >= tau && pi[e] > 0 && pi[e] < t_i)
                .collect();
            if need.is_empty() {
                continue;
            }
            let subset: Vec<ItemId> = need.iter().map(|&e| extensions[e]).collect();
            let exact = shard.count_extensions(prefix, &subset, None)?;
            for (k, &e) in need.iter().enumerate() {
                accs[e] = accs[e] - pi[e] + exact[k];
                pi[e] = exact[k];
            }
        }
        Ok(accs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory scripted shard: a fixed transaction list, with exact
    /// subset counting; the bounded path inflates the answer to the
    /// largest value the τ contract tolerates (`min(rows, …)` capped just
    /// under the budget) whenever the exact count is below the budget —
    /// adversarially maximising the gather layer's refinement burden.
    struct AdversarialShard {
        rows: Vec<Vec<u32>>,
    }

    impl AdversarialShard {
        fn exact(&self, itemset: &Itemset) -> u64 {
            self.rows
                .iter()
                .filter(|r| itemset.items().iter().all(|i| r.contains(&i.0)))
                .count() as u64
        }
    }

    impl ShardCounter for AdversarialShard {
        fn count(&mut self, itemset: &Itemset, tau: Option<u64>) -> io::Result<u64> {
            let exact = self.exact(itemset);
            Ok(match tau {
                None => exact,
                Some(t) => {
                    let worst = (self.rows.len() as u64).min(t.saturating_sub(1));
                    if exact < t && exact > 0 {
                        worst.max(exact)
                    } else {
                        exact
                    }
                }
            })
        }

        fn count_extensions(
            &mut self,
            prefix: &Itemset,
            extensions: &[ItemId],
            tau: Option<u64>,
        ) -> io::Result<Vec<u64>> {
            extensions
                .iter()
                .map(|&e| self.count(&prefix.with_item(e), tau))
                .collect()
        }
    }

    fn build(shards: usize, n_rows: usize) -> (ShardedCounter<AdversarialShard>, Vec<Vec<u32>>) {
        // Deterministic rows: item k appears on rows where tid % (k+2) == 0.
        let all: Vec<Vec<u32>> = (0..n_rows as u64)
            .map(|tid| (0..8u32).filter(|&k| tid % (k as u64 + 2) == 0).collect())
            .collect();
        let mut parts: Vec<Vec<Vec<u32>>> = vec![Vec::new(); shards];
        for (tid, row) in all.iter().enumerate() {
            parts[tid % shards].push(row.clone());
        }
        let rows: Vec<u64> = parts.iter().map(|p| p.len() as u64).collect();
        let counters = parts
            .into_iter()
            .map(|rows| AdversarialShard { rows })
            .collect();
        (ShardedCounter::new(counters, rows), all)
    }

    fn global_exact(all: &[Vec<u32>], itemset: &Itemset) -> u64 {
        all.iter()
            .filter(|r| itemset.items().iter().all(|i| r.contains(&i.0)))
            .count() as u64
    }

    #[test]
    fn tau_contract_holds_under_adversarial_shard_bounds() {
        for shards in [1, 2, 3, 4] {
            let (mut counter, all) = build(shards, 120);
            for items in [vec![0u32], vec![1], vec![0, 1], vec![2, 3], vec![7], vec![5, 6, 7]] {
                let q = Itemset::from_values(&items);
                let exact = global_exact(&all, &q);
                for tau in [1u64, 5, 20, 40, 60, 61, 120] {
                    let got = counter.count_itemset(&q, tau).unwrap();
                    if got >= tau {
                        assert_eq!(got, exact, "{items:?} τ={tau} n={shards}: ≥τ must be exact");
                    } else {
                        assert!(got >= exact, "{items:?} τ={tau} n={shards}: bound undercounts");
                    }
                }
            }
        }
    }

    #[test]
    fn extensions_match_one_at_a_time_counting_decisions() {
        for shards in [2, 4] {
            let (mut counter, all) = build(shards, 90);
            let prefix = Itemset::from_values(&[0]);
            let exts: Vec<ItemId> = (1..8).map(ItemId).collect();
            for tau in [1u64, 10, 25, 45] {
                let batched = counter.count_extensions(&prefix, &exts, tau).unwrap();
                for (k, &e) in exts.iter().enumerate() {
                    let union = prefix.with_item(e);
                    let exact = global_exact(&all, &union);
                    if batched[k] >= tau {
                        assert_eq!(batched[k], exact, "ext {e:?} τ={tau} n={shards}");
                    } else {
                        assert!(batched[k] >= exact, "ext {e:?} τ={tau} n={shards}");
                    }
                }
            }
        }
    }

    /// The running-total exit really skips trailing shards: with τ above
    /// the whole database size, nothing can reach it, and the first
    /// shard's answer plus the unvisited-row bound must come back.
    #[test]
    fn running_total_exit_returns_a_below_tau_bound() {
        let (mut counter, all) = build(4, 80);
        let q = Itemset::from_values(&[7]);
        let exact = global_exact(&all, &q);
        let got = counter.count_itemset(&q, 1000).unwrap();
        assert!(got < 1000);
        assert!(got >= exact);
    }
}
