//! Mining a [`ShardedDeployment`] in place: candidate subtrees are dealt
//! across workers (× cores) and every worker counts across *all* shards
//! through a [`ShardedCounter`] — the global support merge happens inside
//! each `CountItemSet`, **before** refinement, so the filter phase makes
//! exactly the decisions an unsharded run makes (see [`crate::gather`]
//! for why the merged estimates are bit-for-bit the unsharded ones).
//!
//! Refinement then streams each shard's heap file in parallel (one
//! sequential scan per shard), summing exact per-shard supports — a
//! disjoint-partition sum, so again exactly the unsharded exact count.

use crate::counter::ShardedCounter;
use crate::deployment::ShardedDeployment;
use bbs_core::{run_filter_source_threaded, Scheme};
use bbs_storage::diskbbs::DiskCounter;
use bbs_storage::mine::DiskMineStats;
use bbs_tdb::{ItemId, Itemset, MineResult, SupportThreshold};
use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex};

/// A [`ShardedCounter`] over tracked per-shard disk readers: folds every
/// reader's cache/pager/hot counters into a shared accumulator on drop,
/// mirroring the unsharded in-place driver's reporting.
struct TrackedShardedCounter {
    inner: ShardedCounter<DiskCounter>,
    sink: Arc<Mutex<DiskMineStats>>,
}

impl bbs_core::CountSource for TrackedShardedCounter {
    fn count_itemset(&mut self, itemset: &Itemset, tau: u64) -> io::Result<u64> {
        self.inner.count_itemset(itemset, tau)
    }

    fn count_extensions(
        &mut self,
        prefix: &Itemset,
        extensions: &[ItemId],
        tau: u64,
    ) -> io::Result<Vec<u64>> {
        self.inner.count_extensions(prefix, extensions, tau)
    }
}

impl TrackedShardedCounter {
    fn open(dep: &ShardedDeployment, sink: &Arc<Mutex<DiskMineStats>>) -> io::Result<Self> {
        let counters: Vec<DiskCounter> = dep
            .shards()
            .iter()
            .map(|s| s.index.counter())
            .collect::<io::Result<_>>()?;
        Ok(TrackedShardedCounter {
            inner: ShardedCounter::new(counters, dep.shard_rows()),
            sink: Arc::clone(sink),
        })
    }
}

impl Drop for TrackedShardedCounter {
    fn drop(&mut self) {
        let mut s = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        for reader in self.inner.readers() {
            let c = reader.cache_stats();
            s.cache.hits += c.hits;
            s.cache.misses += c.misses;
            s.cache.evictions += c.evictions;
            let p = reader.pager_stats();
            s.pager.reads += p.reads;
            s.pager.writes += p.writes;
            s.pager.checksum_reads += p.checksum_reads;
            s.pager.checksum_writes += p.checksum_writes;
            s.pager.verified += p.verified;
            let h = reader.hot_stats();
            s.hot.pinned += h.pinned;
            s.hot.hits += h.hits;
            s.hot.decodes += h.decodes;
            s.hot.invalidations += h.invalidations;
            s.readers += 1;
        }
    }
}

/// Mines every frequent pattern of a sharded deployment straight off its
/// shard files.  The result — patterns, supports, and which supports are
/// approximate — is identical to an unsharded in-place run (and hence to
/// the in-memory miners) over the same transactions, for any shard count
/// and any thread count.
pub fn mine_sharded(
    dep: &mut ShardedDeployment,
    scheme: Scheme,
    min_support: SupportThreshold,
    threads: usize,
) -> io::Result<(MineResult, DiskMineStats)> {
    dep.flush()?;
    let rows = dep.rows();
    let tau = min_support.resolve(rows as usize);

    // Global vocabulary and exact singleton supports: unions/sums over
    // disjoint TID partitions equal the unsharded values exactly.
    let mut actuals: HashMap<ItemId, u64> = HashMap::new();
    for shard in dep.shards() {
        for (&item, &count) in shard.index.item_counts() {
            *actuals.entry(item).or_insert(0) += count;
        }
    }
    let mut vocab: Vec<ItemId> = actuals.keys().copied().collect();
    vocab.sort_unstable();

    let sink = Arc::new(Mutex::new(DiskMineStats::default()));
    let dep_ref: &ShardedDeployment = dep;
    let make_source = || TrackedShardedCounter::open(dep_ref, &sink);
    let filter_out = run_filter_source_threaded(
        make_source,
        &vocab,
        &actuals,
        rows,
        scheme.filter(),
        tau,
        threads,
    )?;

    let mut result = MineResult::default();
    result.stats.candidates = filter_out.stats.candidates;
    result.stats.false_drops = filter_out.stats.false_drops;
    result.stats.certified = filter_out.stats.certified;
    result.stats.bbs_counts = filter_out.stats.bbs_counts;
    result.stats.io.merge(&filter_out.stats.io);

    result.patterns.extend_from(&filter_out.frequent);
    for (items, count) in filter_out.approx.iter() {
        result.patterns.insert(items.clone(), count);
        result.approx_supports.insert(items.clone());
    }

    if !filter_out.uncertain.is_empty() {
        // Streaming refinement, one sequential heap scan per shard in
        // parallel; per-shard exact supports of a disjoint partition sum
        // to the global exact support.
        let cands: Vec<Itemset> = filter_out
            .uncertain
            .iter()
            .map(|(items, _)| items.clone())
            .collect();
        let per_shard: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = dep
                .shards_mut()
                .iter_mut()
                .map(|shard| {
                    let cands = &cands;
                    scope.spawn(move || -> io::Result<Vec<u64>> {
                        let mut counts = vec![0u64; cands.len()];
                        shard.db.for_each(|_, txn| {
                            for (items, count) in cands.iter().zip(counts.iter_mut()) {
                                if items.is_subset_of(&txn.items) {
                                    *count += 1;
                                }
                            }
                        })?;
                        Ok(counts)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard refinement worker panicked"))
                .collect::<io::Result<Vec<Vec<u64>>>>()
        })?;
        for (k, items) in cands.into_iter().enumerate() {
            let count: u64 = per_shard.iter().map(|c| c[k]).sum();
            if count >= tau {
                result.patterns.insert(items, count);
            } else {
                result.stats.false_drops += 1;
            }
        }
    }

    let stats = *sink.lock().unwrap_or_else(|e| e.into_inner());
    Ok((result, stats))
}
