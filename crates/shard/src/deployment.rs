//! A sharded deployment: one logical deployment partitioned into N
//! single-shard [`DiskDeployment`] stacks by TID residue class.
//!
//! Every shard owns its *full* durable stack — pager, page cache, commit
//! record, dedup window, replication log — so the crash-safety argument
//! is unchanged per shard (each shard independently rolls back to its own
//! committed prefix on open), and opening, flushing, verifying and
//! refining all parallelize across shards.  The shard directory layout
//! and routing live in [`crate::manifest`]; counting goes through the
//! scatter-gather layer of [`crate::gather`].

use crate::gather;
use crate::handle::DiskShardHandle;
use crate::manifest::{route, shard_base, Manifest, MANIFEST_VERSION};
use bbs_hash::ItemHasher;
use bbs_storage::diskbbs::{DiskDeployment, VerifyReport};
use bbs_tdb::{Itemset, Transaction};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One shard's fsck outcome (see [`ShardedDeployment::verify`]).
#[derive(Debug)]
pub struct ShardVerify {
    /// Shard ordinal.
    pub shard: usize,
    /// The shard's deployment base path (`dir/shard-NNN`).
    pub base: PathBuf,
    /// The single-deployment integrity report.
    pub report: VerifyReport,
}

/// A TID-partitioned deployment over a shard directory.
pub struct ShardedDeployment {
    dir: PathBuf,
    manifest: Manifest,
    shards: Vec<DiskDeployment>,
}

impl ShardedDeployment {
    /// Creates a new sharded deployment at `dir` (the directory is
    /// created if needed; refuses to overwrite an existing manifest).
    pub fn create(
        dir: &Path,
        shards: usize,
        width: usize,
        hasher: Arc<dyn ItemHasher>,
        cache_pages: usize,
    ) -> io::Result<Self> {
        if Manifest::exists(dir) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{}: sharded deployment already exists", dir.display()),
            ));
        }
        std::fs::create_dir_all(dir)?;
        let manifest = Manifest {
            version: MANIFEST_VERSION,
            shards,
            width,
        };
        manifest.write(dir)?;
        Self::open(dir, hasher, cache_pages)
    }

    /// True when `dir` is a sharded deployment (its manifest exists).
    pub fn is_sharded(dir: &Path) -> bool {
        Manifest::exists(dir)
    }

    /// Opens a sharded deployment, running each shard's crash recovery
    /// in parallel (per-shard commit records make the shards' recoveries
    /// fully independent).
    pub fn open(dir: &Path, hasher: Arc<dyn ItemHasher>, cache_pages: usize) -> io::Result<Self> {
        let manifest = Manifest::read(dir)?;
        let indices: Vec<usize> = (0..manifest.shards).collect();
        let shards = gather::scatter(&indices, |_, &i| {
            DiskDeployment::open(
                &shard_base(dir, i),
                manifest.width,
                Arc::clone(&hasher),
                cache_pages,
            )
        })?;
        Ok(ShardedDeployment {
            dir: dir.to_path_buf(),
            manifest,
            shards,
        })
    }

    /// Deletes every shard's files, the manifest, and the directory
    /// itself if it is then empty.
    pub fn remove_files(dir: &Path) -> io::Result<()> {
        if let Ok(manifest) = Manifest::read(dir) {
            for i in 0..manifest.shards {
                DiskDeployment::remove_files(&shard_base(dir, i)).ok();
            }
        }
        std::fs::remove_file(Manifest::path(dir)).ok();
        std::fs::remove_dir(dir).ok();
        Ok(())
    }

    /// The shard directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shards (the routing modulus).
    pub fn shard_count(&self) -> usize {
        self.manifest.shards
    }

    /// Signature width shared by every shard.
    pub fn width(&self) -> usize {
        self.manifest.width
    }

    /// The per-shard stacks, in shard order.
    pub fn shards(&self) -> &[DiskDeployment] {
        &self.shards
    }

    /// Mutable access to the per-shard stacks (mining refinement and the
    /// tests use this; routing invariants are the caller's problem).
    pub fn shards_mut(&mut self) -> &mut [DiskDeployment] {
        &mut self.shards
    }

    /// Total rows across shards.
    pub fn rows(&self) -> u64 {
        self.shards.iter().map(|s| s.db.len()).sum()
    }

    /// Committed rows per shard, in shard order.
    pub fn shard_rows(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.db.len()).collect()
    }

    /// Appends one transaction to its owning shard (TID routing).
    /// Returns `(shard, per-shard row)`.
    pub fn append(&mut self, txn: &Transaction) -> io::Result<(usize, u64)> {
        let shard = route(txn.tid.0, self.manifest.shards);
        let row = self.shards[shard].append(txn)?;
        Ok((shard, row))
    }

    /// Appends a batch, routing each transaction, without flushing.
    pub fn append_batch(&mut self, txns: &[Transaction]) -> io::Result<u64> {
        for txn in txns {
            self.append(txn)?;
        }
        Ok(txns.len() as u64)
    }

    /// Commits every shard: the per-shard flushes (data pages, then the
    /// commit record) run in parallel — N independent fsync pipelines.
    pub fn flush(&mut self) -> io::Result<()> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|s| scope.spawn(move || s.flush()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard flush worker panicked"))
                .collect::<io::Result<Vec<()>>>()
        })?;
        Ok(())
    }

    /// Borrowed scatter handles over every shard, in shard order.
    fn handles(&self) -> Vec<DiskShardHandle<'_>> {
        self.shards
            .iter()
            .map(|s| DiskShardHandle::new(&s.index, s.db.len()))
            .collect()
    }

    /// Cross-shard `CountItemSet` with the τ contract of
    /// [`gather::count_many_sharded`].
    pub fn count(&self, items: &Itemset, tau: Option<u64>) -> io::Result<u64> {
        Ok(self.count_many(std::slice::from_ref(items), tau)?[0])
    }

    /// Batched cross-shard `CountItemSet`: the batch is dispatched to
    /// every shard's shared-scan executor in parallel and the per-shard
    /// answers are summed (exactly — see [`crate::gather`]).
    pub fn count_many(&self, itemsets: &[Itemset], tau: Option<u64>) -> io::Result<Vec<u64>> {
        gather::count_many_sharded(&self.handles(), itemsets, tau)
    }

    /// Read-only integrity check of every shard, in parallel — the
    /// engine behind `bbs fsck` on a shard directory.  Reports are
    /// returned in shard order; corruption is reported, never repaired.
    /// A shard whose files cannot even be opened (missing or renamed
    /// `shard-NNN.*` pieces) is reported **dirty** with the failure as a
    /// structural problem — one broken shard must not abort the check of
    /// the other N−1.
    pub fn verify(dir: &Path) -> io::Result<Vec<ShardVerify>> {
        let manifest = Manifest::read(dir)?;
        let indices: Vec<usize> = (0..manifest.shards).collect();
        gather::scatter(&indices, |_, &i| {
            let base = shard_base(dir, i);
            let report = DiskDeployment::verify(&base).unwrap_or_else(|e| VerifyReport {
                problems: vec![format!("{}: verify failed: {e}", base.display())],
                ..VerifyReport::default()
            });
            Ok(ShardVerify {
                shard: i,
                report,
                base,
            })
        })
    }
}
