//! Scatter-gather counting across shards.
//!
//! # Why the sums are exact (the additive Lemma 1–4 argument)
//!
//! A BBS estimate is `popcount(AND of the selected slices)` — a sum over
//! rows of a 0/1 predicate.  TID routing partitions the rows into
//! disjoint shards, and every shard hashes items with the same hasher at
//! the same width, so row `r`'s signature is identical wherever it lives.
//! Summing per-shard `CountItemSet` results is therefore *exactly* the
//! unsharded estimate — not an approximation of it — and the estimate's
//! upper-bound guarantees (Lemmas 1–4: never undercounts the true
//! support) carry over unchanged.
//!
//! # The cross-shard τ scheme
//!
//! Early exit does not distribute naively: handing every shard the full
//! τ lets each return a local upper bound just below τ whose *sum*
//! crosses τ while being inexact — violating the contract that ≥ τ
//! answers are exact.  Instead each shard gets the scaled budget
//! `τᵢ = max(1, ⌈τ/n⌉)`, and the gather step runs the cross-shard
//! running-total check:
//!
//! 1. If the summed total `S < τ`, return `S`: a sum of per-shard upper
//!    bounds is an upper bound, and `< τ` answers may be bounds.  In
//!    particular, when *every* shard early-exits, `S ≤ n·(⌈τ/n⌉−1)
//!    ≤ τ−1 < τ` — all-shards-infrequent prunes with no second pass.
//! 2. If `S ≥ τ`, any shard whose answer was a possible bound (below its
//!    τᵢ but nonzero — zero is always exact) is re-queried exactly, and
//!    the patched sum is returned.  Every addend is then exact, so the
//!    answer is exact whether it lands above or below τ.
//!
//! The result obeys the exact same τ contract as a single shard, so the
//! sharded executor is a drop-in [`ShardHandle`]-shaped `CountSource`.

use crate::handle::ShardHandle;
use bbs_tdb::Itemset;
use std::io;

/// Exact batches at or below this size are answered shard-by-shard on
/// the calling thread instead of scattering: for interactive counts the
/// scan is cheaper than the thread spawns.
const SERIAL_BATCH_MAX: usize = 32;

/// Per-shard early-exit budget for a global threshold `tau` over
/// `shards` shards: `max(1, ⌈tau/shards⌉)`.
pub fn scaled_tau(tau: u64, shards: usize) -> u64 {
    let n = shards.max(1) as u64;
    tau.div_ceil(n).max(1)
}

/// Runs `f` once per shard, concurrently, and collects the results in
/// shard order.  A single shard runs inline (no thread overhead).
pub fn scatter<H, T, F>(shards: &[H], f: F) -> io::Result<Vec<T>>
where
    H: Sync,
    T: Send,
    F: Fn(usize, &H) -> io::Result<T> + Sync,
{
    if shards.len() <= 1 {
        return shards.iter().enumerate().map(|(i, s)| f(i, s)).collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(i, s)| scope.spawn(move || f(i, s)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard scatter worker panicked"))
            .collect()
    })
}

/// Batched cross-shard `CountItemSet`: scatters the whole batch to every
/// shard in parallel, sums per-shard answers, and applies the τ scheme in
/// the module docs.  With `tau = None` every answer is the exact global
/// estimate; with `tau = Some(t)` every answer obeys the single-shard τ
/// contract (exact when `≥ t`, an upper bound otherwise).
pub fn count_many_sharded<H: ShardHandle>(
    shards: &[H],
    itemsets: &[Itemset],
    tau: Option<u64>,
) -> io::Result<Vec<u64>> {
    if itemsets.is_empty() {
        return Ok(Vec::new());
    }
    let n = shards.len();
    let Some(t) = tau else {
        // Small exact batches (interactive `count`/`count_many`) answer
        // serially: the per-shard slice scans cost microseconds, well
        // below the latency of spawning scatter threads.  Large batches
        // (the mining executor's candidate sweeps) still fan out.
        let per = if itemsets.len() <= SERIAL_BATCH_MAX {
            shards
                .iter()
                .map(|s| s.count_many(itemsets, None))
                .collect::<io::Result<Vec<_>>>()?
        } else {
            scatter(shards, |_, s| s.count_many(itemsets, None))?
        };
        return Ok(sum_columns(&per, itemsets.len()));
    };

    let t_i = scaled_tau(t, n);
    let mut per = scatter(shards, |_, s| s.count_many(itemsets, Some(t_i)))?;
    let totals = sum_columns(&per, itemsets.len());

    // Queries whose running total crossed τ with a possibly-inexact addend
    // get that shard's answer re-queried exactly; everything else is
    // already settled (see the module docs).
    let requery: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            (0..itemsets.len())
                .filter(|&q| totals[q] >= t && per[i][q] > 0 && per[i][q] < t_i)
                .collect()
        })
        .collect();
    if requery.iter().all(|qs| qs.is_empty()) {
        return Ok(totals);
    }
    let exact = scatter(shards, |i, s| {
        if requery[i].is_empty() {
            return Ok(Vec::new());
        }
        let subset: Vec<Itemset> = requery[i].iter().map(|&q| itemsets[q].clone()).collect();
        s.count_many(&subset, None)
    })?;
    for i in 0..n {
        for (k, &q) in requery[i].iter().enumerate() {
            per[i][q] = exact[i][k];
        }
    }
    Ok(sum_columns(&per, itemsets.len()))
}

/// Column-wise sum of per-shard answer vectors.
fn sum_columns(per: &[Vec<u64>], queries: usize) -> Vec<u64> {
    let mut out = vec![0u64; queries];
    for row in per {
        debug_assert_eq!(row.len(), queries);
        for (acc, &v) in out.iter_mut().zip(row) {
            *acc += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A scripted shard: exact per-query answers, plus a bounded answer to
    /// report when asked with a τ budget (modelling an early exit that
    /// returned an inflated upper bound).  Counts exact re-queries so the
    /// tests can assert when the second pass happens.
    struct MockShard {
        rows: u64,
        exact: Vec<u64>,
        bounded: Vec<u64>,
        exact_queries: Mutex<usize>,
    }

    impl MockShard {
        fn new(rows: u64, exact: Vec<u64>, bounded: Vec<u64>) -> Self {
            MockShard {
                rows,
                exact,
                bounded,
                exact_queries: Mutex::new(0),
            }
        }
    }

    impl ShardHandle for MockShard {
        fn rows(&self) -> u64 {
            self.rows
        }

        fn count_many(&self, itemsets: &[Itemset], tau: Option<u64>) -> io::Result<Vec<u64>> {
            // The scripted tables are indexed by query id = first item.
            let ids: Vec<usize> = itemsets
                .iter()
                .map(|s| s.items().first().map(|i| i.0 as usize).unwrap_or(0))
                .collect();
            match tau {
                None => {
                    *self.exact_queries.lock().unwrap() += itemsets.len();
                    Ok(ids.iter().map(|&q| self.exact[q]).collect())
                }
                Some(t) => Ok(ids
                    .iter()
                    .map(|&q| {
                        // Honour the contract: the bound is reported only
                        // when it is below the budget; otherwise the shard
                        // "finished the scan" and answers exactly.
                        if self.bounded[q] < t {
                            self.bounded[q]
                        } else {
                            self.exact[q]
                        }
                    })
                    .collect()),
            }
        }
    }

    fn q(id: u32) -> Itemset {
        Itemset::from_values(&[id])
    }

    /// The violation a naive scheme commits: shard 0 early-exits with an
    /// inflated bound (4 over a true 3), shard 1 answers exactly (7).  A
    /// naive gather would report the sum 11 ≥ τ=10 — inexact where
    /// exactness is promised.  The gather must re-query shard 0 and
    /// answer the exact total 10.
    #[test]
    fn crossing_tau_with_an_inexact_addend_refines_to_exact() {
        let shards = vec![
            MockShard::new(100, vec![3], vec![4]), // τᵢ=5: bound 4 < 5 reported
            MockShard::new(100, vec![7], vec![9]), // bound ≥ τᵢ ⇒ answers exact 7
        ];
        let got = count_many_sharded(&shards, &[q(0)], Some(10)).unwrap();
        assert_eq!(got, vec![10], "patched sum is the exact global count");
        assert_eq!(*shards[0].exact_queries.lock().unwrap(), 1, "shard 0 re-queried");
        assert_eq!(*shards[1].exact_queries.lock().unwrap(), 0, "shard 1 was exact");
    }

    /// A refinement that drops the total back *below* τ is still correct:
    /// every addend is exact by then, and exact `< τ` answers are legal.
    #[test]
    fn refined_total_may_settle_below_tau() {
        let shards = vec![
            MockShard::new(100, vec![1], vec![4]), // inflated bound over a true 1
            MockShard::new(100, vec![7], vec![9]),
        ];
        let got = count_many_sharded(&shards, &[q(0)], Some(10)).unwrap();
        assert_eq!(got, vec![8], "exact total after the patch, even though < τ");
        assert_eq!(*shards[0].exact_queries.lock().unwrap(), 1);
    }

    /// When every shard early-exits under its scaled budget, the summed
    /// total is arithmetically below τ — pruned with no second pass.
    #[test]
    fn all_shards_early_exiting_prunes_without_requery() {
        let shards = vec![
            MockShard::new(100, vec![1], vec![4]),
            MockShard::new(100, vec![2], vec![4]),
            MockShard::new(100, vec![0], vec![3]),
        ];
        // τ=15 ⇒ τᵢ=5; bounds 4+4+3 = 11 < 15.
        let got = count_many_sharded(&shards, &[q(0)], Some(15)).unwrap();
        assert_eq!(got, vec![11]);
        for s in &shards {
            assert_eq!(*s.exact_queries.lock().unwrap(), 0);
        }
    }

    /// Zero is always exact — a zero addend never triggers a re-query even
    /// when the total crosses τ.
    #[test]
    fn zero_addends_are_never_requeried() {
        let shards = vec![
            MockShard::new(100, vec![20], vec![25]), // exact (bound ≥ τᵢ)
            MockShard::new(100, vec![0], vec![0]),
        ];
        let got = count_many_sharded(&shards, &[q(0)], Some(10)).unwrap();
        assert_eq!(got, vec![20]);
        assert_eq!(*shards[1].exact_queries.lock().unwrap(), 0);
    }

    /// Mixed batches settle per query: each answer independently obeys the
    /// τ contract against its own exact total.
    #[test]
    fn batches_settle_per_query() {
        let shards = vec![
            MockShard::new(50, vec![3, 1, 12], vec![4, 2, 13]),
            MockShard::new(50, vec![5, 1, 11], vec![9, 2, 12]),
        ];
        let exact_totals = [8u64, 2, 23];
        let t = 10u64;
        let got = count_many_sharded(&shards, &[q(0), q(1), q(2)], Some(t)).unwrap();
        for (i, &v) in got.iter().enumerate() {
            if v >= t {
                assert_eq!(v, exact_totals[i], "query {i} ≥ τ must be exact");
            } else {
                assert!(v >= exact_totals[i], "query {i} bound must not undercount");
            }
        }
        assert_eq!(got[2], 23);
    }

    #[test]
    fn scaled_tau_budgets() {
        assert_eq!(scaled_tau(10, 4), 3);
        assert_eq!(scaled_tau(12, 4), 3);
        assert_eq!(scaled_tau(13, 4), 4);
        assert_eq!(scaled_tau(0, 4), 1);
        assert_eq!(scaled_tau(1, 1), 1);
        // The all-early-exit prune bound: n·(τᵢ−1) < τ for every (τ, n).
        for tau in 1..200u64 {
            for n in 1..9usize {
                assert!((n as u64) * (scaled_tau(tau, n) - 1) < tau, "tau={tau} n={n}");
            }
        }
    }
}
