//! TID-range sharded deployments for the BBS index.
//!
//! One logical deployment is partitioned into N shards by TID residue
//! class ([`manifest::route`]); each shard is a complete single-shard
//! durable stack, so crash safety, recovery and fsck stay per-shard and
//! parallelize across shards.  Counting is scatter-gather — per-shard
//! `CountItemSet` answers **sum exactly** to the unsharded answer,
//! because a BBS estimate is a sum over rows and the shards partition
//! the rows (the paper's Lemmas 1–4 are additive over disjoint TID
//! partitions) — and mining deals candidate subtrees across workers
//! while every worker merges supports across all shards before
//! refinement.
//!
//! The shard boundary is the [`ShardHandle`]/[`ShardCounter`] trait
//! seam: the gather layer never assumes a shard is local, so a handle
//! could later be a remote node.
//!
//! * [`manifest`] — the shard directory layout (`MANIFEST` + `shard-NNN`
//!   bases) and TID routing;
//! * [`handle`] — the shard-boundary traits and the local-files handle;
//! * [`gather`] — scatter-gather counting with the scaled-τ cross-shard
//!   running-total scheme;
//! * [`counter`] — the per-worker cross-shard [`bbs_core::CountSource`];
//! * [`deployment`] — [`ShardedDeployment`]: create/open/append/flush/
//!   count/verify over a shard directory;
//! * [`mine`] — in-place sharded mining with the global support merge.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod counter;
pub mod deployment;
pub mod gather;
pub mod handle;
pub mod manifest;
pub mod mine;

pub use counter::ShardedCounter;
pub use deployment::{ShardVerify, ShardedDeployment};
pub use gather::{count_many_sharded, scaled_tau, scatter};
pub use handle::{DiskShardHandle, ShardCounter, ShardHandle};
pub use manifest::{route, shard_base, Manifest, MANIFEST_FILE, MANIFEST_VERSION, MAX_SHARDS};
pub use mine::mine_sharded;
