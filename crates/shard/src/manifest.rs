//! The shard directory manifest.
//!
//! A sharded deployment is a *directory* holding one `MANIFEST` file plus
//! N ordinary single-shard deployments named `shard-000` … `shard-NNN`
//! (each with the full `<base>.{dat,idx,slices,counts,commit,dedup,log}`
//! file set).  The manifest pins the two parameters every shard must
//! agree on for the scatter-gather sums to be exact — the shard count
//! (the routing modulus) and the signature width — in a dependency-free
//! `key=value` text format.
//!
//! The manifest is written once at `create` time, before any shard files
//! exist, and fsynced; it is deliberately immutable afterwards (resharding
//! is a rewrite, not an edit), so readers never race a writer on it.

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Name of the manifest file inside a shard directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// On-disk manifest format version this build reads and writes.
pub const MANIFEST_VERSION: u32 = 1;

/// Largest admissible shard count — the routing width of the directory
/// layout (`shard-NNN` bases are addressed with three digits, and a
/// TID-residue split past this fan-out has long stopped buying ingest
/// parallelism).
pub const MAX_SHARDS: usize = 1000;

/// The pinned parameters of a sharded deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Manifest format version.
    pub version: u32,
    /// Number of shards (the TID routing modulus), ≥ 1.
    pub shards: usize,
    /// Signature width in bits, identical across shards — per-shard
    /// AND+popcount estimates only sum exactly when every shard hashes
    /// items to the same slices.
    pub width: usize,
}

impl Manifest {
    /// Path of the manifest file inside `dir`.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// True when `dir` looks like a sharded deployment (the manifest file
    /// exists) — how the CLI distinguishes `--base` forms.
    pub fn exists(dir: &Path) -> bool {
        Self::path(dir).is_file()
    }

    /// Writes the manifest into `dir` and fsyncs it (the directory must
    /// already exist).  Refuses nonsense parameters.
    pub fn write(&self, dir: &Path) -> io::Result<()> {
        if self.shards == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a sharded deployment needs at least 1 shard",
            ));
        }
        if self.shards > MAX_SHARDS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "{} shards exceeds the routing width ({MAX_SHARDS} shards max)",
                    self.shards
                ),
            ));
        }
        if self.width == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "signature width must be nonzero",
            ));
        }
        let body = format!(
            "version={}\nshards={}\nwidth={}\n",
            self.version, self.shards, self.width
        );
        let mut f = std::fs::File::create(Self::path(dir))?;
        f.write_all(body.as_bytes())?;
        f.sync_all()
    }

    /// Reads and validates the manifest of `dir`.
    pub fn read(dir: &Path) -> io::Result<Manifest> {
        let path = Self::path(dir);
        let mut body = String::new();
        std::fs::File::open(&path)?.read_to_string(&mut body)?;
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {what}", path.display()),
            )
        };
        let mut version = None;
        let mut shards = None;
        let mut width = None;
        for line in body.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad(&format!("malformed manifest line {line:?}")))?;
            let parsed: u64 = value
                .parse()
                .map_err(|_| bad(&format!("bad value for {key}: {value:?}")))?;
            match key {
                "version" => version = Some(parsed as u32),
                "shards" => shards = Some(parsed as usize),
                "width" => width = Some(parsed as usize),
                // Unknown keys are reserved for future versions.
                _ => {}
            }
        }
        let version = version.ok_or_else(|| bad("missing version"))?;
        if version != MANIFEST_VERSION {
            return Err(bad(&format!("unsupported manifest version {version}")));
        }
        let manifest = Manifest {
            version,
            shards: shards.ok_or_else(|| bad("missing shards"))?,
            width: width.ok_or_else(|| bad("missing width"))?,
        };
        if manifest.shards == 0 || manifest.width == 0 {
            return Err(bad("shards and width must be nonzero"));
        }
        if manifest.shards > MAX_SHARDS {
            return Err(bad(&format!(
                "{} shards exceeds the routing width ({MAX_SHARDS} shards max)",
                manifest.shards
            )));
        }
        Ok(manifest)
    }
}

/// Deployment base path of shard `shard` inside `dir`: `dir/shard-NNN`.
pub fn shard_base(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}"))
}

/// Routes a transaction to its owning shard: the TID residue class
/// `tid mod shards`.  Deterministic and independent of arrival order, so
/// a retried batch lands on exactly the same shards and the per-shard
/// dedup windows make the retry exactly-once.
pub fn route(tid: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (tid % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bbs_manifest_{}_{}", std::process::id(), name));
        std::fs::create_dir_all(&p).expect("mkdir");
        p
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn round_trip_and_existence() {
        let d = dir("round_trip");
        let _g = Cleanup(d.clone());
        assert!(!Manifest::exists(&d));
        let m = Manifest {
            version: MANIFEST_VERSION,
            shards: 4,
            width: 1600,
        };
        m.write(&d).expect("write");
        assert!(Manifest::exists(&d));
        assert_eq!(Manifest::read(&d).expect("read"), m);
    }

    #[test]
    fn rejects_malformed_and_wrong_version() {
        let d = dir("malformed");
        let _g = Cleanup(d.clone());
        std::fs::write(Manifest::path(&d), "version=1\nshards=two\nwidth=64\n").unwrap();
        assert!(Manifest::read(&d).is_err());
        std::fs::write(Manifest::path(&d), "version=99\nshards=2\nwidth=64\n").unwrap();
        assert!(Manifest::read(&d).is_err());
        std::fs::write(Manifest::path(&d), "version=1\nwidth=64\n").unwrap();
        assert!(Manifest::read(&d).is_err());
        std::fs::write(Manifest::path(&d), "version=1\nshards=0\nwidth=64\n").unwrap();
        assert!(Manifest::read(&d).is_err());
        let zero = Manifest {
            version: MANIFEST_VERSION,
            shards: 0,
            width: 64,
        };
        assert!(zero.write(&d).is_err());
    }

    #[test]
    fn rejects_shard_counts_past_the_routing_width() {
        let d = dir("too_many");
        let _g = Cleanup(d.clone());
        let oversized = Manifest {
            version: MANIFEST_VERSION,
            shards: MAX_SHARDS + 1,
            width: 64,
        };
        let err = oversized.write(&d).expect_err("must reject oversized");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("routing width"), "{err}");
        // The cap itself is fine.
        let max = Manifest {
            version: MANIFEST_VERSION,
            shards: MAX_SHARDS,
            width: 64,
        };
        max.write(&d).expect("write at the cap");
        assert_eq!(Manifest::read(&d).expect("read").shards, MAX_SHARDS);
        // A hand-edited manifest claiming more shards is rejected on read.
        std::fs::write(
            Manifest::path(&d),
            format!("version=1\nshards={}\nwidth=64\n", MAX_SHARDS + 1),
        )
        .unwrap();
        let err = Manifest::read(&d).expect_err("read must reject oversized");
        assert!(err.to_string().contains("routing width"), "{err}");
    }

    #[test]
    fn routing_is_a_residue_class_partition() {
        for shards in 1..6usize {
            let mut seen = vec![0u64; shards];
            for tid in 0..1000u64 {
                let s = route(tid, shards);
                assert_eq!(s as u64, tid % shards as u64);
                seen[s] += 1;
            }
            assert_eq!(seen.iter().sum::<u64>(), 1000);
        }
        assert_eq!(shard_base(Path::new("/x"), 7), PathBuf::from("/x/shard-007"));
    }
}
