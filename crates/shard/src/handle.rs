//! The shard boundary: a handle a router can scatter queries through.
//!
//! [`ShardHandle`] is the batch/query seam (what `count`/`count_many`
//! scatter over) and [`ShardCounter`] the mining-worker seam (what one
//! filter worker walks the enumeration tree through).  Both are defined
//! over plain itemsets and `io::Result` so an implementation can be a
//! local file stack, a live engine snapshot, or — later — a remote node:
//! nothing in the gather layer assumes the bits are on this machine.
//!
//! # The per-shard τ contract
//!
//! Every counting method inherits the early-exit contract of
//! [`bbs_core::CountSource`], per shard: with `tau = Some(t)` the returned
//! value must be exact whenever it is `≥ t` and may be any **upper bound**
//! on the shard's exact estimate when it is `< t`; with `tau = None` the
//! value is always exact.  A value of `0` is therefore always exact (it is
//! an upper bound of a non-negative count).  The gather layer leans on
//! exactly this contract to keep cross-shard sums τ-consistent.

use bbs_storage::diskbbs::{DiskBbs, DiskCounter};
use bbs_tdb::{ItemId, Itemset};
use std::io;

/// One shard of a deployment, as seen by the scatter-gather router.
pub trait ShardHandle: Sync {
    /// Committed rows this shard holds.
    fn rows(&self) -> u64;

    /// Batched `CountItemSet` over this shard's rows, under the per-shard
    /// τ contract (see the module docs).
    fn count_many(&self, itemsets: &[Itemset], tau: Option<u64>) -> io::Result<Vec<u64>>;
}

/// One shard of a deployment, as seen by a single mining worker walking
/// the candidate tree.  Methods take `&mut self` so an implementation can
/// own per-worker caches (the disk reader keeps its own page cache and
/// hot-slice cache, exactly like an unsharded in-place run).
pub trait ShardCounter {
    /// `CountItemSet` over this shard's rows, under the τ contract.
    fn count(&mut self, itemset: &Itemset, tau: Option<u64>) -> io::Result<u64>;

    /// Batched sibling extensions `prefix ∪ {e}`, each under the τ
    /// contract, identical to counting the unions one at a time.
    fn count_extensions(
        &mut self,
        prefix: &Itemset,
        extensions: &[ItemId],
        tau: Option<u64>,
    ) -> io::Result<Vec<u64>>;
}

/// The local-files [`ShardHandle`]: a borrowed view of one shard's index.
///
/// [`DiskBbs`] already serves concurrent readers through its internal
/// locks, so a scatter across shards is also safe *within* a shard.
pub struct DiskShardHandle<'a> {
    index: &'a DiskBbs,
    rows: u64,
}

impl<'a> DiskShardHandle<'a> {
    /// Wraps a shard's index together with its committed row count.
    pub fn new(index: &'a DiskBbs, rows: u64) -> Self {
        DiskShardHandle { index, rows }
    }
}

impl ShardHandle for DiskShardHandle<'_> {
    fn rows(&self) -> u64 {
        self.rows
    }

    fn count_many(&self, itemsets: &[Itemset], tau: Option<u64>) -> io::Result<Vec<u64>> {
        self.index.count_itemsets(itemsets, tau)
    }
}

impl ShardCounter for DiskCounter {
    fn count(&mut self, itemset: &Itemset, tau: Option<u64>) -> io::Result<u64> {
        DiskCounter::count(self, itemset, tau)
    }

    fn count_extensions(
        &mut self,
        prefix: &Itemset,
        extensions: &[ItemId],
        tau: Option<u64>,
    ) -> io::Result<Vec<u64>> {
        self.count_extensions_projected(prefix, extensions, tau)
    }
}
