//! Page-granular file access with per-page checksums.
//!
//! Every durable structure in this crate — the transaction heap file, its
//! positional index, and the BBS slice file — talks to its backing file
//! exclusively through a [`Pager`]: fixed-size pages, explicit read/write,
//! and physical-I/O counters that the cache layer exposes upward.
//!
//! # Checksum layout
//!
//! The file interleaves one **checksum page** ahead of every 512 data
//! pages; a checksum page is exactly 512 little-endian FNV-1a-64 digests
//! (512 × 8 = 4096 bytes), one per data page of its group:
//!
//! ```text
//! physical 0        checksums of logical pages 0..512
//! physical 1..513   logical pages 0..512
//! physical 513      checksums of logical pages 512..1024
//! physical 514..    logical pages 512..
//! ```
//!
//! Callers address **logical** pages; the pager maps them to physical
//! positions, verifies every read against its digest, and maintains the
//! digests on write (they are cached in memory and written out by
//! [`Pager::sync`]).  A failed verification surfaces as an
//! [`io::ErrorKind::InvalidData`] error wrapping a typed
//! [`ChecksumMismatch`] — corrupt bytes are never returned as data.
//!
//! Recovery code uses [`Pager::read_page_raw`] (no verification) and
//! [`Pager::truncate_logical`] to repair files after a torn write; see
//! `diskbbs` for the commit protocol that decides *what* to repair.

use crate::backend::{FileBackend, StorageBackend};
use std::collections::HashMap;
use std::io;
use std::path::Path;

/// Page size in bytes.  4 KiB matches the simulated cost model in
/// `bbs-tdb` so disk-backed and in-memory ledgers are comparable.
pub const PAGE_SIZE: usize = 4096;

/// Data pages per checksum group (one digest slot per page).
pub const GROUP_DATA_PAGES: u64 = (PAGE_SIZE / 8) as u64;

/// Physical pages per group: the checksum page plus its data pages.
pub const GROUP_PHYS_PAGES: u64 = GROUP_DATA_PAGES + 1;

/// A logical page number within one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

/// One page worth of bytes.
pub type PageBuf = Box<[u8; PAGE_SIZE]>;

/// Allocates a zeroed page buffer.
pub fn zeroed_page() -> PageBuf {
    vec![0u8; PAGE_SIZE]
        .into_boxed_slice()
        .try_into()
        .expect("exact size")
}

/// The FNV-1a 64-bit offset basis (initial digest state).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into a running FNV-1a 64-bit digest.
pub fn fnv1a64_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a 64-bit digest (the in-repo checksum; no external crates).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_extend(FNV_OFFSET, bytes)
}

/// Physical page index of logical page `l`.
pub fn phys_of(l: u64) -> u64 {
    let group = l / GROUP_DATA_PAGES;
    let slot = l % GROUP_DATA_PAGES;
    group * GROUP_PHYS_PAGES + 1 + slot
}

/// Physical page index of group `g`'s checksum page.
pub fn checksum_phys_of(group: u64) -> u64 {
    group * GROUP_PHYS_PAGES
}

/// Number of logical pages representable by `phys` physical pages.
pub fn logical_pages_for_phys(phys: u64) -> u64 {
    let full = phys / GROUP_PHYS_PAGES;
    let rem = phys % GROUP_PHYS_PAGES;
    // A trailing lone checksum page (rem == 1) carries no data.
    full * GROUP_DATA_PAGES + rem.saturating_sub(1)
}

/// Number of physical pages needed to hold `n` logical pages.
pub fn phys_pages_for_logical(n: u64) -> u64 {
    if n == 0 {
        0
    } else {
        n + n.div_ceil(GROUP_DATA_PAGES)
    }
}

/// A verified read found bytes that do not match their stored digest.
///
/// Wrapped inside an [`io::Error`] of kind [`io::ErrorKind::InvalidData`];
/// retrieve it with [`checksum_mismatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChecksumMismatch {
    /// The logical page whose bytes failed verification.
    pub page: u64,
    /// The digest recorded in the checksum page.
    pub expected: u64,
    /// The digest of the bytes actually read.
    pub actual: u64,
}

impl std::fmt::Display for ChecksumMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checksum mismatch on page {}: stored {:#018x}, computed {:#018x}",
            self.page, self.expected, self.actual
        )
    }
}

impl std::error::Error for ChecksumMismatch {}

impl ChecksumMismatch {
    fn into_io(self) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, self)
    }
}

/// Extracts the typed [`ChecksumMismatch`] from an I/O error, if that is
/// what it carries.
pub fn checksum_mismatch(e: &io::Error) -> Option<&ChecksumMismatch> {
    e.get_ref().and_then(|inner| inner.downcast_ref())
}

/// Physical I/O counters for one pager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Data pages physically read from the file.
    pub reads: u64,
    /// Data pages physically written to the file.
    pub writes: u64,
    /// Checksum pages physically read.
    pub checksum_reads: u64,
    /// Checksum pages physically written.
    pub checksum_writes: u64,
    /// Data pages whose digest was checked and found valid on read.
    pub verified: u64,
}

struct ChecksumFrame {
    buf: PageBuf,
    dirty: bool,
}

/// A fixed-page-size file wrapper with verified reads.
pub struct Pager<B: StorageBackend = FileBackend> {
    backend: B,
    /// Number of logical pages the file currently holds.
    logical: u64,
    stats: PagerStats,
    /// Checksum pages resident in memory, keyed by group.
    checksums: HashMap<u64, ChecksumFrame>,
}

impl Pager<FileBackend> {
    /// Opens (or creates) a paged file at `path`.
    pub fn open(path: &Path) -> io::Result<Self> {
        Pager::new(FileBackend::open(path)?)
    }
}

impl<B: StorageBackend> Pager<B> {
    /// Wraps a backend as a paged file.
    ///
    /// A trailing partial page (the footprint of a write torn by a crash
    /// while extending the file) is discarded: no committed page can live
    /// there, because committed extensions complete before a commit record
    /// is written.
    pub fn new(mut backend: B) -> io::Result<Self> {
        let len = backend.len()?;
        let phys = len / PAGE_SIZE as u64;
        if len % PAGE_SIZE as u64 != 0 {
            backend.set_len(phys * PAGE_SIZE as u64)?;
        }
        Ok(Pager {
            backend,
            logical: logical_pages_for_phys(phys),
            stats: PagerStats::default(),
            checksums: HashMap::new(),
        })
    }

    /// Number of logical (data) pages in the file.
    pub fn page_count(&self) -> u64 {
        self.logical
    }

    /// Physical I/O counters so far.
    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    /// Loads (or materialises) the checksum page of `group`.
    fn checksum_frame(&mut self, group: u64) -> io::Result<&mut ChecksumFrame> {
        if !self.checksums.contains_key(&group) {
            let mut buf = zeroed_page();
            let phys = checksum_phys_of(group);
            // Only read what the file physically holds; groups beyond the
            // end start from an all-zero digest page.
            if (phys + 1) * PAGE_SIZE as u64 <= self.backend.len()? {
                self.backend.read_at(phys * PAGE_SIZE as u64, &mut buf[..])?;
                self.stats.checksum_reads += 1;
            }
            self.checksums.insert(group, ChecksumFrame { buf, dirty: false });
        }
        Ok(self.checksums.get_mut(&group).expect("just inserted"))
    }

    fn stored_digest(&mut self, logical: u64) -> io::Result<u64> {
        let group = logical / GROUP_DATA_PAGES;
        let slot = (logical % GROUP_DATA_PAGES) as usize;
        let frame = self.checksum_frame(group)?;
        let raw = &frame.buf[slot * 8..slot * 8 + 8];
        Ok(u64::from_le_bytes(raw.try_into().expect("8 bytes")))
    }

    /// Drops the cached checksum page of `logical`'s group so the next
    /// [`Pager::stored_digest`] re-reads it from disk — but only when the
    /// cached frame is **clean**.  A dirty frame belongs to this handle's
    /// own un-synced writes and is authoritative; discarding it would lose
    /// digests.  Returns whether a cached frame was actually dropped.
    ///
    /// Read-only handles use this to recover from *stale* digests: another
    /// handle of the same file may have rewritten a data page and its
    /// checksum page after we cached the group.  Re-reading resolves
    /// staleness while leaving genuine corruption detectable (the digest on
    /// disk still mismatches corrupt bytes).
    fn evict_clean_checksum_frame(&mut self, logical: u64) -> bool {
        let group = logical / GROUP_DATA_PAGES;
        match self.checksums.get(&group) {
            Some(frame) if !frame.dirty => {
                self.checksums.remove(&group);
                true
            }
            _ => false,
        }
    }

    fn record_digest(&mut self, logical: u64, digest: u64) -> io::Result<()> {
        let group = logical / GROUP_DATA_PAGES;
        let slot = (logical % GROUP_DATA_PAGES) as usize;
        let frame = self.checksum_frame(group)?;
        frame.buf[slot * 8..slot * 8 + 8].copy_from_slice(&digest.to_le_bytes());
        frame.dirty = true;
        Ok(())
    }

    /// Reads logical page `id` into a fresh buffer, verifying its digest.
    ///
    /// Reading past the end returns a zeroed page without touching the file
    /// (the page will materialise when first written) — this mirrors the
    /// zero-extension semantics of the in-memory bit-slices.
    pub fn read_page(&mut self, id: PageId) -> io::Result<PageBuf> {
        let buf = self.read_page_raw(id)?;
        if id.0 < self.logical {
            let mut expected = self.stored_digest(id.0)?;
            let actual = fnv1a64(&buf[..]);
            if actual != expected {
                // The mismatch may be a *stale* cached digest rather than
                // corrupt data: another handle of this file (the snapshot
                // writer) can rewrite a data page and its checksum page
                // after we cached the group.  Re-read the checksum page
                // from disk once and re-verify; genuine corruption still
                // mismatches against the on-disk digest.
                if self.evict_clean_checksum_frame(id.0) {
                    expected = self.stored_digest(id.0)?;
                }
                if actual != expected {
                    return Err(ChecksumMismatch {
                        page: id.0,
                        expected,
                        actual,
                    }
                    .into_io());
                }
            }
            self.stats.verified += 1;
        }
        Ok(buf)
    }

    /// Reads logical page `id` **without** digest verification.
    ///
    /// Recovery uses this to salvage the committed prefix of a torn page;
    /// everything else should go through [`Pager::read_page`].
    pub fn read_page_raw(&mut self, id: PageId) -> io::Result<PageBuf> {
        let mut buf = zeroed_page();
        if id.0 < self.logical {
            self.backend
                .read_at(phys_of(id.0) * PAGE_SIZE as u64, &mut buf[..])?;
            self.stats.reads += 1;
        }
        Ok(buf)
    }

    /// Writes logical page `id`, extending the file (with zero pages) if
    /// needed, and records its digest.
    pub fn write_page(&mut self, id: PageId, data: &[u8; PAGE_SIZE]) -> io::Result<()> {
        if id.0 > self.logical {
            // Extend with explicit zero pages so every logical page below
            // the new end exists on disk with a valid digest.
            let zero = zeroed_page();
            let zero_digest = fnv1a64(&zero[..]);
            for gap in self.logical..id.0 {
                self.backend
                    .write_at(phys_of(gap) * PAGE_SIZE as u64, &zero[..])?;
                self.record_digest(gap, zero_digest)?;
                self.stats.writes += 1;
            }
        }
        self.backend
            .write_at(phys_of(id.0) * PAGE_SIZE as u64, &data[..])?;
        self.record_digest(id.0, fnv1a64(&data[..]))?;
        self.stats.writes += 1;
        self.logical = self.logical.max(id.0 + 1);
        Ok(())
    }

    /// Truncates the file to exactly `n` logical pages.
    ///
    /// Digest slots of discarded pages in the surviving boundary group are
    /// zeroed so the checksum page carries no stale entries.
    pub fn truncate_logical(&mut self, n: u64) -> io::Result<()> {
        self.backend
            .set_len(phys_pages_for_logical(n) * PAGE_SIZE as u64)?;
        self.logical = n;
        let boundary = if n == 0 { 0 } else { (n - 1) / GROUP_DATA_PAGES };
        self.checksums
            .retain(|&g, _| n > 0 && g <= boundary);
        if n > 0 {
            let first_stale = ((n - 1) % GROUP_DATA_PAGES + 1) as usize;
            if first_stale < GROUP_DATA_PAGES as usize {
                let frame = self.checksum_frame(boundary)?;
                if frame.buf[first_stale * 8..].iter().any(|&b| b != 0) {
                    frame.buf[first_stale * 8..].fill(0);
                    frame.dirty = true;
                }
            }
        }
        Ok(())
    }

    /// Writes dirty checksum pages and flushes OS buffers to stable
    /// storage.
    pub fn sync(&mut self) -> io::Result<()> {
        let mut dirty: Vec<u64> = self
            .checksums
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&g, _)| g)
            .collect();
        dirty.sort_unstable();
        for group in dirty {
            let frame = self.checksums.get_mut(&group).expect("present");
            self.backend
                .write_at(checksum_phys_of(group) * PAGE_SIZE as u64, &frame.buf[..])?;
            frame.dirty = false;
            self.stats.checksum_writes += 1;
        }
        self.backend.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bbs_pager_{}_{}", std::process::id(), name));
        p
    }

    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            std::fs::remove_file(&self.0).ok();
        }
    }

    #[test]
    fn layout_maps_are_inverse() {
        for n in [0u64, 1, 2, 511, 512, 513, 1024, 1025, 100_000] {
            let phys = phys_pages_for_logical(n);
            assert_eq!(logical_pages_for_phys(phys), n, "n={n}");
        }
        // A trailing lone checksum page carries no data.
        assert_eq!(logical_pages_for_phys(1), 0);
        assert_eq!(logical_pages_for_phys(514), 512);
        // Physical positions: group 0 checksums at 0, data from 1.
        assert_eq!(phys_of(0), 1);
        assert_eq!(phys_of(511), 512);
        assert_eq!(phys_of(512), 514);
        assert_eq!(checksum_phys_of(1), 513);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let path = temp("roundtrip");
        let _c = Cleanup(path.clone());
        let mut pager = Pager::open(&path).expect("open");
        assert_eq!(pager.page_count(), 0);

        let mut page = zeroed_page();
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        pager.write_page(PageId(0), &page).expect("write");
        assert_eq!(pager.page_count(), 1);

        let got = pager.read_page(PageId(0)).expect("read");
        assert_eq!(got[0], 0xAB);
        assert_eq!(got[PAGE_SIZE - 1], 0xCD);
        assert_eq!(pager.stats().reads, 1);
        assert_eq!(pager.stats().writes, 1);
    }

    #[test]
    fn read_past_end_is_zero_and_free() {
        let path = temp("past_end");
        let _c = Cleanup(path.clone());
        let mut pager = Pager::open(&path).expect("open");
        let got = pager.read_page(PageId(7)).expect("read");
        assert!(got.iter().all(|&b| b == 0));
        assert_eq!(pager.stats().reads, 0, "no physical read happened");
    }

    #[test]
    fn sparse_write_extends_with_zero_pages() {
        let path = temp("sparse");
        let _c = Cleanup(path.clone());
        let mut pager = Pager::open(&path).expect("open");
        let mut page = zeroed_page();
        page[5] = 9;
        pager.write_page(PageId(3), &page).expect("write");
        assert_eq!(pager.page_count(), 4);
        let middle = pager.read_page(PageId(1)).expect("read");
        assert!(middle.iter().all(|&b| b == 0));
    }

    #[test]
    fn reopen_preserves_contents() {
        let path = temp("reopen");
        let _c = Cleanup(path.clone());
        {
            let mut pager = Pager::open(&path).expect("open");
            let mut page = zeroed_page();
            page[100] = 42;
            pager.write_page(PageId(2), &page).expect("write");
            pager.sync().expect("sync");
        }
        let mut pager = Pager::open(&path).expect("reopen");
        assert_eq!(pager.page_count(), 3);
        assert_eq!(pager.read_page(PageId(2)).expect("read")[100], 42);
    }

    #[test]
    fn torn_tail_page_is_discarded_on_open() {
        let path = temp("torn_tail");
        let _c = Cleanup(path.clone());
        {
            let mut pager = Pager::open(&path).expect("open");
            let mut page = zeroed_page();
            page[0] = 1;
            pager.write_page(PageId(0), &page).expect("write");
            pager.sync().expect("sync");
        }
        // Simulate a crash that tore an extending write: a partial page
        // dangles past the last full page.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("append");
        f.write_all(&[0xEE; 100]).expect("write");
        drop(f);
        let mut pager = Pager::open(&path).expect("reopen");
        assert_eq!(pager.page_count(), 1);
        assert_eq!(pager.read_page(PageId(0)).expect("read")[0], 1);
    }

    #[test]
    fn corrupt_page_is_detected_not_returned() {
        let mut backend = MemBackend::new();
        let mut page = zeroed_page();
        page[17] = 0x55;
        {
            let mut pager = Pager::new(&mut backend).expect("new");
            pager.write_page(PageId(0), &page).expect("write");
            pager.sync().expect("sync");
        }
        // Flip one bit of the stored data page (physical page 1).
        let mut byte = [0u8; 1];
        let at = PAGE_SIZE as u64 + 17;
        backend.read_at(at, &mut byte).expect("read");
        byte[0] ^= 0x04;
        backend.write_at(at, &byte).expect("write");

        let mut pager = Pager::new(&mut backend).expect("reopen");
        let err = pager.read_page(PageId(0)).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let mismatch = checksum_mismatch(&err).expect("typed mismatch");
        assert_eq!(mismatch.page, 0);
        assert_ne!(mismatch.expected, mismatch.actual);
        // The raw path still reads the corrupted bytes (for recovery).
        assert_eq!(pager.read_page_raw(PageId(0)).expect("raw")[17], 0x51);
    }

    #[test]
    fn truncate_logical_shrinks_and_allows_rewrite() {
        let mut backend = MemBackend::new();
        let mut pager = Pager::new(&mut backend).expect("new");
        for i in 0..5u64 {
            let mut page = zeroed_page();
            page[0] = i as u8 + 1;
            pager.write_page(PageId(i), &page).expect("write");
        }
        pager.sync().expect("sync");
        pager.truncate_logical(2).expect("truncate");
        assert_eq!(pager.page_count(), 2);
        assert_eq!(pager.read_page(PageId(1)).expect("read")[0], 2);
        assert!(pager.read_page(PageId(3)).expect("read").iter().all(|&b| b == 0));
        // Re-extending re-records digests for the re-created pages.
        let mut page = zeroed_page();
        page[0] = 0x77;
        pager.write_page(PageId(4), &page).expect("write");
        pager.sync().expect("sync");
        assert_eq!(pager.read_page(PageId(4)).expect("read")[0], 0x77);
        assert!(pager.read_page(PageId(2)).expect("read").iter().all(|&b| b == 0));
    }

    #[test]
    fn checksums_survive_reopen_across_groups() {
        let path = temp("groups");
        let _c = Cleanup(path.clone());
        {
            let mut pager = Pager::open(&path).expect("open");
            let mut page = zeroed_page();
            page[9] = 0x33;
            // Logical 600 lives in group 1 (slots 512..1024).
            pager.write_page(PageId(600), &page).expect("write");
            pager.sync().expect("sync");
        }
        let mut pager = Pager::open(&path).expect("reopen");
        assert_eq!(pager.page_count(), 601);
        assert_eq!(pager.read_page(PageId(600)).expect("read")[9], 0x33);
        assert!(pager.read_page(PageId(100)).expect("read").iter().all(|&b| b == 0));
        assert!(pager.stats().checksum_reads >= 1);
    }

    #[test]
    fn fnv1a64_known_vectors() {
        // Reference values for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
