//! Page-granular file access.
//!
//! Every durable structure in this crate — the transaction heap file, its
//! positional index, and the BBS slice file — talks to its backing file
//! exclusively through a [`Pager`]: fixed-size pages, explicit read/write,
//! and physical-I/O counters that the cache layer exposes upward.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Page size in bytes.  4 KiB matches the simulated cost model in
/// `bbs-tdb` so disk-backed and in-memory ledgers are comparable.
pub const PAGE_SIZE: usize = 4096;

/// A page number within one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

/// One page worth of bytes.
pub type PageBuf = Box<[u8; PAGE_SIZE]>;

/// Allocates a zeroed page buffer.
pub fn zeroed_page() -> PageBuf {
    vec![0u8; PAGE_SIZE]
        .into_boxed_slice()
        .try_into()
        .expect("exact size")
}

/// Physical I/O counters for one pager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Pages physically read from the file.
    pub reads: u64,
    /// Pages physically written to the file.
    pub writes: u64,
}

/// A fixed-page-size file wrapper.
#[derive(Debug)]
pub struct Pager {
    file: File,
    /// Number of pages the file currently holds.
    pages: u64,
    stats: PagerStats,
}

impl Pager {
    /// Opens (or creates) a paged file.
    ///
    /// A pre-existing file must be page-aligned; trailing partial pages
    /// indicate corruption and are rejected.
    pub fn open(path: &Path) -> io::Result<Pager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("file length {len} is not page-aligned"),
            ));
        }
        Ok(Pager {
            file,
            pages: len / PAGE_SIZE as u64,
            stats: PagerStats::default(),
        })
    }

    /// Number of pages in the file.
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    /// Physical I/O counters so far.
    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    /// Reads page `id` into a fresh buffer.
    ///
    /// Reading past the end returns a zeroed page without touching the file
    /// (the page will materialise when first written) — this mirrors the
    /// zero-extension semantics of the in-memory bit-slices.
    pub fn read_page(&mut self, id: PageId) -> io::Result<PageBuf> {
        let mut buf = zeroed_page();
        if id.0 < self.pages {
            self.file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
            self.file.read_exact(&mut buf[..])?;
            self.stats.reads += 1;
        }
        Ok(buf)
    }

    /// Writes page `id`, extending the file (with zero pages) if needed.
    pub fn write_page(&mut self, id: PageId, data: &[u8; PAGE_SIZE]) -> io::Result<()> {
        if id.0 >= self.pages {
            // Extend with explicit zero pages so the file stays aligned.
            let zero = zeroed_page();
            self.file.seek(SeekFrom::Start(self.pages * PAGE_SIZE as u64))?;
            for _ in self.pages..id.0 {
                self.file.write_all(&zero[..])?;
                self.stats.writes += 1;
            }
            self.pages = id.0 + 1;
        }
        self.file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
        self.file.write_all(&data[..])?;
        self.stats.writes += 1;
        Ok(())
    }

    /// Flushes OS buffers to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bbs_pager_{}_{}", std::process::id(), name));
        p
    }

    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            std::fs::remove_file(&self.0).ok();
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let path = temp("roundtrip");
        let _c = Cleanup(path.clone());
        let mut pager = Pager::open(&path).expect("open");
        assert_eq!(pager.page_count(), 0);

        let mut page = zeroed_page();
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        pager.write_page(PageId(0), &page).expect("write");
        assert_eq!(pager.page_count(), 1);

        let got = pager.read_page(PageId(0)).expect("read");
        assert_eq!(got[0], 0xAB);
        assert_eq!(got[PAGE_SIZE - 1], 0xCD);
        assert_eq!(pager.stats().reads, 1);
        assert_eq!(pager.stats().writes, 1);
    }

    #[test]
    fn read_past_end_is_zero_and_free() {
        let path = temp("past_end");
        let _c = Cleanup(path.clone());
        let mut pager = Pager::open(&path).expect("open");
        let got = pager.read_page(PageId(7)).expect("read");
        assert!(got.iter().all(|&b| b == 0));
        assert_eq!(pager.stats().reads, 0, "no physical read happened");
    }

    #[test]
    fn sparse_write_extends_with_zero_pages() {
        let path = temp("sparse");
        let _c = Cleanup(path.clone());
        let mut pager = Pager::open(&path).expect("open");
        let mut page = zeroed_page();
        page[5] = 9;
        pager.write_page(PageId(3), &page).expect("write");
        assert_eq!(pager.page_count(), 4);
        let middle = pager.read_page(PageId(1)).expect("read");
        assert!(middle.iter().all(|&b| b == 0));
    }

    #[test]
    fn reopen_preserves_contents() {
        let path = temp("reopen");
        let _c = Cleanup(path.clone());
        {
            let mut pager = Pager::open(&path).expect("open");
            let mut page = zeroed_page();
            page[100] = 42;
            pager.write_page(PageId(2), &page).expect("write");
            pager.sync().expect("sync");
        }
        let mut pager = Pager::open(&path).expect("reopen");
        assert_eq!(pager.page_count(), 3);
        assert_eq!(pager.read_page(PageId(2)).expect("read")[100], 42);
    }

    #[test]
    fn rejects_unaligned_file() {
        let path = temp("unaligned");
        let _c = Cleanup(path.clone());
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 100]).expect("write file");
        assert!(Pager::open(&path).is_err());
    }
}
