//! The durable BBS: a slice file plus persisted exact 1-itemset counts.
//!
//! This is the paper's "dynamic and persistent data structure" made
//! literal: the index lives on disk next to the database, transactions
//! append to it incrementally (no reconstruction, ever), and a mining run
//! either loads it into memory once (the memory-resident mode of §4) or
//! queries it in place through the page cache.

use crate::heapfile::HeapFile;
use crate::slicefile::SliceFile;
use bbs_core::Bbs;
use bbs_hash::ItemHasher;
use bbs_tdb::{ItemId, Itemset, Transaction};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const CNT_MAGIC: &[u8; 8] = b"BBSCNTS1";

/// A disk-backed BBS index.
pub struct DiskBbs {
    slices: SliceFile,
    counts_path: PathBuf,
    hasher: Arc<dyn ItemHasher>,
    item_counts: HashMap<ItemId, u64>,
    /// Cached deduplicated positions per item.
    positions: HashMap<ItemId, Vec<usize>>,
}

fn slice_path(base: &Path) -> PathBuf {
    base.with_extension("slices")
}

fn counts_path(base: &Path) -> PathBuf {
    base.with_extension("counts")
}

impl DiskBbs {
    /// Opens (creating if absent) a durable index at `<base>.slices` /
    /// `<base>.counts` with the given slice-cache size in pages.
    pub fn open(
        base: &Path,
        width: usize,
        hasher: Arc<dyn ItemHasher>,
        cache_pages: usize,
    ) -> io::Result<Self> {
        let slices = SliceFile::open(&slice_path(base), width, cache_pages)?;
        let counts_path = counts_path(base);
        let item_counts = if counts_path.exists() {
            read_counts(&counts_path)?
        } else {
            HashMap::new()
        };
        Ok(DiskBbs {
            slices,
            counts_path,
            hasher,
            item_counts,
            positions: HashMap::new(),
        })
    }

    /// Signature width `m`.
    pub fn width(&self) -> usize {
        self.slices.width()
    }

    /// Number of indexed transactions.
    pub fn rows(&self) -> u64 {
        self.slices.rows()
    }

    /// Slice-cache statistics.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.slices.cache_stats()
    }

    fn positions_of(&mut self, item: ItemId) -> Vec<usize> {
        if let Some(p) = self.positions.get(&item) {
            return p.clone();
        }
        let mut v = self.hasher.positions_vec(item.value(), self.slices.width());
        v.sort_unstable();
        v.dedup();
        self.positions.insert(item, v.clone());
        v
    }

    fn positions_of_itemset(&mut self, items: &Itemset) -> Vec<usize> {
        let mut all = Vec::new();
        for &item in items.items() {
            all.extend(self.positions_of(item));
        }
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Appends one transaction to the index.
    pub fn append(&mut self, txn: &Transaction) -> io::Result<u64> {
        let positions = self.positions_of_itemset(&txn.items);
        let row = self.slices.append_row(&positions)?;
        for &item in txn.items.items() {
            *self.item_counts.entry(item).or_insert(0) += 1;
        }
        Ok(row)
    }

    /// Exact support of a 1-itemset.
    pub fn actual_singleton_count(&self, item: ItemId) -> u64 {
        self.item_counts.get(&item).copied().unwrap_or(0)
    }

    /// `CountItemSet` directly against the disk layout, through the page
    /// cache (the in-place query mode — no full load required).
    pub fn count_itemset(&mut self, items: &Itemset) -> io::Result<u64> {
        let positions = self.positions_of_itemset(items);
        self.slices.count_selected(&positions)
    }

    /// The deduplicated slice positions a query itemset selects.
    pub fn query_positions(&mut self, items: &Itemset) -> Vec<usize> {
        self.positions_of_itemset(items)
    }

    /// Loads one slice as an in-memory bit vector (through the cache).
    pub fn load_slice(&mut self, slice: usize) -> io::Result<bbs_bitslice::BitVec> {
        self.slices.load_slice(slice)
    }

    /// Loads the index into memory as a [`bbs_core::Bbs`] — the paper's
    /// memory-resident mode: one sequential pass over the slice file, then
    /// every `CountItemSet` is a RAM operation.
    pub fn load(&mut self) -> io::Result<Bbs> {
        let width = self.slices.width();
        let rows = self.slices.rows() as usize;
        let mut slices = Vec::with_capacity(width);
        for j in 0..width {
            slices.push(self.slices.load_slice(j)?);
        }
        let counts: Vec<(ItemId, u64)> =
            self.item_counts.iter().map(|(&i, &c)| (i, c)).collect();
        Bbs::from_raw_parts(Arc::clone(&self.hasher), width, rows, slices, counts)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Flushes slices and persists the item counts.
    pub fn flush(&mut self) -> io::Result<()> {
        self.slices.flush()?;
        write_counts(&self.counts_path, &self.item_counts)
    }

    /// Removes the index's backing files (tests and tooling).
    pub fn remove_files(base: &Path) -> io::Result<()> {
        std::fs::remove_file(slice_path(base)).ok();
        std::fs::remove_file(counts_path(base)).ok();
        Ok(())
    }
}

fn write_counts(path: &Path, counts: &HashMap<ItemId, u64>) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(CNT_MAGIC)?;
    f.write_all(&(counts.len() as u64).to_le_bytes())?;
    let mut sorted: Vec<(&ItemId, &u64)> = counts.iter().collect();
    sorted.sort_unstable();
    for (item, count) in sorted {
        f.write_all(&item.0.to_le_bytes())?;
        f.write_all(&count.to_le_bytes())?;
    }
    f.flush()
}

fn read_counts(path: &Path) -> io::Result<HashMap<ItemId, u64>> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)?;
    if &magic != CNT_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a BBS counts file",
        ));
    }
    let mut n8 = [0u8; 8];
    f.read_exact(&mut n8)?;
    let n = u64::from_le_bytes(n8) as usize;
    let mut out = HashMap::with_capacity(n);
    for _ in 0..n {
        let mut item = [0u8; 4];
        let mut count = [0u8; 8];
        f.read_exact(&mut item)?;
        f.read_exact(&mut count)?;
        out.insert(ItemId(u32::from_le_bytes(item)), u64::from_le_bytes(count));
    }
    Ok(out)
}

/// A complete durable deployment: the transaction heap file and its BBS
/// index, kept row-aligned by construction.
pub struct DiskDeployment {
    /// The transaction database.
    pub db: HeapFile,
    /// The index.
    pub index: DiskBbs,
}

impl DiskDeployment {
    /// Opens (creating if absent) a deployment at `<base>.*`.
    pub fn open(
        base: &Path,
        width: usize,
        hasher: Arc<dyn ItemHasher>,
        cache_pages: usize,
    ) -> io::Result<Self> {
        let db = HeapFile::open(base, cache_pages, cache_pages.div_ceil(4).max(2))?;
        let index = DiskBbs::open(base, width, hasher, cache_pages)?;
        if db.len() != index.rows() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "database has {} rows but index has {} — files out of sync",
                    db.len(),
                    index.rows()
                ),
            ));
        }
        Ok(DiskDeployment { db, index })
    }

    /// Appends one transaction to both structures.
    pub fn append(&mut self, txn: &Transaction) -> io::Result<u64> {
        let row = self.db.append(txn)?;
        let irow = self.index.append(txn)?;
        debug_assert_eq!(row, irow);
        Ok(row)
    }

    /// Flushes everything.
    pub fn flush(&mut self) -> io::Result<()> {
        self.db.flush()?;
        self.index.flush()
    }

    /// Removes all backing files.
    pub fn remove_files(base: &Path) -> io::Result<()> {
        HeapFile::remove_files(base).ok();
        DiskBbs::remove_files(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_core::{BbsMiner, Scheme};
    use bbs_hash::Md5BloomHasher;
    use bbs_tdb::{FrequentPatternMiner, IoStats, NaiveMiner, SupportThreshold};

    fn base(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bbs_diskbbs_{}_{}", std::process::id(), name));
        p
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            DiskDeployment::remove_files(&self.0).ok();
        }
    }

    fn txn(tid: u64, items: &[u32]) -> Transaction {
        Transaction::new(tid, Itemset::from_values(items))
    }

    fn hasher() -> Arc<dyn ItemHasher> {
        Arc::new(Md5BloomHasher::new(4))
    }

    #[test]
    fn disk_count_matches_memory_count() {
        let b = base("counts");
        let _g = Cleanup(b.clone());
        let mut dep = DiskDeployment::open(&b, 64, hasher(), 256).expect("open");
        let txns = vec![
            txn(1, &[1, 2, 3]),
            txn(2, &[2, 3]),
            txn(3, &[1, 3, 9]),
            txn(4, &[1, 2]),
        ];
        for t in &txns {
            dep.append(t).expect("append");
        }
        let mem = dep.index.load().expect("load");
        let mut io = IoStats::new();
        for q in [&[1u32][..], &[2, 3], &[1, 2, 3], &[9], &[7]] {
            let items = Itemset::from_values(q);
            assert_eq!(
                dep.index.count_itemset(&items).expect("disk count"),
                mem.est_count(&items, &mut io),
                "{items:?}"
            );
        }
    }

    #[test]
    fn survives_restart_and_keeps_appending() {
        let b = base("restart");
        let _g = Cleanup(b.clone());
        {
            let mut dep = DiskDeployment::open(&b, 64, hasher(), 256).expect("open");
            dep.append(&txn(1, &[1, 2])).expect("append");
            dep.append(&txn(2, &[2, 3])).expect("append");
            dep.flush().expect("flush");
        }
        // "Restart": reopen from the files alone.
        let mut dep = DiskDeployment::open(&b, 64, hasher(), 256).expect("reopen");
        assert_eq!(dep.db.len(), 2);
        assert_eq!(dep.index.rows(), 2);
        assert_eq!(dep.index.actual_singleton_count(ItemId(2)), 2);
        dep.append(&txn(3, &[1, 2, 3])).expect("append");
        assert_eq!(
            dep.index
                .count_itemset(&Itemset::from_values(&[1, 2]))
                .expect("count"),
            2
        );
    }

    #[test]
    fn mining_from_disk_matches_oracle() {
        let b = base("mine");
        let _g = Cleanup(b.clone());
        let quest = bbs_datagen::QuestConfig::tiny();
        let source = bbs_datagen::generate_db(quest);
        let mut dep = DiskDeployment::open(&b, 128, hasher(), 1024).expect("open");
        for t in source.transactions() {
            dep.append(t).expect("append");
        }
        dep.flush().expect("flush");

        // Load both structures back and mine.
        let db = dep.db.load().expect("load db");
        let bbs = dep.index.load().expect("load index");
        let threshold = SupportThreshold::percent(5.0);
        let result = BbsMiner::with_index(Scheme::Dfp, bbs).mine(&db, threshold);
        let oracle = NaiveMiner::new().mine(&source, threshold).patterns;
        assert_eq!(result.patterns.len(), oracle.len());
        for (items, support) in result.patterns.iter() {
            let truth = oracle.support(items).expect("pattern in oracle");
            if result.approx_supports.contains(items) {
                assert!(support >= truth);
            } else {
                assert_eq!(support, truth, "{items:?}");
            }
        }
    }

    #[test]
    fn out_of_sync_files_are_rejected() {
        let b = base("oos");
        let _g = Cleanup(b.clone());
        {
            let mut dep = DiskDeployment::open(&b, 64, hasher(), 64).expect("open");
            dep.append(&txn(1, &[1])).expect("append");
            dep.flush().expect("flush");
        }
        {
            // Append to the heap file only, bypassing the index.
            let mut heap = HeapFile::open(&b, 64, 4).expect("open heap");
            heap.append(&txn(2, &[2])).expect("append");
            heap.flush().expect("flush");
        }
        assert!(DiskDeployment::open(&b, 64, hasher(), 64).is_err());
    }

    #[test]
    fn in_place_counting_under_tiny_cache() {
        let b = base("tinycache");
        let _g = Cleanup(b.clone());
        // Cache of 4 pages over a 64-slice file: every count evicts.
        let mut dep = DiskDeployment::open(&b, 64, hasher(), 4).expect("open");
        for i in 0..500 {
            dep.append(&txn(i, &[(i % 40) as u32, ((i * 7) % 40) as u32]))
                .expect("append");
        }
        let mem = dep.index.load().expect("load");
        let mut io = IoStats::new();
        for v in 0..40u32 {
            let items = Itemset::from_values(&[v]);
            assert_eq!(
                dep.index.count_itemset(&items).expect("count"),
                mem.est_count(&items, &mut io),
                "item {v}"
            );
        }
        assert!(dep.index.cache_stats().evictions > 0);
    }
}
