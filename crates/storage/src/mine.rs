//! Mining a [`DiskDeployment`] **in place**, on all cores.
//!
//! The memory-resident miners load the whole index first; this driver
//! instead runs the filter phase directly against the slice file through
//! [`bbs_core::CountSource`], with one independent [`DiskCounter`] reader
//! per worker thread (its own page cache, hot-slice cache and position
//! cache — no shared lock on the read path).  The enumeration tree is
//! partitioned by the same dealt-subtree scheme as the in-memory threaded
//! filter, so the result is *identical* to a serial run.
//!
//! Refinement of uncertain candidates is one streaming sequential pass
//! over the heap file (subset-count every candidate per transaction),
//! which never materialises the `TransactionDb` in memory.

use crate::cache::CacheStats;
use crate::diskbbs::{DiskCounter, DiskDeployment};
use crate::pager::PagerStats;
use crate::slicefile::HotStats;
use bbs_core::{run_filter_source_threaded, CountSource, Scheme};
use bbs_tdb::{Itemset, MineResult, SupportThreshold};
use std::io;
use std::sync::{Arc, Mutex};

/// Aggregated read-side counters of one in-place mining run, summed over
/// every reader the run opened (the prep reader plus one per worker).
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskMineStats {
    /// Page-cache counters, summed across readers.
    pub cache: CacheStats,
    /// Physical I/O counters, summed across readers.
    pub pager: PagerStats,
    /// Hot-slice cache counters, summed across readers.
    pub hot: HotStats,
    /// Readers opened (1 for a serial run; prep + workers when threaded).
    pub readers: usize,
}

impl DiskMineStats {
    /// Cache hit rate over all readers, if any page was requested.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.cache.hits + self.cache.misses;
        (total > 0).then(|| self.cache.hits as f64 / total as f64)
    }
}

/// A [`DiskCounter`] that folds its cache/pager/hot counters into a shared
/// accumulator when dropped — how worker readers report their I/O back to
/// the driver after `run_filter_source_threaded` consumes them.
struct TrackedCounter {
    inner: DiskCounter,
    sink: Arc<Mutex<DiskMineStats>>,
}

impl CountSource for TrackedCounter {
    fn count_itemset(&mut self, itemset: &Itemset, tau: u64) -> io::Result<u64> {
        self.inner.count(itemset, Some(tau))
    }

    fn count_extensions(
        &mut self,
        prefix: &Itemset,
        extensions: &[bbs_tdb::ItemId],
        tau: u64,
    ) -> io::Result<Vec<u64>> {
        self.inner
            .count_extensions_projected(prefix, extensions, Some(tau))
    }
}

impl Drop for TrackedCounter {
    fn drop(&mut self) {
        let mut s = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        let c = self.inner.cache_stats();
        s.cache.hits += c.hits;
        s.cache.misses += c.misses;
        s.cache.evictions += c.evictions;
        let p = self.inner.pager_stats();
        s.pager.reads += p.reads;
        s.pager.writes += p.writes;
        s.pager.checksum_reads += p.checksum_reads;
        s.pager.checksum_writes += p.checksum_writes;
        s.pager.verified += p.verified;
        let h = self.inner.hot_stats();
        s.hot.pinned += h.pinned;
        s.hot.hits += h.hits;
        s.hot.decodes += h.decodes;
        s.hot.invalidations += h.invalidations;
        s.readers += 1;
    }
}

/// Mines every frequent pattern of a deployment straight off its files.
///
/// The deployment is flushed first (readers open the file independently
/// and see only committed-to-cache flushed state), the filter phase runs
/// on `threads` workers over clone-per-worker [`DiskCounter`] readers, and
/// uncertain candidates are refined by one streaming scan of the heap
/// file.  The frequent patterns are identical to what the corresponding
/// in-memory [`bbs_core::BbsMiner`] scheme produces, and to a serial
/// (`threads = 1`) run of this driver.
///
/// Both Scan and Probe schemes refine by the streaming scan here: an
/// in-place run never loads the `TransactionDb`, and the scan is the
/// refinement that preserves exactness without it.
pub fn mine_in_place(
    dep: &mut DiskDeployment,
    scheme: Scheme,
    min_support: SupportThreshold,
    threads: usize,
) -> io::Result<(MineResult, DiskMineStats)> {
    dep.flush()?;
    let rows = dep.db.len();
    let tau = min_support.resolve(rows as usize);
    let vocab = dep.index.vocabulary();
    let actuals = dep.index.item_counts();
    let sink = Arc::new(Mutex::new(DiskMineStats::default()));
    let make_source = || -> io::Result<TrackedCounter> {
        Ok(TrackedCounter {
            inner: dep.index.counter()?,
            sink: Arc::clone(&sink),
        })
    };
    let filter_out = run_filter_source_threaded(
        make_source,
        &vocab,
        actuals,
        rows,
        scheme.filter(),
        tau,
        threads,
    )?;

    let mut result = MineResult::default();
    result.stats.candidates = filter_out.stats.candidates;
    result.stats.false_drops = filter_out.stats.false_drops;
    result.stats.certified = filter_out.stats.certified;
    result.stats.bbs_counts = filter_out.stats.bbs_counts;
    result.stats.io.merge(&filter_out.stats.io);

    result.patterns.extend_from(&filter_out.frequent);
    for (items, count) in filter_out.approx.iter() {
        result.patterns.insert(items.clone(), count);
        result.approx_supports.insert(items.clone());
    }

    if !filter_out.uncertain.is_empty() {
        // Streaming refinement: one pass over the heap file, counting every
        // uncertain candidate's exact support by subset test.
        let mut cands: Vec<(Itemset, u64)> = filter_out
            .uncertain
            .iter()
            .map(|(items, _)| (items.clone(), 0))
            .collect();
        dep.db.for_each(|_, txn| {
            for (items, count) in cands.iter_mut() {
                if items.is_subset_of(&txn.items) {
                    *count += 1;
                }
            }
        })?;
        for (items, count) in cands {
            if count >= tau {
                result.patterns.insert(items, count);
            } else {
                result.stats.false_drops += 1;
            }
        }
    }

    let stats = *sink.lock().unwrap_or_else(|e| e.into_inner());
    Ok((result, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_core::BbsMiner;
    use bbs_hash::{ItemHasher, Md5BloomHasher};
    use bbs_tdb::{FrequentPatternMiner, Transaction};
    use std::path::PathBuf;

    fn base(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bbs_mine_{}_{}", std::process::id(), name));
        p
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            DiskDeployment::remove_files(&self.0).ok();
        }
    }

    fn hasher() -> std::sync::Arc<dyn ItemHasher> {
        std::sync::Arc::new(Md5BloomHasher::new(4))
    }

    /// A deterministic 400-transaction database with planted co-occurring
    /// groups so every scheme has frequent k-itemsets to find.
    fn planted(dep: &mut DiskDeployment) {
        for i in 0..400u64 {
            let mut items: Vec<u32> = vec![(i % 25) as u32];
            if i % 3 == 0 {
                items.extend([50, 51]);
            }
            if i % 5 == 0 {
                items.extend([60, 61, 62]);
            }
            if i % 2 == 0 {
                items.push(70 + (i % 4) as u32);
            }
            dep.append(&Transaction::new(i, Itemset::from_values(&items)))
                .expect("append");
        }
    }

    fn canon(r: &MineResult) -> Vec<(Itemset, u64)> {
        let mut v: Vec<(Itemset, u64)> = r.patterns.iter().map(|(k, s)| (k.clone(), s)).collect();
        v.sort();
        v
    }

    #[test]
    fn in_place_matches_memory_miner_for_all_schemes() {
        let b = base("schemes");
        let _g = Cleanup(b.clone());
        let mut dep = DiskDeployment::open(&b, 128, hasher(), 1024).expect("open");
        planted(&mut dep);
        dep.flush().expect("flush");
        let db = dep.db.load().expect("load db");
        let threshold = SupportThreshold::Count(40);
        for scheme in [Scheme::Sfs, Scheme::Sfp, Scheme::Dfs, Scheme::Dfp] {
            let bbs = dep.index.load().expect("load index");
            let mem = BbsMiner::with_index(scheme, bbs).mine(&db, threshold);
            let (disk, stats) =
                mine_in_place(&mut dep, scheme, threshold, 1).expect("mine in place");
            assert_eq!(canon(&disk), canon(&mem), "{scheme:?}");
            assert_eq!(disk.approx_supports, mem.approx_supports, "{scheme:?}");
            assert!(stats.readers >= 1);
            assert!(stats.cache.hits + stats.cache.misses > 0);
        }
    }

    #[test]
    fn threaded_matches_serial_after_crash_recovery_round_trip() {
        let b = base("crash_round_trip");
        let _g = Cleanup(b.clone());
        {
            let mut dep = DiskDeployment::open(&b, 128, hasher(), 1024).expect("open");
            planted(&mut dep);
            dep.flush().expect("flush");
            // Crash with un-flushed extra rows: they must not influence any
            // later mining run.
            for i in 0..37u64 {
                dep.append(&Transaction::new(1000 + i, Itemset::from_values(&[50, 51, 60])))
                    .expect("append");
            }
            // Dropped without flush — the commit record still says 400 rows.
        }
        let mut dep = DiskDeployment::open(&b, 128, hasher(), 1024).expect("reopen");
        assert_eq!(dep.db.len(), 400, "recovery rolled back to the commit");
        let threshold = SupportThreshold::percent(8.0);
        let (serial, _) = mine_in_place(&mut dep, Scheme::Dfs, threshold, 1).expect("serial");
        for threads in [2, 4, 9] {
            let (threaded, stats) =
                mine_in_place(&mut dep, Scheme::Dfs, threshold, threads).expect("threaded");
            assert_eq!(canon(&threaded), canon(&serial), "threads={threads}");
            assert_eq!(threaded.approx_supports, serial.approx_supports);
            assert!(stats.readers > 1, "threads={threads} used {} readers", stats.readers);
        }
        // And the refined output agrees with the in-memory miner too.
        let db = dep.db.load().expect("load db");
        let bbs = dep.index.load().expect("load index");
        let mem = BbsMiner::with_index(Scheme::Dfs, bbs).mine(&db, threshold);
        assert_eq!(canon(&serial), canon(&mem));
    }

    #[test]
    fn stats_accumulate_and_hot_cache_engages() {
        let b = base("stats");
        let _g = Cleanup(b.clone());
        let mut dep = DiskDeployment::open(&b, 64, hasher(), 256).expect("open");
        planted(&mut dep);
        let (_, stats) =
            mine_in_place(&mut dep, Scheme::Sfs, SupportThreshold::Count(30), 2).expect("mine");
        assert!(stats.cache.misses > 0, "cold reads happened: {stats:?}");
        assert!(stats.pager.reads > 0);
        assert!(stats.pager.verified > 0, "checksums were verified: {stats:?}");
        assert!(stats.hit_rate().is_some());
        assert!(
            stats.hot.decodes > 0,
            "repeatedly selected slices got pinned: {stats:?}"
        );
    }
}
