//! Physical I/O backends and fault injection.
//!
//! Every byte this crate durably stores flows through a [`StorageBackend`]:
//! positioned reads and writes, truncation, and sync.  Production code uses
//! [`FileBackend`]; tests wrap any backend in a [`FaultInjector`] that can
//! kill the process model at the Nth physical operation — cleanly, with a
//! short write, or with a torn (partial page) write — and flip bits on
//! read, so crash recovery and corruption detection are provable rather
//! than aspirational.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Positioned physical I/O over one file-like object.
///
/// Reads and writes are explicit about their offset (no cursor state), so a
/// backend is free to reorder, count, or sabotage individual operations.
#[allow(clippy::len_without_is_empty)] // `len` is fallible I/O, not a collection size
pub trait StorageBackend {
    /// Reads exactly `buf.len()` bytes starting at `offset`.
    ///
    /// Reading past the current end is an error (callers track extents).
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Writes all of `data` starting at `offset`, extending if needed.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()>;

    /// Current length in bytes.
    fn len(&mut self) -> io::Result<u64>;

    /// Truncates (or zero-extends) to exactly `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;

    /// Flushes buffers to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

impl<B: StorageBackend + ?Sized> StorageBackend for &mut B {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        (**self).read_at(offset, buf)
    }
    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        (**self).write_at(offset, data)
    }
    fn len(&mut self) -> io::Result<u64> {
        (**self).len()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        (**self).set_len(len)
    }
    fn sync(&mut self) -> io::Result<()> {
        (**self).sync()
    }
}

impl<B: StorageBackend + ?Sized> StorageBackend for Box<B> {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        (**self).read_at(offset, buf)
    }
    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        (**self).write_at(offset, data)
    }
    fn len(&mut self) -> io::Result<u64> {
        (**self).len()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        (**self).set_len(len)
    }
    fn sync(&mut self) -> io::Result<()> {
        (**self).sync()
    }
}

/// A backend erased to a trait object — what [`crate::snapshot`] threads
/// through the writer deployment so production (plain files) and chaos
/// tests (fault injectors) share one code path.
pub type DynBackend = Box<dyn StorageBackend + Send>;

/// The error an exhausted disk produces ([`io::ErrorKind::StorageFull`],
/// the kind `ENOSPC` maps to).  Injected faults and real kernel errors
/// classify identically through [`is_disk_full`].
pub fn disk_full_error() -> io::Error {
    io::Error::new(io::ErrorKind::StorageFull, "no space left on device")
}

/// Whether an I/O error means the disk is out of space — the condition the
/// server degrades on (typed `DiskFull` response, reads keep serving)
/// rather than treating as corruption.
pub fn is_disk_full(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::StorageFull
}

/// The production backend: a plain file.
#[derive(Debug)]
pub struct FileBackend {
    file: File,
}

impl FileBackend {
    /// Opens (creating if absent) the file at `path`.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FileBackend { file })
    }
}

impl StorageBackend for FileBackend {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(data)
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// An in-memory backend (tests; no filesystem dependence).
#[derive(Debug, Default)]
pub struct MemBackend {
    bytes: Vec<u8>,
}

impl MemBackend {
    /// An empty in-memory file.
    pub fn new() -> Self {
        MemBackend::default()
    }
}

impl StorageBackend for MemBackend {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let start = offset as usize;
        let end = start + buf.len();
        if end > self.bytes.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "read past end of in-memory backend",
            ));
        }
        buf.copy_from_slice(&self.bytes[start..end]);
        Ok(())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        let start = offset as usize;
        let end = start + data.len();
        if end > self.bytes.len() {
            self.bytes.resize(end, 0);
        }
        self.bytes[start..end].copy_from_slice(data);
        Ok(())
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.bytes.len() as u64)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.bytes.resize(len as usize, 0);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// How an injected crash manifests at the fatal operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// The operation fails outright; nothing of it reaches the media.
    Fail,
    /// A write lands only its first sector (512 bytes) before failing.
    ShortWrite,
    /// A write lands an arbitrary prefix (half) before failing — the
    /// classic torn page.
    TornWrite,
}

/// A single bit to flip in read results (silent media corruption).
#[derive(Debug, Clone)]
pub struct BitFlip {
    /// Which file (the [`FaultInjector`]'s tag) to corrupt.
    pub tag: String,
    /// Byte offset within that file.
    pub offset: u64,
    /// Bit index within the byte (0..8).
    pub bit: u8,
}

/// A *transient* write fault: the targeted operation fails, but — unlike
/// a [`CrashMode`] crash — the backend stays alive afterwards, modelling
/// a disk that hiccups rather than a process that dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The write fails with [`disk_full_error`]; nothing reaches the media.
    DiskFull,
    /// The write lands only its first sector (512 bytes) then fails with
    /// an I/O error — a short write the caller must recover from.
    Short,
}

/// Shared fault schedule across every file of a deployment.
///
/// Physical operations are counted globally (in the order the storage
/// stack issues them); `crash_at = Some(n)` makes the `n`-th operation
/// (0-based) the fatal one, after which every further operation on every
/// tagged file fails — the process-death model.
///
/// Orthogonally, the plan carries two *recoverable* fault sources:
///
/// * a **disk-full toggle** ([`SharedFaultPlan::set_disk_full`]) — while
///   set, any write that would *extend* a file (and any extending
///   truncate) fails with [`disk_full_error`], while overwrites of
///   existing bytes, shrinking truncates, reads and syncs proceed:
///   the shape of a genuinely full filesystem, under which crash
///   recovery (rollback to the commit point) still works;
/// * **one-shot transient faults** ([`SharedFaultPlan::fail_write_at`]) —
///   the scheduled operation fails (short write or spurious ENOSPC) but
///   the backend keeps working afterwards.
#[derive(Debug)]
pub struct FaultPlan {
    ops: u64,
    crash_at: Option<u64>,
    mode: CrashMode,
    crashed: bool,
    flips: Vec<BitFlip>,
    disk_full: bool,
    transient: Vec<(u64, WriteFault)>,
}

impl FaultPlan {
    fn empty() -> FaultPlan {
        FaultPlan {
            ops: 0,
            crash_at: None,
            mode: CrashMode::Fail,
            crashed: false,
            flips: Vec::new(),
            disk_full: false,
            transient: Vec::new(),
        }
    }

    /// A plan with no scheduled faults (pure operation counting).
    pub fn counting() -> SharedFaultPlan {
        SharedFaultPlan(Arc::new(Mutex::new(FaultPlan::empty())))
    }

    /// A plan that crashes at physical operation `n` (0-based) with `mode`.
    pub fn crash_at(n: u64, mode: CrashMode) -> SharedFaultPlan {
        SharedFaultPlan(Arc::new(Mutex::new(FaultPlan {
            crash_at: Some(n),
            mode,
            ..FaultPlan::empty()
        })))
    }
}

/// Handle to a [`FaultPlan`] shared by all of a deployment's injectors.
#[derive(Debug, Clone)]
pub struct SharedFaultPlan(Arc<Mutex<FaultPlan>>);

impl SharedFaultPlan {
    /// Adds a bit flip applied to reads of `tag` at `offset`.
    pub fn flip_bit(&self, tag: &str, offset: u64, bit: u8) {
        self.0.lock().expect("fault plan lock").flips.push(BitFlip {
            tag: tag.to_string(),
            offset,
            bit,
        });
    }

    /// Physical operations observed so far.
    pub fn ops(&self) -> u64 {
        self.0.lock().expect("fault plan lock").ops
    }

    /// Whether the scheduled crash has fired.
    pub fn crashed(&self) -> bool {
        self.0.lock().expect("fault plan lock").crashed
    }

    /// Turns the disk-full condition on or off.  While on, extending
    /// writes and extending truncates fail with [`disk_full_error`];
    /// everything else proceeds.  Turning it off models space being
    /// freed — subsequent writes succeed again.
    pub fn set_disk_full(&self, full: bool) {
        self.0.lock().expect("fault plan lock").disk_full = full;
    }

    /// Whether the disk-full toggle is currently on.
    pub fn is_disk_full(&self) -> bool {
        self.0.lock().expect("fault plan lock").disk_full
    }

    /// Schedules a one-shot transient fault at physical operation `op`
    /// (0-based, global across all tagged files).  Only writes are
    /// affected; if operation `op` turns out to be a read/sync/truncate
    /// it proceeds normally and the fault is consumed.
    pub fn fail_write_at(&self, op: u64, fault: WriteFault) {
        self.0
            .lock()
            .expect("fault plan lock")
            .transient
            .push((op, fault));
    }

    /// Wraps a backend in an injector bound to this plan.
    pub fn wrap<B: StorageBackend>(&self, tag: &str, inner: B) -> FaultInjector<B> {
        FaultInjector {
            inner,
            plan: self.clone(),
            tag: tag.to_string(),
        }
    }
}

/// The error kind used for injected crashes (distinguishable in tests).
pub const INJECTED_CRASH: io::ErrorKind = io::ErrorKind::Other;

fn injected(what: &str) -> io::Error {
    io::Error::new(INJECTED_CRASH, format!("injected fault: {what}"))
}

/// A [`StorageBackend`] decorator that executes a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultInjector<B> {
    inner: B,
    plan: SharedFaultPlan,
    tag: String,
}

enum Verdict {
    Proceed,
    /// Crash now; for writes, land only this many bytes first.
    CrashAfter(usize),
    /// A scheduled one-shot fault: fail this write, stay alive after.
    Transient(WriteFault),
}

impl<B: StorageBackend> FaultInjector<B> {
    /// Counts one operation and decides its fate. `write_len` is the length
    /// of the pending write (0 for reads/truncates/syncs).
    fn gate(&mut self, write_len: usize) -> io::Result<Verdict> {
        let mut plan = self.plan.0.lock().expect("fault plan lock");
        if plan.crashed {
            return Err(injected("backend is down (post-crash)"));
        }
        let op = plan.ops;
        plan.ops += 1;
        if plan.crash_at == Some(op) {
            plan.crashed = true;
            let landed = match plan.mode {
                CrashMode::Fail => 0,
                CrashMode::ShortWrite => write_len.min(512),
                CrashMode::TornWrite => write_len / 2,
            };
            return Ok(Verdict::CrashAfter(landed));
        }
        if let Some(i) = plan.transient.iter().position(|&(at, _)| at == op) {
            let (_, fault) = plan.transient.swap_remove(i);
            return Ok(Verdict::Transient(fault));
        }
        Ok(Verdict::Proceed)
    }

    /// The disk-full gate for operations that would grow the file to
    /// `new_end` bytes: errors while the toggle is on and the file would
    /// actually extend.
    fn check_space(&mut self, new_end: u64) -> io::Result<()> {
        if self.plan.0.lock().expect("fault plan lock").disk_full
            && new_end > self.inner.len()?
        {
            return Err(disk_full_error());
        }
        Ok(())
    }

    fn apply_flips(&mut self, offset: u64, buf: &mut [u8]) {
        let plan = self.plan.0.lock().expect("fault plan lock");
        for flip in &plan.flips {
            if flip.tag == self.tag
                && flip.offset >= offset
                && flip.offset < offset + buf.len() as u64
            {
                buf[(flip.offset - offset) as usize] ^= 1 << (flip.bit & 7);
            }
        }
    }
}

impl<B: StorageBackend> StorageBackend for FaultInjector<B> {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        match self.gate(0)? {
            // Transient faults target writes; on a read the slot is
            // consumed and the read proceeds.
            Verdict::Proceed | Verdict::Transient(_) => {
                self.inner.read_at(offset, buf)?;
                self.apply_flips(offset, buf);
                Ok(())
            }
            Verdict::CrashAfter(_) => Err(injected("read failed")),
        }
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        match self.gate(data.len())? {
            Verdict::Proceed => {
                self.check_space(offset + data.len() as u64)?;
                self.inner.write_at(offset, data)
            }
            Verdict::Transient(WriteFault::DiskFull) => Err(disk_full_error()),
            Verdict::Transient(WriteFault::Short) => {
                let landed = data.len().min(512);
                if landed > 0 {
                    self.inner.write_at(offset, &data[..landed])?;
                }
                Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "injected transient fault: short write",
                ))
            }
            Verdict::CrashAfter(landed) => {
                if landed > 0 {
                    // The tear: a prefix reaches the media, the rest never does.
                    self.inner.write_at(offset, &data[..landed])?;
                }
                Err(injected("write failed mid-flight"))
            }
        }
    }

    fn len(&mut self) -> io::Result<u64> {
        // Length queries are metadata, not media operations: not counted.
        let crashed = self.plan.0.lock().expect("fault plan lock").crashed;
        if crashed {
            return Err(injected("backend is down (post-crash)"));
        }
        self.inner.len()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        match self.gate(0)? {
            Verdict::Proceed | Verdict::Transient(_) => {
                // Growing a file allocates blocks; shrinking frees them.
                // Under disk-full only the former fails.
                self.check_space(len)?;
                self.inner.set_len(len)
            }
            Verdict::CrashAfter(_) => Err(injected("truncate failed")),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        match self.gate(0)? {
            Verdict::Proceed | Verdict::Transient(_) => self.inner.sync(),
            Verdict::CrashAfter(_) => Err(injected("sync failed")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_roundtrip() {
        let mut b = MemBackend::new();
        b.write_at(10, b"hello").expect("write");
        assert_eq!(b.len().expect("len"), 15);
        let mut buf = [0u8; 5];
        b.read_at(10, &mut buf).expect("read");
        assert_eq!(&buf, b"hello");
        assert!(b.read_at(14, &mut buf).is_err(), "read past end");
        b.set_len(3).expect("truncate");
        assert_eq!(b.len().expect("len"), 3);
    }

    #[test]
    fn crash_fail_blocks_everything_after() {
        let plan = FaultPlan::crash_at(1, CrashMode::Fail);
        let mut b = plan.wrap("f", MemBackend::new());
        b.write_at(0, b"one").expect("op 0 fine");
        assert!(b.write_at(3, b"two").is_err(), "op 1 crashes");
        assert!(plan.crashed());
        assert!(b.write_at(0, b"x").is_err(), "dead after the crash");
        assert!(b.sync().is_err());
        let mut probe = [0u8; 1];
        assert!(b.read_at(0, &mut probe).is_err());
    }

    #[test]
    fn torn_write_lands_half() {
        let plan = FaultPlan::crash_at(0, CrashMode::TornWrite);
        let mut mem = MemBackend::new();
        mem.write_at(0, &[0xAAu8; 8]).expect("prefill");
        let mut b = plan.wrap("f", mem);
        assert!(b.write_at(0, &[0x55u8; 8]).is_err(), "torn");
        // Inspect the media under the dead injector.
        let mut clean = plan.wrap("inspect", MemBackend::new());
        let _ = &mut clean; // (separate instance; inspect the original below)
        let FaultInjector { mut inner, .. } = b;
        let mut buf = [0u8; 8];
        inner.read_at(0, &mut buf).expect("raw read");
        assert_eq!(&buf[..4], &[0x55; 4], "first half landed");
        assert_eq!(&buf[4..], &[0xAA; 4], "second half never arrived");
    }

    #[test]
    fn bit_flips_corrupt_reads_of_matching_tag_only() {
        let plan = FaultPlan::counting();
        let mut mem = MemBackend::new();
        mem.write_at(0, &[0u8; 4]).expect("prefill");
        let mut b = plan.wrap("data", mem);
        plan.flip_bit("data", 2, 7);
        plan.flip_bit("other", 1, 0);
        let mut buf = [0u8; 4];
        b.read_at(0, &mut buf).expect("read");
        assert_eq!(buf, [0, 0, 0x80, 0]);
    }

    #[test]
    fn ops_are_counted_globally_across_files() {
        let plan = FaultPlan::counting();
        let mut a = plan.wrap("a", MemBackend::new());
        let mut b = plan.wrap("b", MemBackend::new());
        a.write_at(0, b"x").expect("write");
        b.write_at(0, b"y").expect("write");
        a.sync().expect("sync");
        assert_eq!(plan.ops(), 3);
    }

    #[test]
    fn disk_full_blocks_extension_only_and_clears() {
        let plan = FaultPlan::counting();
        let mut b = plan.wrap("f", MemBackend::new());
        b.write_at(0, &[0xAAu8; 16]).expect("prefill");

        plan.set_disk_full(true);
        assert!(plan.is_disk_full());
        let err = b.write_at(8, &[0u8; 16]).expect_err("extension blocked");
        assert!(is_disk_full(&err), "typed StorageFull, got {err}");
        assert!(is_disk_full(&b.set_len(64).expect_err("growth blocked")));

        // Overwrites, shrinks, reads, and syncs all proceed while full —
        // that is what lets recovery roll a deployment back in place.
        b.write_at(0, &[0x55u8; 16]).expect("overwrite in place");
        b.set_len(8).expect("shrink");
        let mut buf = [0u8; 8];
        b.read_at(0, &mut buf).expect("read");
        assert_eq!(buf, [0x55; 8]);
        b.sync().expect("sync");

        plan.set_disk_full(false);
        b.write_at(0, &[0u8; 64]).expect("space came back");
        assert_eq!(b.len().expect("len"), 64);
    }

    #[test]
    fn transient_short_write_lands_prefix_and_backend_survives() {
        let plan = FaultPlan::counting();
        let mut b = plan.wrap("f", MemBackend::new());
        b.write_at(0, &[0xAAu8; 1024]).expect("op 0: prefill");
        plan.fail_write_at(1, WriteFault::Short);
        let err = b.write_at(0, &[0x55u8; 1024]).expect_err("op 1 short");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert!(!plan.crashed(), "transient faults never latch the crash");

        let mut buf = [0u8; 1024];
        b.read_at(0, &mut buf).expect("still readable");
        assert_eq!(&buf[..512], &[0x55; 512], "512-byte prefix landed");
        assert_eq!(&buf[512..], &[0xAA; 512], "tail never arrived");

        // The very next write succeeds: the fault was one-shot.
        b.write_at(0, &[0x11u8; 1024]).expect("recovered");
    }

    #[test]
    fn transient_disk_full_lands_nothing() {
        let plan = FaultPlan::counting();
        let mut b = plan.wrap("f", MemBackend::new());
        b.write_at(0, &[0xAAu8; 8]).expect("prefill");
        plan.fail_write_at(1, WriteFault::DiskFull);
        let err = b.write_at(0, &[0x55u8; 8]).expect_err("enospc");
        assert!(is_disk_full(&err));
        let mut buf = [0u8; 8];
        b.read_at(0, &mut buf).expect("read");
        assert_eq!(buf, [0xAA; 8], "failed write left no trace");
        b.write_at(0, &[0x55u8; 8]).expect("one-shot: next write fine");
    }

    #[test]
    fn transient_slot_on_non_write_is_consumed_harmlessly() {
        let plan = FaultPlan::counting();
        let mut b = plan.wrap("f", MemBackend::new());
        plan.fail_write_at(0, WriteFault::DiskFull);
        b.sync().expect("op 0 is a sync: proceeds, consumes the slot");
        b.write_at(0, b"x").expect("op 1 unaffected");
    }

    #[test]
    fn boxed_dyn_backend_delegates() {
        let mut b: DynBackend = Box::new(MemBackend::new());
        b.write_at(0, b"dyn").expect("write");
        assert_eq!(b.len().expect("len"), 3);
        let mut buf = [0u8; 3];
        b.read_at(0, &mut buf).expect("read");
        assert_eq!(&buf, b"dyn");
        b.set_len(1).expect("truncate");
        b.sync().expect("sync");
    }
}
