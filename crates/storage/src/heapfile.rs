//! The durable transaction store: an append-only heap file plus a
//! positional index.
//!
//! The paper's Probe refiner assumes "an index … on the database [whose]
//! key is the relative position of the transaction from the beginning of
//! the file" (§3.2).  That is exactly the pair of files here:
//!
//! * `<base>.dat` — records appended back to back (records may span pages):
//!   `tid u64 | item-count u32 | items u32…`
//! * `<base>.idx` — page 0 is a header (magic, record count, data tail);
//!   subsequent pages hold one `u64` byte-offset per record.
//!
//! All access goes through bounded LRU page caches, so sequential scans and
//! random probes exhibit real hit/miss behaviour.

use crate::backend::{FileBackend, StorageBackend};
use crate::bytes;
use crate::cache::{CacheStats, PageCache};
use crate::pager::{PageId, Pager, PAGE_SIZE};
use bbs_tdb::{ItemId, Itemset, Transaction};
use std::io;
use std::path::{Path, PathBuf};

const IDX_MAGIC: u64 = 0x4242_5348_4541_5031; // "BBSHEAP1"
/// Header layout in the index file's page 0.
const H_MAGIC: u64 = 0;
const H_COUNT: u64 = 8;
const H_TAIL: u64 = 16;
/// First byte of index entries (page 1).
pub(crate) const IDX_ENTRIES: u64 = PAGE_SIZE as u64;

/// A disk-backed transaction database.
pub struct HeapFile<B: StorageBackend = FileBackend> {
    data: PageCache<B>,
    idx: PageCache<B>,
    count: u64,
    tail: u64,
}

/// Paths used by a heap file.
pub(crate) fn paths(base: &Path) -> (PathBuf, PathBuf) {
    (base.with_extension("dat"), base.with_extension("idx"))
}

/// Number of index-file pages a committed row count occupies (the header
/// page plus full or partial entry pages).
pub(crate) fn idx_pages_for_rows(rows: u64) -> u64 {
    (IDX_ENTRIES + rows * 8).div_ceil(PAGE_SIZE as u64)
}

impl HeapFile<FileBackend> {
    /// Opens (creating if absent) the heap file at `<base>.dat/.idx` with
    /// the given cache sizes (in pages) for data and index.
    pub fn open(base: &Path, data_cache_pages: usize, idx_cache_pages: usize) -> io::Result<Self> {
        let (dat, idxp) = paths(base);
        HeapFile::open_with(
            FileBackend::open(&dat)?,
            FileBackend::open(&idxp)?,
            data_cache_pages,
            idx_cache_pages,
            None,
        )
    }

    /// Removes the heap file's backing files (for tests and tooling).
    pub fn remove_files(base: &Path) -> io::Result<()> {
        let (dat, idx) = paths(base);
        std::fs::remove_file(dat).and(std::fs::remove_file(idx))
    }
}

/// The committed boundary of a heap file, as a recovery target.
#[derive(Debug, Clone, Copy)]
pub struct HeapRecoverPoint {
    /// Committed record count.
    pub rows: u64,
    /// Committed data tail in bytes.
    pub tail: u64,
    /// Commit-record digest of the committed data boundary page.
    pub dat_digest: u64,
    /// Commit-record digest of the committed last index entry page.
    pub idx_digest: u64,
}

/// Restores the boundary page of one file to its committed content:
/// reads it raw (its digest may not verify after a torn write), zeroes
/// everything from byte `keep` on — committed bytes are a pure prefix, so
/// this reconstructs exactly the committed page — and checks the result
/// against the digest the commit record vouched for.  A mismatch means
/// the committed prefix itself is damaged (e.g. a flipped bit), which
/// recovery must surface, never re-checksum into validity.
fn restore_boundary_page<B: StorageBackend>(
    pager: &mut Pager<B>,
    last: PageId,
    keep: usize,
    committed_digest: u64,
) -> io::Result<()> {
    let mut page = pager.read_page_raw(last)?;
    page[keep..].fill(0);
    let actual = crate::pager::fnv1a64(&page[..]);
    if actual != committed_digest {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            crate::pager::ChecksumMismatch {
                page: last.0,
                expected: committed_digest,
                actual,
            },
        ));
    }
    pager.write_page(last, &page)
}

/// Rolls the data and index files back to exactly the committed boundary.
///
/// Idempotent: every step either truncates to a fixed length or rewrites
/// a page to content derived purely from the commit record and committed
/// bytes, so a crash *during* recovery just means recovery runs again.
fn recover<B: StorageBackend>(
    data: &mut Pager<B>,
    idx: &mut Pager<B>,
    to: HeapRecoverPoint,
) -> io::Result<()> {
    // Data file: keep the pages holding bytes [0, tail); restore the
    // boundary page.
    let data_pages = to.tail.div_ceil(PAGE_SIZE as u64);
    data.truncate_logical(data_pages)?;
    if data_pages > 0 {
        let keep = (to.tail - (data_pages - 1) * PAGE_SIZE as u64) as usize;
        restore_boundary_page(data, PageId(data_pages - 1), keep, to.dat_digest)?;
    }

    // Index file: header page + entry pages for `rows` entries.
    let idx_pages = idx_pages_for_rows(to.rows);
    idx.truncate_logical(idx_pages)?;
    if to.rows > 0 {
        let entry_end = IDX_ENTRIES + to.rows * 8;
        let keep = (entry_end - (idx_pages - 1) * PAGE_SIZE as u64) as usize;
        restore_boundary_page(idx, PageId(idx_pages - 1), keep, to.idx_digest)?;
    }

    // The header is rebuilt from the commit record, not trusted from disk
    // (it is rewritten on every append, so a torn write may have hit it).
    let mut header = crate::pager::zeroed_page();
    header[H_MAGIC as usize..H_MAGIC as usize + 8].copy_from_slice(&IDX_MAGIC.to_le_bytes());
    header[H_COUNT as usize..H_COUNT as usize + 8].copy_from_slice(&to.rows.to_le_bytes());
    header[H_TAIL as usize..H_TAIL as usize + 8].copy_from_slice(&to.tail.to_le_bytes());
    idx.write_page(PageId(0), &header)?;
    Ok(())
}

impl<B: StorageBackend> HeapFile<B> {
    /// Opens a heap file over explicit backends.
    ///
    /// With `recover_to` set, the files are first rolled back to that
    /// committed boundary (see [`crate::diskbbs::DiskDeployment`] for
    /// where the boundary comes from).
    pub fn open_with(
        dat: B,
        idxb: B,
        data_cache_pages: usize,
        idx_cache_pages: usize,
        recover_to: Option<HeapRecoverPoint>,
    ) -> io::Result<Self> {
        let mut data_pager = Pager::new(dat)?;
        let mut idx_pager = Pager::new(idxb)?;
        if let Some(to) = recover_to {
            recover(&mut data_pager, &mut idx_pager, to)?;
        }
        let data = PageCache::new(data_pager, data_cache_pages);
        let mut idx = PageCache::new(idx_pager, idx_cache_pages);

        let (count, tail) = if idx.page_count() == 0 {
            bytes::write_u64(&mut idx, H_MAGIC, IDX_MAGIC)?;
            bytes::write_u64(&mut idx, H_COUNT, 0)?;
            bytes::write_u64(&mut idx, H_TAIL, 0)?;
            (0, 0)
        } else {
            let magic = bytes::read_u64(&mut idx, H_MAGIC)?;
            if magic != IDX_MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not a BBS heap-file index",
                ));
            }
            (
                bytes::read_u64(&mut idx, H_COUNT)?,
                bytes::read_u64(&mut idx, H_TAIL)?,
            )
        };
        Ok(HeapFile {
            data,
            idx,
            count,
            tail,
        })
    }

    /// Number of stored transactions.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True if no transactions are stored.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Size of the data file's used portion, in bytes.
    pub fn data_bytes(&self) -> u64 {
        self.tail
    }

    /// Cache statistics of the data file (the interesting ones for probe
    /// vs scan comparisons).
    pub fn data_cache_stats(&self) -> CacheStats {
        self.data.stats()
    }

    /// Appends a transaction; returns its row position.
    pub fn append(&mut self, txn: &Transaction) -> io::Result<u64> {
        let row = self.count;
        let offset = self.tail;
        // Record body.
        bytes::write_u64(&mut self.data, offset, txn.tid.0)?;
        bytes::write_u32(&mut self.data, offset + 8, txn.items.len() as u32)?;
        let mut at = offset + 12;
        for item in txn.items.items() {
            bytes::write_u32(&mut self.data, at, item.0)?;
            at += 4;
        }
        // Index entry + header update.
        bytes::write_u64(&mut self.idx, IDX_ENTRIES + row * 8, offset)?;
        self.count += 1;
        self.tail = at;
        bytes::write_u64(&mut self.idx, H_COUNT, self.count)?;
        bytes::write_u64(&mut self.idx, H_TAIL, self.tail)?;
        Ok(row)
    }

    /// Byte offset of a row in the data file.
    fn offset_of(&mut self, row: u64) -> io::Result<u64> {
        bytes::read_u64(&mut self.idx, IDX_ENTRIES + row * 8)
    }

    fn read_record_at(&mut self, offset: u64) -> io::Result<(Transaction, u64)> {
        let tid = bytes::read_u64(&mut self.data, offset)?;
        let n = bytes::read_u32(&mut self.data, offset + 8)? as usize;
        let mut raw = vec![0u8; n * 4];
        bytes::read_bytes(&mut self.data, offset + 12, &mut raw)?;
        let items: Vec<ItemId> = raw
            .chunks_exact(4)
            .map(|c| ItemId(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
            .collect();
        Ok((
            Transaction::new(tid, Itemset::from_items(items)),
            offset + 12 + (n as u64) * 4,
        ))
    }

    /// Fetches one transaction by row position (a probe: the positional
    /// index resolves the offset, then the record pages are read).
    ///
    /// # Panics
    /// Panics if `row >= len()`.
    pub fn get(&mut self, row: u64) -> io::Result<Transaction> {
        assert!(row < self.count, "row {row} out of range ({})", self.count);
        let offset = self.offset_of(row)?;
        Ok(self.read_record_at(offset)?.0)
    }

    /// Sequentially scans every record in file order.
    pub fn for_each(&mut self, f: impl FnMut(u64, &Transaction)) -> io::Result<()> {
        self.for_each_prefix(self.count, f)
    }

    /// Sequentially scans the first `rows` records in file order — the
    /// snapshot-clamped scan: records are append-only and immutable, so the
    /// prefix is exactly the database as of the moment it was `rows` long.
    ///
    /// # Panics
    /// Panics if `rows > len()`.
    pub fn for_each_prefix(
        &mut self,
        rows: u64,
        mut f: impl FnMut(u64, &Transaction),
    ) -> io::Result<()> {
        assert!(rows <= self.count, "prefix {rows} > {} rows", self.count);
        let mut offset = 0u64;
        for row in 0..rows {
            let (txn, next) = self.read_record_at(offset)?;
            f(row, &txn);
            offset = next;
        }
        Ok(())
    }

    /// Loads the full contents into an in-memory [`bbs_tdb::TransactionDb`]
    /// (the substrate the miners run against).
    pub fn load(&mut self) -> io::Result<bbs_tdb::TransactionDb> {
        self.load_prefix(self.count)
    }

    /// Loads the first `rows` records into an in-memory
    /// [`bbs_tdb::TransactionDb`] (see [`HeapFile::for_each_prefix`]).
    pub fn load_prefix(&mut self, rows: u64) -> io::Result<bbs_tdb::TransactionDb> {
        let mut db = bbs_tdb::TransactionDb::new();
        self.for_each_prefix(rows, |_, txn| {
            db.push(txn.clone());
        })?;
        Ok(db)
    }

    /// Flushes both files.
    pub fn flush(&mut self) -> io::Result<()> {
        self.data.flush()?;
        self.idx.flush()
    }

    /// Digests of the two boundary pages as they stand right now.
    ///
    /// Called at commit time, when the cached content *is* the content
    /// being committed: bytes past the tail (resp. past the last index
    /// entry) inside the boundary page are zero, so these digests equal
    /// what recovery will reconstruct.  Zero when the file is empty.
    pub(crate) fn boundary_digests(&mut self) -> io::Result<(u64, u64)> {
        let dat = if self.tail == 0 {
            0
        } else {
            let last = PageId((self.tail - 1) / PAGE_SIZE as u64);
            self.data.with_page(last, |p| crate::pager::fnv1a64(p))?
        };
        let idx = if self.count == 0 {
            0
        } else {
            let entry_end = IDX_ENTRIES + self.count * 8;
            let last = PageId((entry_end - 1) / PAGE_SIZE as u64);
            self.idx.with_page(last, |p| crate::pager::fnv1a64(p))?
        };
        Ok((dat, idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bbs_heap_{}_{}", std::process::id(), name));
        p
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            HeapFile::remove_files(&self.0).ok();
        }
    }

    fn txn(tid: u64, items: &[u32]) -> Transaction {
        Transaction::new(tid, Itemset::from_values(items))
    }

    #[test]
    fn append_get_roundtrip() {
        let b = base("roundtrip");
        let _g = Cleanup(b.clone());
        let mut heap = HeapFile::open(&b, 8, 4).expect("open");
        assert!(heap.is_empty());
        heap.append(&txn(100, &[1, 2, 3])).expect("append");
        heap.append(&txn(200, &[9])).expect("append");
        assert_eq!(heap.len(), 2);
        assert_eq!(heap.get(0).expect("get"), txn(100, &[1, 2, 3]));
        assert_eq!(heap.get(1).expect("get"), txn(200, &[9]));
    }

    #[test]
    fn survives_reopen() {
        let b = base("reopen");
        let _g = Cleanup(b.clone());
        {
            let mut heap = HeapFile::open(&b, 8, 4).expect("open");
            for i in 0..50 {
                heap.append(&txn(i, &[i as u32, i as u32 + 1])).expect("append");
            }
            heap.flush().expect("flush");
        }
        let mut heap = HeapFile::open(&b, 8, 4).expect("reopen");
        assert_eq!(heap.len(), 50);
        assert_eq!(heap.get(49).expect("get"), txn(49, &[49, 50]));
        // Appending after reopen continues the sequence.
        heap.append(&txn(50, &[7])).expect("append");
        assert_eq!(heap.len(), 51);
        assert_eq!(heap.get(50).expect("get"), txn(50, &[7]));
    }

    #[test]
    fn records_spanning_pages() {
        let b = base("spanning");
        let _g = Cleanup(b.clone());
        let mut heap = HeapFile::open(&b, 8, 4).expect("open");
        // A record of ~2000 items is ~8 KB: guaranteed to span pages.
        let big: Vec<u32> = (0..2000).collect();
        heap.append(&txn(1, &big)).expect("append");
        heap.append(&txn(2, &[5])).expect("append");
        assert_eq!(heap.get(0).expect("get").items.len(), 2000);
        assert_eq!(heap.get(1).expect("get"), txn(2, &[5]));
    }

    #[test]
    fn scan_visits_in_order() {
        let b = base("scan");
        let _g = Cleanup(b.clone());
        let mut heap = HeapFile::open(&b, 8, 4).expect("open");
        for i in 0..20 {
            heap.append(&txn(i * 10, &[i as u32])).expect("append");
        }
        let mut seen = Vec::new();
        heap.for_each(|row, t| seen.push((row, t.tid.0))).expect("scan");
        assert_eq!(seen.len(), 20);
        assert!(seen.iter().enumerate().all(|(i, &(r, tid))| r == i as u64 && tid == i as u64 * 10));
    }

    #[test]
    fn load_matches_in_memory_db() {
        let b = base("load");
        let _g = Cleanup(b.clone());
        let mut heap = HeapFile::open(&b, 8, 4).expect("open");
        let txns = vec![txn(5, &[1, 2]), txn(6, &[3]), txn(7, &[1, 3, 9])];
        for t in &txns {
            heap.append(t).expect("append");
        }
        let db = heap.load().expect("load");
        assert_eq!(db.transactions(), &txns[..]);
    }

    #[test]
    fn probes_hit_cache_on_repeat() {
        let b = base("probecache");
        let _g = Cleanup(b.clone());
        let mut heap = HeapFile::open(&b, 64, 4).expect("open");
        for i in 0..200 {
            heap.append(&txn(i, &[i as u32, (i + 1) as u32])).expect("append");
        }
        heap.flush().expect("flush");
        let misses_before = heap.data_cache_stats().misses;
        heap.get(100).expect("probe");
        heap.get(100).expect("probe again");
        let stats = heap.data_cache_stats();
        // The second probe must be all hits.
        assert!(stats.misses <= misses_before + 1, "{stats:?}");
        assert!(stats.hits > 0);
    }

    #[test]
    fn rejects_foreign_index_file() {
        let b = base("foreign");
        let _g = Cleanup(b.clone());
        // Two physical pages: the first is read as a checksum page, the
        // second as data — garbage in both means a failed magic check or a
        // checksum mismatch, never silent adoption.
        std::fs::write(b.with_extension("idx"), vec![0xFFu8; 2 * PAGE_SIZE]).expect("write");
        std::fs::write(b.with_extension("dat"), Vec::<u8>::new()).expect("write");
        assert!(HeapFile::open(&b, 4, 4).is_err());
    }
}
