//! Byte-granular access on top of the page cache: reads and writes at
//! arbitrary file offsets, transparently spanning page boundaries.

use crate::backend::StorageBackend;
use crate::cache::PageCache;
use crate::pager::{PageId, PAGE_SIZE};
use std::io;

/// Reads `out.len()` bytes starting at byte `offset`.
pub fn read_bytes<B: StorageBackend>(cache: &mut PageCache<B>, mut offset: u64, mut out: &mut [u8]) -> io::Result<()> {
    while !out.is_empty() {
        let page = PageId(offset / PAGE_SIZE as u64);
        let within = (offset % PAGE_SIZE as u64) as usize;
        let take = out.len().min(PAGE_SIZE - within);
        let (head, rest) = out.split_at_mut(take);
        cache.read_at(page, within, head)?;
        out = rest;
        offset += take as u64;
    }
    Ok(())
}

/// Writes `data` starting at byte `offset`.
pub fn write_bytes<B: StorageBackend>(cache: &mut PageCache<B>, mut offset: u64, mut data: &[u8]) -> io::Result<()> {
    while !data.is_empty() {
        let page = PageId(offset / PAGE_SIZE as u64);
        let within = (offset % PAGE_SIZE as u64) as usize;
        let take = data.len().min(PAGE_SIZE - within);
        cache.write_at(page, within, &data[..take])?;
        data = &data[take..];
        offset += take as u64;
    }
    Ok(())
}

/// Reads a little-endian `u64` at `offset`.
pub fn read_u64<B: StorageBackend>(cache: &mut PageCache<B>, offset: u64) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    read_bytes(cache, offset, &mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a little-endian `u64` at `offset`.
pub fn write_u64<B: StorageBackend>(cache: &mut PageCache<B>, offset: u64, v: u64) -> io::Result<()> {
    write_bytes(cache, offset, &v.to_le_bytes())
}

/// Reads a little-endian `u32` at `offset`.
pub fn read_u32<B: StorageBackend>(cache: &mut PageCache<B>, offset: u64) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    read_bytes(cache, offset, &mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes a little-endian `u32` at `offset`.
pub fn write_u32<B: StorageBackend>(cache: &mut PageCache<B>, offset: u64, v: u32) -> io::Result<()> {
    write_bytes(cache, offset, &v.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    fn cache(name: &str) -> (PageCache, std::path::PathBuf) {
        let mut p = std::env::temp_dir();
        p.push(format!("bbs_bytes_{}_{}", std::process::id(), name));
        let pager = Pager::open(&p).expect("open");
        (PageCache::new(pager, 4), p)
    }

    #[test]
    fn cross_page_roundtrip() {
        let (mut c, path) = cache("cross");
        let data: Vec<u8> = (0..(PAGE_SIZE * 2 + 100)).map(|i| (i % 251) as u8).collect();
        write_bytes(&mut c, (PAGE_SIZE - 50) as u64, &data).expect("write");
        let mut got = vec![0u8; data.len()];
        read_bytes(&mut c, (PAGE_SIZE - 50) as u64, &mut got).expect("read");
        assert_eq!(got, data);
        drop(c);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn integer_helpers() {
        let (mut c, path) = cache("ints");
        // Place a u64 straddling the first page boundary.
        write_u64(&mut c, (PAGE_SIZE - 3) as u64, 0xDEAD_BEEF_CAFE_F00D).expect("write");
        write_u32(&mut c, 0, 77).expect("write");
        assert_eq!(
            read_u64(&mut c, (PAGE_SIZE - 3) as u64).expect("read"),
            0xDEAD_BEEF_CAFE_F00D
        );
        assert_eq!(read_u32(&mut c, 0).expect("read"), 77);
        drop(c);
        std::fs::remove_file(path).ok();
    }
}
