//! The durable deletion slice: tombstones for the dynamic workload.
//!
//! The paper's index is append-only; §3.4's constraint-slice trick is what
//! makes deletes cheap anyway — a *deletion bit-slice* (one bit per row,
//! set when the row is tombstoned) is AND-NOTed into every `CountItemSet`,
//! so dead rows stop counting the instant the delete commits, and the
//! slice files themselves are rewritten lazily by compaction.
//!
//! `<base>.del` is the durable form: an append-only log of checksummed
//! delete records, replayed into an in-memory bitmap on open.  It is
//! crash-safe exactly like the dedup window ([`crate::dedup::DedupLog`]):
//! each record is stamped with the commit sequence it belongs to, written
//! *after* the data files sync and *before* the commit record, so a record
//! is durable iff its commit landed, and debris past the last committed
//! sequence is truncated on open.
//!
//! # Record format
//!
//! ```text
//! body_len u32 | body | fnv1a64(body) u64
//! body := seq u64 | n u32 | n × (row u64)
//! ```
//!
//! Rows are *row numbers*, not TIDs: row numbering is contiguous from 0
//! and identical between a primary and its followers (that is the
//! replication invariant), so the log replays byte-for-byte identically on
//! every replica.  Compaction renumbers rows and therefore resets this
//! file to empty together with the heap rewrite.

use crate::backend::StorageBackend;
use crate::pager::fnv1a64;
use std::io::{self, Read};
use std::path::Path;
use std::sync::Arc;

/// Hard cap on one record's body, so a corrupt length prefix cannot ask
/// for an absurd allocation.
const MAX_BODY: u32 = 64 << 20;

/// An immutable snapshot of the tombstone bitmap, shared with readers.
///
/// `words[row / 64] >> (row % 64) & 1` is 1 iff the row is deleted.  Rows
/// beyond `words.len() * 64` are live (the bitmap only grows as far as the
/// highest tombstoned row).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeadMask {
    /// The bitmap, little-endian within each word (bit `row % 64` of
    /// `words[row / 64]`).
    pub words: Vec<u64>,
    /// Number of set bits — the count of tombstoned rows.
    pub deleted: u64,
}

impl DeadMask {
    /// Is `row` tombstoned?
    pub fn is_dead(&self, row: u64) -> bool {
        self.words
            .get((row / 64) as usize)
            .is_some_and(|w| w >> (row % 64) & 1 == 1)
    }
}

fn encode_record(seq: u64, rows: &[u64]) -> Vec<u8> {
    let mut body = Vec::with_capacity(12 + rows.len() * 8);
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for &row in rows {
        body.extend_from_slice(&row.to_le_bytes());
    }
    let mut buf = Vec::with_capacity(body.len() + 12);
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(&body);
    buf.extend_from_slice(&fnv1a64(&body).to_le_bytes());
    buf
}

/// Decodes one record body (already checksum-verified).  `None` on any
/// structural inconsistency.
fn decode_body(body: &[u8]) -> Option<(u64, Vec<u64>)> {
    if body.len() < 12 {
        return None;
    }
    let seq = u64::from_le_bytes(body[0..8].try_into().ok()?);
    let n = u32::from_le_bytes(body[8..12].try_into().ok()?) as usize;
    if body.len() != 12 + n * 8 {
        return None;
    }
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        rows.push(u64::from_le_bytes(
            body[12 + i * 8..20 + i * 8].try_into().ok()?,
        ));
    }
    Some((seq, rows))
}

/// The write side of one deployment's deletion log, plus the replayed
/// in-memory bitmap.
pub struct DelLog<B: StorageBackend> {
    backend: B,
    /// Append offset: the byte length of the valid prefix.
    tail_offset: u64,
    words: Vec<u64>,
    deleted: u64,
}

impl<B: StorageBackend> DelLog<B> {
    /// Opens the log, replaying the longest valid prefix of records
    /// stamped at or before `committed_seq` into the bitmap and truncating
    /// everything past it (a torn tail, or the record of a flush whose
    /// commit never landed).
    pub fn open(mut backend: B, committed_seq: u64) -> io::Result<Self> {
        let len = backend.len()?;
        let mut bytes = vec![0u8; len as usize];
        backend.read_at(0, &mut bytes)?;
        let mut log = DelLog {
            backend,
            tail_offset: 0,
            words: Vec::new(),
            deleted: 0,
        };
        let mut at = 0usize;
        while at + 4 <= bytes.len() {
            let body_len =
                u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
            if body_len > MAX_BODY as usize || at + 12 + body_len > bytes.len() {
                break; // torn tail
            }
            let body = &bytes[at + 4..at + 4 + body_len];
            let digest = u64::from_le_bytes(
                bytes[at + 4 + body_len..at + 12 + body_len]
                    .try_into()
                    .expect("8 bytes"),
            );
            if digest != fnv1a64(body) {
                break;
            }
            let Some((seq, rows)) = decode_body(body) else {
                break;
            };
            if seq > committed_seq {
                break; // debris of an uncommitted flush
            }
            for &row in &rows {
                log.mark(row);
            }
            at += 12 + body_len;
        }
        log.tail_offset = at as u64;
        if log.tail_offset != len {
            log.backend.set_len(log.tail_offset)?;
            log.backend.sync()?;
        }
        Ok(log)
    }

    fn mark(&mut self, row: u64) {
        let word = (row / 64) as usize;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let bit = 1u64 << (row % 64);
        if self.words[word] & bit == 0 {
            self.words[word] |= bit;
            self.deleted += 1;
        }
    }

    /// Marks rows in the in-memory bitmap only (no I/O) — used by the
    /// delete commit path, which needs the post-commit bitmap *before*
    /// the index flush stamps the counts file, while the durable record
    /// is written later in the flush ordering.  [`DelLog::record_synced`]
    /// re-marks idempotently.
    pub(crate) fn mark_rows(&mut self, rows: &[u64]) {
        for &row in rows {
            self.mark(row);
        }
    }

    /// Number of tombstoned rows.
    pub fn deleted(&self) -> u64 {
        self.deleted
    }

    /// Is `row` tombstoned?
    pub fn is_dead(&self, row: u64) -> bool {
        self.words
            .get((row / 64) as usize)
            .is_some_and(|w| w >> (row % 64) & 1 == 1)
    }

    /// An immutable snapshot of the current bitmap, for readers.
    pub fn mask(&self) -> Arc<DeadMask> {
        Arc::new(DeadMask {
            words: self.words.clone(),
            deleted: self.deleted,
        })
    }

    /// Durably appends the delete record of a flush about to commit as
    /// sequence `seq`, and marks the rows in the bitmap.  Must run after
    /// the data files are synced and before the commit record is written
    /// (see the module docs).  Rows already tombstoned are recorded but do
    /// not double-count.
    pub fn record_synced(&mut self, seq: u64, rows: &[u64]) -> io::Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        let buf = encode_record(seq, rows);
        self.backend.write_at(self.tail_offset, &buf)?;
        self.backend.sync()?;
        self.tail_offset += buf.len() as u64;
        for &row in rows {
            self.mark(row);
        }
        Ok(())
    }
}

/// Replays the committed prefix of a deletion log file into a bitmap,
/// without shared state — the read-side mirror of [`DelLog::open`], safe
/// to run concurrently with a writer appending (a torn tail fails its
/// checksum and ends the scan).  Records stamped past `upto_seq` are
/// ignored.  A missing file is an empty bitmap, not an error.
pub fn read_deletions(path: &Path, upto_seq: u64) -> io::Result<DeadMask> {
    let mut bytes = Vec::new();
    match std::fs::File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(DeadMask::default()),
        Err(e) => return Err(e),
    }
    let mut mask = DeadMask::default();
    let mut at = 0usize;
    while at + 4 <= bytes.len() {
        let body_len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        if body_len > MAX_BODY as usize || at + 12 + body_len > bytes.len() {
            break;
        }
        let body = &bytes[at + 4..at + 4 + body_len];
        let digest = u64::from_le_bytes(
            bytes[at + 4 + body_len..at + 12 + body_len]
                .try_into()
                .expect("8 bytes"),
        );
        if digest != fnv1a64(body) {
            break;
        }
        let Some((seq, rows)) = decode_body(body) else {
            break;
        };
        if seq > upto_seq {
            break;
        }
        for &row in &rows {
            let word = (row / 64) as usize;
            if word >= mask.words.len() {
                mask.words.resize(word + 1, 0);
            }
            let bit = 1u64 << (row % 64);
            if mask.words[word] & bit == 0 {
                mask.words[word] |= bit;
                mask.deleted += 1;
            }
        }
        at += 12 + body_len;
    }
    Ok(mask)
}

/// Read-only integrity scan of raw deletion-log bytes, for `bbs fsck`.
///
/// A torn tail and debris stamped past the committed sequence are normal
/// (open truncates them); the problems reported are the ones open cannot
/// heal: a corrupt record strictly *inside* the committed stream
/// (detectable because valid committed records still follow it), or a
/// committed record tombstoning rows at or past the committed row count.
pub(crate) fn scan_del_problems(
    bytes: &[u8],
    committed_seq: u64,
    committed_rows: u64,
) -> Vec<String> {
    let mut problems = Vec::new();
    let mut at = 0usize;
    let mut pending_corrupt: Option<usize> = None;
    let mut saw_debris = false;
    while at + 4 <= bytes.len() {
        let body_len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        if body_len > MAX_BODY as usize || at + 12 + body_len > bytes.len() {
            break; // torn tail: healed on open
        }
        let body = &bytes[at + 4..at + 4 + body_len];
        let digest = u64::from_le_bytes(
            bytes[at + 4 + body_len..at + 12 + body_len]
                .try_into()
                .expect("8 bytes"),
        );
        let decoded = if digest == fnv1a64(body) {
            decode_body(body)
        } else {
            None
        };
        let Some((seq, rows)) = decoded else {
            pending_corrupt.get_or_insert(at);
            at += 12 + body_len;
            continue;
        };
        if seq > committed_seq {
            saw_debris = true;
            at += 12 + body_len;
            continue;
        }
        if let Some(corrupt) = pending_corrupt.take() {
            problems.push(format!(
                "deletion log: corrupt record at byte {corrupt} inside the committed stream"
            ));
        }
        if saw_debris {
            problems.push(format!(
                "deletion log: committed record at byte {at} follows uncommitted debris"
            ));
            saw_debris = false;
        }
        if let Some(&bad) = rows.iter().find(|&&r| r >= committed_rows) {
            problems.push(format!(
                "deletion log: record at byte {at} tombstones row {bad} past committed rows {committed_rows}"
            ));
        }
        at += 12 + body_len;
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    #[test]
    fn roundtrip_and_reopen() {
        let mut mem = MemBackend::new();
        {
            let mut log = DelLog::open(&mut mem, 0).expect("open");
            log.record_synced(1, &[3, 70]).expect("a");
            log.record_synced(2, &[5]).expect("b");
            assert_eq!(log.deleted(), 3);
            assert!(log.is_dead(70) && !log.is_dead(4));
        }
        let log = DelLog::open(&mut mem, 2).expect("reopen");
        assert_eq!(log.deleted(), 3);
        assert!(log.is_dead(3) && log.is_dead(5) && log.is_dead(70));
    }

    #[test]
    fn uncommitted_records_are_debris_on_open() {
        let mut mem = MemBackend::new();
        {
            let mut log = DelLog::open(&mut mem, 0).expect("open");
            log.record_synced(1, &[1]).expect("a");
            log.record_synced(2, &[2]).expect("b"); // commit 2 "never landed"
        }
        let before = mem.len().expect("len");
        let log = DelLog::open(&mut mem, 1).expect("reopen");
        assert_eq!(log.deleted(), 1);
        assert!(!log.is_dead(2));
        assert!(mem.len().expect("len") < before, "debris truncated");
    }

    #[test]
    fn torn_tail_is_discarded() {
        let mut mem = MemBackend::new();
        {
            let mut log = DelLog::open(&mut mem, 0).expect("open");
            log.record_synced(1, &[1]).expect("a");
            log.record_synced(2, &[2, 3, 4]).expect("b");
        }
        let len = mem.len().expect("len");
        mem.set_len(len - 3).expect("tear");
        let log = DelLog::open(&mut mem, 2).expect("reopen");
        assert_eq!(log.deleted(), 1);
    }

    #[test]
    fn repeated_rows_count_once() {
        let mut mem = MemBackend::new();
        let mut log = DelLog::open(&mut mem, 0).expect("open");
        log.record_synced(1, &[7]).expect("a");
        log.record_synced(2, &[7, 8]).expect("b");
        assert_eq!(log.deleted(), 2);
    }

    #[test]
    fn scan_flags_corruption_inside_committed_stream() {
        let mut mem = MemBackend::new();
        {
            let mut log = DelLog::open(&mut mem, 0).expect("open");
            log.record_synced(1, &[1]).expect("a");
            log.record_synced(2, &[2]).expect("b");
        }
        let len = mem.len().expect("len");
        let mut bytes = vec![0u8; len as usize];
        mem.read_at(0, &mut bytes).expect("read");
        // Flip a bit inside the first record's body.
        bytes[6] ^= 1;
        let problems = scan_del_problems(&bytes, 2, 10);
        assert!(
            problems.iter().any(|p| p.contains("corrupt record")),
            "{problems:?}"
        );
        // Clean bytes: no problems, and rows past committed are flagged.
        let mut clean = vec![0u8; len as usize];
        mem.read_at(0, &mut clean).expect("read");
        assert!(scan_del_problems(&clean, 2, 10).is_empty());
        assert!(!scan_del_problems(&clean, 2, 2).is_empty());
    }
}
