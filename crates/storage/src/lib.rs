//! Durable storage for the BBS reproduction.
//!
//! The paper's structures are disk files: the database is scanned or probed
//! through a positional index, and the BBS itself "is stored as slices".
//! This crate provides that layer for real:
//!
//! * [`pager`] — fixed-size page I/O over a file, with physical counters;
//! * [`cache`] — a bounded LRU page cache (write-back, dirty eviction);
//! * [`bytes`] — byte-granular access spanning page boundaries;
//! * [`heapfile`] — the append-only transaction store + positional index
//!   (§3.2's probe index);
//! * [`slicefile`] — the chunk-major on-disk slice file: `CountItemSet`
//!   reads only the selected slices' pages;
//! * [`diskbbs`] — the durable index ([`DiskBbs`]) and a row-aligned
//!   database+index pair ([`DiskDeployment`]): append incrementally,
//!   survive restarts, load to memory to mine, or count in place through
//!   the cache;
//! * [`adhoc`] — §4.9's ad-hoc queries answered entirely from the files
//!   (slice-page estimates + heap-file probes, no load phase).
//! * [`snapshot`] — epoch-stamped snapshot isolation over a deployment:
//!   one group-committing writer, any number of immutable read snapshots
//!   (the storage substrate of the `bbs-server` daemon).
//! * [`backend`] — the physical-I/O abstraction ([`StorageBackend`]) every
//!   structure above is generic over, including the fault-injection
//!   backend the crash tests drive.
//!
//! # Crash safety
//!
//! Every page carries an FNV-1a checksum verified on read ([`pager`]), a
//! deployment's durability boundary is a checksummed commit record written
//! last ([`diskbbs`]), and opening a deployment rolls every file back to
//! exactly the committed state — torn or interrupted writes heal, flipped
//! bits surface as [`ChecksumMismatch`], never as data.
//! [`DiskDeployment::verify`] is the read-only integrity check behind
//! `bbs fsck`.
//!
//! The in-memory crates stay the mining substrate; this crate feeds them
//! ([`HeapFile::load`] → `TransactionDb`, [`DiskBbs::load`] → `Bbs`) and
//! makes the paper's persistence claims mechanically checkable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adhoc;
pub mod backend;
pub mod bytes;
pub mod cache;
mod commit;
pub mod dedup;
pub mod del;
pub mod diskbbs;
pub mod heapfile;
pub mod maintain;
pub mod mine;
pub mod pager;
pub mod replog;
pub mod slicefile;
pub mod snapshot;

pub use adhoc::{DiskAdhocEngine, DiskQueryStats};
pub use backend::{
    disk_full_error, is_disk_full, BitFlip, CrashMode, DynBackend, FaultInjector, FaultPlan,
    FileBackend, MemBackend, SharedFaultPlan, StorageBackend, WriteFault,
};
pub use cache::{CacheStats, PageCache};
pub use dedup::{DedupLog, DedupReceipt};
pub use del::{read_deletions, DeadMask, DelLog};
pub use diskbbs::{
    deployment_paths, DeploymentBackends, DeploymentPaths, DiskBbs, DiskCounter, DiskDeployment,
    PageCorruption, VerifyReport, DEFAULT_DEDUP_WINDOW,
};
pub use heapfile::HeapFile;
pub use maintain::{
    compact_deployment, compact_deployment_hooked, finish_pending_swap, fold_deployment,
    fold_deployment_hooked, MaintainReport, SwapHook,
};
pub use mine::{mine_in_place, DiskMineStats};
pub use pager::{
    checksum_mismatch, fnv1a64, ChecksumMismatch, PageId, Pager, PagerStats, PAGE_SIZE,
};
pub use replog::{read_entries, ReplEntry, ReplLog, ReplRead};
pub use slicefile::{HotStats, SliceFile, CHUNK_ROWS};
pub use snapshot::{BackendFactory, CommitReceipt, SharedDeployment, Snapshot, WriterProfile};
