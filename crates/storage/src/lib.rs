//! Durable storage for the BBS reproduction.
//!
//! The paper's structures are disk files: the database is scanned or probed
//! through a positional index, and the BBS itself "is stored as slices".
//! This crate provides that layer for real:
//!
//! * [`pager`] — fixed-size page I/O over a file, with physical counters;
//! * [`cache`] — a bounded LRU page cache (write-back, dirty eviction);
//! * [`bytes`] — byte-granular access spanning page boundaries;
//! * [`heapfile`] — the append-only transaction store + positional index
//!   (§3.2's probe index);
//! * [`slicefile`] — the chunk-major on-disk slice file: `CountItemSet`
//!   reads only the selected slices' pages;
//! * [`diskbbs`] — the durable index ([`DiskBbs`]) and a row-aligned
//!   database+index pair ([`DiskDeployment`]): append incrementally,
//!   survive restarts, load to memory to mine, or count in place through
//!   the cache;
//! * [`adhoc`] — §4.9's ad-hoc queries answered entirely from the files
//!   (slice-page estimates + heap-file probes, no load phase).
//!
//! The in-memory crates stay the mining substrate; this crate feeds them
//! ([`HeapFile::load`] → `TransactionDb`, [`DiskBbs::load`] → `Bbs`) and
//! makes the paper's persistence claims mechanically checkable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adhoc;
pub mod bytes;
pub mod cache;
pub mod diskbbs;
pub mod heapfile;
pub mod pager;
pub mod slicefile;

pub use adhoc::{DiskAdhocEngine, DiskQueryStats};
pub use cache::{CacheStats, PageCache};
pub use diskbbs::{DiskBbs, DiskDeployment};
pub use heapfile::HeapFile;
pub use pager::{PageId, Pager, PagerStats, PAGE_SIZE};
pub use slicefile::{SliceFile, CHUNK_ROWS};
