//! Snapshot-isolated concurrent access to a [`DiskDeployment`] — the
//! storage substrate of the `bbs-server` daemon.
//!
//! A [`SharedDeployment`] splits the deployment into one **writer** (the
//! mutable [`DiskDeployment`], serialised behind a mutex — in the server
//! this is only ever touched by the committer thread) and a published
//! chain of immutable **[`Snapshot`]s**.  Each snapshot is an independent
//! read-only handle pair (a [`DiskBbs`] over the slice/counts files and a
//! [`HeapFile`] over the data/index files) opened at a committed row
//! count, stamped with a monotonically increasing *epoch*.
//!
//! # Isolation protocol
//!
//! Three mechanisms compose into snapshot isolation:
//!
//! 1. **Commit-fenced file I/O.**  The on-disk files only change inside
//!    [`SharedDeployment::commit`], which holds the write side of an
//!    `RwLock` while it appends, flushes and syncs.  Every snapshot read
//!    (a page fetch during a count, probe or load) holds the read side,
//!    so a reader can never see a page and its checksum mid-update — no
//!    spurious [`crate::ChecksumMismatch`], no torn page content.
//! 2. **Append-only content + the snapshot clamp.**  Between commits a
//!    snapshot's pages are stable, but a *later* commit does extend the
//!    shared boundary pages in place (appends only OR bits into slice
//!    pages and extend the heap tail).  Committed bytes/bits are never
//!    rewritten, so a record or row below the snapshot's row count is
//!    immutable forever; and the slice-file reader clamps counting to the
//!    row count its header carried when it was opened, so newer bits in a
//!    re-read (or hot-decoded) boundary page are invisible.  A snapshot
//!    therefore stays exact — not just "roughly consistent" — for as long
//!    as the caller keeps its `Arc` alive.
//! 3. **Publish-after-commit.**  A new snapshot is opened only after the
//!    commit record for its rows has landed, so every published epoch is
//!    durable: what a query observed is what a crash-recovered reopen
//!    would also serve.
//!
//! Queries on old snapshots keep answering from their epoch's prefix
//! while new commits land — the paper's "dynamic index" claim, made
//! mechanically checkable (see `tests/concurrent.rs`).

use crate::backend::{DynBackend, FileBackend, SharedFaultPlan, StorageBackend};
use crate::cache::CacheStats;
use crate::dedup::DedupReceipt;
use crate::del::DeadMask;
use crate::diskbbs::{
    deployment_paths, DeploymentBackends, DiskBbs, DiskDeployment, DEFAULT_DEDUP_WINDOW,
};
use crate::heapfile::HeapFile;
use crate::maintain::MaintainReport;
use crate::pager::PagerStats;
use crate::slicefile::HotStats;
use bbs_core::Bbs;
use bbs_hash::ItemHasher;
use bbs_tdb::{Itemset, Transaction, TransactionDb};
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Opens one physical backend of the writer deployment: called once per
/// file (`tag` is `commit`/`dat`/`idx`/`slices`/`counts`/`dedup`/`log`/
/// `del`) at open and again whenever a poisoned writer is healed.  This
/// is how the chaos tests interpose a [`crate::FaultInjector`] under a
/// live server.
pub type BackendFactory =
    Arc<dyn Fn(&'static str, &Path) -> io::Result<DynBackend> + Send + Sync>;

/// An immutable, epoch-stamped read view of a deployment.
///
/// All methods take `&self`; internal synchronisation (the slice reader's
/// mutex, the heap handle's mutex, the shared I/O fence) makes a shared
/// `Arc<Snapshot>` safe to query from any number of threads.
pub struct Snapshot {
    epoch: u64,
    rows: u64,
    index: DiskBbs,
    heap: Mutex<HeapFile>,
    io: Arc<RwLock<()>>,
}

impl Snapshot {
    /// The commit epoch this snapshot observes (0 = the state at open).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Committed rows visible to this snapshot.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    fn heap(&self) -> MutexGuard<'_, HeapFile> {
        self.heap.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// `CountItemSet` at this epoch: the BBS estimate (an upper bound on
    /// the exact support, exact for the rows this snapshot covers).
    pub fn count(&self, items: &Itemset) -> io::Result<u64> {
        let _fence = self.io.read().unwrap_or_else(|e| e.into_inner());
        self.index.count_itemset(items)
    }

    /// [`Snapshot::count`] with the filter's early exit (`tau` semantics
    /// as in [`DiskBbs::count_itemset_bounded`]).
    pub fn count_bounded(&self, items: &Itemset, tau: u64) -> io::Result<u64> {
        let _fence = self.io.read().unwrap_or_else(|e| e.into_inner());
        self.index.count_itemset_bounded(items, tau)
    }

    /// Batched [`Snapshot::count`] over the shared-scan executor: one walk
    /// of the selected slice chunks serves the whole batch (see
    /// [`DiskBbs::count_itemsets`]).  Every itemset is counted at this
    /// snapshot's epoch; the results are identical to counting them one at
    /// a time.
    pub fn count_many(&self, itemsets: &[Itemset]) -> io::Result<Vec<u64>> {
        let _fence = self.io.read().unwrap_or_else(|e| e.into_inner());
        self.index.count_itemsets(itemsets, None)
    }

    /// [`Snapshot::count_many`] with the filter's early exit: each answer
    /// obeys the `tau` contract of [`DiskBbs::count_itemsets`] (exact when
    /// `≥ tau`, an upper bound otherwise).  The shard scatter path uses
    /// this to give every shard its scaled per-shard budget.
    pub fn count_many_bounded(
        &self,
        itemsets: &[Itemset],
        tau: Option<u64>,
    ) -> io::Result<Vec<u64>> {
        let _fence = self.io.read().unwrap_or_else(|e| e.into_inner());
        self.index.count_itemsets(itemsets, tau)
    }

    /// Exact support of a single item at this epoch (from the persisted
    /// counts the snapshot read at open).
    pub fn singleton_count(&self, item: bbs_tdb::ItemId) -> u64 {
        self.index.actual_singleton_count(item)
    }

    /// Tombstoned rows within this snapshot's prefix.
    pub fn deleted_rows(&self) -> u64 {
        self.index.deleted_rows()
    }

    /// Live (non-tombstoned) rows visible to this snapshot.
    pub fn live_rows(&self) -> u64 {
        self.rows - self.deleted_rows()
    }

    /// Is `row` tombstoned at this epoch?
    pub fn is_dead(&self, row: u64) -> bool {
        self.index.dead_mask().is_some_and(|d| d.is_dead(row))
    }

    /// Fetches one transaction by row position (`None` when the row is
    /// beyond this snapshot's committed prefix or tombstoned).
    pub fn probe(&self, row: u64) -> io::Result<Option<Transaction>> {
        if row >= self.rows || self.is_dead(row) {
            return Ok(None);
        }
        let _fence = self.io.read().unwrap_or_else(|e| e.into_inner());
        self.heap().get(row).map(Some)
    }

    /// Materialises this snapshot in memory: the transaction database and
    /// the BBS index, both clamped to the snapshot's rows — the substrate
    /// for an offline mining run that holds no locks while it mines.
    ///
    /// Tombstoned rows are excluded: the result is exactly what an
    /// offline rebuild from only the surviving transactions would
    /// produce, bit-for-bit (inserting a survivor sets the same slice
    /// bits regardless of the dead rows between them being skipped).
    pub fn load(&self) -> io::Result<(TransactionDb, Bbs)> {
        let _fence = self.io.read().unwrap_or_else(|e| e.into_inner());
        let Some(dead) = self.index.dead_mask().cloned() else {
            let db = self.heap().load_prefix(self.rows)?;
            let bbs = self.index.load()?;
            return Ok((db, bbs));
        };
        let mut db = TransactionDb::new();
        let mut bbs = Bbs::new(self.index.width(), Arc::clone(self.index.hasher()));
        let mut stats = bbs_tdb::IoStats::new();
        self.heap().for_each_prefix(self.rows, |row, txn| {
            if !dead.is_dead(row) {
                db.push(txn.clone());
                bbs.insert(txn, &mut stats);
            }
        })?;
        Ok((db, bbs))
    }

    /// Measures the live false-positive rate of the filter at this epoch:
    /// `samples` deterministic pseudo-random item pairs (seeded by `seed`)
    /// are counted through the index (the BBS estimate, an upper bound)
    /// and exactly (one heap scan over the live rows); the FPR is the
    /// fraction of non-matching live rows that the filter wrongly passed,
    /// `Σ(est − exact) / Σ(live − exact)`.  Returns `0.0` when there is
    /// nothing meaningful to probe.
    pub fn measure_fpr(&self, samples: usize, seed: u64) -> io::Result<f64> {
        let vocab = self.index.vocabulary();
        let live = self.live_rows();
        if vocab.len() < 2 || live == 0 || samples == 0 {
            return Ok(0.0);
        }
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut queries = Vec::with_capacity(samples);
        for _ in 0..samples {
            let a = vocab[(next() % vocab.len() as u64) as usize];
            let mut b = vocab[(next() % vocab.len() as u64) as usize];
            if b == a {
                b = vocab[(a.0 as usize + 1) % vocab.len()];
            }
            queries.push(Itemset::from_values(&[a.0, b.0]));
        }
        let estimates = self.count_many(&queries)?;
        let mut exact = vec![0u64; queries.len()];
        let dead = self.index.dead_mask().cloned();
        {
            let _fence = self.io.read().unwrap_or_else(|e| e.into_inner());
            self.heap().for_each_prefix(self.rows, |row, txn| {
                if dead.as_ref().is_none_or(|d| !d.is_dead(row)) {
                    for (i, q) in queries.iter().enumerate() {
                        if q.items().iter().all(|&it| txn.items.contains(it)) {
                            exact[i] += 1;
                        }
                    }
                }
            })?;
        }
        let mut false_pos = 0u64;
        let mut negatives = 0u64;
        for (est, ex) in estimates.iter().zip(&exact) {
            false_pos += est.saturating_sub(*ex);
            negatives += live - ex;
        }
        if negatives == 0 {
            return Ok(0.0);
        }
        Ok(false_pos as f64 / negatives as f64)
    }

    /// Page-cache counters of this snapshot's slice reader.
    pub fn cache_stats(&self) -> CacheStats {
        self.index.cache_stats()
    }

    /// Physical I/O counters of this snapshot's slice reader.
    pub fn pager_stats(&self) -> PagerStats {
        self.index.pager_stats()
    }

    /// Hot-slice cache counters of this snapshot's slice reader.
    pub fn hot_stats(&self) -> HotStats {
        self.index.hot_stats()
    }
}

/// Write-side counters published after every commit (copies of the
/// writer deployment's cache/pager/hot stats, plus commit accounting).
#[derive(Debug, Clone, Copy, Default)]
pub struct WriterProfile {
    /// Slice-cache counters of the writer's index.
    pub cache: CacheStats,
    /// Physical I/O counters of the writer's slice pager.
    pub pager: PagerStats,
    /// Hot-slice counters of the writer's index.
    pub hot: HotStats,
    /// Group commits performed.
    pub commits: u64,
    /// Transactions appended across all commits.
    pub appended: u64,
    /// Rows durable as of the last commit.
    pub committed_rows: u64,
    /// Rows tombstoned as of the last commit.
    pub deleted_rows: u64,
    /// Delete commits performed.
    pub deletes: u64,
}

/// The receipt of one group commit.
pub struct CommitReceipt {
    /// Row range the batch occupies.
    pub rows: Range<u64>,
    /// Epoch of the snapshot that first shows the batch.
    pub epoch: u64,
    /// That snapshot.
    pub snapshot: Arc<Snapshot>,
}

/// The receipt of one tombstone commit.
pub struct DeleteReceipt {
    /// Rows this commit actually tombstoned (already-dead and unknown
    /// TIDs are skipped).
    pub deleted: u64,
    /// Epoch of the snapshot that first hides them.
    pub epoch: u64,
    /// That snapshot.
    pub snapshot: Arc<Snapshot>,
}

/// A deployment shared between one committing writer and any number of
/// snapshot readers (see the module docs for the isolation protocol).
///
/// The writer slot is `None` while **poisoned**: a failed commit (torn
/// I/O, injected fault, disk full) discards the writer outright rather
/// than trusting its in-memory state, and the next write-side operation
/// *heals* it by reopening through the [`BackendFactory`] — which runs
/// the ordinary crash recovery, rolling the files back to the last
/// commit.  Snapshot readers never notice: they hold their own handles
/// and the committed prefix on disk is untouched by a failed commit.
pub struct SharedDeployment {
    writer: Mutex<Option<DiskDeployment<DynBackend>>>,
    factory: BackendFactory,
    io: Arc<RwLock<()>>,
    current: Mutex<Arc<Snapshot>>,
    epoch: AtomicU64,
    profile: Mutex<WriterProfile>,
    base: PathBuf,
    /// Signature width `m` — atomic because a fold halves it while
    /// readers and the stats path observe it.
    width: AtomicUsize,
    hasher: Arc<dyn ItemHasher>,
    cache_pages: usize,
    dedup_window: AtomicUsize,
    writer_heals: AtomicU64,
    /// Mirror of the writer's committed commit-sequence number, readable
    /// without the writer mutex — the cap the replication-log reader uses
    /// to hide entries whose commit record has not landed yet.
    committed_seq: AtomicU64,
}

/// The default factory: plain [`FileBackend`]s, boxed.
fn file_factory() -> BackendFactory {
    Arc::new(|_tag, path| Ok(Box::new(FileBackend::open(path)?) as DynBackend))
}

impl SharedDeployment {
    /// Opens (creating or crash-recovering as needed) the deployment at
    /// `base` and publishes the initial snapshot (epoch 0).
    ///
    /// The deployment is flushed once on open so the on-disk files are in
    /// a committed state before the first snapshot reader touches them.
    pub fn open(
        base: &Path,
        width: usize,
        hasher: Arc<dyn ItemHasher>,
        cache_pages: usize,
    ) -> io::Result<Arc<Self>> {
        Self::open_with_factory(base, width, hasher, cache_pages, file_factory())
    }

    /// [`SharedDeployment::open`] with every *writer* backend wrapped in a
    /// [`crate::FaultInjector`] driven by `plan` — the chaos harness's
    /// entry point.  Snapshot readers keep using plain file backends: the
    /// faults model a failing write path, and reads must keep serving.
    pub fn open_faulty(
        base: &Path,
        width: usize,
        hasher: Arc<dyn ItemHasher>,
        cache_pages: usize,
        plan: SharedFaultPlan,
    ) -> io::Result<Arc<Self>> {
        let factory: BackendFactory = Arc::new(move |tag, path| {
            Ok(Box::new(plan.wrap(tag, FileBackend::open(path)?)) as DynBackend)
        });
        Self::open_with_factory(base, width, hasher, cache_pages, factory)
    }

    /// [`SharedDeployment::open`] over an arbitrary [`BackendFactory`].
    pub fn open_with_factory(
        base: &Path,
        width: usize,
        hasher: Arc<dyn ItemHasher>,
        cache_pages: usize,
        factory: BackendFactory,
    ) -> io::Result<Arc<Self>> {
        // A fold may have halved the on-disk width since this deployment
        // was configured: the slice-file header is authoritative.
        let paths = deployment_paths(base);
        let width = crate::slicefile::header_width(&paths.slices)?.unwrap_or(width);
        let mut dep = open_writer(
            base,
            width,
            &hasher,
            cache_pages,
            &factory,
            DEFAULT_DEDUP_WINDOW,
        )?;
        dep.flush()?;
        let io = Arc::new(RwLock::new(()));
        let rows = dep.db.len();
        let committed_seq = dep.committed_seq();
        let dead = dep.dead_mask();
        let mut profile = WriterProfile {
            committed_rows: rows,
            deleted_rows: dep.deleted_rows(),
            ..WriterProfile::default()
        };
        copy_writer_stats(&dep, &mut profile);
        let shared = SharedDeployment {
            writer: Mutex::new(Some(dep)),
            factory,
            io: Arc::clone(&io),
            current: Mutex::new(Arc::new(open_snapshot_at(
                base,
                width,
                &hasher,
                cache_pages,
                io,
                0,
                rows,
                Some(dead),
            )?)),
            epoch: AtomicU64::new(0),
            profile: Mutex::new(profile),
            base: base.to_path_buf(),
            width: AtomicUsize::new(width),
            hasher,
            cache_pages,
            dedup_window: AtomicUsize::new(DEFAULT_DEDUP_WINDOW),
            writer_heals: AtomicU64::new(0),
            committed_seq: AtomicU64::new(committed_seq),
        };
        Ok(Arc::new(shared))
    }

    /// Current signature width `m` (changes when a fold runs).
    pub fn width(&self) -> usize {
        self.width.load(Ordering::Acquire)
    }

    /// The latest published snapshot (cheap: one mutex lock + `Arc` clone).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// The latest published epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Base path of the deployment's files (`<base>.*`).
    pub fn base(&self) -> &Path {
        &self.base
    }

    /// Sequence number of the last completed commit — readable without
    /// the writer mutex.  Entries of the replication log stamped past
    /// this are synced-but-uncommitted and must not be served.
    pub fn committed_seq(&self) -> u64 {
        self.committed_seq.load(Ordering::Acquire)
    }

    /// The published write-side counters.
    pub fn writer_profile(&self) -> WriterProfile {
        *self.profile.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Group-commits a batch of transactions: appends them all, makes them
    /// durable with one flush, then opens and publishes the next epoch's
    /// snapshot.
    ///
    /// Readers are excluded only while file bytes actually change (the
    /// append+flush under the I/O fence); the snapshot open afterwards
    /// runs concurrently with reads — the files are stable again by then,
    /// and no other commit can interleave because the writer mutex is
    /// still held.
    pub fn commit(&self, txns: &[Transaction]) -> io::Result<CommitReceipt> {
        self.commit_with(txns, &[])
    }

    /// [`SharedDeployment::commit`] that also records exactly-once
    /// receipts: each `(req_id, offset, len)` names the sub-batch of
    /// `txns` one producer contributed (`offset`/`len` in transactions,
    /// relative to the start of the batch).  The receipts become durable
    /// dedup-window entries atomically with the commit record; a retry of
    /// `req_id` is answered by [`SharedDeployment::dedup_lookup`].
    ///
    /// On any I/O failure the writer is poisoned and the error returned;
    /// nothing is published, already-committed rows stay served, and the
    /// next write-side call heals the writer by reopening (= rolling the
    /// files back to the last commit).
    pub fn commit_with(
        &self,
        txns: &[Transaction],
        receipts: &[(u64, u64, u64)],
    ) -> io::Result<CommitReceipt> {
        let mut guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let rows = {
            let _fence = self.io.write().unwrap_or_else(|e| e.into_inner());
            let writer = self.writer_or_heal(&mut guard)?;
            let attempt = (|| -> io::Result<Range<u64>> {
                let first = writer.db.len();
                for t in txns {
                    writer.append(t)?;
                }
                let entries: Vec<(u64, DedupReceipt)> = receipts
                    .iter()
                    .filter(|&&(req_id, _, _)| req_id != 0)
                    .map(|&(req_id, offset, len)| {
                        (
                            req_id,
                            DedupReceipt {
                                first_row: first + offset,
                                appended: len,
                            },
                        )
                    })
                    .collect();
                // The batch rides into the replication log with its
                // receipts, durable atomically with the commit record.
                writer.flush_logged(first, txns, &entries)?;
                Ok(first..writer.db.len())
            })();
            match attempt {
                Ok(rows) => {
                    let seq = guard.as_ref().expect("writer alive").committed_seq();
                    self.committed_seq.store(seq, Ordering::Release);
                    rows
                }
                Err(e) => {
                    // The in-memory writer may hold half a batch; drop it.
                    // Reopening later re-runs crash recovery against the
                    // commit record, which this failed commit never moved.
                    *guard = None;
                    return Err(e);
                }
            }
        };
        let epoch = self.epoch.load(Ordering::Acquire) + 1;
        let dead = guard.as_ref().expect("writer alive").dead_mask();
        let snapshot = Arc::new(self.open_snapshot(epoch, rows.end, Some(dead))?);
        debug_assert_eq!(snapshot.index.rows(), rows.end);
        {
            let mut p = self.profile.lock().unwrap_or_else(|e| e.into_inner());
            let writer = guard.as_ref().expect("writer alive");
            copy_writer_stats(writer, &mut p);
            p.commits += 1;
            p.appended += txns.len() as u64;
            p.committed_rows = rows.end;
            p.deleted_rows = writer.deleted_rows();
        }
        let mut current = self.current.lock().unwrap_or_else(|e| e.into_inner());
        *current = Arc::clone(&snapshot);
        self.epoch.store(epoch, Ordering::Release);
        drop(current);
        Ok(CommitReceipt {
            rows,
            epoch,
            snapshot,
        })
    }

    /// Tombstones the live rows holding `tids` and durably commits the
    /// deletion, then publishes the next epoch's snapshot (which masks
    /// them out of every count, probe and mine).  `req_id != 0` records
    /// an exactly-once receipt: a retried DELETE is answered from the
    /// dedup window without re-resolving (see
    /// [`SharedDeployment::dedup_lookup`] — delete receipts carry the
    /// sentinel row `u64::MAX` and the deleted count).
    ///
    /// Deletes commit synchronously and uncoalesced: they are rare next
    /// to inserts, and a dedicated commit record keeps recovery identical
    /// to the insert path.
    pub fn delete_tids(&self, tids: &[u64], req_id: u64) -> io::Result<DeleteReceipt> {
        self.delete_with(|writer| {
            let rows = writer.resolve_tids(tids)?;
            let receipts = if req_id != 0 {
                vec![(
                    req_id,
                    DedupReceipt {
                        first_row: u64::MAX,
                        appended: rows.len() as u64,
                    },
                )]
            } else {
                Vec::new()
            };
            writer.commit_deletes(&rows, &receipts)
        })
    }

    /// Row-addressed delete — the follower-apply path: tombstones `rows`
    /// exactly as a replicated delete entry dictates, recording the
    /// entry's receipts (pairs of `req_id, deleted-count`) so a promoted
    /// follower answers retried DELETEs with the original receipts.
    pub fn delete_rows(
        &self,
        rows: &[u64],
        receipts: &[(u64, u64)],
    ) -> io::Result<DeleteReceipt> {
        self.delete_with(|writer| {
            let entries: Vec<(u64, DedupReceipt)> = receipts
                .iter()
                .filter(|&&(req_id, _)| req_id != 0)
                .map(|&(req_id, n)| {
                    (
                        req_id,
                        DedupReceipt {
                            first_row: u64::MAX,
                            appended: n,
                        },
                    )
                })
                .collect();
            writer.commit_deletes(rows, &entries)
        })
    }

    /// Shared shell of the delete paths: run `op` on the healed writer
    /// under the I/O fence, poison on failure, then publish the next
    /// epoch's snapshot with the writer's post-commit tombstone bitmap.
    fn delete_with(
        &self,
        op: impl FnOnce(&mut DiskDeployment<DynBackend>) -> io::Result<u64>,
    ) -> io::Result<DeleteReceipt> {
        let mut guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let (deleted, rows_after, dead) = {
            let _fence = self.io.write().unwrap_or_else(|e| e.into_inner());
            let writer = self.writer_or_heal(&mut guard)?;
            match op(writer) {
                Ok(deleted) => {
                    let writer = guard.as_ref().expect("writer alive");
                    self.committed_seq
                        .store(writer.committed_seq(), Ordering::Release);
                    (deleted, writer.db.len(), writer.dead_mask())
                }
                Err(e) => {
                    *guard = None;
                    return Err(e);
                }
            }
        };
        let epoch = self.epoch.load(Ordering::Acquire) + 1;
        let snapshot = Arc::new(self.open_snapshot(epoch, rows_after, Some(dead))?);
        {
            let mut p = self.profile.lock().unwrap_or_else(|e| e.into_inner());
            let writer = guard.as_ref().expect("writer alive");
            copy_writer_stats(writer, &mut p);
            p.deletes += 1;
            p.deleted_rows = writer.deleted_rows();
        }
        let mut current = self.current.lock().unwrap_or_else(|e| e.into_inner());
        *current = Arc::clone(&snapshot);
        self.epoch.store(epoch, Ordering::Release);
        drop(current);
        Ok(DeleteReceipt {
            deleted,
            epoch,
            snapshot,
        })
    }

    /// Wipes every backing file and reopens empty — the follower
    /// wipe-resync path after the primary compacted (its row numbering
    /// restarted, so row-addressed replication cannot continue).  Readers
    /// holding old snapshots keep their file handles and stay consistent;
    /// a fresh (empty) snapshot is published at the next epoch.
    pub fn reset_files(&self) -> io::Result<()> {
        let mut guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        {
            let _fence = self.io.write().unwrap_or_else(|e| e.into_inner());
            *guard = None;
            DiskDeployment::remove_files(&self.base)?;
            let writer = self.writer_or_heal(&mut guard)?;
            writer.flush()?;
        }
        let epoch = self.epoch.load(Ordering::Acquire) + 1;
        let snapshot = Arc::new(self.open_snapshot(epoch, 0, None)?);
        {
            let mut p = self.profile.lock().unwrap_or_else(|e| e.into_inner());
            p.committed_rows = 0;
            p.deleted_rows = 0;
        }
        let mut current = self.current.lock().unwrap_or_else(|e| e.into_inner());
        *current = Arc::clone(&snapshot);
        self.epoch.store(epoch, Ordering::Release);
        Ok(())
    }

    /// Compacts the deployment online: rewrites the files with only the
    /// live rows (optionally re-hashed at `target_width`) behind the
    /// crash-safe staged swap of [`crate::maintain`], then reopens the
    /// writer and publishes the next epoch's snapshot.  Row numbering
    /// restarts, so followers of this deployment must wipe-resync.
    ///
    /// Reads are fenced out for the duration: the swap replaces files by
    /// rename, and a concurrent per-query reader opening the new files
    /// under an old snapshot's row clamp would count garbage.  Snapshots
    /// taken before the call stay pinned to the old file handles and
    /// must be discarded by the caller once this returns (see the
    /// engine's stale-pin accounting).
    pub fn compact(&self, target_width: Option<usize>) -> io::Result<MaintainReport> {
        self.maintain_with(|base, width, hasher, cache_pages| {
            crate::maintain::compact_deployment(base, width, hasher, target_width, cache_pages)
        })
    }

    /// Halves the slice width online by folding each slice `j` into
    /// `j + m/2` (bit-for-bit what re-hashing at `m/2` would build),
    /// behind the same crash-safe swap as [`SharedDeployment::compact`].
    /// Rows keep their numbers, so followers are unaffected.
    pub fn fold(&self) -> io::Result<MaintainReport> {
        self.maintain_with(|base, _width, hasher, cache_pages| {
            crate::maintain::fold_deployment(base, hasher, cache_pages)
        })
    }

    /// Shared shell of the online maintenance paths: flush and close the
    /// writer (the maintenance functions open the files themselves), run
    /// `op` under the I/O write fence, adopt the resulting width, reopen
    /// the writer, and publish the next epoch's snapshot.
    ///
    /// On failure the writer is left poisoned exactly like a failed
    /// commit: the maintenance functions never mutate the live files
    /// before their atomic swap, so the next write-side call heals by
    /// reopening the old (or fully-swapped new) state.
    fn maintain_with(
        &self,
        op: impl FnOnce(&Path, usize, Arc<dyn ItemHasher>, usize) -> io::Result<MaintainReport>,
    ) -> io::Result<MaintainReport> {
        let mut guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let (report, rows, dead) = {
            let _fence = self.io.write().unwrap_or_else(|e| e.into_inner());
            self.writer_or_heal(&mut guard)?.flush()?;
            *guard = None;
            let report = op(
                &self.base,
                self.width(),
                Arc::clone(&self.hasher),
                self.cache_pages,
            )?;
            self.width.store(report.width, Ordering::Release);
            // Reopen directly (not via the heal path): maintenance is
            // not a poisoning failure and must not inflate that counter.
            let dep = open_writer(
                &self.base,
                report.width,
                &self.hasher,
                self.cache_pages,
                &self.factory,
                self.dedup_window.load(Ordering::Acquire),
            )?;
            *guard = Some(dep);
            let writer = guard.as_mut().expect("writer alive");
            self.committed_seq
                .store(writer.committed_seq(), Ordering::Release);
            (report, writer.db.len(), writer.dead_mask())
        };
        let epoch = self.epoch.load(Ordering::Acquire) + 1;
        let snapshot = Arc::new(self.open_snapshot(epoch, rows, Some(dead))?);
        {
            let mut p = self.profile.lock().unwrap_or_else(|e| e.into_inner());
            let writer = guard.as_ref().expect("writer alive");
            copy_writer_stats(writer, &mut p);
            p.committed_rows = rows;
            p.deleted_rows = writer.deleted_rows();
        }
        let mut current = self.current.lock().unwrap_or_else(|e| e.into_inner());
        *current = Arc::clone(&snapshot);
        self.epoch.store(epoch, Ordering::Release);
        drop(current);
        Ok(report)
    }

    /// Opens a fresh snapshot of the committed on-disk state at `epoch`,
    /// masking `dead` (pass the writer's current bitmap while holding the
    /// writer mutex so the mask matches the files).
    fn open_snapshot(
        &self,
        epoch: u64,
        rows: u64,
        dead: Option<Arc<DeadMask>>,
    ) -> io::Result<Snapshot> {
        open_snapshot_at(
            &self.base,
            self.width(),
            &self.hasher,
            self.cache_pages,
            Arc::clone(&self.io),
            epoch,
            rows,
            dead,
        )
    }

    /// The receipt a previous commit recorded for `req_id` (0 = never
    /// deduplicated), if it is still inside the dedup window.  Heals a
    /// poisoned writer first — the window lives in the writer.
    pub fn dedup_lookup(&self, req_id: u64) -> io::Result<Option<DedupReceipt>> {
        if req_id == 0 {
            return Ok(None);
        }
        let mut guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_none() {
            let _fence = self.io.write().unwrap_or_else(|e| e.into_inner());
            self.writer_or_heal(&mut guard)?;
        }
        Ok(guard.as_ref().expect("writer alive").dedup_lookup(req_id))
    }

    /// Resizes the writer's dedup window (applied again after each heal).
    pub fn set_dedup_window(&self, window: usize) {
        let window = window.max(1);
        self.dedup_window.store(window, Ordering::Release);
        let mut guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(writer) = guard.as_mut() {
            writer.set_dedup_window(window);
        }
    }

    /// True while the writer is poisoned (the last commit failed and no
    /// write-side call has healed it yet).  Reads are unaffected.
    pub fn writer_poisoned(&self) -> bool {
        self.writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_none()
    }

    /// Times the writer has been healed after a poisoning failure.
    pub fn writer_heals(&self) -> u64 {
        self.writer_heals.load(Ordering::Relaxed)
    }

    /// Count of delete-carrying entries in this deployment's replication
    /// log — the delete cursor (`dseq`) a caught-up follower of this
    /// node holds, and the cursor this node (as a follower itself)
    /// resumes pulling from after a restart.
    pub fn log_delete_entries(&self) -> io::Result<u64> {
        let mut guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _fence = self.io.write().unwrap_or_else(|e| e.into_inner());
        let writer = self.writer_or_heal(&mut guard)?;
        Ok(writer.log_delete_entries())
    }

    /// Reopens a poisoned writer through the factory.  Caller must hold
    /// the writer lock *and* the I/O write fence (recovery rolls files
    /// back in place, which must not race snapshot reads).
    #[allow(clippy::mut_mut)]
    fn writer_or_heal<'g>(
        &self,
        guard: &'g mut MutexGuard<'_, Option<DiskDeployment<DynBackend>>>,
    ) -> io::Result<&'g mut DiskDeployment<DynBackend>> {
        if guard.is_none() {
            let dep = open_writer(
                &self.base,
                self.width(),
                &self.hasher,
                self.cache_pages,
                &self.factory,
                self.dedup_window.load(Ordering::Acquire),
            )?;
            **guard = Some(dep);
            self.writer_heals.fetch_add(1, Ordering::Relaxed);
            let seq = guard.as_ref().expect("writer alive").committed_seq();
            self.committed_seq.store(seq, Ordering::Release);
        }
        Ok(guard.as_mut().expect("writer alive"))
    }
}

fn open_writer(
    base: &Path,
    width: usize,
    hasher: &Arc<dyn ItemHasher>,
    cache_pages: usize,
    factory: &BackendFactory,
    dedup_window: usize,
) -> io::Result<DiskDeployment<DynBackend>> {
    let paths = deployment_paths(base);
    let has_data = [&paths.dat, &paths.idx, &paths.slices]
        .iter()
        .any(|p| std::fs::metadata(p).map(|m| m.len() > 0).unwrap_or(false));
    if has_data && !paths.commit.exists() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "deployment has data files but no commit record \
             (created by a pre-durability version?)",
        ));
    }
    let backends = DeploymentBackends {
        commit: factory("commit", &paths.commit)?,
        dat: factory("dat", &paths.dat)?,
        idx: factory("idx", &paths.idx)?,
        slices: factory("slices", &paths.slices)?,
        counts: factory("counts", &paths.counts)?,
        dedup: factory("dedup", &paths.dedup)?,
        log: factory("log", &paths.log)?,
        del: factory("del", &paths.del)?,
    };
    let mut dep = DiskDeployment::open_with(backends, width, Arc::clone(hasher), cache_pages)?;
    dep.set_dedup_window(dedup_window);
    Ok(dep)
}

#[allow(clippy::too_many_arguments)]
fn open_snapshot_at(
    base: &Path,
    width: usize,
    hasher: &Arc<dyn ItemHasher>,
    cache_pages: usize,
    io: Arc<RwLock<()>>,
    epoch: u64,
    rows: u64,
    dead: Option<Arc<DeadMask>>,
) -> io::Result<Snapshot> {
    let mut index = DiskBbs::open(base, width, Arc::clone(hasher), cache_pages)?;
    index.set_dead_mask(dead);
    Ok(Snapshot {
        epoch,
        rows,
        index,
        heap: Mutex::new(open_heap(base, cache_pages)?),
        io,
    })
}

fn open_heap(base: &Path, cache_pages: usize) -> io::Result<HeapFile> {
    HeapFile::open(base, cache_pages, cache_pages.div_ceil(4).max(2))
}

fn copy_writer_stats<B: StorageBackend>(dep: &DiskDeployment<B>, p: &mut WriterProfile) {
    p.cache = dep.index.cache_stats();
    p.pager = dep.index.pager_stats();
    p.hot = dep.index.hot_stats();
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_hash::Md5BloomHasher;

    fn base(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bbs_snapshot_{}_{}", std::process::id(), name));
        p
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            DiskDeployment::remove_files(&self.0).ok();
        }
    }

    fn txn(tid: u64, items: &[u32]) -> Transaction {
        Transaction::new(tid, Itemset::from_values(items))
    }

    fn hasher() -> Arc<dyn ItemHasher> {
        Arc::new(Md5BloomHasher::new(4))
    }

    #[test]
    fn snapshots_are_immutable_while_commits_land() {
        let b = base("immutable");
        let _g = Cleanup(b.clone());
        let shared = SharedDeployment::open(&b, 64, hasher(), 256).expect("open");
        let empty = shared.snapshot();
        assert_eq!((empty.epoch(), empty.rows()), (0, 0));

        let r1 = shared
            .commit(&[txn(0, &[1, 2]), txn(1, &[1, 2, 3])])
            .expect("commit 1");
        assert_eq!(r1.rows, 0..2);
        assert_eq!(r1.epoch, 1);
        let snap1 = shared.snapshot();
        assert_eq!(snap1.rows(), 2);
        let q = Itemset::from_values(&[1, 2]);
        assert_eq!(snap1.count(&q).expect("count"), 2);

        let r2 = shared.commit(&[txn(2, &[1, 2, 9])]).expect("commit 2");
        assert_eq!(r2.rows, 2..3);
        // The old snapshot still answers from its epoch...
        assert_eq!(snap1.count(&q).expect("old count"), 2);
        assert_eq!(snap1.probe(2).expect("old probe"), None);
        // ...while the new one sees the batch.
        assert_eq!(r2.snapshot.count(&q).expect("new count"), 3);
        assert_eq!(
            r2.snapshot.probe(2).expect("new probe"),
            Some(txn(2, &[1, 2, 9]))
        );
        // And the empty snapshot still stands at zero.
        assert_eq!(empty.count(&q).expect("empty count"), 0);
    }

    #[test]
    fn snapshot_load_is_clamped_to_its_epoch() {
        let b = base("load_clamp");
        let _g = Cleanup(b.clone());
        let shared = SharedDeployment::open(&b, 64, hasher(), 256).expect("open");
        shared
            .commit(&(0..10).map(|i| txn(i, &[1, (i % 3) as u32 + 10])).collect::<Vec<_>>())
            .expect("commit");
        let snap = shared.snapshot();
        shared
            .commit(&(10..25).map(|i| txn(i, &[1, 99])).collect::<Vec<_>>())
            .expect("commit 2");
        let (db, bbs) = snap.load().expect("load");
        assert_eq!(db.len(), 10);
        assert_eq!(bbs.rows(), 10);
        let mut io = bbs_tdb::IoStats::new();
        assert_eq!(bbs.est_count(&Itemset::from_values(&[1]), &mut io), 10);
        // The newest snapshot loads the full 25.
        let (db2, bbs2) = shared.snapshot().load().expect("load 2");
        assert_eq!((db2.len(), bbs2.rows()), (25, 25));
    }

    #[test]
    fn commit_with_records_receipts_that_survive_reopen() {
        let b = base("receipts");
        let _g = Cleanup(b.clone());
        {
            let shared = SharedDeployment::open(&b, 64, hasher(), 256).expect("open");
            let r = shared
                .commit_with(
                    &[txn(0, &[1]), txn(1, &[2]), txn(2, &[3])],
                    &[(77, 0, 2), (78, 2, 1), (0, 0, 3)],
                )
                .expect("commit");
            assert_eq!(r.rows, 0..3);
            let d = shared.dedup_lookup(77).expect("lookup").expect("hit");
            assert_eq!((d.first_row, d.appended), (0, 2));
            let d = shared.dedup_lookup(78).expect("lookup").expect("hit");
            assert_eq!((d.first_row, d.appended), (2, 1));
            assert_eq!(shared.dedup_lookup(0).expect("lookup"), None, "0 = no id");
            assert_eq!(shared.dedup_lookup(99).expect("lookup"), None);
        }
        // The window is durable: a fresh process answers the retry too.
        let shared = SharedDeployment::open(&b, 64, hasher(), 256).expect("reopen");
        let d = shared.dedup_lookup(77).expect("lookup").expect("hit");
        assert_eq!((d.first_row, d.appended), (0, 2));
        assert_eq!(shared.snapshot().rows(), 3);
    }

    #[test]
    fn disk_full_commit_poisons_writer_then_heals_without_duplicates() {
        let b = base("diskfull");
        let _g = Cleanup(b.clone());
        let plan = crate::FaultPlan::counting();
        let shared =
            SharedDeployment::open_faulty(&b, 64, hasher(), 256, plan.clone()).expect("open");
        shared
            .commit_with(&[txn(0, &[1]), txn(1, &[1])], &[(5, 0, 2)])
            .expect("commit 1");

        plan.set_disk_full(true);
        let err = match shared.commit_with(&[txn(2, &[1])], &[(6, 0, 1)]) {
            Ok(_) => panic!("commit must fail with the disk full"),
            Err(e) => e,
        };
        assert!(crate::is_disk_full(&err), "typed StorageFull, got {err}");
        assert!(shared.writer_poisoned());

        // Reads keep serving the committed prefix while the writer is
        // down, and the published epoch never moved.
        let snap = shared.snapshot();
        assert_eq!(snap.rows(), 2);
        assert_eq!(snap.count(&Itemset::from_values(&[1])).expect("count"), 2);
        assert_eq!(shared.epoch(), 1);

        // The dedup window healed along with the writer: the receipt of
        // the *successful* commit is still there, the failed one is not.
        let d = shared.dedup_lookup(5).expect("lookup").expect("hit");
        assert_eq!((d.first_row, d.appended), (0, 2));
        assert_eq!(shared.dedup_lookup(6).expect("lookup"), None);

        plan.set_disk_full(false);
        let r = shared
            .commit_with(&[txn(2, &[1])], &[(6, 0, 1)])
            .expect("space came back");
        assert_eq!(r.rows, 2..3, "failed attempt left no rows behind");
        assert!(!shared.writer_poisoned());
        assert!(shared.writer_heals() >= 1);
        assert_eq!(r.snapshot.count(&Itemset::from_values(&[1])).expect("count"), 3);
    }

    #[test]
    fn reopen_resumes_epochs_from_committed_state() {
        let b = base("reopen");
        let _g = Cleanup(b.clone());
        {
            let shared = SharedDeployment::open(&b, 64, hasher(), 256).expect("open");
            shared.commit(&[txn(0, &[5]), txn(1, &[5])]).expect("commit");
        }
        let shared = SharedDeployment::open(&b, 64, hasher(), 256).expect("reopen");
        let snap = shared.snapshot();
        assert_eq!(snap.rows(), 2);
        assert_eq!(snap.count(&Itemset::from_values(&[5])).expect("count"), 2);
        let p = shared.writer_profile();
        assert_eq!(p.committed_rows, 2);
    }
}
