//! The deployment commit record: the single source of durability truth.
//!
//! A `<base>.commit` file holds two 64-byte slots written alternately
//! (ping-pong by sequence number), each self-validating:
//!
//! ```text
//! magic u64 | seq u64 | rows u64 | heap_tail u64 |
//! dat_digest u64 | idx_digest u64 | slices_digest u64 | fnv1a(first 56 B) u64
//! ```
//!
//! The three digests pin down the committed content of the **boundary
//! pages** — the pages that later appends modify in place (the heap tail
//! page, the last positional-index entry page, and the slice pages of the
//! partially-filled boundary chunk).  Recovery reconstructs each boundary
//! page's committed bytes and checks them against these digests, so a
//! torn write is healed but a flipped bit inside committed data is
//! *detected*, never silently re-checksummed.
//!
//! A commit is the *last* thing [`crate::diskbbs::DiskDeployment::flush`]
//! writes, after every data file has been flushed and synced.  On open,
//! the valid slot with the highest sequence number defines the committed
//! row count and heap tail; everything past that boundary in the data
//! files is, by definition, debris from an interrupted flush, and is
//! rolled back.  Because the slot being overwritten is always the *older*
//! one, a crash mid-commit-write (even a torn one — the checksum catches
//! it) still leaves the previous commit intact.

use crate::backend::{FileBackend, StorageBackend};
use crate::pager::fnv1a64;
use std::io;

const COMMIT_MAGIC: u64 = 0x4242_5343_4d54_3031; // "BBSCMT01"
const SLOT_SIZE: u64 = 64;

/// One decoded commit record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commit {
    /// Monotonic commit sequence number (first commit is 1).
    pub seq: u64,
    /// Committed transaction count (heap records == index rows).
    pub rows: u64,
    /// Committed heap-file data tail in bytes.
    pub heap_tail: u64,
    /// Digest of the committed heap boundary page (0 when `heap_tail` is
    /// 0).
    pub dat_digest: u64,
    /// Digest of the committed last index entry page (0 when `rows` is 0).
    pub idx_digest: u64,
    /// Chained digest of the committed boundary-chunk slice pages (0 when
    /// the row count is chunk-aligned).
    pub slices_digest: u64,
}

fn encode_slot(c: Commit) -> [u8; SLOT_SIZE as usize] {
    let mut buf = [0u8; SLOT_SIZE as usize];
    buf[0..8].copy_from_slice(&COMMIT_MAGIC.to_le_bytes());
    buf[8..16].copy_from_slice(&c.seq.to_le_bytes());
    buf[16..24].copy_from_slice(&c.rows.to_le_bytes());
    buf[24..32].copy_from_slice(&c.heap_tail.to_le_bytes());
    buf[32..40].copy_from_slice(&c.dat_digest.to_le_bytes());
    buf[40..48].copy_from_slice(&c.idx_digest.to_le_bytes());
    buf[48..56].copy_from_slice(&c.slices_digest.to_le_bytes());
    let digest = fnv1a64(&buf[0..56]);
    buf[56..64].copy_from_slice(&digest.to_le_bytes());
    buf
}

fn parse_slot(buf: &[u8]) -> Option<Commit> {
    if buf.len() < SLOT_SIZE as usize {
        return None;
    }
    let word = |at: usize| u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"));
    if word(0) != COMMIT_MAGIC || word(56) != fnv1a64(&buf[0..56]) {
        return None;
    }
    Some(Commit {
        seq: word(8),
        rows: word(16),
        heap_tail: word(24),
        dat_digest: word(32),
        idx_digest: word(40),
        slices_digest: word(48),
    })
}

/// Decodes the winning (highest-sequence valid) commit from raw file
/// bytes.  Used by both `CommitFile` and the read-only verifier.
pub(crate) fn latest_commit(bytes: &[u8]) -> Option<Commit> {
    let a = parse_slot(bytes);
    let b = parse_slot(&bytes[bytes.len().min(SLOT_SIZE as usize)..]);
    match (a, b) {
        (Some(a), Some(b)) => Some(if a.seq >= b.seq { a } else { b }),
        (a, b) => a.or(b),
    }
}

/// Writes `c` verbatim — including its explicit `seq` — into the
/// ping-pong slot that sequence number owns.  Offline maintenance (the
/// fold path) uses this to stage a fresh commit file whose single slot
/// carries the successor sequence of the live deployment's commit.
pub(crate) fn write_explicit<B: StorageBackend>(backend: &mut B, c: Commit) -> io::Result<()> {
    backend.write_at((c.seq % 2) * SLOT_SIZE, &encode_slot(c))?;
    backend.sync()
}

/// The two-slot commit file of one deployment.
pub(crate) struct CommitFile<B: StorageBackend = FileBackend> {
    backend: B,
    last: Option<Commit>,
}

impl<B: StorageBackend> CommitFile<B> {
    /// Wraps a backend, decoding the current commit (if any).
    pub fn new(mut backend: B) -> io::Result<Self> {
        let len = backend.len()?.min(2 * SLOT_SIZE);
        let mut bytes = vec![0u8; len as usize];
        backend.read_at(0, &mut bytes)?;
        let last = latest_commit(&bytes);
        Ok(CommitFile { backend, last })
    }

    /// The current commit, if one has ever completed.
    pub fn last(&self) -> Option<Commit> {
        self.last
    }

    /// The sequence number the next successful commit will take.
    pub fn next_seq(&self) -> u64 {
        self.last.map_or(0, |c| c.seq) + 1
    }

    /// Durably records a new commit point.
    ///
    /// Must only be called after the data files have been flushed and
    /// synced; the write goes to the slot *not* holding the current
    /// commit, then the file is synced.
    pub fn commit(&mut self, next: Commit) -> io::Result<()> {
        let record = Commit {
            seq: self.last.map_or(0, |c| c.seq) + 1,
            ..next
        };
        self.backend
            .write_at((record.seq % 2) * SLOT_SIZE, &encode_slot(record))?;
        self.backend.sync()?;
        self.last = Some(record);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    #[test]
    fn empty_file_has_no_commit() {
        let c = CommitFile::new(MemBackend::new()).expect("new");
        assert_eq!(c.last(), None);
    }

    fn record(rows: u64, heap_tail: u64) -> Commit {
        Commit {
            seq: 0,
            rows,
            heap_tail,
            dat_digest: 0xD,
            idx_digest: 0x1,
            slices_digest: 0x5,
        }
    }

    #[test]
    fn commits_alternate_slots_and_survive_reopen() {
        let mut mem = MemBackend::new();
        {
            let mut c = CommitFile::new(&mut mem).expect("new");
            c.commit(record(10, 1000)).expect("commit");
            c.commit(record(20, 2000)).expect("commit");
        }
        let c = CommitFile::new(&mut mem).expect("reopen");
        let last = c.last().expect("present");
        assert_eq!((last.seq, last.rows, last.heap_tail), (2, 20, 2000));
    }

    #[test]
    fn torn_commit_write_falls_back_to_previous() {
        let mut mem = MemBackend::new();
        {
            let mut c = CommitFile::new(&mut mem).expect("new");
            c.commit(record(10, 1000)).expect("commit");
        }
        // Hand-tear the next commit: seq 2 goes to slot 0; write only a
        // 17-byte prefix of it.
        let next = encode_slot(Commit {
            seq: 2,
            ..record(99, 9999)
        });
        mem.write_at(0, &next[..17]).expect("torn write");
        let c = CommitFile::new(&mut mem).expect("reopen");
        let last = c.last().expect("previous commit survives");
        assert_eq!((last.seq, last.rows), (1, 10));
    }

    #[test]
    fn bit_flip_invalidates_a_slot() {
        let mut mem = MemBackend::new();
        {
            let mut c = CommitFile::new(&mut mem).expect("new");
            c.commit(record(10, 1000)).expect("commit");
        }
        let mut b = [0u8; 1];
        mem.read_at(SLOT_SIZE + 20, &mut b).expect("read");
        b[0] ^= 1;
        mem.write_at(SLOT_SIZE + 20, &b).expect("write");
        let c = CommitFile::new(&mut mem).expect("reopen");
        assert_eq!(c.last(), None, "corrupt slot must not validate");
    }
}
