//! The replication log: every group commit, re-shippable.
//!
//! A `<base>.log` file records one checksummed entry per committed batch —
//! the batch's transactions, plus the exactly-once receipts `(request id,
//! offset, len)` that commit carried.  A follower that applies the entries
//! in order through its own commit path reproduces the primary's rows,
//! counts *and dedup window* exactly, which is what makes failover
//! transparent to retrying clients: the promoted follower answers a
//! re-sent request ID with the original receipt.
//!
//! # Entry format
//!
//! ```text
//! body_len u32 | body | fnv1a64(body) u64
//! body := seq u64 | first_row u64 | n_txns u32 | n_receipts u32 | n_dels u32
//!         | n_txns × (tid u64 | n_items u32 | item u32 …)
//!         | n_receipts × (req_id u64 | offset u64 | len u64)
//!         | n_dels × (row u64)
//! ```
//!
//! A *delete entry* carries tombstoned row numbers instead of (or beside)
//! transactions.  Delete-only entries advance no rows (`first_row` is the
//! tail row at commit time and `end_row == first_row`), so the row cursor
//! alone cannot address them; followers therefore track a second cursor —
//! the count of delete-carrying entries they have applied — and
//! [`read_entries`] serves an entry when it advances *either* cursor.
//!
//! Entries are addressed by `first_row`, **not** by commit sequence
//! number: opening a deployment flushes it once (bumping the sequence
//! with nothing to log), so sequences diverge between a primary and its
//! followers while row numbers — contiguous from 0 — never do.  The
//! sequence stamp is still stored, but only for the same debris-trimming
//! job [`crate::dedup::DedupLog`] does: an entry stamped past the last
//! committed sequence describes rows whose commit record never landed,
//! and is dropped on open together with those rows.
//!
//! # Durability contract
//!
//! [`ReplLog::append_synced`] runs inside a flush, after the data files
//! are synced and before the commit record is written.  An entry is
//! therefore durable if and only if its batch committed; a torn tail
//! append fails its checksum and vanishes on open, exactly like the rows
//! it described.
//!
//! The log is retained in full (it is the follower bootstrap stream); an
//! append whose `first_row` does not continue the log's coverage — rows
//! were appended through a non-logging path — resets the log to start at
//! that batch, and followers behind the new start are told to resync.

use crate::backend::StorageBackend;
use crate::pager::fnv1a64;
use bbs_tdb::{Itemset, Transaction};
use std::io::{self, Read};
use std::path::Path;

/// Hard cap on one entry's body, so a corrupt length prefix cannot ask
/// for an absurd allocation.
const MAX_BODY: u32 = 256 << 20;

/// One replication-log entry: a committed batch and its receipts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplEntry {
    /// First row the batch occupies.
    pub first_row: u64,
    /// The batch, in append order.
    pub txns: Vec<Transaction>,
    /// Exactly-once receipts as `(req_id, offset, len)`, offsets relative
    /// to the start of the batch — the shape
    /// [`crate::SharedDeployment::commit_with`] accepts.
    pub receipts: Vec<(u64, u64, u64)>,
    /// Row numbers tombstoned by this commit (empty for insert batches).
    pub deletes: Vec<u64>,
}

impl ReplEntry {
    /// One-past the last row the batch occupies.
    pub fn end_row(&self) -> u64 {
        self.first_row + self.txns.len() as u64
    }
}

fn encode_entry(seq: u64, entry: &ReplEntry) -> Vec<u8> {
    let mut body = Vec::with_capacity(24 + entry.txns.len() * 32);
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(&entry.first_row.to_le_bytes());
    body.extend_from_slice(&(entry.txns.len() as u32).to_le_bytes());
    body.extend_from_slice(&(entry.receipts.len() as u32).to_le_bytes());
    body.extend_from_slice(&(entry.deletes.len() as u32).to_le_bytes());
    for t in &entry.txns {
        body.extend_from_slice(&t.tid.0.to_le_bytes());
        body.extend_from_slice(&(t.items.items().len() as u32).to_le_bytes());
        for item in t.items.items() {
            body.extend_from_slice(&item.0.to_le_bytes());
        }
    }
    for &(req_id, offset, len) in &entry.receipts {
        body.extend_from_slice(&req_id.to_le_bytes());
        body.extend_from_slice(&offset.to_le_bytes());
        body.extend_from_slice(&len.to_le_bytes());
    }
    for &row in &entry.deletes {
        body.extend_from_slice(&row.to_le_bytes());
    }
    let mut buf = Vec::with_capacity(body.len() + 12);
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(&body);
    buf.extend_from_slice(&fnv1a64(&body).to_le_bytes());
    buf
}

/// Decodes one entry body (already checksum-verified).  `None` on any
/// structural inconsistency.
fn decode_body(body: &[u8]) -> Option<(u64, ReplEntry)> {
    let mut at = 0usize;
    let u64_at = |buf: &[u8], at: &mut usize| -> Option<u64> {
        let v = u64::from_le_bytes(buf.get(*at..*at + 8)?.try_into().ok()?);
        *at += 8;
        Some(v)
    };
    let u32_at = |buf: &[u8], at: &mut usize| -> Option<u32> {
        let v = u32::from_le_bytes(buf.get(*at..*at + 4)?.try_into().ok()?);
        *at += 4;
        Some(v)
    };
    let seq = u64_at(body, &mut at)?;
    let first_row = u64_at(body, &mut at)?;
    let n_txns = u32_at(body, &mut at)?;
    let n_receipts = u32_at(body, &mut at)?;
    let n_dels = u32_at(body, &mut at)?;
    let mut txns = Vec::with_capacity(n_txns.min(1 << 20) as usize);
    for _ in 0..n_txns {
        let tid = u64_at(body, &mut at)?;
        let n_items = u32_at(body, &mut at)?;
        let mut items = Vec::with_capacity(n_items.min(1 << 20) as usize);
        for _ in 0..n_items {
            items.push(u32_at(body, &mut at)?);
        }
        txns.push(Transaction::new(tid, Itemset::from_values(&items)));
    }
    let mut receipts = Vec::with_capacity(n_receipts.min(1 << 20) as usize);
    for _ in 0..n_receipts {
        let req_id = u64_at(body, &mut at)?;
        let offset = u64_at(body, &mut at)?;
        let len = u64_at(body, &mut at)?;
        receipts.push((req_id, offset, len));
    }
    let mut deletes = Vec::with_capacity(n_dels.min(1 << 20) as usize);
    for _ in 0..n_dels {
        deletes.push(u64_at(body, &mut at)?);
    }
    if at != body.len() {
        return None;
    }
    Some((
        seq,
        ReplEntry {
            first_row,
            txns,
            receipts,
            deletes,
        },
    ))
}

/// The write side of one deployment's replication log.
pub struct ReplLog<B: StorageBackend> {
    backend: B,
    /// First row the log covers (rows before it predate the log).
    start_row: u64,
    /// One-past the last row the log covers.
    tail_row: u64,
    /// Append offset: the byte length of the valid prefix.
    tail_offset: u64,
    entries: u64,
    /// Count of delete-carrying entries in the valid prefix — the second
    /// replication cursor (see the module docs).
    delete_entries: u64,
}

impl<B: StorageBackend> ReplLog<B> {
    /// Opens the log, keeping the longest valid, contiguous prefix of
    /// entries stamped at or before `committed_seq` and covering rows at
    /// or below `committed_rows`.  Everything past that prefix — a torn
    /// tail, or entries of a flush whose commit record never landed — is
    /// truncated away, mirroring the rollback of the rows themselves.
    pub fn open(mut backend: B, committed_seq: u64, committed_rows: u64) -> io::Result<Self> {
        let len = backend.len()?;
        let mut bytes = vec![0u8; len as usize];
        backend.read_at(0, &mut bytes)?;
        let mut log = ReplLog {
            backend,
            start_row: 0,
            tail_row: 0,
            tail_offset: 0,
            entries: 0,
            delete_entries: 0,
        };
        let mut at = 0usize;
        let mut first = true;
        while at + 4 <= bytes.len() {
            let body_len =
                u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
            if body_len > MAX_BODY as usize || at + 4 + body_len + 8 > bytes.len() {
                break; // torn or corrupt tail
            }
            let body = &bytes[at + 4..at + 4 + body_len];
            let digest =
                u64::from_le_bytes(bytes[at + 4 + body_len..at + 12 + body_len].try_into().expect("8 bytes"));
            if digest != fnv1a64(body) {
                break;
            }
            let Some((seq, entry)) = decode_body(body) else {
                break;
            };
            if seq > committed_seq || entry.end_row() > committed_rows {
                break; // debris of an uncommitted flush
            }
            if first {
                log.start_row = entry.first_row;
            } else if entry.first_row != log.tail_row {
                break; // discontinuity: never written by a healthy log
            }
            first = false;
            log.tail_row = entry.end_row();
            log.entries += 1;
            if !entry.deletes.is_empty() {
                log.delete_entries += 1;
            }
            at += 4 + body_len + 8;
        }
        log.tail_offset = at as u64;
        if log.tail_offset != len {
            log.backend.set_len(log.tail_offset)?;
            log.backend.sync()?;
        }
        Ok(log)
    }

    /// First row the log covers.
    pub fn start_row(&self) -> u64 {
        self.start_row
    }

    /// One-past the last row the log covers.
    pub fn tail_row(&self) -> u64 {
        self.tail_row
    }

    /// Entries currently in the log.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Delete-carrying entries currently in the log — the value a caught-up
    /// follower's delete cursor would hold.
    pub fn delete_entries(&self) -> u64 {
        self.delete_entries
    }

    /// Durably appends the entry of a flush about to commit as sequence
    /// `seq`.  Must run after the data files are synced and before the
    /// commit record is written (see the module docs).
    ///
    /// A batch that does not continue the log's coverage (rows were
    /// appended through a non-logging path) resets the log to start at
    /// this batch.
    pub fn append_synced(
        &mut self,
        seq: u64,
        first_row: u64,
        txns: &[Transaction],
        receipts: &[(u64, u64, u64)],
        deletes: &[u64],
    ) -> io::Result<()> {
        if txns.is_empty() && deletes.is_empty() {
            return Ok(());
        }
        let resetting = (self.entries > 0 && first_row != self.tail_row)
            || (self.entries == 0 && first_row != self.start_row);
        let entry = ReplEntry {
            first_row,
            txns: txns.to_vec(),
            receipts: receipts.to_vec(),
            deletes: deletes.to_vec(),
        };
        let buf = encode_entry(seq, &entry);
        let start = if resetting { 0 } else { self.tail_offset };
        self.backend.write_at(start, &buf)?;
        if resetting {
            self.backend.set_len(buf.len() as u64)?;
        }
        self.backend.sync()?;
        if resetting {
            self.start_row = first_row;
            self.entries = 0;
            self.delete_entries = 0;
        }
        self.tail_offset = start + buf.len() as u64;
        self.tail_row = first_row + txns.len() as u64;
        self.entries += 1;
        if !deletes.is_empty() {
            self.delete_entries += 1;
        }
        Ok(())
    }
}

/// The outcome of one stateless [`read_entries`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplRead {
    /// Entries whose first row is ≥ the requested row, in order.  Empty
    /// when the caller is caught up (or the log cannot serve the row —
    /// compare `start_row`/`end_row`).
    pub entries: Vec<ReplEntry>,
    /// First row the log's valid prefix covers.
    pub start_row: u64,
    /// One-past the last row the log's valid prefix covers.
    pub end_row: u64,
    /// Count of delete-carrying entries in the log's valid prefix — the
    /// delete-cursor position of a follower caught up through `end_row`.
    pub end_dseq: u64,
}

/// Reads replication entries from `path` starting at `from_row`, without
/// any shared state — safe to run concurrently with a writer appending,
/// because a half-written tail entry fails its checksum and simply ends
/// the scan.  Entries stamped past `upto_seq` (synced but not yet
/// committed) are never returned.  At most `max_entries` entries and
/// roughly `max_bytes` of payload are returned per call.
///
/// The caller decides whether the read *serves* `from_row`: it does when
/// the first returned entry starts exactly there (or the log's coverage
/// shows the caller is caught up); a `from_row` below `start_row` or
/// inside an entry means the follower must resync from a fresh copy.
pub fn read_entries(
    path: &Path,
    from_row: u64,
    from_dseq: u64,
    max_entries: usize,
    max_bytes: usize,
    upto_seq: u64,
) -> io::Result<ReplRead> {
    let mut out = ReplRead {
        entries: Vec::new(),
        start_row: 0,
        end_row: 0,
        end_dseq: 0,
    };
    let mut file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    let mut first = true;
    let mut budget = max_bytes;
    loop {
        let mut head = [0u8; 4];
        match file.read_exact(&mut head) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let body_len = u32::from_le_bytes(head);
        if body_len > MAX_BODY {
            break;
        }
        let mut buf = vec![0u8; body_len as usize + 8];
        match file.read_exact(&mut buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let (body, digest_bytes) = buf.split_at(body_len as usize);
        if digest_bytes != fnv1a64(body).to_le_bytes() {
            break;
        }
        // Peek the header words before a full decode: skipping the bulk
        // of already-replicated history costs header reads only.
        let seq = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
        let first_row = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
        let n_txns = u32::from_le_bytes(body[16..20].try_into().expect("4 bytes")) as u64;
        let n_dels = u32::from_le_bytes(body[24..28].try_into().expect("4 bytes"));
        if seq > upto_seq {
            break;
        }
        if first {
            out.start_row = first_row;
            out.end_row = first_row;
        }
        if !first && first_row != out.end_row {
            break; // discontinuity; open() would truncate here too
        }
        first = false;
        out.end_row = first_row + n_txns;
        if n_dels > 0 {
            out.end_dseq += 1;
        }
        // Dual cursor: an entry is news if it advances the follower's row
        // cursor *or* its delete cursor (delete-only entries advance no
        // rows, so `end_row` alone would skip them forever).
        if (out.end_row > from_row || out.end_dseq > from_dseq)
            && out.entries.len() < max_entries
            && budget > 0
        {
            let Some((_, entry)) = decode_body(body) else {
                break;
            };
            budget = budget.saturating_sub(buf.len());
            out.entries.push(entry);
        } else if out.entries.len() >= max_entries || budget == 0 {
            break;
        }
    }
    Ok(out)
}

/// Read-only integrity scan of raw log bytes, for `bbs fsck`.
///
/// A torn tail entry and debris stamped past the committed sequence are
/// *normal* (open truncates them, exactly as it rolls back uncommitted
/// rows) — the problems reported here are the ones open cannot heal: a
/// corrupt or discontinuous entry strictly *inside* the committed
/// stream, detectable because valid committed entries still follow it.
pub(crate) fn scan_problems(bytes: &[u8], committed_seq: u64, committed_rows: u64) -> Vec<String> {
    let mut problems = Vec::new();
    let mut at = 0usize;
    let mut expected_row: Option<u64> = None;
    let mut pending_corrupt: Option<usize> = None;
    let mut saw_debris = false;
    while at + 4 <= bytes.len() {
        let body_len =
            u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        if body_len > MAX_BODY as usize || at + 12 + body_len > bytes.len() {
            break; // torn tail: healed on open
        }
        let body = &bytes[at + 4..at + 4 + body_len];
        let digest = u64::from_le_bytes(
            bytes[at + 4 + body_len..at + 12 + body_len]
                .try_into()
                .expect("8 bytes"),
        );
        let decoded = if digest == fnv1a64(body) {
            decode_body(body)
        } else {
            None
        };
        let Some((seq, entry)) = decoded else {
            // Possibly the torn entry of the final flush — only a problem
            // if committed entries turn out to follow it.
            pending_corrupt.get_or_insert(at);
            at += 12 + body_len;
            continue;
        };
        if seq > committed_seq || entry.end_row() > committed_rows {
            saw_debris = true;
            at += 12 + body_len;
            continue;
        }
        if let Some(corrupt) = pending_corrupt.take() {
            problems.push(format!(
                "replication log: corrupt entry at byte {corrupt} inside the committed stream"
            ));
            expected_row = None; // the skipped entry consumed unknown rows
        }
        if saw_debris {
            problems.push(format!(
                "replication log: committed entry at byte {at} follows uncommitted debris"
            ));
            saw_debris = false;
        }
        if let Some(expected) = expected_row {
            if entry.first_row != expected {
                problems.push(format!(
                    "replication log: entry at byte {at} starts at row {} (expected {expected})",
                    entry.first_row
                ));
            }
        }
        expected_row = Some(entry.end_row());
        at += 12 + body_len;
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FileBackend, MemBackend, StorageBackend};
    use std::path::PathBuf;

    fn txn(tid: u64, items: &[u32]) -> Transaction {
        Transaction::new(tid, Itemset::from_values(items))
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bbs_replog_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn roundtrip_and_reopen() {
        let mut mem = MemBackend::new();
        {
            let mut log = ReplLog::open(&mut mem, 0, 0).expect("open");
            log.append_synced(1, 0, &[txn(1, &[1, 2]), txn(2, &[3])], &[(9, 0, 2)], &[])
                .expect("append");
            log.append_synced(2, 2, &[txn(3, &[1])], &[], &[]).expect("append");
            assert_eq!((log.start_row(), log.tail_row(), log.entries()), (0, 3, 2));
        }
        let log = ReplLog::open(&mut mem, 2, 3).expect("reopen");
        assert_eq!((log.start_row(), log.tail_row(), log.entries()), (0, 3, 2));
    }

    #[test]
    fn uncommitted_entries_are_debris_on_open() {
        let mut mem = MemBackend::new();
        {
            let mut log = ReplLog::open(&mut mem, 0, 0).expect("open");
            log.append_synced(1, 0, &[txn(1, &[1])], &[], &[]).expect("a");
            // Stamped for commit 2, but commit 2 "never happened".
            log.append_synced(2, 1, &[txn(2, &[2])], &[], &[]).expect("b");
        }
        let before = mem.len().expect("len");
        let log = ReplLog::open(&mut mem, 1, 1).expect("reopen at seq 1");
        assert_eq!((log.start_row(), log.tail_row(), log.entries()), (0, 1, 1));
        assert!(mem.len().expect("len") < before, "debris truncated");
    }

    #[test]
    fn torn_tail_is_discarded() {
        let mut mem = MemBackend::new();
        {
            let mut log = ReplLog::open(&mut mem, 0, 0).expect("open");
            log.append_synced(1, 0, &[txn(1, &[1])], &[], &[]).expect("a");
            log.append_synced(2, 1, &[txn(2, &[2, 3, 4])], &[], &[]).expect("b");
        }
        let len = mem.len().expect("len");
        mem.set_len(len - 5).expect("tear");
        let log = ReplLog::open(&mut mem, 2, 2).expect("reopen");
        assert_eq!((log.tail_row(), log.entries()), (1, 1));
    }

    #[test]
    fn coverage_gap_resets_the_log() {
        let mut mem = MemBackend::new();
        let mut log = ReplLog::open(&mut mem, 0, 0).expect("open");
        log.append_synced(1, 0, &[txn(1, &[1])], &[], &[]).expect("a");
        // Rows 1..5 appended through a non-logging path; the next logged
        // batch starts at 5.
        log.append_synced(3, 5, &[txn(9, &[9])], &[], &[]).expect("reset");
        assert_eq!((log.start_row(), log.tail_row(), log.entries()), (5, 6, 1));
        let log = ReplLog::open(&mut mem, 3, 6).expect("reopen");
        assert_eq!((log.start_row(), log.tail_row()), (5, 6));
    }

    #[test]
    fn stateless_reader_serves_from_row_and_respects_seq_cap() {
        let path = tmp("reader");
        std::fs::remove_file(&path).ok();
        {
            let backend = FileBackend::open(&path).expect("create");
            let mut log = ReplLog::open(backend, 0, 0).expect("open");
            log.append_synced(1, 0, &[txn(0, &[1]), txn(1, &[2])], &[(7, 0, 2)], &[])
                .expect("a");
            log.append_synced(2, 2, &[txn(2, &[3])], &[], &[]).expect("b");
            log.append_synced(3, 3, &[txn(3, &[4])], &[], &[]).expect("c");
        }
        let r = read_entries(&path, 0, 0, 64, usize::MAX, 3).expect("read");
        assert_eq!((r.start_row, r.end_row), (0, 4));
        assert_eq!(r.entries.len(), 3);
        assert_eq!(r.entries[0].receipts, vec![(7, 0, 2)]);

        // From a batch boundary: skip the already-applied prefix.
        let r = read_entries(&path, 2, 0, 64, usize::MAX, 3).expect("read");
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.entries[0].first_row, 2);

        // The seq cap hides entries whose commit has not landed yet.
        let r = read_entries(&path, 0, 0, 64, usize::MAX, 2).expect("read");
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.end_row, 3);

        // Caught up: nothing to send.
        let r = read_entries(&path, 4, 0, 64, usize::MAX, 3).expect("read");
        assert!(r.entries.is_empty());
        assert_eq!(r.end_row, 4);

        // Entry cap.
        let r = read_entries(&path, 0, 0, 1, usize::MAX, 3).expect("read");
        assert_eq!(r.entries.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reader_on_missing_file_is_empty_not_an_error() {
        let path = tmp("missing");
        std::fs::remove_file(&path).ok();
        let r = read_entries(&path, 0, 0, 64, usize::MAX, u64::MAX).expect("read");
        assert!(r.entries.is_empty());
        assert_eq!((r.start_row, r.end_row), (0, 0));
    }

    #[test]
    fn mid_entry_from_row_is_detectable_by_the_caller() {
        let path = tmp("midentry");
        std::fs::remove_file(&path).ok();
        {
            let backend = FileBackend::open(&path).expect("create");
            let mut log = ReplLog::open(backend, 0, 0).expect("open");
            log.append_synced(1, 0, &[txn(0, &[1]), txn(1, &[2])], &[], &[]).expect("a");
        }
        // Row 1 is inside the first batch: the first served entry starts
        // at 0, not 1 — the caller sees the mismatch and asks for resync.
        let r = read_entries(&path, 1, 0, 64, usize::MAX, 1).expect("read");
        assert_eq!(r.entries[0].first_row, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delete_entries_roundtrip_and_count() {
        let mut mem = MemBackend::new();
        {
            let mut log = ReplLog::open(&mut mem, 0, 0).expect("open");
            log.append_synced(1, 0, &[txn(0, &[1]), txn(1, &[2])], &[], &[])
                .expect("ins");
            // Delete-only entry: advances no rows.
            log.append_synced(2, 2, &[], &[(77, 0, 1)], &[0]).expect("del");
            log.append_synced(3, 2, &[txn(2, &[3])], &[], &[]).expect("ins2");
            assert_eq!(log.tail_row(), 3);
            assert_eq!(log.entries(), 3);
            assert_eq!(log.delete_entries(), 1);
        }
        let log = ReplLog::open(&mut mem, 3, 3).expect("reopen");
        assert_eq!((log.tail_row(), log.entries(), log.delete_entries()), (3, 3, 1));
    }

    #[test]
    fn dual_cursor_serves_delete_only_entries() {
        let path = tmp("dualcursor");
        std::fs::remove_file(&path).ok();
        {
            let backend = FileBackend::open(&path).expect("create");
            let mut log = ReplLog::open(backend, 0, 0).expect("open");
            log.append_synced(1, 0, &[txn(0, &[1]), txn(1, &[2])], &[], &[])
                .expect("ins");
            log.append_synced(2, 2, &[], &[], &[1]).expect("del1");
            log.append_synced(3, 2, &[txn(2, &[3])], &[], &[]).expect("ins2");
            log.append_synced(4, 3, &[], &[], &[0]).expect("del2");
        }
        // A follower's (row, dseq) cursor always names a log prefix (it
        // applies entries in order).  Caught up on rows but behind one
        // delete — prefix after the second insert, i.e. (3, 1): only the
        // trailing delete is news.
        let r = read_entries(&path, 3, 1, 64, usize::MAX, 4).expect("read");
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.entries[0].deletes, vec![0]);
        assert!(r.entries[0].txns.is_empty());
        assert_eq!((r.end_row, r.end_dseq), (3, 2));

        // Prefix (2, 1): the second insert and the trailing delete are
        // served, in log order, and the delete-only entry advances no
        // rows (its first_row equals the follower's row cursor — the
        // same first-entry validation as inserts).
        let r = read_entries(&path, 2, 1, 64, usize::MAX, 4).expect("read");
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.entries[0].txns.len(), 1);
        assert_eq!(r.entries[1].deletes, vec![0]);
        assert_eq!(r.entries[1].first_row, 3);

        // Prefix (2, 0): both deletes and the second insert.
        let r = read_entries(&path, 2, 0, 64, usize::MAX, 4).expect("read");
        assert_eq!(r.entries.len(), 3);
        assert_eq!(r.entries[0].deletes, vec![1]);

        // Fully caught up on both cursors: nothing.
        let r = read_entries(&path, 3, 2, 64, usize::MAX, 4).expect("read");
        assert!(r.entries.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
