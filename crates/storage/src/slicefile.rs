//! The on-disk BBS slice file.
//!
//! The paper stores the signature file "as slices" so that `CountItemSet`
//! reads only the columns a query selects.  A literal slice-major layout
//! would make insertion O(m) page writes (every slice grows by one bit per
//! transaction), so this file uses the standard compromise, a
//! **chunk-major** layout: rows are grouped into chunks of `32768`
//! (= 4096·8) rows, and within a chunk each slice owns one whole page:
//!
//! ```text
//! page 0                  header (magic, width, rows)
//! page 1 + c·m + j        bits of slice j for rows [c·32768, (c+1)·32768)
//! ```
//!
//! Reading slice `j` touches `ceil(rows / 32768)` pages at stride `m`;
//! appending a transaction performs one read-modify-write per set bit, all
//! within the current chunk's pages (which stay hot in the cache).
//!
//! # Counting path
//!
//! `count_selected` walks the selected slices chunk-by-chunk in row order:
//! each chunk's cold pages are prefetched as a batch, ANDed **in place**
//! (64-bit words decoded straight out of the cache-resident page bytes
//! into a reused one-page accumulator — no per-slice `BitVec` is ever
//! materialised), and popcounted with the tiered kernels of
//! `bbs_bitslice::ops`.  Slices that keep being selected are promoted into
//! a pinned **hot-slice cache** of decoded `u64` words (invalidated on
//! append), and `count_selected_bounded` stops early once the running
//! upper bound drops below the caller's threshold.
//!
//! All read-side state (page cache, hot slices, scratch buffers) lives
//! behind a `Mutex`, so counting needs only `&self` — shared references
//! can count concurrently, and independent readers over the same file get
//! genuine parallelism (see `DiskBbs::counter`).

use crate::backend::{FileBackend, StorageBackend};
use crate::cache::{CacheStats, PageCache};
use crate::del::DeadMask;
use crate::pager::{
    fnv1a64_extend, zeroed_page, ChecksumMismatch, PageId, Pager, PagerStats, FNV_OFFSET,
    PAGE_SIZE,
};
use bbs_bitslice::{ops, BitVec};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::{Mutex, MutexGuard};

const MAGIC: u64 = 0x4242_5353_4c49_4345; // "BBSSLICE"

/// Reads the width field of an existing slice file's header page without
/// opening the file as a deployment (`Ok(None)` = absent, empty, or not a
/// slice file).  This is how reopen paths adopt the on-disk width after a
/// fold halved it, instead of failing the width check against a stale
/// configured value.
pub fn header_width(path: &Path) -> io::Result<Option<usize>> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut head = [0u8; 16];
    let off = crate::pager::phys_of(0) * PAGE_SIZE as u64;
    if f.seek(SeekFrom::Start(off)).is_err() {
        return Ok(None);
    }
    match f.read_exact(&mut head) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let magic = u64::from_le_bytes(head[0..8].try_into().expect("8 bytes"));
    let width = u64::from_le_bytes(head[8..16].try_into().expect("8 bytes"));
    if magic != MAGIC || width == 0 || width >= u32::MAX as u64 {
        return Ok(None);
    }
    Ok(Some(width as usize))
}
/// Rows per chunk: one page of bits.
pub const CHUNK_ROWS: usize = PAGE_SIZE * 8;
/// `u64` words per page.
pub const PAGE_WORDS: usize = PAGE_SIZE / 8;

/// How many times a slice must be selected before it is pinned.
const PROMOTE_AFTER: u32 = 3;
/// Maximum number of pinned (fully decoded) hot slices.
const HOT_SLICE_LIMIT: usize = 16;

/// Counters of the pinned hot-slice cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotStats {
    /// Slices currently pinned (decoded to words).
    pub pinned: usize,
    /// Selected-slice lookups served from pinned words.
    pub hits: u64,
    /// Slices decoded for pinning.
    pub decodes: u64,
    /// Times the pinned set was invalidated by an append.
    pub invalidations: u64,
}

/// The pinned hot-slice cache: decoded `u64` words for the most-selected
/// slices.  Appends invalidate the pinned words (a pinned slice would
/// otherwise go stale); selection counts survive, so the working set is
/// re-promoted quickly once counting resumes.
///
/// # Invalidation contract
///
/// * Every [`SliceFile::append_row`] call invalidates the pinned set
///   **before** any bit of the new row is written, and it does so **at
///   most once**: `invalidations` increments by exactly 1 when anything
///   was pinned and by 0 when the set was already empty (consecutive
///   appends with no interleaved counting pay a single invalidation).
/// * Counting never observes a pinned slice that predates an append:
///   within one `SliceFile`, appends take `&mut self`, so no count can
///   interleave with the invalidate-then-write sequence; across
///   independent readers over the same path, pinned words are decoded at
///   the reader's own row count and the snapshot clamp (see
///   [`mask_from`]) discards any newer bits.
struct HotSlices {
    capacity: usize,
    select_counts: HashMap<usize, u32>,
    pinned: HashMap<usize, Vec<u64>>,
    hits: u64,
    decodes: u64,
    invalidations: u64,
}

impl HotSlices {
    fn new(capacity: usize) -> Self {
        HotSlices {
            capacity,
            select_counts: HashMap::new(),
            pinned: HashMap::new(),
            hits: 0,
            decodes: 0,
            invalidations: 0,
        }
    }

    fn invalidate(&mut self) {
        if !self.pinned.is_empty() {
            self.pinned.clear();
            self.invalidations += 1;
        }
    }

    fn stats(&self) -> HotStats {
        HotStats {
            pinned: self.pinned.len(),
            hits: self.hits,
            decodes: self.decodes,
            invalidations: self.invalidations,
        }
    }
}

/// All mutable read-side state: the page cache plus the hot-slice cache and
/// the reusable counting scratch.  Guarded by one mutex in [`SliceFile`] so
/// that counting works on `&self`.
struct ReadState<B: StorageBackend> {
    cache: PageCache<B>,
    hot: HotSlices,
    /// One-page `u64` accumulator, reused across chunks and calls.
    acc: Vec<u64>,
    /// Scratch list of the current chunk's cold page ids.
    cold_ids: Vec<PageId>,
    /// Prefix accumulator for the batched path, reused across calls.  The
    /// per-query accumulator is [`ReadState::acc`]: accumulation across
    /// chunks lives in the running totals, never in an accumulator, so one
    /// chunk-sized buffer serves every query in the batch — re-seeded per
    /// query per chunk — instead of a batch-sized pool of them thrashing
    /// the cache.
    prefix_acc: Vec<u64>,
    /// Dense pool of decoded shared-slice segments for the batched path,
    /// indexed by the slot number in [`ReadState::batch_slots`]; buffers
    /// are reused across chunks and calls.
    batch_segs: Vec<Vec<u64>>,
    /// Width-indexed slice → segment-slot map (`NO_SLOT` = not shared).
    /// Plain-array lookups here replace per-query hash-map probes on the
    /// batched hot path.  Only entries named by [`ReadState::batch_union`]
    /// are ever non-default; the rest stay `NO_SLOT` by invariant.
    batch_slots: Vec<u32>,
    /// Width-indexed active-query selection multiplicities; same validity
    /// rule as [`ReadState::batch_slots`].
    batch_mult: Vec<u32>,
    /// The distinct slices the current batch's active queries (and prefix)
    /// select, sorted — names exactly the non-default entries of
    /// `batch_slots` / `batch_mult` / `batch_pfx`, which is what lets a
    /// rebuild reset them in `O(|union|)` instead of `O(width)`.
    batch_union: Vec<usize>,
    /// Width-indexed membership in the *effective* prefix: the explicit
    /// projection prefix plus every slice selected by all active queries
    /// (hoisted automatically, so overlapping batches pay their common
    /// slices once per chunk even when the caller declared no prefix).
    batch_pfx: Vec<bool>,
}

/// Sentinel in [`ReadState::batch_slots`]: this slice has no decoded
/// shared segment (it is hot, unshared, or not selected at all).
const NO_SLOT: u32 = u32::MAX;

/// Zeroes every bit at position `>= rows` in a word buffer (the snapshot
/// clamp): a reader whose header said `rows = N` must never count bits a
/// newer append OR'd into the shared boundary pages after it opened.
fn mask_from(words: &mut [u64], rows: usize) {
    let whole = rows / 64;
    if whole < words.len() {
        let rem = rows % 64;
        if rem != 0 {
            words[whole] &= (1u64 << rem) - 1;
            words[whole + 1..].fill(0);
        } else {
            words[whole..].fill(0);
        }
    }
}

impl<B: StorageBackend> ReadState<B> {
    /// Decodes a whole slice into little-endian `u64` words (`words_for(rows)`
    /// of them) through the page cache, with bits `>= rows` masked off.
    fn decode_slice(&mut self, width: usize, rows: u64, slice: usize) -> io::Result<Vec<u64>> {
        let rows = rows as usize;
        let chunks = rows.div_ceil(CHUNK_ROWS);
        let mut words: Vec<u64> = Vec::with_capacity(chunks * PAGE_WORDS);
        for c in 0..chunks {
            let page = page_of(width, c as u64, slice);
            self.cache.with_page(page, |buf| {
                for w in buf.chunks_exact(8) {
                    words.push(u64::from_le_bytes(w.try_into().expect("8 bytes")));
                }
            })?;
        }
        words.truncate(bbs_bitslice::words_for(rows));
        mask_from(&mut words, rows);
        Ok(words)
    }

    /// Bumps selection counts and pins newly hot slices (decoding them).
    fn promote(&mut self, width: usize, rows: u64, slices: &[usize]) -> io::Result<()> {
        // Once the pinned set is full no count bump can change it, so the
        // bookkeeping is pure overhead on every subsequent query — skip it.
        // After an append invalidates the pinned set, counting resumes from
        // the preserved counts and re-pins the proven hot slices at once.
        if self.hot.pinned.len() >= self.hot.capacity {
            return Ok(());
        }
        for &s in slices {
            let n = self.hot.select_counts.entry(s).or_insert(0);
            *n += 1;
            if *n >= PROMOTE_AFTER
                && self.hot.pinned.len() < self.hot.capacity
                && !self.hot.pinned.contains_key(&s)
            {
                let words = self.decode_slice(width, rows, s)?;
                self.hot.pinned.insert(s, words);
                self.hot.decodes += 1;
            }
        }
        Ok(())
    }

    /// The zero-copy fused count: AND the selected slices chunk-by-chunk in
    /// row order, popcount as we go, and optionally stop once the running
    /// upper bound falls below `tau`.
    fn count_selected(
        &mut self,
        width: usize,
        rows: u64,
        slices: &[usize],
        tau: Option<u64>,
        dead: Option<(&[u64], u64)>,
    ) -> io::Result<u64> {
        if slices.is_empty() && dead.is_none() {
            return Ok(rows);
        }
        let chunks = (rows as usize).div_ceil(CHUNK_ROWS) as u64;
        if chunks == 0 {
            return Ok(0);
        }
        self.promote(width, rows, slices)?;
        let ReadState {
            cache,
            hot,
            acc,
            cold_ids,
            ..
        } = self;
        acc.resize(PAGE_WORDS, 0);
        let mut total = 0u64;
        for c in 0..chunks {
            let mut seeded = false;
            // Tombstone mask: seed the accumulator with the *live* rows of
            // this chunk (`!dead`, live beyond the bitmap's tail), so every
            // slice AND below starts from "alive" instead of "all ones".
            // AND+popcount is position-invariant, which makes the masked
            // count equal, bit for bit, to counting a compacted rewrite of
            // only the surviving rows.
            if let Some((dead_words, _)) = dead {
                let lo = (c as usize) * PAGE_WORDS;
                for (i, a) in acc.iter_mut().enumerate() {
                    *a = !dead_words.get(lo + i).copied().unwrap_or(0);
                }
                seeded = true;
            }
            cold_ids.clear();
            for &s in slices {
                match hot.pinned.get(&s) {
                    Some(words) => {
                        hot.hits += 1;
                        let lo = (c as usize) * PAGE_WORDS;
                        let hi = words.len().min(lo + PAGE_WORDS);
                        let seg: &[u64] = if lo < hi { &words[lo..hi] } else { &[] };
                        if seeded {
                            ops::and_assign(acc, seg);
                        } else {
                            acc[..seg.len()].copy_from_slice(seg);
                            acc[seg.len()..].fill(0);
                            seeded = true;
                        }
                    }
                    None => cold_ids.push(page_of(width, c, s)),
                }
            }
            // Batched fetch: make this chunk's cold pages resident in one
            // row-order pass before ANDing them (all hits below when the
            // cache can hold the whole batch).
            if cold_ids.len() < cache.capacity() {
                cache.prefetch(cold_ids)?;
            }
            for &id in cold_ids.iter() {
                if seeded {
                    cache.with_page(id, |buf| {
                        for (a, b) in acc.iter_mut().zip(buf.chunks_exact(8)) {
                            *a &= u64::from_le_bytes(b.try_into().expect("8 bytes"));
                        }
                    })?;
                } else {
                    cache.with_page(id, |buf| {
                        for (a, b) in acc.iter_mut().zip(buf.chunks_exact(8)) {
                            *a = u64::from_le_bytes(b.try_into().expect("8 bytes"));
                        }
                    })?;
                    seeded = true;
                }
            }
            // Snapshot clamp: in the boundary chunk, bits at row positions
            // `>= rows` are discarded before counting.  In the single-owner
            // case those bits are zero anyway (pages start zeroed); for a
            // reader that opened at `rows = N` while a writer keeps
            // appending to the same file, this is what guarantees the count
            // reflects exactly the first N rows — never a half-appended
            // newer batch.
            if c == chunks - 1 {
                let within = rows as usize - (c as usize) * CHUNK_ROWS;
                if within < CHUNK_ROWS {
                    mask_from(acc, within);
                }
            }
            total += ops::count_ones(acc) as u64;
            if let Some(tau) = tau {
                // Every remaining chunk can contribute at most CHUNK_ROWS
                // bits; once even that cannot reach tau, the exact count
                // cannot either.  The returned bound never undercounts.
                let bound = total + (chunks - 1 - c) * CHUNK_ROWS as u64;
                if bound < tau {
                    return Ok(bound);
                }
            }
        }
        Ok(total)
    }

    /// Shared-scan batched counting (see [`SliceFile::count_selected_many`]
    /// and [`SliceFile::count_selected_many_shared`]).
    ///
    /// The per-chunk loop decodes each distinct selected slice **once** —
    /// from the pinned hot words or from its cache-resident page — and then
    /// drives every still-active query's accumulator from those shared
    /// segments.  Per-op counting walks the same pages once *per query*;
    /// here the page fetch + decode cost is paid once per chunk for the
    /// whole batch, which is what amortises concurrent hot-slice queries.
    ///
    /// `prefix` is the Ramp-style projection: slices every query selects.
    /// Their AND is materialised once per chunk and copied into each
    /// query's accumulator, so a deep enumeration prefix is paid once per
    /// batch instead of once per sibling candidate.
    fn count_selected_many(
        &mut self,
        width: usize,
        rows: u64,
        prefix: &[usize],
        queries: &[(Vec<usize>, Option<u64>)],
        dead: Option<(&[u64], u64)>,
    ) -> io::Result<Vec<u64>> {
        let chunks = (rows as usize).div_ceil(CHUNK_ROWS) as u64;
        let live = rows - dead.map_or(0, |(_, deleted)| deleted);
        let mut totals = vec![0u64; queries.len()];
        let mut done = vec![false; queries.len()];
        let mut active = 0usize;
        if !prefix.is_empty() {
            self.promote(width, rows, prefix)?;
        }
        for (i, (slices, _)) in queries.iter().enumerate() {
            if prefix.is_empty() && slices.is_empty() {
                totals[i] = live;
                done[i] = true;
            } else if chunks == 0 {
                done[i] = true;
            } else {
                active += 1;
                if !slices.is_empty() {
                    self.promote(width, rows, slices)?;
                }
            }
        }
        if active == 0 {
            return Ok(totals);
        }
        let ReadState {
            cache,
            hot,
            acc,
            cold_ids,
            prefix_acc,
            batch_segs,
            batch_slots,
            batch_mult,
            batch_union,
            batch_pfx,
        } = self;
        // Reusable scratch: accumulation across chunks lives in `totals`,
        // never in an accumulator (every chunk re-seeds), so one
        // chunk-sized accumulator serves all the batch's queries in turn —
        // it stays L1-resident instead of a batch-sized pool of buffers
        // streaming through the cache once per chunk.
        acc.resize(PAGE_WORDS, 0);
        prefix_acc.resize(PAGE_WORDS, 0);
        let segs = batch_segs;
        let slots = batch_slots;
        let mult = batch_mult;
        let union = batch_union;
        let pfx = batch_pfx;
        slots.resize(width, NO_SLOT);
        mult.resize(width, 0);
        pfx.resize(width, false);
        // Cold (non-pinned) slices of the union, the shared subset that
        // gets a decoded segment per chunk, and the effective prefix.
        // All rebuilt with the union.
        let mut cold_slices: Vec<usize> = Vec::new();
        let mut shared_slices: Vec<usize> = Vec::new();
        let mut eff_prefix: Vec<usize> = Vec::new();
        let mut stale = true;
        for c in 0..chunks {
            if stale {
                // Reset exactly the entries the previous union named (from
                // this call or the last one) — the maps stay all-default
                // elsewhere, so a rebuild costs O(|union|), not O(width).
                for &s in union.iter() {
                    slots[s] = NO_SLOT;
                    mult[s] = 0;
                    pfx[s] = false;
                }
                union.clear();
                union.extend_from_slice(prefix);
                for (i, (slices, _)) in queries.iter().enumerate() {
                    if !done[i] {
                        union.extend_from_slice(slices);
                        for &s in slices {
                            mult[s] += 1;
                        }
                    }
                }
                union.sort_unstable();
                union.dedup();
                // The effective prefix: the caller's explicit projection
                // prefix, plus every slice that all active queries select
                // (`mult == active` — each query's slice list is deduped,
                // so it contributes at most 1).  Hoisted slices are ANDed
                // once per chunk into the prefix accumulator instead of
                // once per query, which is where an overlapping batch
                // beats per-op counting on arithmetic, not just on I/O.
                eff_prefix.clear();
                for &s in prefix {
                    if !pfx[s] {
                        pfx[s] = true;
                        eff_prefix.push(s);
                    }
                }
                for &s in union.iter() {
                    if !pfx[s] && mult[s] as usize == active {
                        pfx[s] = true;
                        eff_prefix.push(s);
                    }
                }
                // A non-prefix slice selected by ≥ 2 active queries (and
                // not already pinned hot) earns a decoded-segment slot.  A
                // slice unique to one query never does — it is ANDed
                // straight from its cache-resident page bytes, exactly
                // like the per-op path, so a batch of disjoint queries
                // costs no more than per-op counting.
                cold_slices.clear();
                shared_slices.clear();
                let mut next = 0u32;
                for &s in union.iter() {
                    if hot.pinned.contains_key(&s) {
                        continue;
                    }
                    cold_slices.push(s);
                    if mult[s] >= 2 && !pfx[s] {
                        slots[s] = next;
                        shared_slices.push(s);
                        if segs.len() <= next as usize {
                            segs.push(Vec::new());
                        }
                        next += 1;
                    }
                }
                stale = false;
            }
            cold_ids.clear();
            for &s in cold_slices.iter() {
                cold_ids.push(page_of(width, c, s));
            }
            // Batched fetch, as in the per-op path: the chunk's cold pages
            // become resident in one row-order pass.
            if cold_ids.len() < cache.capacity() {
                cache.prefetch(cold_ids)?;
            }
            // Decode each *shared* cold slice once for the whole batch.
            for &s in shared_slices.iter() {
                let seg = &mut segs[slots[s] as usize];
                seg.clear();
                cache.with_page(page_of(width, c, s), |buf| {
                    for w in buf.chunks_exact(8) {
                        seg.push(u64::from_le_bytes(w.try_into().expect("8 bytes")));
                    }
                })?;
            }
            let lo = (c as usize) * PAGE_WORDS;
            let within = rows as usize - (c as usize) * CHUNK_ROWS;
            // ANDs `$s`'s words for this chunk into `$acc` (the shared
            // decoded segment, hot words, or zero-copy off the page),
            // seeding on first use.  The slot test is a plain array read,
            // so the per-query inner loop probes a hash map at most once
            // per slice (the pinned-set lookup), as per-op counting does.
            macro_rules! apply {
                ($acc:expr, $seeded:expr, $s:expr) => {{
                    let acc: &mut [u64] = $acc;
                    let slot = slots[$s];
                    if slot != NO_SLOT {
                        // Decoded this chunk: the pass above covers exactly
                        // the slotted slices, so a segment left over from an
                        // earlier chunk (a sharer τ-exited) or an earlier
                        // call is never mistaken for current data.
                        let seg: &[u64] = &segs[slot as usize];
                        if $seeded {
                            ops::and_assign(acc, seg);
                        } else {
                            acc[..seg.len()].copy_from_slice(seg);
                            acc[seg.len()..].fill(0);
                        }
                    } else if let Some(words) = hot.pinned.get(&$s) {
                        hot.hits += 1;
                        let hi = words.len().min(lo + PAGE_WORDS);
                        let seg: &[u64] = if lo < hi { &words[lo..hi] } else { &[] };
                        if $seeded {
                            ops::and_assign(acc, seg);
                        } else {
                            acc[..seg.len()].copy_from_slice(seg);
                            acc[seg.len()..].fill(0);
                        }
                    } else if $seeded {
                        cache.with_page(page_of(width, c, $s), |buf| {
                            for (a, b) in acc.iter_mut().zip(buf.chunks_exact(8)) {
                                *a &= u64::from_le_bytes(b.try_into().expect("8 bytes"));
                            }
                        })?;
                    } else {
                        cache.with_page(page_of(width, c, $s), |buf| {
                            for (a, b) in acc.iter_mut().zip(buf.chunks_exact(8)) {
                                *a = u64::from_le_bytes(b.try_into().expect("8 bytes"));
                            }
                        })?;
                    }
                    $seeded = true;
                }};
            }
            // The shared projection: AND the effective prefix (explicit +
            // hoisted common slices) once per chunk.  The tombstone mask
            // rides it as an implicit member — seeded first, so the whole
            // batch pays one masked copy per chunk (the same prefix-hoisting
            // amortisation the projection itself gets).
            let mut prefix_seeded = false;
            if let Some((dead_words, _)) = dead {
                for (i, a) in prefix_acc.iter_mut().enumerate() {
                    *a = !dead_words.get(lo + i).copied().unwrap_or(0);
                }
                prefix_seeded = true;
            }
            for &s in eff_prefix.iter() {
                apply!(prefix_acc, prefix_seeded, s);
            }
            for (i, (slices, tau)) in queries.iter().enumerate() {
                if done[i] {
                    continue;
                }
                let mut seeded = false;
                if prefix_seeded {
                    acc.copy_from_slice(prefix_acc);
                    seeded = true;
                }
                for &s in slices {
                    // Hoisted into the effective prefix: already ANDed in.
                    if pfx[s] {
                        continue;
                    }
                    apply!(acc, seeded, s);
                }
                // Snapshot clamp on the boundary chunk, exactly as in the
                // per-op path.
                if c == chunks - 1 && within < CHUNK_ROWS {
                    mask_from(acc, within);
                }
                totals[i] += ops::count_ones(acc) as u64;
                if let Some(tau) = tau {
                    let bound = totals[i] + (chunks - 1 - c) * CHUNK_ROWS as u64;
                    if bound < *tau {
                        totals[i] = bound;
                        done[i] = true;
                        active -= 1;
                        stale = true;
                    }
                }
            }
            if active == 0 {
                break;
            }
        }
        Ok(totals)
    }
}

fn page_of(width: usize, chunk: u64, slice: usize) -> PageId {
    PageId(1 + chunk * width as u64 + slice as u64)
}

/// A durable, chunk-major bit-slice file.
///
/// Writes (`append_row`, `flush`) take `&mut self`; the counting path takes
/// `&self` and synchronises internally, so a shared reference suffices to
/// run `CountItemSet` queries (including from multiple threads, serialised
/// on this file's cache — use independent `SliceFile`s over the same path
/// for parallel reads).
pub struct SliceFile<B: StorageBackend = FileBackend> {
    read: Mutex<ReadState<B>>,
    width: usize,
    rows: u64,
}

impl SliceFile<FileBackend> {
    /// Opens (creating if absent) a slice file of signature width `width`.
    ///
    /// An existing file must have been created with the same width.
    pub fn open(path: &Path, width: usize, cache_pages: usize) -> io::Result<Self> {
        SliceFile::open_with(FileBackend::open(path)?, width, cache_pages, None)
    }
}

/// Clears the bits of rows `within..` from a boundary-chunk slice page,
/// reconstructing its committed content (committed bits are never lost to
/// a torn write because appends only OR bits in).
pub(crate) fn clear_uncommitted_bits(page: &mut [u8; PAGE_SIZE], within: u64) {
    let whole = (within / 8) as usize;
    let rem = (within % 8) as u32;
    if rem == 0 {
        page[whole..].fill(0);
    } else {
        page[whole] &= (1u8 << rem) - 1;
        page[whole + 1..].fill(0);
    }
}

/// Rolls a slice file back to exactly `rows` committed rows, whose
/// boundary-chunk content must chain-digest to `slices_digest` (from the
/// commit record).
///
/// Pages of whole uncommitted chunks are dropped.  In the boundary chunk,
/// every slice page's committed content is reconstructed by clearing the
/// bits of uncommitted rows (committed bits survive any torn write because
/// appends only OR bits in; never-materialised pages reconstruct to
/// zeros).  The reconstructions are chain-digested in slice order and
/// checked against the commit record before anything is written back: a
/// mismatch means committed bits were lost or flipped — real corruption,
/// surfaced rather than re-checksummed into validity.
fn recover<B: StorageBackend>(
    pager: &mut Pager<B>,
    width: usize,
    rows: u64,
    slices_digest: u64,
) -> io::Result<()> {
    let chunks = (rows as usize).div_ceil(CHUNK_ROWS) as u64;
    let target = 1 + chunks * width as u64;
    let keep = pager.page_count().min(target);
    pager.truncate_logical(keep)?;

    let within = rows % CHUNK_ROWS as u64;
    if within != 0 {
        let chunk = rows / CHUNK_ROWS as u64;
        let mut digest = FNV_OFFSET;
        let mut repaired = Vec::with_capacity(width);
        for slice in 0..width as u64 {
            let id = PageId(1 + chunk * width as u64 + slice);
            // Past-the-end pages read as zeros, which is also their
            // reconstruction.
            let mut page = pager.read_page_raw(id)?;
            clear_uncommitted_bits(&mut page, within);
            digest = fnv1a64_extend(digest, &page[..]);
            repaired.push((id, page));
        }
        if digest != slices_digest {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                ChecksumMismatch {
                    page: 1 + chunk * width as u64,
                    expected: slices_digest,
                    actual: digest,
                },
            ));
        }
        for (id, page) in repaired {
            if id.0 < keep {
                pager.write_page(id, &page)?;
            }
        }
    }

    // Rebuild the header from the commit record rather than trusting disk.
    pager.write_page(PageId(0), &encoded_header(width, rows))
}

/// Encodes a slice-file header page (magic, width, rows) — shared by
/// recovery and the offline fold, which stages a new file directly.
pub(crate) fn encoded_header(width: usize, rows: u64) -> crate::pager::PageBuf {
    let mut header = zeroed_page();
    header[0..8].copy_from_slice(&MAGIC.to_le_bytes());
    header[8..16].copy_from_slice(&(width as u64).to_le_bytes());
    header[16..24].copy_from_slice(&rows.to_le_bytes());
    header
}

impl<B: StorageBackend> SliceFile<B> {
    /// Opens a slice file over an explicit backend.
    ///
    /// With `recover_to = Some((rows, slices_digest))`, the file is first
    /// rolled back to that committed row count; the reconstructed
    /// boundary-chunk pages must match the commit record's digest.
    pub fn open_with(
        backend: B,
        width: usize,
        cache_pages: usize,
        recover_to: Option<(u64, u64)>,
    ) -> io::Result<Self> {
        assert!(width > 0, "width must be positive");
        let mut pager = Pager::new(backend)?;
        // A width mismatch must be reported as such, not as the boundary
        // digest mismatch recovery would trip over — but only when the
        // header page actually verifies (a torn header is rebuilt by
        // recovery and cannot be trusted to hold anything).
        if pager.page_count() > 0 {
            if let Ok(header) = pager.read_page(PageId(0)) {
                let stored = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
                let magic = u64::from_le_bytes(header[0..8].try_into().expect("8 bytes"));
                if magic == MAGIC && stored != width as u64 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("slice file width {stored} != requested {width}"),
                    ));
                }
            }
        }
        if let Some((rows, slices_digest)) = recover_to {
            recover(&mut pager, width, rows, slices_digest)?;
        }
        let mut cache = PageCache::new(pager, cache_pages);
        let (stored_width, rows) = if cache.page_count() == 0 {
            crate::bytes::write_u64(&mut cache, 0, MAGIC)?;
            crate::bytes::write_u64(&mut cache, 8, width as u64)?;
            crate::bytes::write_u64(&mut cache, 16, 0)?;
            (width as u64, 0)
        } else {
            let magic = crate::bytes::read_u64(&mut cache, 0)?;
            if magic != MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not a BBS slice file",
                ));
            }
            (
                crate::bytes::read_u64(&mut cache, 8)?,
                crate::bytes::read_u64(&mut cache, 16)?,
            )
        };
        if stored_width != width as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("slice file width {stored_width} != requested {width}"),
            ));
        }
        Ok(SliceFile {
            read: Mutex::new(ReadState {
                cache,
                hot: HotSlices::new(HOT_SLICE_LIMIT),
                acc: Vec::new(),
                cold_ids: Vec::new(),
                prefix_acc: Vec::new(),
                batch_segs: Vec::new(),
                batch_slots: Vec::new(),
                batch_mult: Vec::new(),
                batch_union: Vec::new(),
                batch_pfx: Vec::new(),
            }),
            width,
            rows,
        })
    }

    fn state(&self) -> MutexGuard<'_, ReadState<B>> {
        self.read.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn state_mut(&mut self) -> &mut ReadState<B> {
        self.read.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Signature width `m`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of appended rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.state().cache.stats()
    }

    /// Physical I/O counters of the underlying pager.
    pub fn pager_stats(&self) -> PagerStats {
        self.state().cache.pager_stats()
    }

    /// Hot-slice cache counters.
    pub fn hot_stats(&self) -> HotStats {
        self.state().hot.stats()
    }

    /// Appends one row whose set bit positions are `positions` (each `<
    /// width`).  Returns the row index.
    ///
    /// The pinned hot-slice cache is invalidated exactly once per append
    /// (and only when something was pinned), *before* the first bit is
    /// written — see the invalidation contract on [`HotSlices`].  The row
    /// becomes visible to this handle immediately and to independent
    /// readers only after [`SliceFile::flush`] (readers clamp counting to
    /// the row count their header said at open, so a concurrently
    /// appending writer can never make them observe a torn batch).
    pub fn append_row(&mut self, positions: &[usize]) -> io::Result<u64> {
        let row = self.rows;
        let chunk = row / CHUNK_ROWS as u64;
        let within = (row % CHUNK_ROWS as u64) as usize;
        let byte = within / 8;
        let bit = within % 8;
        let width = self.width;
        let state = self.read.get_mut().unwrap_or_else(|e| e.into_inner());
        // Pinned word decodes would go stale; drop them (selection counts
        // survive, so the hot set re-forms once counting resumes).
        state.hot.invalidate();
        for &p in positions {
            assert!(p < width, "position {p} out of range");
            let page = page_of(width, chunk, p);
            let mut b = [0u8; 1];
            state.cache.read_at(page, byte, &mut b)?;
            b[0] |= 1 << bit;
            state.cache.write_at(page, byte, &b)?;
        }
        self.rows += 1;
        crate::bytes::write_u64(&mut state.cache, 16, self.rows)?;
        Ok(row)
    }

    /// Loads one slice as an in-memory bit vector of `rows` bits.
    pub fn load_slice(&self, slice: usize) -> io::Result<BitVec> {
        assert!(slice < self.width, "slice {slice} out of range");
        let words = self.state().decode_slice(self.width, self.rows, slice)?;
        Ok(BitVec::from_words(words, self.rows as usize))
    }

    /// ANDs the selected slices together and popcounts, reading only those
    /// slices' pages — `CountItemSet` straight off the disk layout.
    pub fn count_selected(&self, slices: &[usize]) -> io::Result<u64> {
        self.count_selected_bounded(slices, None)
    }

    /// [`SliceFile::count_selected`] with an early exit: with
    /// `tau = Some(τ)` the result is exact whenever it is `≥ τ`, and an
    /// upper bound on the exact count when it is `< τ` (counting stops as
    /// soon as even all-ones remaining chunks could not reach `τ`).
    pub fn count_selected_bounded(&self, slices: &[usize], tau: Option<u64>) -> io::Result<u64> {
        self.state()
            .count_selected(self.width, self.rows, slices, tau, None)
    }

    /// [`SliceFile::count_selected_bounded`] restricted to live rows: rows
    /// set in `dead` are AND-NOTed out of every chunk (§3.4's constraint-
    /// slice trick, pointed at tombstones).  The result is bit-for-bit what
    /// counting a compacted rewrite of only the surviving rows would give.
    pub fn count_selected_bounded_masked(
        &self,
        slices: &[usize],
        tau: Option<u64>,
        dead: Option<&DeadMask>,
    ) -> io::Result<u64> {
        self.state().count_selected(
            self.width,
            self.rows,
            slices,
            tau,
            dead.filter(|d| d.deleted > 0)
                .map(|d| (d.words.as_slice(), d.deleted)),
        )
    }

    /// Shared-scan batched counting: walks each selected slice chunk once
    /// for the *whole batch*, feeding every query's accumulator from the
    /// same decoded segment, with an independent τ-consistent early exit
    /// per query (`tau` semantics as in
    /// [`SliceFile::count_selected_bounded`]; an empty selection counts
    /// every row, as in [`SliceFile::count_selected`]).
    ///
    /// Results are bit-for-bit identical to issuing the queries one at a
    /// time — the batch only changes how often shared pages are fetched
    /// and decoded.
    pub fn count_selected_many(
        &self,
        queries: &[(Vec<usize>, Option<u64>)],
    ) -> io::Result<Vec<u64>> {
        self.state()
            .count_selected_many(self.width, self.rows, &[], queries, None)
    }

    /// [`SliceFile::count_selected_many`] restricted to live rows (see
    /// [`SliceFile::count_selected_bounded_masked`]).  The mask rides the
    /// shared-scan prefix accumulator, so the whole batch pays one masked
    /// seed per chunk.
    pub fn count_selected_many_masked(
        &self,
        queries: &[(Vec<usize>, Option<u64>)],
        dead: Option<&DeadMask>,
    ) -> io::Result<Vec<u64>> {
        self.state().count_selected_many(
            self.width,
            self.rows,
            &[],
            queries,
            dead.filter(|d| d.deleted > 0)
                .map(|d| (d.words.as_slice(), d.deleted)),
        )
    }

    /// [`SliceFile::count_selected_many`] with a shared slice prefix: every
    /// query counts rows matching `prefix ∪ slices`, but the prefix AND is
    /// materialised once per chunk and reused across the batch (Ramp-style
    /// bit-vector projection).  Because AND is idempotent, slices listed in
    /// both `prefix` and a query's own selection are harmless, and the
    /// results are bit-for-bit identical to per-op counting of each union.
    ///
    /// With an empty `prefix` this is exactly
    /// [`SliceFile::count_selected_many`]; a query whose union is empty
    /// counts every row.
    pub fn count_selected_many_shared(
        &self,
        prefix: &[usize],
        queries: &[(Vec<usize>, Option<u64>)],
    ) -> io::Result<Vec<u64>> {
        self.state()
            .count_selected_many(self.width, self.rows, prefix, queries, None)
    }

    /// [`SliceFile::count_selected_many_shared`] restricted to live rows
    /// (see [`SliceFile::count_selected_bounded_masked`]).
    pub fn count_selected_many_shared_masked(
        &self,
        prefix: &[usize],
        queries: &[(Vec<usize>, Option<u64>)],
        dead: Option<&DeadMask>,
    ) -> io::Result<Vec<u64>> {
        self.state().count_selected_many(
            self.width,
            self.rows,
            prefix,
            queries,
            dead.filter(|d| d.deleted > 0)
                .map(|d| (d.words.as_slice(), d.deleted)),
        )
    }

    /// Flushes dirty pages and syncs.
    pub fn flush(&mut self) -> io::Result<()> {
        self.state_mut().cache.flush()
    }

    /// Chained digest of the boundary-chunk slice pages as they stand
    /// right now (what a commit record vouches for; see
    /// [`crate::commit::Commit::slices_digest`]).  Zero when the row count
    /// is chunk-aligned.
    pub(crate) fn boundary_digest(&mut self) -> io::Result<u64> {
        if self.rows.is_multiple_of(CHUNK_ROWS as u64) {
            return Ok(0);
        }
        let chunk = self.rows / CHUNK_ROWS as u64;
        let width = self.width;
        let state = self.read.get_mut().unwrap_or_else(|e| e.into_inner());
        let mut digest = FNV_OFFSET;
        for slice in 0..width {
            let page = page_of(width, chunk, slice);
            digest = state.cache.with_page(page, |p| fnv1a64_extend(digest, p))?;
        }
        Ok(digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bbs_slicefile_{}_{}.bbsx", std::process::id(), name));
        p
    }

    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            std::fs::remove_file(&self.0).ok();
        }
    }

    #[test]
    fn append_and_load_slice() {
        let p = path("append");
        let _g = Cleanup(p.clone());
        let mut f = SliceFile::open(&p, 16, 64).expect("open");
        f.append_row(&[0, 3]).expect("row 0");
        f.append_row(&[3]).expect("row 1");
        f.append_row(&[0, 15]).expect("row 2");
        assert_eq!(f.rows(), 3);
        assert_eq!(
            f.load_slice(0).expect("slice 0").iter_ones().collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(
            f.load_slice(3).expect("slice 3").iter_ones().collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(
            f.load_slice(15).expect("slice 15").iter_ones().collect::<Vec<_>>(),
            vec![2]
        );
        assert_eq!(f.load_slice(7).expect("slice 7").count_ones(), 0);
    }

    #[test]
    fn count_selected_is_and_popcount() {
        let p = path("count");
        let _g = Cleanup(p.clone());
        let mut f = SliceFile::open(&p, 8, 64).expect("open");
        f.append_row(&[0, 1]).expect("append");
        f.append_row(&[1]).expect("append");
        f.append_row(&[0, 1, 2]).expect("append");
        assert_eq!(f.count_selected(&[]).expect("count"), 3);
        assert_eq!(f.count_selected(&[1]).expect("count"), 3);
        assert_eq!(f.count_selected(&[0]).expect("count"), 2);
        assert_eq!(f.count_selected(&[0, 1]).expect("count"), 2);
        assert_eq!(f.count_selected(&[0, 2]).expect("count"), 1);
        assert_eq!(f.count_selected(&[0, 1, 2]).expect("count"), 1);
    }

    #[test]
    fn reopen_preserves_rows_and_width() {
        let p = path("reopen");
        let _g = Cleanup(p.clone());
        {
            let mut f = SliceFile::open(&p, 32, 64).expect("open");
            for i in 0..10 {
                f.append_row(&[i % 32]).expect("append");
            }
            f.flush().expect("flush");
        }
        let f = SliceFile::open(&p, 32, 64).expect("reopen");
        assert_eq!(f.rows(), 10);
        assert_eq!(f.load_slice(0).expect("slice").count_ones(), 1);
        // Wrong width is rejected.
        drop(f);
        assert!(SliceFile::open(&p, 64, 64).is_err());
    }

    #[test]
    fn crossing_a_chunk_boundary() {
        let p = path("chunk");
        let _g = Cleanup(p.clone());
        let mut f = SliceFile::open(&p, 4, 64).expect("open");
        // CHUNK_ROWS + 5 rows, every row sets bit 2.
        let n = CHUNK_ROWS + 5;
        for _ in 0..n {
            f.append_row(&[2]).expect("append");
        }
        assert_eq!(f.rows(), n as u64);
        assert_eq!(f.load_slice(2).expect("slice").count_ones(), n);
        assert_eq!(f.count_selected(&[2]).expect("count"), n as u64);
        assert_eq!(f.count_selected(&[1, 2]).expect("count"), 0);
    }

    #[test]
    fn cache_pressure_still_correct() {
        let p = path("pressure");
        let _g = Cleanup(p.clone());
        // Cache of 2 pages over a width-8 file forces constant eviction.
        let mut f = SliceFile::open(&p, 8, 2).expect("open");
        for i in 0..100u64 {
            f.append_row(&[(i % 8) as usize, ((i + 3) % 8) as usize])
                .expect("append");
        }
        let total: usize = (0..8)
            .map(|j| f.load_slice(j).expect("slice").count_ones())
            .sum();
        assert_eq!(total, 200, "every set bit accounted for");
        assert!(f.cache_stats().evictions > 0, "pressure actually occurred");
    }

    #[test]
    fn bounded_count_is_tau_consistent() {
        let p = path("bounded");
        let _g = Cleanup(p.clone());
        let mut f = SliceFile::open(&p, 4, 64).expect("open");
        // Two chunks; slice 0∩1 is rare and confined to the first chunk, so
        // a large tau can exit after chunk 0.
        let n = CHUNK_ROWS + 100;
        for i in 0..n {
            if i < 10 {
                f.append_row(&[0, 1]).expect("append");
            } else {
                f.append_row(&[i % 2]).expect("append");
            }
        }
        let exact = f.count_selected(&[0, 1]).expect("exact");
        assert_eq!(exact, 10);
        // tau below the count: result must be exact.
        assert_eq!(f.count_selected_bounded(&[0, 1], Some(5)).expect("b"), 10);
        // tau far above: an early exit may fire, but never undercounts and
        // never crosses tau from below.
        let big_tau = 2 * CHUNK_ROWS as u64;
        let est = f.count_selected_bounded(&[0, 1], Some(big_tau)).expect("b");
        assert!(est >= exact);
        assert!(est < big_tau);
        // Unbounded agrees with the naive per-slice AND.
        let s0 = f.load_slice(0).expect("s0");
        let s1 = f.load_slice(1).expect("s1");
        assert_eq!(s0.and_count(&s1) as u64, exact);
    }

    #[test]
    fn hot_slices_promote_and_invalidate() {
        let p = path("hot");
        let _g = Cleanup(p.clone());
        let mut f = SliceFile::open(&p, 8, 64).expect("open");
        for i in 0..200u64 {
            f.append_row(&[(i % 8) as usize]).expect("append");
        }
        for _ in 0..5 {
            f.count_selected(&[0, 1]).expect("count");
        }
        let hs = f.hot_stats();
        assert!(hs.pinned >= 2, "repeatedly selected slices get pinned: {hs:?}");
        assert!(hs.hits > 0);
        let before = f.count_selected(&[0]).expect("count");
        // Append invalidates the pinned words; counting still agrees.
        f.append_row(&[0]).expect("append");
        assert_eq!(f.hot_stats().pinned, 0);
        assert!(f.hot_stats().invalidations >= 1);
        assert_eq!(f.count_selected(&[0]).expect("count"), before + 1);
    }

    #[test]
    fn hot_invalidation_is_exactly_once_per_append() {
        let p = path("hot_exact");
        let _g = Cleanup(p.clone());
        let mut f = SliceFile::open(&p, 8, 64).expect("open");
        for i in 0..100u64 {
            f.append_row(&[(i % 8) as usize]).expect("append");
        }
        // Nothing pinned yet: those 100 appends cost zero invalidations.
        assert_eq!(f.hot_stats().invalidations, 0);
        for _ in 0..PROMOTE_AFTER {
            f.count_selected(&[0, 1]).expect("count");
        }
        assert!(f.hot_stats().pinned >= 2);
        // One append over a pinned set: exactly one invalidation.
        f.append_row(&[0]).expect("append");
        assert_eq!(f.hot_stats().invalidations, 1);
        assert_eq!(f.hot_stats().pinned, 0);
        // Further appends with the set already empty add none.
        f.append_row(&[1]).expect("append");
        f.append_row(&[2]).expect("append");
        assert_eq!(f.hot_stats().invalidations, 1);
        // Counting re-promotes (selection counts survived), and the next
        // append invalidates exactly once again.
        f.count_selected(&[0, 1]).expect("count");
        assert!(f.hot_stats().pinned >= 2, "{:?}", f.hot_stats());
        f.append_row(&[3]).expect("append");
        assert_eq!(f.hot_stats().invalidations, 2);
    }

    #[test]
    fn reader_clamps_counts_to_its_snapshot_rows() {
        let p = path("snapclamp");
        let _g = Cleanup(p.clone());
        let mut writer = SliceFile::open(&p, 8, 64).expect("open");
        for _ in 0..100u64 {
            writer.append_row(&[0, 1]).expect("append");
        }
        writer.flush().expect("flush");
        // A reader opened now is pinned to 100 rows.
        let reader = SliceFile::open(&p, 8, 64).expect("reader");
        assert_eq!(reader.rows(), 100);
        // The writer keeps appending into the *same* boundary-chunk pages
        // and flushes; the reader's counts must not move.
        for _ in 0..50u64 {
            writer.append_row(&[0, 1]).expect("append");
        }
        writer.flush().expect("flush");
        assert_eq!(reader.count_selected(&[0]).expect("count"), 100);
        assert_eq!(reader.count_selected(&[0, 1]).expect("count"), 100);
        assert_eq!(reader.load_slice(1).expect("slice").count_ones(), 100);
        // Repeat counting so the reader pins hot slices (decoded from pages
        // that now contain newer bits) — the clamp must hold there too.
        for _ in 0..5 {
            assert_eq!(reader.count_selected(&[0, 1]).expect("count"), 100);
        }
        assert!(reader.hot_stats().pinned > 0);
        assert_eq!(reader.count_selected(&[0, 1]).expect("count"), 100);
        // A freshly opened reader sees the newer flushed state.
        let fresh = SliceFile::open(&p, 8, 64).expect("fresh");
        assert_eq!(fresh.rows(), 150);
        assert_eq!(fresh.count_selected(&[0, 1]).expect("count"), 150);
    }

    #[test]
    fn count_selected_many_matches_per_op() {
        let p = path("many");
        let _g = Cleanup(p.clone());
        let mut f = SliceFile::open(&p, 8, 64).expect("open");
        // Cross a chunk boundary so the shared scan exercises multiple
        // chunks and the boundary clamp.
        let n = CHUNK_ROWS + 321;
        for i in 0..n {
            f.append_row(&[i % 8, (i * 3) % 8]).expect("append");
        }
        let queries: Vec<(Vec<usize>, Option<u64>)> = vec![
            (vec![0], None),
            (vec![0, 1], None),
            (vec![2, 5, 7], Some(10)),
            (vec![], None),
            (vec![3], Some(u64::MAX)),
            (vec![1, 2, 3, 4, 5, 6, 7], Some(1)),
        ];
        let batched = f.count_selected_many(&queries).expect("batched");
        for (i, (slices, tau)) in queries.iter().enumerate() {
            let solo = f.count_selected_bounded(slices, *tau).expect("solo");
            assert_eq!(batched[i], solo, "query {i} {slices:?} tau {tau:?}");
        }
        // Repeat after hot promotion: pinned-slice segments agree too.
        for _ in 0..5 {
            f.count_selected(&[0, 1]).expect("promote");
        }
        assert!(f.hot_stats().pinned > 0);
        let batched2 = f.count_selected_many(&queries).expect("batched hot");
        assert_eq!(batched, batched2);
        // Shared-prefix projection agrees with per-op counting of each
        // prefix ∪ extension union, including a query overlapping the
        // prefix and a query with no extensions of its own.
        let prefix = vec![1usize, 2];
        let exts: Vec<(Vec<usize>, Option<u64>)> = vec![
            (vec![3], None),
            (vec![2, 5], Some(5)),
            (vec![], None),
            (vec![7], Some(u64::MAX)),
        ];
        let shared = f
            .count_selected_many_shared(&prefix, &exts)
            .expect("shared");
        for (i, (slices, tau)) in exts.iter().enumerate() {
            let mut union: Vec<usize> = prefix.iter().chain(slices).copied().collect();
            union.sort_unstable();
            union.dedup();
            let solo = f.count_selected_bounded(&union, *tau).expect("solo");
            assert_eq!(shared[i], solo, "shared query {i} {slices:?} tau {tau:?}");
        }
    }

    #[test]
    fn masked_counts_equal_compacted_rebuild() {
        let p = path("masked");
        let _g = Cleanup(p.clone());
        let p2 = path("masked_rebuilt");
        let _g2 = Cleanup(p2.clone());
        let mut f = SliceFile::open(&p, 8, 64).expect("open");
        // Rows cross a chunk boundary; tombstone a scattered third of them.
        let n = CHUNK_ROWS + 321;
        let rows: Vec<Vec<usize>> = (0..n)
            .map(|i| vec![i % 8, (i * 5 + 1) % 8])
            .collect();
        for r in &rows {
            f.append_row(r).expect("append");
        }
        let mut dead = DeadMask::default();
        for (i, _) in rows.iter().enumerate() {
            if i % 3 == 0 {
                let w = i / 64;
                if dead.words.len() <= w {
                    dead.words.resize(w + 1, 0);
                }
                dead.words[w] |= 1 << (i % 64);
                dead.deleted += 1;
            }
        }
        // The oracle: a file holding only the surviving rows.
        let mut g = SliceFile::open(&p2, 8, 64).expect("open rebuilt");
        for (i, r) in rows.iter().enumerate() {
            if i % 3 != 0 {
                g.append_row(r).expect("append");
            }
        }
        let queries: Vec<(Vec<usize>, Option<u64>)> = vec![
            (vec![], None),
            (vec![0], None),
            (vec![0, 1], None),
            (vec![2, 5, 7], Some(10)),
            (vec![3], Some(u64::MAX)),
        ];
        for (slices, _) in &queries {
            assert_eq!(
                f.count_selected_bounded_masked(slices, None, Some(&dead))
                    .expect("masked"),
                g.count_selected(slices).expect("rebuilt"),
                "per-op {slices:?}"
            );
        }
        let masked = f
            .count_selected_many_masked(&queries, Some(&dead))
            .expect("masked many");
        for (i, (slices, tau)) in queries.iter().enumerate() {
            let solo = f
                .count_selected_bounded_masked(slices, *tau, Some(&dead))
                .expect("solo masked");
            assert_eq!(masked[i], solo, "batched vs per-op {slices:?}");
        }
        // Shared-prefix projection with the mask riding the prefix.
        let shared = f
            .count_selected_many_shared_masked(&[1, 2], &queries, Some(&dead))
            .expect("shared masked");
        for (i, (slices, tau)) in queries.iter().enumerate() {
            let mut union: Vec<usize> = [1usize, 2].iter().chain(slices).copied().collect();
            union.sort_unstable();
            union.dedup();
            let exact = g.count_selected(&union).expect("rebuilt union");
            match tau {
                // No early exit: the masked count must be exact.
                None => assert_eq!(shared[i], exact, "shared {slices:?}"),
                // The tau contract: exact at or above the threshold, an
                // upper bound below it (early exit may stop scanning at a
                // different chunk than the rebuilt file would).
                Some(t) => {
                    assert!(shared[i] >= exact, "shared {slices:?} not a bound");
                    if shared[i] >= *t {
                        assert_eq!(shared[i], exact, "shared {slices:?} above tau");
                    }
                }
            }
        }
        // No tombstones: the masked paths degrade to the plain ones.
        assert_eq!(
            f.count_selected_bounded_masked(&[0], None, Some(&DeadMask::default()))
                .expect("empty mask"),
            f.count_selected(&[0]).expect("plain")
        );
    }

    #[test]
    fn shared_reference_counting() {
        let p = path("shared");
        let _g = Cleanup(p.clone());
        let mut f = SliceFile::open(&p, 8, 64).expect("open");
        for i in 0..50u64 {
            f.append_row(&[(i % 8) as usize, ((i + 1) % 8) as usize])
                .expect("append");
        }
        let shared = &f;
        let a = shared.count_selected(&[0]).expect("a");
        let b = shared.count_selected(&[0]).expect("b");
        assert_eq!(a, b);
        // And across scoped threads on the same shared reference.
        let (x, y) = std::thread::scope(|s| {
            let h1 = s.spawn(|| shared.count_selected(&[0, 1]).expect("t1"));
            let h2 = s.spawn(|| shared.count_selected(&[0, 1]).expect("t2"));
            (h1.join().expect("join1"), h2.join().expect("join2"))
        });
        assert_eq!(x, y);
        assert_eq!(x, shared.count_selected(&[0, 1]).expect("serial"));
    }
}
