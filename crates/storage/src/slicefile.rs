//! The on-disk BBS slice file.
//!
//! The paper stores the signature file "as slices" so that `CountItemSet`
//! reads only the columns a query selects.  A literal slice-major layout
//! would make insertion O(m) page writes (every slice grows by one bit per
//! transaction), so this file uses the standard compromise, a
//! **chunk-major** layout: rows are grouped into chunks of `32768`
//! (= 4096·8) rows, and within a chunk each slice owns one whole page:
//!
//! ```text
//! page 0                  header (magic, width, rows)
//! page 1 + c·m + j        bits of slice j for rows [c·32768, (c+1)·32768)
//! ```
//!
//! Reading slice `j` touches `ceil(rows / 32768)` pages at stride `m`;
//! appending a transaction performs one read-modify-write per set bit, all
//! within the current chunk's pages (which stay hot in the cache).

use crate::backend::{FileBackend, StorageBackend};
use crate::cache::{CacheStats, PageCache};
use crate::pager::{
    fnv1a64_extend, zeroed_page, ChecksumMismatch, PageId, Pager, FNV_OFFSET, PAGE_SIZE,
};
use bbs_bitslice::BitVec;
use std::io;
use std::path::Path;

const MAGIC: u64 = 0x4242_5353_4c49_4345; // "BBSSLICE"
/// Rows per chunk: one page of bits.
pub const CHUNK_ROWS: usize = PAGE_SIZE * 8;

/// A durable, chunk-major bit-slice file.
pub struct SliceFile<B: StorageBackend = FileBackend> {
    cache: PageCache<B>,
    width: usize,
    rows: u64,
}

impl SliceFile<FileBackend> {
    /// Opens (creating if absent) a slice file of signature width `width`.
    ///
    /// An existing file must have been created with the same width.
    pub fn open(path: &Path, width: usize, cache_pages: usize) -> io::Result<Self> {
        SliceFile::open_with(FileBackend::open(path)?, width, cache_pages, None)
    }
}

/// Clears the bits of rows `within..` from a boundary-chunk slice page,
/// reconstructing its committed content (committed bits are never lost to
/// a torn write because appends only OR bits in).
pub(crate) fn clear_uncommitted_bits(page: &mut [u8; PAGE_SIZE], within: u64) {
    let whole = (within / 8) as usize;
    let rem = (within % 8) as u32;
    if rem == 0 {
        page[whole..].fill(0);
    } else {
        page[whole] &= (1u8 << rem) - 1;
        page[whole + 1..].fill(0);
    }
}

/// Rolls a slice file back to exactly `rows` committed rows, whose
/// boundary-chunk content must chain-digest to `slices_digest` (from the
/// commit record).
///
/// Pages of whole uncommitted chunks are dropped.  In the boundary chunk,
/// every slice page's committed content is reconstructed by clearing the
/// bits of uncommitted rows (committed bits survive any torn write because
/// appends only OR bits in; never-materialised pages reconstruct to
/// zeros).  The reconstructions are chain-digested in slice order and
/// checked against the commit record before anything is written back: a
/// mismatch means committed bits were lost or flipped — real corruption,
/// surfaced rather than re-checksummed into validity.
fn recover<B: StorageBackend>(
    pager: &mut Pager<B>,
    width: usize,
    rows: u64,
    slices_digest: u64,
) -> io::Result<()> {
    let chunks = (rows as usize).div_ceil(CHUNK_ROWS) as u64;
    let target = 1 + chunks * width as u64;
    let keep = pager.page_count().min(target);
    pager.truncate_logical(keep)?;

    let within = rows % CHUNK_ROWS as u64;
    if within != 0 {
        let chunk = rows / CHUNK_ROWS as u64;
        let mut digest = FNV_OFFSET;
        let mut repaired = Vec::with_capacity(width);
        for slice in 0..width as u64 {
            let id = PageId(1 + chunk * width as u64 + slice);
            // Past-the-end pages read as zeros, which is also their
            // reconstruction.
            let mut page = pager.read_page_raw(id)?;
            clear_uncommitted_bits(&mut page, within);
            digest = fnv1a64_extend(digest, &page[..]);
            repaired.push((id, page));
        }
        if digest != slices_digest {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                ChecksumMismatch {
                    page: 1 + chunk * width as u64,
                    expected: slices_digest,
                    actual: digest,
                },
            ));
        }
        for (id, page) in repaired {
            if id.0 < keep {
                pager.write_page(id, &page)?;
            }
        }
    }

    // Rebuild the header from the commit record rather than trusting disk.
    let mut header = zeroed_page();
    header[0..8].copy_from_slice(&MAGIC.to_le_bytes());
    header[8..16].copy_from_slice(&(width as u64).to_le_bytes());
    header[16..24].copy_from_slice(&rows.to_le_bytes());
    pager.write_page(PageId(0), &header)
}

impl<B: StorageBackend> SliceFile<B> {
    /// Opens a slice file over an explicit backend.
    ///
    /// With `recover_to = Some((rows, slices_digest))`, the file is first
    /// rolled back to that committed row count; the reconstructed
    /// boundary-chunk pages must match the commit record's digest.
    pub fn open_with(
        backend: B,
        width: usize,
        cache_pages: usize,
        recover_to: Option<(u64, u64)>,
    ) -> io::Result<Self> {
        assert!(width > 0, "width must be positive");
        let mut pager = Pager::new(backend)?;
        // A width mismatch must be reported as such, not as the boundary
        // digest mismatch recovery would trip over — but only when the
        // header page actually verifies (a torn header is rebuilt by
        // recovery and cannot be trusted to hold anything).
        if pager.page_count() > 0 {
            if let Ok(header) = pager.read_page(PageId(0)) {
                let stored = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
                let magic = u64::from_le_bytes(header[0..8].try_into().expect("8 bytes"));
                if magic == MAGIC && stored != width as u64 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("slice file width {stored} != requested {width}"),
                    ));
                }
            }
        }
        if let Some((rows, slices_digest)) = recover_to {
            recover(&mut pager, width, rows, slices_digest)?;
        }
        let mut cache = PageCache::new(pager, cache_pages);
        let (stored_width, rows) = if cache.page_count() == 0 {
            crate::bytes::write_u64(&mut cache, 0, MAGIC)?;
            crate::bytes::write_u64(&mut cache, 8, width as u64)?;
            crate::bytes::write_u64(&mut cache, 16, 0)?;
            (width as u64, 0)
        } else {
            let magic = crate::bytes::read_u64(&mut cache, 0)?;
            if magic != MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not a BBS slice file",
                ));
            }
            (
                crate::bytes::read_u64(&mut cache, 8)?,
                crate::bytes::read_u64(&mut cache, 16)?,
            )
        };
        if stored_width != width as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("slice file width {stored_width} != requested {width}"),
            ));
        }
        Ok(SliceFile { cache, width, rows })
    }

    /// Signature width `m`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of appended rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn page_of(&self, chunk: u64, slice: usize) -> PageId {
        PageId(1 + chunk * self.width as u64 + slice as u64)
    }

    /// Appends one row whose set bit positions are `positions` (each `<
    /// width`).  Returns the row index.
    pub fn append_row(&mut self, positions: &[usize]) -> io::Result<u64> {
        let row = self.rows;
        let chunk = row / CHUNK_ROWS as u64;
        let within = (row % CHUNK_ROWS as u64) as usize;
        let byte = within / 8;
        let bit = within % 8;
        for &p in positions {
            assert!(p < self.width, "position {p} out of range");
            let page = self.page_of(chunk, p);
            let mut b = [0u8; 1];
            self.cache.read_at(page, byte, &mut b)?;
            b[0] |= 1 << bit;
            self.cache.write_at(page, byte, &b)?;
        }
        self.rows += 1;
        crate::bytes::write_u64(&mut self.cache, 16, self.rows)?;
        Ok(row)
    }

    /// Loads one slice as an in-memory bit vector of `rows` bits.
    pub fn load_slice(&mut self, slice: usize) -> io::Result<BitVec> {
        assert!(slice < self.width, "slice {slice} out of range");
        let rows = self.rows as usize;
        let chunks = rows.div_ceil(CHUNK_ROWS);
        let mut words: Vec<u64> = Vec::with_capacity(bbs_bitslice::words_for(rows));
        for c in 0..chunks {
            let page = self.page_of(c as u64, slice);
            self.cache.with_page(page, |buf| {
                for w in buf.chunks_exact(8) {
                    words.push(u64::from_le_bytes(w.try_into().expect("8 bytes")));
                }
            })?;
        }
        words.truncate(bbs_bitslice::words_for(rows));
        Ok(BitVec::from_words(words, rows))
    }

    /// ANDs the selected slices together and popcounts, reading only those
    /// slices' pages — `CountItemSet` straight off the disk layout.
    pub fn count_selected(&mut self, slices: &[usize]) -> io::Result<u64> {
        if slices.is_empty() {
            return Ok(self.rows);
        }
        let rows = self.rows as usize;
        let chunks = rows.div_ceil(CHUNK_ROWS);
        let mut total = 0u64;
        let mut acc = vec![0u8; PAGE_SIZE];
        for c in 0..chunks {
            // Bits beyond `rows` in the last chunk are zero by construction
            // (pages start zeroed and only appended rows set bits).
            let first = self.page_of(c as u64, slices[0]);
            self.cache.with_page(first, |buf| acc.copy_from_slice(&buf[..]))?;
            for &s in &slices[1..] {
                let page = self.page_of(c as u64, s);
                self.cache.with_page(page, |buf| {
                    for (a, b) in acc.iter_mut().zip(buf.iter()) {
                        *a &= b;
                    }
                })?;
            }
            total += acc.iter().map(|b| b.count_ones() as u64).sum::<u64>();
        }
        Ok(total)
    }

    /// Flushes dirty pages and syncs.
    pub fn flush(&mut self) -> io::Result<()> {
        self.cache.flush()
    }

    /// Chained digest of the boundary-chunk slice pages as they stand
    /// right now (what a commit record vouches for; see
    /// [`crate::commit::Commit::slices_digest`]).  Zero when the row count
    /// is chunk-aligned.
    pub(crate) fn boundary_digest(&mut self) -> io::Result<u64> {
        if self.rows.is_multiple_of(CHUNK_ROWS as u64) {
            return Ok(0);
        }
        let chunk = self.rows / CHUNK_ROWS as u64;
        let mut digest = FNV_OFFSET;
        for slice in 0..self.width {
            let page = self.page_of(chunk, slice);
            digest = self.cache.with_page(page, |p| fnv1a64_extend(digest, p))?;
        }
        Ok(digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bbs_slicefile_{}_{}.bbsx", std::process::id(), name));
        p
    }

    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            std::fs::remove_file(&self.0).ok();
        }
    }

    #[test]
    fn append_and_load_slice() {
        let p = path("append");
        let _g = Cleanup(p.clone());
        let mut f = SliceFile::open(&p, 16, 64).expect("open");
        f.append_row(&[0, 3]).expect("row 0");
        f.append_row(&[3]).expect("row 1");
        f.append_row(&[0, 15]).expect("row 2");
        assert_eq!(f.rows(), 3);
        assert_eq!(
            f.load_slice(0).expect("slice 0").iter_ones().collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(
            f.load_slice(3).expect("slice 3").iter_ones().collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(
            f.load_slice(15).expect("slice 15").iter_ones().collect::<Vec<_>>(),
            vec![2]
        );
        assert_eq!(f.load_slice(7).expect("slice 7").count_ones(), 0);
    }

    #[test]
    fn count_selected_is_and_popcount() {
        let p = path("count");
        let _g = Cleanup(p.clone());
        let mut f = SliceFile::open(&p, 8, 64).expect("open");
        f.append_row(&[0, 1]).expect("append");
        f.append_row(&[1]).expect("append");
        f.append_row(&[0, 1, 2]).expect("append");
        assert_eq!(f.count_selected(&[]).expect("count"), 3);
        assert_eq!(f.count_selected(&[1]).expect("count"), 3);
        assert_eq!(f.count_selected(&[0]).expect("count"), 2);
        assert_eq!(f.count_selected(&[0, 1]).expect("count"), 2);
        assert_eq!(f.count_selected(&[0, 2]).expect("count"), 1);
        assert_eq!(f.count_selected(&[0, 1, 2]).expect("count"), 1);
    }

    #[test]
    fn reopen_preserves_rows_and_width() {
        let p = path("reopen");
        let _g = Cleanup(p.clone());
        {
            let mut f = SliceFile::open(&p, 32, 64).expect("open");
            for i in 0..10 {
                f.append_row(&[i % 32]).expect("append");
            }
            f.flush().expect("flush");
        }
        let mut f = SliceFile::open(&p, 32, 64).expect("reopen");
        assert_eq!(f.rows(), 10);
        assert_eq!(f.load_slice(0).expect("slice").count_ones(), 1);
        // Wrong width is rejected.
        drop(f);
        assert!(SliceFile::open(&p, 64, 64).is_err());
    }

    #[test]
    fn crossing_a_chunk_boundary() {
        let p = path("chunk");
        let _g = Cleanup(p.clone());
        let mut f = SliceFile::open(&p, 4, 64).expect("open");
        // CHUNK_ROWS + 5 rows, every row sets bit 2.
        let n = CHUNK_ROWS + 5;
        for _ in 0..n {
            f.append_row(&[2]).expect("append");
        }
        assert_eq!(f.rows(), n as u64);
        assert_eq!(f.load_slice(2).expect("slice").count_ones(), n);
        assert_eq!(f.count_selected(&[2]).expect("count"), n as u64);
        assert_eq!(f.count_selected(&[1, 2]).expect("count"), 0);
    }

    #[test]
    fn cache_pressure_still_correct() {
        let p = path("pressure");
        let _g = Cleanup(p.clone());
        // Cache of 2 pages over a width-8 file forces constant eviction.
        let mut f = SliceFile::open(&p, 8, 2).expect("open");
        for i in 0..100u64 {
            f.append_row(&[(i % 8) as usize, ((i + 3) % 8) as usize])
                .expect("append");
        }
        let total: usize = (0..8)
            .map(|j| f.load_slice(j).expect("slice").count_ones())
            .sum();
        assert_eq!(total, 200, "every set bit accounted for");
        assert!(f.cache_stats().evictions > 0, "pressure actually occurred");
    }
}
