//! A bounded LRU page cache over a [`Pager`].
//!
//! This is what turns the paper's memory axis (Fig. 11) into real
//! behaviour: a mining run against disk-backed structures sees hits while
//! its working set fits the cache and physical reads once it does not.

use crate::backend::{FileBackend, StorageBackend};
use crate::pager::{PageBuf, PageId, Pager, PAGE_SIZE};
use std::collections::HashMap;
use std::io;

/// Cache hit/miss/eviction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from memory.
    pub hits: u64,
    /// Requests that required a physical read.
    pub misses: u64,
    /// Pages evicted (dirty evictions force a physical write).
    pub evictions: u64,
}

struct Frame {
    buf: PageBuf,
    dirty: bool,
    /// Monotonic last-use stamp for LRU.
    last_used: u64,
}

/// An LRU page cache with a fixed capacity in pages.
pub struct PageCache<B: StorageBackend = FileBackend> {
    pager: Pager<B>,
    frames: HashMap<PageId, Frame>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
}

impl<B: StorageBackend> PageCache<B> {
    /// Wraps a pager with a cache of `capacity` pages (min 1).
    pub fn new(pager: Pager<B>, capacity: usize) -> Self {
        PageCache {
            pager,
            frames: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Cache capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cache counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Physical I/O counters of the underlying pager.
    pub fn pager_stats(&self) -> crate::pager::PagerStats {
        self.pager.stats()
    }

    /// Number of pages in the backing file.
    pub fn page_count(&self) -> u64 {
        self.pager.page_count()
    }

    fn touch(&mut self, id: PageId) {
        self.tick += 1;
        if let Some(f) = self.frames.get_mut(&id) {
            f.last_used = self.tick;
        }
    }

    fn ensure_resident(&mut self, id: PageId) -> io::Result<()> {
        if self.frames.contains_key(&id) {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            self.evict_if_full()?;
            let buf = self.pager.read_page(id)?;
            self.frames.insert(
                id,
                Frame {
                    buf,
                    dirty: false,
                    last_used: 0,
                },
            );
        }
        self.touch(id);
        Ok(())
    }

    fn evict_if_full(&mut self) -> io::Result<()> {
        while self.frames.len() >= self.capacity {
            let victim = *self
                .frames
                .iter()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(id, _)| id)
                .expect("non-empty cache");
            let frame = self.frames.remove(&victim).expect("present");
            if frame.dirty {
                self.pager.write_page(victim, &frame.buf)?;
            }
            self.stats.evictions += 1;
        }
        Ok(())
    }

    /// Reads bytes from a page through the cache.
    ///
    /// # Panics
    /// Panics if `offset + out.len()` exceeds the page size.
    pub fn read_at(&mut self, id: PageId, offset: usize, out: &mut [u8]) -> io::Result<()> {
        assert!(offset + out.len() <= PAGE_SIZE, "read crosses page boundary");
        self.ensure_resident(id)?;
        let frame = self.frames.get(&id).expect("resident");
        out.copy_from_slice(&frame.buf[offset..offset + out.len()]);
        Ok(())
    }

    /// Writes bytes into a page through the cache (write-back).
    ///
    /// # Panics
    /// Panics if `offset + data.len()` exceeds the page size.
    pub fn write_at(&mut self, id: PageId, offset: usize, data: &[u8]) -> io::Result<()> {
        assert!(
            offset + data.len() <= PAGE_SIZE,
            "write crosses page boundary"
        );
        self.ensure_resident(id)?;
        let frame = self.frames.get_mut(&id).expect("resident");
        frame.buf[offset..offset + data.len()].copy_from_slice(data);
        frame.dirty = true;
        Ok(())
    }

    /// Runs a closure over a page's bytes without copying them out.
    pub fn with_page<R>(
        &mut self,
        id: PageId,
        f: impl FnOnce(&[u8; PAGE_SIZE]) -> R,
    ) -> io::Result<R> {
        self.ensure_resident(id)?;
        Ok(f(&self.frames.get(&id).expect("resident").buf))
    }

    /// Batched fetch: makes every page in `ids` resident (in order), so
    /// subsequent [`PageCache::with_page`] calls on them are guaranteed
    /// hits.  Only sound as a batch when `ids.len() < capacity`; with a
    /// smaller cache the early pages may be evicted again and the caller
    /// degrades to page-at-a-time residency (still correct, just thrashy).
    pub fn prefetch(&mut self, ids: &[PageId]) -> io::Result<()> {
        for &id in ids {
            self.ensure_resident(id)?;
        }
        Ok(())
    }

    /// Writes all dirty pages back and syncs the file.
    pub fn flush(&mut self) -> io::Result<()> {
        let mut dirty: Vec<PageId> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&id, _)| id)
            .collect();
        dirty.sort_unstable();
        for id in dirty {
            let frame = self.frames.get_mut(&id).expect("present");
            self.pager.write_page(id, &frame.buf)?;
            frame.dirty = false;
        }
        self.pager.sync()
    }
}

impl<B: StorageBackend> Drop for PageCache<B> {
    fn drop(&mut self) {
        // Best-effort write-back; errors on drop cannot be reported.
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bbs_cache_{}_{}", std::process::id(), name));
        p
    }

    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            std::fs::remove_file(&self.0).ok();
        }
    }

    fn cache(name: &str, capacity: usize) -> (PageCache, Cleanup) {
        let path = temp(name);
        let cleanup = Cleanup(path.clone());
        let pager = Pager::open(&path).expect("open");
        (PageCache::new(pager, capacity), cleanup)
    }

    #[test]
    fn read_own_writes() {
        let (mut c, _g) = cache("rw", 4);
        c.write_at(PageId(0), 10, b"hello").expect("write");
        let mut buf = [0u8; 5];
        c.read_at(PageId(0), 10, &mut buf).expect("read");
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let (mut c, _g) = cache("hitmiss", 4);
        let mut buf = [0u8; 1];
        c.read_at(PageId(0), 0, &mut buf).expect("read");
        c.read_at(PageId(0), 1, &mut buf).expect("read");
        c.read_at(PageId(1), 0, &mut buf).expect("read");
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let (mut c, _g) = cache("lru", 2);
        let mut buf = [0u8; 1];
        c.read_at(PageId(0), 0, &mut buf).expect("read"); // miss
        c.read_at(PageId(1), 0, &mut buf).expect("read"); // miss
        c.read_at(PageId(0), 0, &mut buf).expect("read"); // hit, 0 is MRU
        c.read_at(PageId(2), 0, &mut buf).expect("read"); // miss, evicts 1
        assert_eq!(c.stats().evictions, 1);
        c.read_at(PageId(0), 0, &mut buf).expect("read"); // still cached
        assert_eq!(c.stats().hits, 2);
        c.read_at(PageId(1), 0, &mut buf).expect("read"); // miss again
        assert_eq!(c.stats().misses, 4);
    }

    #[test]
    fn dirty_eviction_persists_data() {
        let (mut c, _g) = cache("dirty", 1);
        c.write_at(PageId(0), 0, b"persist-me").expect("write");
        // Touching another page evicts page 0, forcing the write-back.
        let mut buf = [0u8; 1];
        c.read_at(PageId(5), 0, &mut buf).expect("read");
        assert_eq!(c.pager_stats().writes, 1);
        // Reading page 0 again fetches the persisted bytes.
        let mut got = [0u8; 10];
        c.read_at(PageId(0), 0, &mut got).expect("read");
        assert_eq!(&got, b"persist-me");
    }

    #[test]
    fn flush_then_reopen() {
        let path = temp("flush_reopen");
        let _g = Cleanup(path.clone());
        {
            let pager = Pager::open(&path).expect("open");
            let mut c = PageCache::new(pager, 4);
            c.write_at(PageId(1), 0, b"durable").expect("write");
            c.flush().expect("flush");
        }
        let pager = Pager::open(&path).expect("reopen");
        let mut c = PageCache::new(pager, 4);
        let mut got = [0u8; 7];
        c.read_at(PageId(1), 0, &mut got).expect("read");
        assert_eq!(&got, b"durable");
    }

    #[test]
    #[should_panic(expected = "crosses page boundary")]
    fn cross_page_read_panics() {
        let (mut c, _g) = cache("cross", 2);
        let mut buf = [0u8; 8];
        c.read_at(PageId(0), PAGE_SIZE - 4, &mut buf).expect("read");
    }
}
