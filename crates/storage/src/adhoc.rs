//! Ad-hoc queries answered entirely from disk (§4.9 without a load phase).
//!
//! The in-memory [`bbs_core::AdhocEngine`] assumes the index and database
//! are resident.  This engine answers the same queries straight off the
//! files: the estimate comes from [`DiskBbs::count_itemset`] (reading only
//! the selected slices' pages through the cache), and the exact count
//! probes the heap file for just the nominated rows.  Nothing is ever
//! loaded wholesale — the working set is the query's slices plus the
//! candidate rows' pages.

use crate::backend::{FileBackend, StorageBackend};
use crate::diskbbs::DiskDeployment;
use bbs_bitslice::BitVec;
use bbs_tdb::Itemset;
use std::io;

/// Per-query work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskQueryStats {
    /// The BBS estimate computed for the query.
    pub estimate: u64,
    /// Rows fetched from the heap file.
    pub rows_probed: u64,
}

/// Ad-hoc query engine over a [`DiskDeployment`].
pub struct DiskAdhocEngine<'a, B: StorageBackend = FileBackend> {
    deployment: &'a mut DiskDeployment<B>,
}

impl<'a, B: StorageBackend> DiskAdhocEngine<'a, B> {
    /// Wraps a deployment.
    pub fn new(deployment: &'a mut DiskDeployment<B>) -> Self {
        DiskAdhocEngine { deployment }
    }

    /// Upper-bound estimate of a pattern's support (slice pages only).
    pub fn estimate(&mut self, items: &Itemset) -> io::Result<u64> {
        self.deployment.index.count_itemset(items)
    }

    /// Exact support: estimate, materialise the candidate rows, fetch and
    /// verify each against the heap file.
    pub fn count(&mut self, items: &Itemset) -> io::Result<(u64, DiskQueryStats)> {
        let candidates = self.candidate_rows(items)?;
        let mut stats = DiskQueryStats {
            estimate: candidates.count_ones() as u64,
            rows_probed: 0,
        };
        let mut actual = 0u64;
        for row in candidates.iter_ones() {
            stats.rows_probed += 1;
            let txn = self.deployment.db.get(row as u64)?;
            if items.is_subset_of(&txn.items) {
                actual += 1;
            }
        }
        Ok((actual, stats))
    }

    /// Exact support among the rows selected by a constraint slice (§3.4):
    /// the slice ANDs into the candidate rows before probing, exactly like
    /// the in-memory engine's constrained path.
    pub fn count_constrained(
        &mut self,
        items: &Itemset,
        constraint: &BitVec,
    ) -> io::Result<(u64, DiskQueryStats)> {
        let mut candidates = self.candidate_rows(items)?;
        candidates.and_assign(constraint);
        let mut stats = DiskQueryStats {
            estimate: candidates.count_ones() as u64,
            rows_probed: 0,
        };
        let mut actual = 0u64;
        for row in candidates.iter_ones() {
            stats.rows_probed += 1;
            let txn = self.deployment.db.get(row as u64)?;
            if items.is_subset_of(&txn.items) {
                actual += 1;
            }
        }
        Ok((actual, stats))
    }

    /// Whether a pattern reaches an absolute threshold, with the Lemma-4
    /// short-circuit: an estimate below τ settles "no" from slices alone.
    pub fn is_frequent(&mut self, items: &Itemset, tau: u64) -> io::Result<bool> {
        if self.estimate(items)? < tau {
            return Ok(false);
        }
        Ok(self.count(items)?.0 >= tau)
    }

    /// The AND-result rows for a query, assembled from the on-disk slices.
    fn candidate_rows(&mut self, items: &Itemset) -> io::Result<BitVec> {
        let index = &mut self.deployment.index;
        let rows = index.rows() as usize;
        let positions = index.query_positions(items);
        if positions.is_empty() {
            return Ok(BitVec::ones(rows));
        }
        let mut acc = index.load_slice(positions[0])?;
        acc.grow_to(rows);
        for &p in &positions[1..] {
            let slice = index.load_slice(p)?;
            acc.and_assign(&slice);
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_hash::Md5BloomHasher;
    use bbs_tdb::TransactionDb;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn base(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bbs_diskadhoc_{}_{}", std::process::id(), name));
        p
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            DiskDeployment::remove_files(&self.0).ok();
        }
    }

    fn fixture(name: &str) -> (DiskDeployment, TransactionDb, Cleanup) {
        let b = base(name);
        let cleanup = Cleanup(b.clone());
        let db = bbs_datagen::generate_db(bbs_datagen::QuestConfig::tiny());
        let mut dep =
            DiskDeployment::open(&b, 96, Arc::new(Md5BloomHasher::new(3)), 512).expect("open");
        for t in db.transactions() {
            dep.append(t).expect("append");
        }
        (dep, db, cleanup)
    }

    #[test]
    fn exact_counts_match_full_scan() {
        let (mut dep, db, _g) = fixture("exact");
        let mut engine = DiskAdhocEngine::new(&mut dep);
        let queries: Vec<Itemset> = db
            .transactions()
            .iter()
            .step_by(40)
            .map(|t| {
                Itemset::from_items(t.items.items().iter().take(2).copied().collect())
            })
            .collect();
        for q in &queries {
            let (count, stats) = engine.count(q).expect("count");
            let truth = db
                .transactions()
                .iter()
                .filter(|t| q.is_subset_of(&t.items))
                .count() as u64;
            assert_eq!(count, truth, "{q:?}");
            assert!(stats.estimate >= truth, "{q:?}");
            assert_eq!(stats.rows_probed, stats.estimate, "{q:?}");
        }
    }

    #[test]
    fn is_frequent_short_circuits() {
        let (mut dep, db, _g) = fixture("freq");
        let mut engine = DiskAdhocEngine::new(&mut dep);
        // A pattern of two items that never co-occur: estimate may still
        // exceed zero, but correctness must hold either way.
        let q = Itemset::from_values(&[0, 1]);
        let truth = db
            .transactions()
            .iter()
            .filter(|t| q.is_subset_of(&t.items))
            .count() as u64;
        assert_eq!(
            engine.is_frequent(&q, truth.max(1)).expect("is_frequent"),
            truth >= truth.max(1)
        );
        assert!(!engine.is_frequent(&q, db.len() as u64 + 1).expect("is_frequent"));
    }

    #[test]
    fn constrained_count_matches_filtered_scan() {
        let (mut dep, db, _g) = fixture("constrained");
        // Constraint: even rows only.
        let mut constraint = BitVec::zeros(db.len());
        for i in (0..db.len()).step_by(2) {
            constraint.set(i);
        }
        let mut engine = DiskAdhocEngine::new(&mut dep);
        for q in [&[0u32][..], &[1, 2], &[5]] {
            let items = Itemset::from_values(q);
            let (got, _) = engine.count_constrained(&items, &constraint).expect("count");
            let expect = db
                .transactions()
                .iter()
                .enumerate()
                .filter(|(i, t)| i % 2 == 0 && items.is_subset_of(&t.items))
                .count() as u64;
            assert_eq!(got, expect, "{items:?}");
        }
    }

    #[test]
    fn empty_query_counts_every_row() {
        let (mut dep, db, _g) = fixture("empty");
        let mut engine = DiskAdhocEngine::new(&mut dep);
        let (count, _) = engine.count(&Itemset::empty()).expect("count");
        assert_eq!(count, db.len() as u64);
    }
}
