//! Offline deployment maintenance: tombstone **compaction** and slice
//! **folding**, both crash-safe via a staged-files-plus-marker swap.
//!
//! # The swap protocol
//!
//! Both operations build a complete replacement for some subset of a
//! deployment's files under a hidden staging base (`.cpt-<name>` next to
//! the live files), sync everything, and only then write a checksummed
//! **swap marker** (`.swap-<name>`) listing the extensions to install.
//! The marker is the commit point:
//!
//! * no marker (or a torn one, caught by its checksum) → the swap never
//!   happened; staging debris is deleted and the old files stay live;
//! * a valid marker → the swap *has* happened; the renames are replayed
//!   (each one idempotent — already-moved files are skipped) and the
//!   marker is removed.
//!
//! [`finish_pending_swap`] performs that resolution and runs at the top
//! of every [`DiskDeployment::open`], so a crash at *any* point leaves a
//! deployment that reopens to exactly the old or exactly the new state —
//! the same guarantee the page-level commit protocol gives single flushes,
//! lifted to whole-file rewrites.
//!
//! # Compaction
//!
//! [`compact_deployment`] rewrites the deployment with only its live
//! (non-tombstoned) rows, re-appending them through the normal write path
//! so every invariant (heap/index row alignment, replication log, counts
//! file) is rebuilt from first principles.  Rows are *renumbered*: the
//! dedup window is carried over with each receipt's row range remapped by
//! rank over the tombstone bitmap, so retried requests still answer
//! exactly-once; the replication log restarts as a bootstrap stream of
//! the surviving rows (followers of a compacted primary wipe and resync).
//!
//! # Folding
//!
//! [`fold_deployment`] halves the slice width `m` without touching the
//! heap: both hash families position items by `value % m`, so an item
//! hashed at `p` under width `m` lands at `p % (m/2)` under width `m/2` —
//! which is exactly bit-OR of slice `j` and slice `j + m/2`.  The folded
//! file is bit-for-bit identical to re-hashing every transaction at the
//! halved width, at the cost of a sequential page pass instead of a full
//! rebuild.  Row numbering, the heap, tombstones, and the replication log
//! are untouched, so followers are unaffected; only `{slices, commit}`
//! are swapped, the staged commit being the successor record (`seq + 1`)
//! vouching for the folded file's boundary digest.

use crate::backend::FileBackend;
use crate::commit::{self, Commit};
use crate::dedup::DedupReceipt;
use crate::del::DeadMask;
use crate::diskbbs::{deployment_paths, DeploymentPaths, DiskDeployment};
use crate::pager::{fnv1a64, fnv1a64_extend, PageId, Pager, FNV_OFFSET};
use crate::slicefile::{self, clear_uncommitted_bits, CHUNK_ROWS};
use bbs_hash::ItemHasher;
use bbs_tdb::Transaction;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic prefix of the swap-marker file.
const MARKER_MAGIC: &[u8; 8] = b"BBSSWAP1";

/// Rows re-appended per staged batch (and per staging commit) during
/// compaction — the group-commit granularity of the rewrite.
const COMPACT_BATCH: usize = 4096;

/// Every deployment file extension, in swap order.
const ALL_EXTS: &[&str] = &[
    "dat", "idx", "slices", "counts", "dedup", "log", "del", "commit",
];

/// Observation hook for crash-torture tests: called with a step label
/// after each durable point of the swap (`"build"`, `"marker"`,
/// `"rename-<ext>"`, `"unmark"`); returning an error abandons the
/// operation at that exact point, simulating a crash.
pub type SwapHook<'a> = &'a mut dyn FnMut(&'static str) -> io::Result<()>;

/// What a maintenance operation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintainReport {
    /// `"compact"` or `"fold"`.
    pub action: &'static str,
    /// Slice width of the deployment after the operation.
    pub width: usize,
    /// Total rows (live + tombstoned) before.
    pub rows_before: u64,
    /// Total rows after (compaction drops tombstones; fold keeps rows).
    pub rows_after: u64,
    /// Tombstoned rows reclaimed (zero for fold).
    pub reclaimed: u64,
    /// Commit sequence of the new state.
    pub seq: u64,
}

fn invalid(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

/// The hidden base the staged replacement files are built under:
/// `dir/.cpt-<name>` for a deployment at `dir/<name>`.  A prefix on the
/// file *name* (not an extra extension) so that [`deployment_paths`] of
/// the staging base can never collide with a live file.
pub fn staging_base(base: &Path) -> PathBuf {
    let name = base
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    base.with_file_name(format!(".cpt-{name}"))
}

/// The swap-marker path of a deployment: `dir/.swap-<name>`.
pub fn swap_marker_path(base: &Path) -> PathBuf {
    let name = base
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    base.with_file_name(format!(".swap-{name}"))
}

fn path_of(paths: &DeploymentPaths, ext: &str) -> Option<PathBuf> {
    match ext {
        "dat" => Some(paths.dat.clone()),
        "idx" => Some(paths.idx.clone()),
        "slices" => Some(paths.slices.clone()),
        "counts" => Some(paths.counts.clone()),
        "commit" => Some(paths.commit.clone()),
        "dedup" => Some(paths.dedup.clone()),
        "log" => Some(paths.log.clone()),
        "del" => Some(paths.del.clone()),
        _ => None,
    }
}

fn encode_marker(exts: &[&str]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    buf.extend_from_slice(MARKER_MAGIC);
    buf.extend_from_slice(&(exts.len() as u32).to_le_bytes());
    for ext in exts {
        buf.push(ext.len() as u8);
        buf.extend_from_slice(ext.as_bytes());
    }
    let digest = fnv1a64(&buf);
    buf.extend_from_slice(&digest.to_le_bytes());
    buf
}

fn decode_marker(bytes: &[u8]) -> Option<Vec<String>> {
    if bytes.len() < 20 || &bytes[0..8] != MARKER_MAGIC {
        return None;
    }
    let (body, digest) = bytes.split_at(bytes.len() - 8);
    if digest != fnv1a64(body).to_le_bytes() {
        return None;
    }
    let n = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes")) as usize;
    let mut exts = Vec::with_capacity(n);
    let mut at = 12;
    for _ in 0..n {
        let len = *body.get(at)? as usize;
        at += 1;
        let ext = body.get(at..at + len)?;
        at += len;
        exts.push(String::from_utf8(ext.to_vec()).ok()?);
    }
    (at == body.len()).then_some(exts)
}

fn write_marker(path: &Path, exts: &[&str]) -> io::Result<()> {
    use std::io::Write;
    let buf = encode_marker(exts);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&buf)?;
    f.sync_all()
}

fn remove_staging(base: &Path) {
    DiskDeployment::remove_files(&staging_base(base)).ok();
}

/// Resolves any swap a previous process left behind at `base`: rolls a
/// committed swap (valid marker) forward by replaying its renames, or
/// cleans up the debris of an uncommitted one.  Idempotent; called at the
/// top of every [`DiskDeployment::open`].  Returns whether a committed
/// swap was completed.
pub fn finish_pending_swap(base: &Path) -> io::Result<bool> {
    let marker = swap_marker_path(base);
    let bytes = match std::fs::read(&marker) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            remove_staging(base);
            return Ok(false);
        }
        Err(e) => return Err(e),
    };
    match decode_marker(&bytes) {
        Some(exts) => {
            let live = deployment_paths(base);
            let staged = deployment_paths(&staging_base(base));
            for ext in &exts {
                let (Some(from), Some(to)) = (path_of(&staged, ext), path_of(&live, ext))
                else {
                    return Err(invalid(format!("swap marker names unknown file: {ext:?}")));
                };
                // Already-renamed files are gone from staging: skip them,
                // so replaying after a crash mid-swap is idempotent.
                match std::fs::rename(&from, &to) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
            }
            std::fs::remove_file(&marker)?;
            remove_staging(base);
            Ok(true)
        }
        None => {
            // A torn marker never committed: the old files are intact.
            std::fs::remove_file(&marker)?;
            remove_staging(base);
            Ok(false)
        }
    }
}

/// Commits the staged files listed in `exts`: marker (the commit point),
/// renames, cleanup — with `hook` observing each durable step.
fn commit_swap(base: &Path, exts: &'static [&'static str], hook: SwapHook) -> io::Result<()> {
    hook("build")?;
    write_marker(&swap_marker_path(base), exts)?;
    hook("marker")?;
    let live = deployment_paths(base);
    let staged = deployment_paths(&staging_base(base));
    for ext in exts {
        let (from, to) = (
            path_of(&staged, ext).expect("known ext"),
            path_of(&live, ext).expect("known ext"),
        );
        match std::fs::rename(&from, &to) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        hook(rename_label(ext))?;
    }
    std::fs::remove_file(swap_marker_path(base))?;
    remove_staging(base);
    hook("unmark")?;
    Ok(())
}

fn rename_label(ext: &str) -> &'static str {
    match ext {
        "dat" => "rename-dat",
        "idx" => "rename-idx",
        "slices" => "rename-slices",
        "counts" => "rename-counts",
        "commit" => "rename-commit",
        "dedup" => "rename-dedup",
        "log" => "rename-log",
        "del" => "rename-del",
        _ => "rename",
    }
}

/// Rank structure over the tombstone bitmap: `rank(row)` = dead rows
/// strictly below `row` — the amount compaction shifts `row` down by.
struct DeadRank {
    words: Vec<u64>,
    cum: Vec<u64>,
}

impl DeadRank {
    fn new(mask: &DeadMask) -> Self {
        let mut cum = Vec::with_capacity(mask.words.len() + 1);
        let mut total = 0u64;
        cum.push(0);
        for &w in &mask.words {
            total += u64::from(w.count_ones());
            cum.push(total);
        }
        DeadRank {
            words: mask.words.clone(),
            cum,
        }
    }

    fn rank(&self, row: u64) -> u64 {
        let wi = (row / 64) as usize;
        if wi >= self.words.len() {
            return *self.cum.last().expect("cum is never empty");
        }
        let below = self.words[wi] & ((1u64 << (row % 64)) - 1);
        self.cum[wi] + u64::from(below.count_ones())
    }
}

/// Remaps a dedup receipt from pre-compaction to post-compaction row
/// numbering.  Delete receipts (sentinel `first_row == u64::MAX`) carry
/// no row range and pass through unchanged.
fn remap_receipt(rank: &DeadRank, r: DedupReceipt) -> DedupReceipt {
    if r.first_row == u64::MAX {
        return r;
    }
    let first = r.first_row - rank.rank(r.first_row);
    let dead_inside = rank.rank(r.first_row + r.appended) - rank.rank(r.first_row);
    DedupReceipt {
        first_row: first,
        appended: r.appended - dead_inside,
    }
}

/// Rewrites the deployment at `base` with only its live rows (optionally
/// at a different slice width), then atomically swaps the rewrite in.
/// See the module docs for the crash-safety argument.
///
/// `width_hint` is the width to open the source at when its slice file
/// has no header yet (an empty deployment); an on-disk header always
/// wins.  `target_width` defaults to the source width.
pub fn compact_deployment(
    base: &Path,
    width_hint: usize,
    hasher: Arc<dyn ItemHasher>,
    target_width: Option<usize>,
    cache_pages: usize,
) -> io::Result<MaintainReport> {
    compact_deployment_hooked(
        base,
        width_hint,
        hasher,
        target_width,
        cache_pages,
        &mut |_| Ok(()),
    )
}

/// [`compact_deployment`] with a [`SwapHook`] observing every durable
/// step — the crash-torture entry point.
pub fn compact_deployment_hooked(
    base: &Path,
    width_hint: usize,
    hasher: Arc<dyn ItemHasher>,
    target_width: Option<usize>,
    cache_pages: usize,
    hook: SwapHook,
) -> io::Result<MaintainReport> {
    finish_pending_swap(base)?;
    let paths = deployment_paths(base);
    let width = slicefile::header_width(&paths.slices)?.unwrap_or(width_hint);
    let new_width = target_width.unwrap_or(width);
    if new_width == 0 {
        return Err(invalid("compact: target width must be positive"));
    }
    let staging = staging_base(base);
    let mut src = DiskDeployment::open(base, width, hasher.clone(), cache_pages)?;
    let rows_before = src.db.len();
    let reclaimed = src.deleted_rows();
    let mask = src.dead_mask();
    let rank = DeadRank::new(&mask);
    let receipts: Vec<(u64, DedupReceipt)> = src
        .dedup_entries()
        .into_iter()
        .map(|(req_id, r)| (req_id, remap_receipt(&rank, r)))
        .collect();

    // Replay every live row through the staged deployment's normal write
    // path, batch by batch: the heap, index, counts, and replication log
    // are all rebuilt from first principles, and the staged log doubles
    // as the bootstrap stream a wiped follower resyncs from.
    let mut dst = DiskDeployment::open(&staging, new_width, hasher, cache_pages)?;
    let mut batch: Vec<Transaction> = Vec::with_capacity(COMPACT_BATCH);
    let mut deferred: Option<io::Error> = None;
    {
        let dst = &mut dst;
        let batch = &mut batch;
        let deferred = &mut deferred;
        let mask = &mask;
        src.db.for_each(|row, txn| {
            if deferred.is_some() || mask.is_dead(row) {
                return;
            }
            batch.push(txn.clone());
            if batch.len() >= COMPACT_BATCH {
                if let Err(e) = dst.append_batch(batch) {
                    *deferred = Some(e);
                }
                batch.clear();
            }
        })?;
    }
    if let Some(e) = deferred {
        return Err(e);
    }
    if !batch.is_empty() {
        dst.append_batch(&batch)?;
    }
    // One final flush carries the remapped dedup window, so a retried
    // request from before the compaction still answers exactly-once.
    dst.flush_with_receipts(&receipts)?;
    let rows_after = dst.db.len();
    let seq = dst.committed_seq();
    drop(src);
    drop(dst);

    commit_swap(base, ALL_EXTS, hook)?;
    Ok(MaintainReport {
        action: "compact",
        width: new_width,
        rows_before,
        rows_after,
        reclaimed,
        seq,
    })
}

/// Extensions a fold swaps: the folded slice file and the successor
/// commit record that vouches for it.
const FOLD_EXTS: &[&str] = &["slices", "commit"];

/// Halves the deployment's slice width by OR-ing each slice `j` with
/// slice `j + m/2` — bit-for-bit what re-hashing every row at `m/2`
/// would build (both hash families position by `value % m`) — and swaps
/// in the folded file plus its successor commit.  Rows, the heap, the
/// tombstone log, and the replication log are untouched.
pub fn fold_deployment(
    base: &Path,
    hasher: Arc<dyn ItemHasher>,
    cache_pages: usize,
) -> io::Result<MaintainReport> {
    fold_deployment_hooked(base, hasher, cache_pages, &mut |_| Ok(()))
}

/// [`fold_deployment`] with a [`SwapHook`] observing every durable step.
pub fn fold_deployment_hooked(
    base: &Path,
    hasher: Arc<dyn ItemHasher>,
    cache_pages: usize,
    hook: SwapHook,
) -> io::Result<MaintainReport> {
    finish_pending_swap(base)?;
    let paths = deployment_paths(base);
    let Some(width) = slicefile::header_width(&paths.slices)? else {
        return Err(invalid("fold: deployment has no slice file to fold"));
    };
    if width < 2 || width % 2 != 0 {
        return Err(invalid(format!("fold requires an even width, got {width}")));
    }
    let half = width / 2;

    // A clean reopen-and-flush first: recovery repairs any boundary-page
    // debris *on disk*, so the page pass below reads exactly the committed
    // bits, and the flush stamps the commit record the staged successor
    // record (seq + 1) chains from.
    let parent = {
        let mut dep = DiskDeployment::open(base, width, hasher, cache_pages)?;
        dep.flush()?;
        dep.last_commit().expect("flush wrote a commit")
    };
    let rows = parent.rows;
    let staging = staging_base(base);
    let spaths = deployment_paths(&staging);

    let mut src = Pager::new(FileBackend::open(&paths.slices)?)?;
    let mut dst = Pager::new(FileBackend::open(&spaths.slices)?)?;
    dst.write_page(PageId(0), &slicefile::encoded_header(half, rows))?;
    let chunks = (rows as usize).div_ceil(CHUNK_ROWS) as u64;
    let within = rows % CHUNK_ROWS as u64;
    let boundary_chunk = (within != 0).then(|| rows / CHUNK_ROWS as u64);
    // Boundary digest of the folded file, chained in slice order exactly
    // as recovery recomputes it; zero when the row count is chunk-aligned.
    let mut slices_digest = if boundary_chunk.is_some() { FNV_OFFSET } else { 0 };
    for c in 0..chunks {
        for j in 0..half {
            let mut lo = src.read_page(PageId(1 + c * width as u64 + j as u64))?;
            let hi = src.read_page(PageId(1 + c * width as u64 + (j + half) as u64))?;
            for (l, h) in lo.iter_mut().zip(hi.iter()) {
                *l |= *h;
            }
            if boundary_chunk == Some(c) {
                clear_uncommitted_bits(&mut lo, within);
                slices_digest = fnv1a64_extend(slices_digest, &lo[..]);
            }
            dst.write_page(PageId(1 + c * half as u64 + j as u64), &lo)?;
        }
    }
    dst.sync()?;
    drop(src);
    drop(dst);

    let mut commit_backend = FileBackend::open(&spaths.commit)?;
    commit::write_explicit(
        &mut commit_backend,
        Commit {
            seq: parent.seq + 1,
            rows,
            heap_tail: parent.heap_tail,
            dat_digest: parent.dat_digest,
            idx_digest: parent.idx_digest,
            slices_digest,
        },
    )?;
    drop(commit_backend);

    commit_swap(base, FOLD_EXTS, hook)?;
    Ok(MaintainReport {
        action: "fold",
        width: half,
        rows_before: rows,
        rows_after: rows,
        reclaimed: 0,
        seq: parent.seq + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_roundtrip_and_torn_rejection() {
        let exts = &["slices", "commit"];
        let bytes = encode_marker(exts);
        assert_eq!(
            decode_marker(&bytes).as_deref(),
            Some(&["slices".to_string(), "commit".to_string()][..])
        );
        // Any truncation or flip must invalidate the marker.
        for cut in 0..bytes.len() {
            assert_eq!(decode_marker(&bytes[..cut]), None, "cut at {cut}");
        }
        for i in 0..bytes.len() {
            let mut torn = bytes.clone();
            torn[i] ^= 0x40;
            assert_eq!(decode_marker(&torn), None, "flip at {i}");
        }
    }

    #[test]
    fn staging_paths_never_collide_with_live() {
        let base = Path::new("/tmp/store/bbs");
        let live = deployment_paths(base);
        let staged = deployment_paths(&staging_base(base));
        for ext in ALL_EXTS {
            let (l, s) = (path_of(&live, ext).unwrap(), path_of(&staged, ext).unwrap());
            assert_ne!(l, s);
            assert_eq!(s.parent(), l.parent());
        }
        assert_ne!(swap_marker_path(base), staging_base(base));
    }

    #[test]
    fn dead_rank_counts_strictly_below() {
        let mask = DeadMask {
            words: vec![0b1010, 0, 1],
            deleted: 3,
        };
        let rank = DeadRank::new(&mask);
        assert_eq!(rank.rank(0), 0);
        assert_eq!(rank.rank(1), 0);
        assert_eq!(rank.rank(2), 1);
        assert_eq!(rank.rank(4), 2);
        assert_eq!(rank.rank(128), 2);
        assert_eq!(rank.rank(129), 3);
        assert_eq!(rank.rank(100_000), 3);
    }

    #[test]
    fn receipt_remap_shifts_by_rank_and_keeps_sentinels() {
        let mask = DeadMask {
            words: vec![0b0110], // rows 1 and 2 dead
            deleted: 2,
        };
        let rank = DeadRank::new(&mask);
        // Batch [0, 4): rows 1,2 dead inside → shrinks to [0, 2).
        let r = remap_receipt(
            &rank,
            DedupReceipt {
                first_row: 0,
                appended: 4,
            },
        );
        assert_eq!((r.first_row, r.appended), (0, 2));
        // Batch [3, 5): fully live, shifted down by the 2 dead below.
        let r = remap_receipt(
            &rank,
            DedupReceipt {
                first_row: 3,
                appended: 2,
            },
        );
        assert_eq!((r.first_row, r.appended), (1, 2));
        // Delete sentinel passes through.
        let s = DedupReceipt {
            first_row: u64::MAX,
            appended: 7,
        };
        assert_eq!(remap_receipt(&rank, s), s);
    }
}
