//! The exactly-once dedup log: request-ID → committed-row-range receipts,
//! persisted atomically with the commit record.
//!
//! A retried `Insert` whose first attempt actually committed must get the
//! *original* receipt back, not a second copy of its rows.  The server
//! keeps a bounded window of `(request id → first_row, appended)` receipts
//! in `<base>.dedup`; the window is what makes retries after timeouts,
//! dropped connections, and even server crashes idempotent.
//!
//! # Durability contract
//!
//! Entries are appended and synced *between* the data-file syncs and the
//! commit-record write of a flush, stamped with the commit sequence number
//! about to be assigned.  The commit record stays the sole durability
//! authority:
//!
//! * crash **before** the commit record → the stamped entries carry a
//!   sequence number greater than the last committed one and are dropped
//!   as debris on open, exactly like the data rows they describe;
//! * crash **after** the commit record (before the client ever saw a
//!   reply) → the entries are committed alongside the rows, and the
//!   client's retry is answered from the window.
//!
//! Each 40-byte entry is independently checksummed; recovery parses the
//! longest valid prefix (a torn tail append simply vanishes) and truncates
//! the file back to it.  When the file grows past twice the window it is
//! compacted in place down to the live window — all overwrites and a
//! shrinking truncate, so compaction still succeeds on a full disk.

use crate::backend::StorageBackend;
use crate::pager::fnv1a64;
use std::collections::{HashMap, VecDeque};
use std::io;

/// Entry size on disk: req_id, first_row, appended, seq, checksum.
const ENTRY_SIZE: usize = 40;

/// A committed insert receipt, as remembered by the dedup window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupReceipt {
    /// First row of the committed batch.
    pub first_row: u64,
    /// Number of rows the batch appended.
    pub appended: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    req_id: u64,
    receipt: DedupReceipt,
    seq: u64,
}

fn encode(e: &Entry) -> [u8; ENTRY_SIZE] {
    let mut buf = [0u8; ENTRY_SIZE];
    buf[0..8].copy_from_slice(&e.req_id.to_le_bytes());
    buf[8..16].copy_from_slice(&e.receipt.first_row.to_le_bytes());
    buf[16..24].copy_from_slice(&e.receipt.appended.to_le_bytes());
    buf[24..32].copy_from_slice(&e.seq.to_le_bytes());
    let digest = fnv1a64(&buf[0..32]);
    buf[32..40].copy_from_slice(&digest.to_le_bytes());
    buf
}

fn decode(buf: &[u8]) -> Option<Entry> {
    if buf.len() < ENTRY_SIZE {
        return None;
    }
    let word = |at: usize| u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"));
    if word(32) != fnv1a64(&buf[0..32]) {
        return None;
    }
    Some(Entry {
        req_id: word(0),
        receipt: DedupReceipt {
            first_row: word(8),
            appended: word(16),
        },
        seq: word(24),
    })
}

/// The bounded, persistent request-ID dedup window of one deployment.
pub struct DedupLog<B: StorageBackend> {
    backend: B,
    window: usize,
    /// Insertion order, oldest first (the eviction order).
    order: VecDeque<u64>,
    map: HashMap<u64, Entry>,
    /// Entries currently occupying the file (live + superseded).
    file_entries: u64,
}

impl<B: StorageBackend> DedupLog<B> {
    /// Opens the log, replaying the longest valid prefix of the file and
    /// dropping debris entries stamped past `committed_seq` (receipts of a
    /// flush whose commit record never landed).  The file is truncated
    /// back to what was kept.
    pub fn open(mut backend: B, window: usize, committed_seq: u64) -> io::Result<Self> {
        let len = backend.len()?;
        let mut bytes = vec![0u8; len as usize];
        backend.read_at(0, &mut bytes)?;
        let mut log = DedupLog {
            backend,
            window: window.max(1),
            order: VecDeque::new(),
            map: HashMap::new(),
            file_entries: 0,
        };
        let mut keep = 0u64;
        for chunk in bytes.chunks_exact(ENTRY_SIZE) {
            // A torn tail append fails the checksum: stop at the first
            // invalid entry (appends are strictly sequential).
            let Some(entry) = decode(chunk) else { break };
            if entry.seq > committed_seq {
                // Debris from an interrupted flush — the rows it vouches
                // for were rolled back too.
                break;
            }
            keep += 1;
            log.remember(entry);
        }
        log.file_entries = keep;
        if keep * ENTRY_SIZE as u64 != len {
            log.backend.set_len(keep * ENTRY_SIZE as u64)?;
            log.backend.sync()?;
        }
        Ok(log)
    }

    /// The receipt previously committed for `req_id`, if it is still in
    /// the window.
    pub fn lookup(&self, req_id: u64) -> Option<DedupReceipt> {
        self.map.get(&req_id).map(|e| e.receipt)
    }

    /// Live entries in the window.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// The live window in insertion order (oldest first) — what
    /// compaction carries into the rewritten deployment so retried
    /// requests still answer with their original receipts.
    pub fn entries(&self) -> Vec<(u64, DedupReceipt)> {
        self.order
            .iter()
            .filter_map(|id| self.map.get(id).map(|e| (*id, e.receipt)))
            .collect()
    }

    /// True when no receipt is remembered.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Resizes the window; shrinking evicts the oldest receipts now (the
    /// file catches up at the next compaction).
    pub fn set_window(&mut self, window: usize) {
        self.window = window.max(1);
        while self.order.len() > self.window {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
    }

    /// Durably records the receipts of a flush that is *about* to commit
    /// as sequence `seq`: appended and synced, compacting the file down
    /// to the live window first when it has grown past twice the window.
    /// Must run after the data files are synced and before the commit
    /// record is written — see the module docs for why that makes the
    /// window atomic with the commit.
    ///
    /// Compaction rewrites the live window and the new entries in one
    /// write starting at offset 0 followed by a single truncate — on a
    /// steady-state full disk that is an overwrite plus a shrink, so the
    /// window keeps committing receipts with zero free space.
    pub fn record_synced(&mut self, seq: u64, receipts: &[(u64, DedupReceipt)]) -> io::Result<()> {
        if receipts.is_empty() {
            return Ok(());
        }
        let compacting = self.file_entries as usize + receipts.len() > 2 * self.window;
        let mut buf = Vec::with_capacity(
            (if compacting { self.order.len() } else { 0 } + receipts.len()) * ENTRY_SIZE,
        );
        if compacting {
            for req_id in &self.order {
                buf.extend_from_slice(&encode(&self.map[req_id]));
            }
        }
        let mut entries = Vec::with_capacity(receipts.len());
        for &(req_id, receipt) in receipts {
            let e = Entry {
                req_id,
                receipt,
                seq,
            };
            buf.extend_from_slice(&encode(&e));
            entries.push(e);
        }
        let (start, total) = if compacting {
            (0, (buf.len() / ENTRY_SIZE) as u64)
        } else {
            (self.file_entries, self.file_entries + entries.len() as u64)
        };
        self.backend.write_at(start * ENTRY_SIZE as u64, &buf)?;
        if compacting {
            self.backend.set_len(total * ENTRY_SIZE as u64)?;
        }
        self.backend.sync()?;
        // Memory is updated only after the bytes are durable; on a failed
        // commit the writer is reopened from disk anyway.
        self.file_entries = total;
        for e in entries {
            self.remember(e);
        }
        Ok(())
    }

    fn remember(&mut self, entry: Entry) {
        if self.map.insert(entry.req_id, entry).is_none() {
            self.order.push_back(entry.req_id);
        } else {
            // Re-recorded id: refresh its position in the eviction order.
            self.order.retain(|&id| id != entry.req_id);
            self.order.push_back(entry.req_id);
        }
        while self.order.len() > self.window {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FaultPlan, MemBackend};

    fn receipt(first_row: u64, appended: u64) -> DedupReceipt {
        DedupReceipt {
            first_row,
            appended,
        }
    }

    #[test]
    fn record_and_lookup_roundtrip() {
        let mut log = DedupLog::open(MemBackend::new(), 8, 0).expect("open");
        log.record_synced(1, &[(10, receipt(0, 5)), (11, receipt(5, 3))])
            .expect("record");
        assert_eq!(log.lookup(10), Some(receipt(0, 5)));
        assert_eq!(log.lookup(11), Some(receipt(5, 3)));
        assert_eq!(log.lookup(12), None);
    }

    #[test]
    fn survives_reopen_and_window_evicts_oldest() {
        let mut mem = MemBackend::new();
        {
            let mut log = DedupLog::open(&mut mem, 3, 0).expect("open");
            for i in 0..5u64 {
                log.record_synced(i + 1, &[(i, receipt(i * 10, 10))])
                    .expect("record");
            }
            assert_eq!(log.len(), 3);
            assert_eq!(log.lookup(0), None, "evicted");
            assert_eq!(log.lookup(1), None, "evicted");
            assert_eq!(log.lookup(4), Some(receipt(40, 10)));
        }
        let log = DedupLog::open(&mut mem, 3, 5).expect("reopen");
        assert_eq!(log.len(), 3);
        assert_eq!(log.lookup(2), Some(receipt(20, 10)));
        assert_eq!(log.lookup(4), Some(receipt(40, 10)));
        assert_eq!(log.lookup(0), None);
    }

    #[test]
    fn uncommitted_entries_are_debris_on_open() {
        let mut mem = MemBackend::new();
        {
            let mut log = DedupLog::open(&mut mem, 8, 0).expect("open");
            log.record_synced(1, &[(7, receipt(0, 4))]).expect("record");
            // Stamped for commit 2, but commit 2 "never happened".
            log.record_synced(2, &[(8, receipt(4, 4))]).expect("record");
        }
        let log = DedupLog::open(&mut mem, 8, 1).expect("reopen at seq 1");
        assert_eq!(log.lookup(7), Some(receipt(0, 4)), "committed survives");
        assert_eq!(log.lookup(8), None, "uncommitted receipt dropped");
        assert_eq!(mem.len().expect("len"), ENTRY_SIZE as u64, "truncated");
    }

    #[test]
    fn torn_tail_is_discarded() {
        let mut mem = MemBackend::new();
        {
            let mut log = DedupLog::open(&mut mem, 8, 0).expect("open");
            log.record_synced(1, &[(1, receipt(0, 2))]).expect("record");
            log.record_synced(2, &[(2, receipt(2, 2))]).expect("record");
        }
        // Tear the second entry in half.
        mem.set_len(ENTRY_SIZE as u64 + 17).expect("tear");
        let log = DedupLog::open(&mut mem, 8, 2).expect("reopen");
        assert_eq!(log.lookup(1), Some(receipt(0, 2)));
        assert_eq!(log.lookup(2), None);
        assert_eq!(mem.len().expect("len"), ENTRY_SIZE as u64);
    }

    #[test]
    fn compaction_keeps_the_window_and_works_on_a_full_disk() {
        let plan = FaultPlan::counting();
        let mut b = plan.wrap("dedup", MemBackend::new());
        let mut log = DedupLog::open(&mut b, 4, 0).expect("open");
        for i in 0..8u64 {
            log.record_synced(i + 1, &[(i, receipt(i, 1))]).expect("record");
        }
        // File is at 2x the window; the next record compacts first.  With
        // the disk full the compaction (overwrite + shrink) must succeed,
        // and the append fits inside the freed extent.
        plan.set_disk_full(true);
        log.record_synced(9, &[(100, receipt(100, 1))]).expect("record");
        plan.set_disk_full(false);
        assert_eq!(log.len(), 4);
        assert_eq!(log.lookup(100), Some(receipt(100, 1)));
        assert_eq!(log.lookup(7), Some(receipt(7, 1)));
        assert_eq!(log.lookup(4), None, "outside the window");
        drop(log);
        let log = DedupLog::open(&mut b, 4, 9).expect("reopen");
        assert_eq!(log.len(), 4);
        assert_eq!(log.lookup(100), Some(receipt(100, 1)));
    }

    #[test]
    fn re_recorded_id_refreshes_instead_of_duplicating() {
        let mut log = DedupLog::open(MemBackend::new(), 2, 0).expect("open");
        log.record_synced(1, &[(5, receipt(0, 1))]).expect("a");
        log.record_synced(2, &[(6, receipt(1, 1))]).expect("b");
        log.record_synced(3, &[(5, receipt(0, 1))]).expect("refresh");
        log.record_synced(4, &[(7, receipt(2, 1))]).expect("c");
        // 6 was the oldest once 5 was refreshed.
        assert_eq!(log.lookup(6), None);
        assert_eq!(log.lookup(5), Some(receipt(0, 1)));
        assert_eq!(log.lookup(7), Some(receipt(2, 1)));
    }
}
