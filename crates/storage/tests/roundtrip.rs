//! Property tests: a durable deployment is semantically identical to the
//! in-memory [`Bbs`] over the same transactions — after a clean
//! append→flush→reopen cycle, and after crash recovery.

use bbs_core::Bbs;
use bbs_hash::{ItemHasher, Md5BloomHasher};
use bbs_storage::diskbbs::{deployment_paths, DeploymentBackends, DiskDeployment};
use bbs_storage::{CrashMode, FaultPlan, FileBackend};
use bbs_tdb::{IoStats, Itemset, TransactionDb};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const CACHE: usize = 64;

static CASE: AtomicU64 = AtomicU64::new(0);

fn base(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "bbs_rt_{}_{}_{}",
        std::process::id(),
        name,
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        DiskDeployment::remove_files(&self.0).ok();
    }
}

fn hasher() -> Arc<dyn ItemHasher> {
    Arc::new(Md5BloomHasher::new(3))
}

/// Strategy: a small random transaction database over items `0..items`.
fn arb_db(items: u32, max_txns: usize) -> impl Strategy<Value = TransactionDb> {
    proptest::collection::vec(
        proptest::collection::btree_set(0..items, 1..8),
        1..max_txns,
    )
    .prop_map(|txns| {
        TransactionDb::from_itemsets(txns.into_iter().map(|s| s.into_iter().collect::<Itemset>()))
    })
}

fn arb_itemset(items: u32) -> impl Strategy<Value = Itemset> {
    proptest::collection::btree_set(0..items, 1..5).prop_map(|s| s.into_iter().collect())
}

/// The in-memory index over a prefix of `db`, built with the same width
/// and hash family as the deployment under test.
fn memory_index(db: &TransactionDb, rows: usize, width: usize) -> Bbs {
    let prefix = TransactionDb::from_transactions(db.transactions()[..rows].to_vec());
    let mut io = IoStats::new();
    Bbs::build(width, hasher(), &prefix, &mut io)
}

fn open(b: &Path, width: usize) -> DiskDeployment {
    DiskDeployment::open(b, width, hasher(), CACHE).expect("open deployment")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// append → flush → reopen → load gives back exactly the appended
    /// transactions, and the on-disk index answers every query exactly as
    /// the in-memory index built over the same database would.
    #[test]
    fn clean_roundtrip_matches_in_memory_index(
        db in arb_db(32, 40),
        query in arb_itemset(32),
        width in 16usize..64,
    ) {
        let b = base("clean");
        let _g = Cleanup(b.clone());
        {
            let mut dep = open(&b, width);
            for t in db.transactions() {
                dep.append(t).expect("append");
            }
            dep.flush().expect("flush");
        }

        let mut dep = open(&b, width);
        prop_assert_eq!(dep.committed_rows(), db.len() as u64);
        let loaded = dep.db.load().expect("load heap");
        prop_assert_eq!(loaded.transactions(), db.transactions());

        let mem = memory_index(&db, db.len(), width);
        let mut io = IoStats::new();
        prop_assert_eq!(
            dep.index.count_itemset(&query).expect("count"),
            mem.est_count(&query, &mut io)
        );
        let disk_index = dep.index.load().expect("load index");
        prop_assert_eq!(
            disk_index.est_count(&query, &mut io),
            mem.est_count(&query, &mut io)
        );
    }

    /// A crash anywhere in a two-commit workload recovers to one of the
    /// three commit points; the recovered deployment matches the
    /// in-memory index over that prefix and accepts the rest of the
    /// workload as if the crash never happened.
    #[test]
    fn recovery_roundtrip_yields_a_committed_prefix(
        db in arb_db(32, 40),
        query in arb_itemset(32),
        crash_n in 5u64..260,
    ) {
        let b = base("recover");
        let _g = Cleanup(b.clone());
        let half = db.len() / 2;
        let width = 32usize;

        let plan = FaultPlan::crash_at(crash_n, CrashMode::TornWrite);
        let paths = deployment_paths(&b);
        let run = (|| -> std::io::Result<()> {
            let backends = DeploymentBackends {
                commit: plan.wrap("commit", FileBackend::open(&paths.commit)?),
                dat: plan.wrap("dat", FileBackend::open(&paths.dat)?),
                idx: plan.wrap("idx", FileBackend::open(&paths.idx)?),
                slices: plan.wrap("slices", FileBackend::open(&paths.slices)?),
                counts: plan.wrap("counts", FileBackend::open(&paths.counts)?),
                dedup: plan.wrap("dedup", FileBackend::open(&paths.dedup)?),
                log: plan.wrap("log", FileBackend::open(&paths.log)?),
                del: plan.wrap("del", FileBackend::open(&paths.del)?),
            };
            let mut dep = DiskDeployment::open_with(backends, width, hasher(), CACHE)?;
            for t in &db.transactions()[..half] {
                dep.append(t)?;
            }
            dep.flush()?;
            for t in &db.transactions()[half..] {
                dep.append(t)?;
            }
            dep.flush()?;
            Ok(())
        })();
        if !plan.crashed() {
            run.expect("uncrashed run must succeed");
        }

        // Recovery lands on a commit point, never in between.
        let mut dep = open(&b, width);
        let rows = dep.committed_rows();
        prop_assert!(
            rows == 0 || rows == half as u64 || rows == db.len() as u64,
            "recovered to {} rows (commit points 0/{}/{})", rows, half, db.len()
        );
        let loaded = dep.db.load().expect("load heap");
        prop_assert_eq!(loaded.transactions(), &db.transactions()[..rows as usize]);
        if rows > 0 {
            let mem = memory_index(&db, rows as usize, width);
            let mut io = IoStats::new();
            prop_assert_eq!(
                dep.index.count_itemset(&query).expect("count"),
                mem.est_count(&query, &mut io)
            );
        }

        // The recovered deployment keeps working to the full database.
        for t in &db.transactions()[rows as usize..] {
            dep.append(t).expect("append after recovery");
        }
        dep.flush().expect("flush after recovery");
        let full = dep.db.load().expect("reload heap");
        prop_assert_eq!(full.transactions(), db.transactions());
        let mem = memory_index(&db, db.len(), width);
        let mut io = IoStats::new();
        prop_assert_eq!(
            dep.index.count_itemset(&query).expect("count"),
            mem.est_count(&query, &mut io)
        );
    }
}
