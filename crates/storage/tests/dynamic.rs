//! The dynamic workload, end to end at the storage layer:
//!
//! * **Equivalence oracle** — after any interleaving of inserts and
//!   deletes, the live (tombstone-masked) deployment answers every count
//!   exactly as an offline rebuild from only the surviving rows would.
//! * **Compaction** — rewriting minus the dead rows preserves those
//!   answers, verifies clean, and carries remapped dedup receipts.
//! * **Fold** — halving the width by OR-ing slice halves is bit-for-bit
//!   the index a full re-hash at `m/2` builds.
//! * **Crash torture** — a crash at every durable step of the staged
//!   swap recovers, on reopen, to exactly the old or exactly the new
//!   state, fsck-clean either way.

use bbs_hash::{ItemHasher, Md5BloomHasher};
use bbs_storage::diskbbs::DiskDeployment;
use bbs_storage::{
    compact_deployment, compact_deployment_hooked, fold_deployment, fold_deployment_hooked,
    DedupReceipt, Pager, SharedDeployment,
};
use bbs_tdb::{Itemset, TransactionDb};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const CACHE: usize = 64;

static CASE: AtomicU64 = AtomicU64::new(0);

fn base(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "bbs_dyn_{}_{}_{}",
        std::process::id(),
        name,
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        DiskDeployment::remove_files(&self.0).ok();
    }
}

fn hasher() -> Arc<dyn ItemHasher> {
    Arc::new(Md5BloomHasher::new(3))
}

fn open(b: &Path, width: usize) -> DiskDeployment {
    DiskDeployment::open(b, width, hasher(), CACHE).expect("open deployment")
}

/// Strategy: a small random transaction database over items `0..items`.
fn arb_db(items: u32, max_txns: usize) -> impl Strategy<Value = TransactionDb> {
    proptest::collection::vec(
        proptest::collection::btree_set(0..items, 1..8),
        1..max_txns,
    )
    .prop_map(|txns| {
        TransactionDb::from_itemsets(txns.into_iter().map(|s| s.into_iter().collect::<Itemset>()))
    })
}

fn arb_itemset(items: u32) -> impl Strategy<Value = Itemset> {
    proptest::collection::btree_set(0..items, 1..5).prop_map(|s| s.into_iter().collect())
}

/// A fresh deployment holding only the surviving transactions of `db` —
/// the offline-rebuild oracle the live index must match.
fn survivor_deployment(name: &str, db: &TransactionDb, dead: &[u64], width: usize) -> (PathBuf, Cleanup) {
    let b = base(name);
    let g = Cleanup(b.clone());
    let mut dep = open(&b, width);
    for (row, t) in db.transactions().iter().enumerate() {
        if !dead.contains(&(row as u64)) {
            dep.append(t).expect("append survivor");
        }
    }
    dep.flush().expect("flush survivors");
    (b, g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Inserts and deletes interleaved across several commits: every
    /// count (single and batched) equals the offline rebuild from only
    /// the surviving rows — the masking lemma, end to end.
    #[test]
    fn deletes_match_survivor_rebuild(
        db in arb_db(24, 40),
        queries in proptest::collection::vec(arb_itemset(24), 1..6),
        dead_picks in proptest::collection::vec(0usize..40, 0..12),
        width in 16usize..48,
    ) {
        let b = base("oracle");
        let _g = Cleanup(b.clone());
        let n = db.len();
        let half = n / 2;
        let dead: Vec<u64> = {
            let mut d: Vec<u64> = dead_picks.iter().map(|&p| (p % n) as u64).collect();
            d.sort_unstable();
            d.dedup();
            d
        };

        // Interleave: first half, delete the dead rows that fall in it,
        // second half, then the rest of the deletes.
        let mut dep = open(&b, width);
        for t in &db.transactions()[..half] {
            dep.append(t).expect("append");
        }
        dep.flush().expect("flush");
        let (early, late): (Vec<u64>, Vec<u64>) =
            dead.iter().partition(|&&r| r < half as u64);
        dep.commit_deletes(&early, &[]).expect("delete early");
        for t in &db.transactions()[half..] {
            dep.append(t).expect("append");
        }
        dep.flush().expect("flush");
        dep.commit_deletes(&late, &[]).expect("delete late");
        prop_assert_eq!(dep.deleted_rows(), dead.len() as u64);
        prop_assert_eq!(dep.live_rows(), (n - dead.len()) as u64);

        let (ob, _og) = survivor_deployment("oracle_ref", &db, &dead, width);
        let oracle = open(&ob, width);
        for q in &queries {
            prop_assert_eq!(
                dep.index.count_itemset(q).expect("count"),
                oracle.index.count_itemset(q).expect("oracle count")
            );
        }
        let batched = dep.index.count_itemsets(&queries, None).expect("count_many");
        let oracle_batched = oracle.index.count_itemsets(&queries, None).expect("oracle many");
        prop_assert_eq!(batched, oracle_batched);

        // And the same after a reopen (tombstones are durable).
        drop(dep);
        let dep = open(&b, width);
        prop_assert_eq!(dep.deleted_rows(), dead.len() as u64);
        for q in &queries {
            prop_assert_eq!(
                dep.index.count_itemset(q).expect("count after reopen"),
                oracle.index.count_itemset(q).expect("oracle count")
            );
        }
    }

    /// Compaction drops exactly the dead rows: the rewritten deployment
    /// holds the survivors in order, answers like the oracle, verifies
    /// clean, and remembers carried (remapped) dedup receipts.
    #[test]
    fn compaction_equals_survivor_rebuild(
        db in arb_db(24, 40),
        queries in proptest::collection::vec(arb_itemset(24), 1..5),
        dead_picks in proptest::collection::vec(0usize..40, 1..12),
        width in 16usize..48,
    ) {
        let b = base("compact");
        let _g = Cleanup(b.clone());
        let n = db.len();
        let dead: Vec<u64> = {
            let mut d: Vec<u64> = dead_picks.iter().map(|&p| (p % n) as u64).collect();
            d.sort_unstable();
            d.dedup();
            d
        };
        {
            let mut dep = open(&b, width);
            for t in db.transactions() {
                dep.append(t).expect("append");
            }
            // The whole load carries one receipt so compaction has a row
            // range to remap.
            dep.flush_with_receipts(&[(7, DedupReceipt { first_row: 0, appended: n as u64 })])
                .expect("flush");
            dep.commit_deletes(&dead, &[(9, DedupReceipt { first_row: u64::MAX, appended: dead.len() as u64 })])
                .expect("delete");
        }

        let report = compact_deployment(&b, width, hasher(), None, CACHE).expect("compact");
        prop_assert_eq!(report.rows_before, n as u64);
        prop_assert_eq!(report.rows_after, (n - dead.len()) as u64);
        prop_assert_eq!(report.reclaimed, dead.len() as u64);

        let verify = DiskDeployment::verify(&b).expect("verify");
        prop_assert!(verify.is_clean(), "post-compaction fsck: {:?}", verify.problems);
        prop_assert_eq!(verify.deleted_rows, 0);

        let mut dep = open(&b, width);
        prop_assert_eq!(dep.db.len(), (n - dead.len()) as u64);
        prop_assert_eq!(dep.deleted_rows(), 0);
        let survivors: Vec<_> = db
            .transactions()
            .iter()
            .enumerate()
            .filter(|(row, _)| !dead.contains(&(*row as u64)))
            .map(|(_, t)| t.clone())
            .collect();
        let loaded = dep.db.load().expect("load heap");
        prop_assert_eq!(loaded.transactions(), &survivors[..]);

        let (ob, _og) = survivor_deployment("compact_ref", &db, &dead, width);
        let oracle = open(&ob, width);
        for q in &queries {
            prop_assert_eq!(
                dep.index.count_itemset(q).expect("count"),
                oracle.index.count_itemset(q).expect("oracle count")
            );
        }

        // The insert receipt survived, its row range remapped by the
        // rank of the dead rows below it; the delete sentinel is intact.
        let r = dep.dedup_lookup(7).expect("receipt 7 carried");
        prop_assert_eq!(r.first_row, 0);
        prop_assert_eq!(r.appended, (n - dead.len()) as u64);
        let s = dep.dedup_lookup(9).expect("receipt 9 carried");
        prop_assert_eq!(s.first_row, u64::MAX);
        prop_assert_eq!(s.appended, dead.len() as u64);
    }

    /// Folding is bit-for-bit a re-hash at the halved width: every page
    /// of the folded slice file equals the corresponding page of a fresh
    /// deployment built at `m/2` over the same transactions, and counts
    /// agree exactly.
    #[test]
    fn fold_is_bit_for_bit_a_rehash_at_half_width(
        db in arb_db(24, 40),
        queries in proptest::collection::vec(arb_itemset(24), 1..5),
        half in 8usize..24,
    ) {
        let width = half * 2;
        let b = base("fold");
        let _g = Cleanup(b.clone());
        {
            let mut dep = open(&b, width);
            for t in db.transactions() {
                dep.append(t).expect("append");
            }
            dep.flush().expect("flush");
        }

        let report = fold_deployment(&b, hasher(), CACHE).expect("fold");
        prop_assert_eq!(report.width, half);
        prop_assert_eq!(report.rows_after, db.len() as u64);

        let verify = DiskDeployment::verify(&b).expect("verify");
        prop_assert!(verify.is_clean(), "post-fold fsck: {:?}", verify.problems);

        // Oracle: a genuine rebuild at the halved width.
        let ob = base("fold_ref");
        let _og = Cleanup(ob.clone());
        {
            let mut dep = open(&ob, half);
            for t in db.transactions() {
                dep.append(t).expect("append oracle");
            }
            dep.flush().expect("flush oracle");
        }

        // Bit-for-bit: identical logical pages in both slice files.
        let folded = bbs_storage::diskbbs::deployment_paths(&b).slices;
        let rebuilt = bbs_storage::diskbbs::deployment_paths(&ob).slices;
        let mut fp = Pager::new(bbs_storage::FileBackend::open(&folded).expect("open folded"))
            .expect("pager folded");
        let mut rp = Pager::new(bbs_storage::FileBackend::open(&rebuilt).expect("open rebuilt"))
            .expect("pager rebuilt");
        prop_assert_eq!(fp.page_count(), rp.page_count());
        for p in 0..fp.page_count() {
            let id = bbs_storage::PageId(p);
            prop_assert_eq!(
                fp.read_page(id).expect("read folded"),
                rp.read_page(id).expect("read rebuilt"),
                "page {} differs", p
            );
        }

        let dep = open(&b, half);
        let oracle = open(&ob, half);
        for q in &queries {
            prop_assert_eq!(
                dep.index.count_itemset(q).expect("count folded"),
                oracle.index.count_itemset(q).expect("count rebuilt")
            );
        }
    }
}

/// Builds a deployment with `n` rows, deletes `dead`, and returns the
/// expected survivor row count.
fn seed_workload(b: &Path, width: usize, n: usize, dead: &[u64]) -> u64 {
    let db = TransactionDb::from_itemsets(
        (0..n).map(|i| [i as u32 % 7, (i as u32 / 7) % 5 + 7, 13].into_iter().collect::<Itemset>()),
    );
    let mut dep = open(b, width);
    for t in db.transactions() {
        dep.append(t).expect("append");
    }
    dep.flush().expect("flush");
    dep.commit_deletes(dead, &[]).expect("delete");
    (n - dead.len()) as u64
}

/// Crash at every durable step of the compaction swap: each prefix of
/// the protocol must reopen to exactly the old or exactly the new state,
/// fsck-clean either way.
#[test]
fn compaction_crash_torture_recovers_old_or_new() {
    let steps = [
        "build",
        "marker",
        "rename-dat",
        "rename-idx",
        "rename-slices",
        "rename-counts",
        "rename-dedup",
        "rename-log",
        "rename-del",
        "rename-commit",
        "unmark",
    ];
    let width = 24;
    let dead: Vec<u64> = vec![1, 3, 4, 10, 17];
    for crash_at in &steps {
        let b = base("torture");
        let _g = Cleanup(b.clone());
        let live = seed_workload(&b, width, 20, &dead);

        let result = compact_deployment_hooked(&b, width, hasher(), None, CACHE, &mut |step| {
            if step == *crash_at {
                Err(std::io::Error::other(format!("injected crash at {step}")))
            } else {
                Ok(())
            }
        });
        assert!(result.is_err(), "hook at {crash_at} must abort");

        // Reopen = crash recovery: resolves the half-done swap first.
        let dep = open(&b, width);
        let rows = dep.db.len();
        let deleted = dep.deleted_rows();
        if *crash_at == "build" {
            // Crashed before the marker: the swap never committed.
            assert_eq!((rows, deleted), (20, dead.len() as u64), "at {crash_at}");
        } else {
            // Marker was durable: the swap rolls forward on reopen.
            assert_eq!((rows, deleted), (live, 0), "at {crash_at}");
        }
        assert_eq!(dep.live_rows(), live, "at {crash_at}");
        let q: Itemset = [13u32].into_iter().collect();
        assert_eq!(dep.index.count_itemset(&q).expect("count"), live, "at {crash_at}");
        drop(dep);
        let verify = DiskDeployment::verify(&b).expect("verify");
        assert!(verify.is_clean(), "at {crash_at}: {:?}", verify.problems);
    }
}

/// Same torture for the fold swap (only `slices` and `commit` move).
#[test]
fn fold_crash_torture_recovers_old_or_new() {
    let steps = ["build", "marker", "rename-slices", "rename-commit", "unmark"];
    let width = 24;
    for crash_at in &steps {
        let b = base("fold_torture");
        let _g = Cleanup(b.clone());
        let live = seed_workload(&b, width, 20, &[2, 5]);

        let result = fold_deployment_hooked(&b, hasher(), CACHE, &mut |step| {
            if step == *crash_at {
                Err(std::io::Error::other(format!("injected crash at {step}")))
            } else {
                Ok(())
            }
        });
        assert!(result.is_err(), "hook at {crash_at} must abort");

        // Crash recovery first (reopen would run this too), then the
        // on-disk header decides which width survived.
        bbs_storage::finish_pending_swap(&b).expect("finish swap");
        let survived = bbs_storage::slicefile::header_width(
            &bbs_storage::diskbbs::deployment_paths(&b).slices,
        )
        .expect("header")
        .expect("slice file present");
        if *crash_at == "build" {
            assert_eq!(survived, width, "at {crash_at}");
        } else {
            assert_eq!(survived, width / 2, "at {crash_at}");
        }
        let dep = open(&b, survived);
        assert_eq!(dep.db.len(), 20, "at {crash_at}");
        assert_eq!(dep.live_rows(), live, "at {crash_at}");
        let q: Itemset = [13u32].into_iter().collect();
        assert_eq!(dep.index.count_itemset(&q).expect("count"), live, "at {crash_at}");
        drop(dep);
        let verify = DiskDeployment::verify(&b).expect("verify");
        assert!(verify.is_clean(), "at {crash_at}: {:?}", verify.problems);
    }
}

/// Torn swap markers and staging debris never install a half-built
/// state: reopen cleans them up and the old files stay live.
#[test]
fn torn_marker_and_debris_are_cleaned_up() {
    let b = base("debris");
    let _g = Cleanup(b.clone());
    let live = seed_workload(&b, 24, 12, &[0, 6]);

    // Fake a crash mid-build: staging files exist, marker torn.
    let staging = bbs_storage::maintain::staging_base(&b);
    let spaths = bbs_storage::diskbbs::deployment_paths(&staging);
    std::fs::write(&spaths.slices, b"half-built garbage").expect("write debris");
    std::fs::write(&spaths.dat, b"more garbage").expect("write debris");
    let marker = bbs_storage::maintain::swap_marker_path(&b);
    std::fs::write(&marker, b"BBSSWAP1 torn").expect("write torn marker");

    let dep = open(&b, 24);
    assert_eq!(dep.db.len(), 12);
    assert_eq!(dep.live_rows(), live);
    let q: Itemset = [13u32].into_iter().collect();
    assert_eq!(dep.index.count_itemset(&q).expect("count"), live);
    assert!(!marker.exists(), "torn marker removed");
    assert!(!spaths.slices.exists(), "staging debris removed");
    assert!(!spaths.dat.exists(), "staging debris removed");
}

/// The online (shared-deployment) maintenance path: fold halves the
/// published width, compaction drops tombstones, snapshots flip to the
/// new epoch, and the FPR gauge stays measurable throughout.
#[test]
fn shared_deployment_folds_and_compacts_online() {
    let b = base("shared");
    let _g = Cleanup(b.clone());
    let width = 32;
    let shared = SharedDeployment::open(&b, width, hasher(), CACHE).expect("open shared");
    let db = TransactionDb::from_itemsets(
        (0..40u32).map(|i| [i % 7, i % 5 + 7, 13].into_iter().collect::<Itemset>()),
    );
    shared.commit(db.transactions()).expect("commit");
    shared
        .delete_rows(&[1, 2, 3, 30], &[])
        .expect("delete rows");
    assert_eq!(shared.snapshot().live_rows(), 36);
    let q: Itemset = [13u32].into_iter().collect();
    assert_eq!(shared.snapshot().count(&q).expect("count"), 36);

    let before = shared.epoch();
    let report = shared.fold().expect("fold");
    assert_eq!(report.width, width / 2);
    assert_eq!(shared.width(), width / 2);
    assert!(shared.epoch() > before);
    // Folding keeps rows and tombstones; counts stay oracle-exact for a
    // query whose support is its exact count at any width.
    assert_eq!(shared.snapshot().rows(), 40);
    assert_eq!(shared.snapshot().live_rows(), 36);
    assert_eq!(shared.snapshot().count(&q).expect("count after fold"), 36);

    let report = shared.compact(None).expect("compact");
    assert_eq!(report.rows_after, 36);
    assert_eq!(report.reclaimed, 4);
    assert_eq!(shared.snapshot().rows(), 36);
    assert_eq!(shared.snapshot().deleted_rows(), 0);
    assert_eq!(shared.snapshot().count(&q).expect("count after compact"), 36);

    // The FPR gauge is well-defined on the compacted, folded index.
    let fpr = shared.snapshot().measure_fpr(64, 0xBB5).expect("measure fpr");
    assert!((0.0..=1.0).contains(&fpr), "fpr {fpr} out of range");

    // Writes keep flowing after maintenance.
    shared.commit(db.transactions()).expect("commit after maintenance");
    assert_eq!(shared.snapshot().rows(), 76);
}
