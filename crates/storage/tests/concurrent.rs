//! Appender-vs-counter stress tests for the snapshot layer: one writer
//! group-committing batches while reader threads count, probe, and load
//! concurrently.  These are the tests behind the documented `SliceFile`
//! append/invalidation contract — a counter never observes a torn batch,
//! and hot-slice state never leaks bits across an epoch boundary.

use bbs_hash::{ItemHasher, Md5BloomHasher};
use bbs_storage::diskbbs::DiskDeployment;
use bbs_storage::snapshot::SharedDeployment;
use bbs_tdb::{Itemset, Transaction};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn base(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bbs_concurrent_{}_{}", std::process::id(), name));
    p
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        DiskDeployment::remove_files(&self.0).ok();
    }
}

fn hasher() -> Arc<dyn ItemHasher> {
    Arc::new(Md5BloomHasher::new(4))
}

/// Transaction at row `i`: item 7 always (the prefix-consistency canary),
/// plus a rotating tail so slices beyond item 7's are exercised too.
fn txn(i: u64) -> Transaction {
    Transaction::new(i, Itemset::from_values(&[7, 100 + (i % 8) as u32]))
}

const BATCH: u64 = 32;
const BATCHES: u64 = 24;

/// The core invariant: item 7 is in *every* row, and rows only ever land
/// in whole batches of `BATCH` — so any snapshot-consistent counter must
/// report `count({7}) == snapshot rows` and `rows % BATCH == 0`.  A
/// reader that saw a half-appended batch, a torn page, or stale hot bits
/// would violate one of the two.
#[test]
fn counters_never_observe_a_torn_batch() {
    let b = base("torn");
    let _g = Cleanup(b.clone());
    let shared = SharedDeployment::open(&b, 64, hasher(), 128).expect("open");
    let done = Arc::new(AtomicBool::new(false));
    let q = Itemset::from_values(&[7]);

    let mut readers = Vec::new();
    for r in 0..3 {
        let shared = Arc::clone(&shared);
        let done = Arc::clone(&done);
        let q = q.clone();
        readers.push(std::thread::spawn(move || {
            let mut last_rows = 0u64;
            let mut observations = 0u64;
            loop {
                let finished = done.load(Ordering::Acquire);
                let snap = shared.snapshot();
                assert_eq!(snap.rows() % BATCH, 0, "rows land in whole batches");
                assert!(snap.rows() >= last_rows, "epochs never run backwards");
                last_rows = snap.rows();
                // Count repeatedly on the *same* snapshot: later commits
                // OR bits into shared boundary pages while we count, and
                // the clamp must keep every answer pinned to the epoch.
                for _ in 0..3 {
                    let support = snap.count(&q).expect("count");
                    assert_eq!(
                        support,
                        snap.rows(),
                        "reader {r}: count({{7}}) must equal snapshot rows"
                    );
                }
                // Probing below the snapshot's rows always succeeds and
                // returns the transaction that was committed there.
                if snap.rows() > 0 {
                    let row = (snap.epoch() * 13) % snap.rows();
                    let t = snap.probe(row).expect("probe").expect("present");
                    assert_eq!(t, txn(row), "row content is immutable");
                }
                assert_eq!(snap.probe(snap.rows()).expect("past end"), None);
                observations += 1;
                if finished {
                    break;
                }
            }
            observations
        }));
    }

    for batch in 0..BATCHES {
        let txns: Vec<Transaction> =
            (batch * BATCH..(batch + 1) * BATCH).map(txn).collect();
        let receipt = shared.commit(&txns).expect("commit");
        assert_eq!(receipt.rows, batch * BATCH..(batch + 1) * BATCH);
    }
    done.store(true, Ordering::Release);
    for h in readers {
        let observations = h.join().expect("reader");
        assert!(observations >= 1);
    }

    let snap = shared.snapshot();
    assert_eq!(snap.rows(), BATCH * BATCHES);
    assert_eq!(snap.count(&q).expect("final"), BATCH * BATCHES);
}

/// An old snapshot held across many later commits keeps answering from
/// its own epoch — including through its hot-slice cache, which decodes
/// boundary pages that later commits have since extended on disk.
#[test]
fn held_snapshot_stays_exact_through_later_commits() {
    let b = base("held");
    let _g = Cleanup(b.clone());
    let shared = SharedDeployment::open(&b, 64, hasher(), 128).expect("open");
    let q = Itemset::from_values(&[7]);

    shared
        .commit(&(0..100).map(txn).collect::<Vec<_>>())
        .expect("commit 1");
    let held = shared.snapshot();
    assert_eq!(held.rows(), 100);

    // Repeated counts on the held snapshot promote its slices into the
    // hot cache; later commits must not bleed new bits into them.
    for round in 0..6 {
        assert_eq!(held.count(&q).expect("held count"), 100, "round {round}");
        let start = 100 + round * 50;
        shared
            .commit(&(start..start + 50).map(txn).collect::<Vec<_>>())
            .expect("later commit");
        assert_eq!(held.count(&q).expect("held count after"), 100);
        assert_eq!(held.probe(99).expect("probe").expect("present"), txn(99));
        assert_eq!(held.probe(100).expect("past end"), None);
    }

    // Loading the held snapshot materialises its prefix, not the tail.
    let (db, bbs) = held.load().expect("load");
    assert_eq!(db.len(), 100);
    assert_eq!(bbs.rows(), 100);

    let fresh = shared.snapshot();
    assert_eq!(fresh.rows(), 400);
    assert_eq!(fresh.count(&q).expect("fresh count"), 400);
}

/// Concurrent loads (the server's `mine` path) race against commits
/// without ever seeing a clamped database whose length is off-batch.
#[test]
fn snapshot_loads_race_commits_cleanly() {
    let b = base("loads");
    let _g = Cleanup(b.clone());
    let shared = SharedDeployment::open(&b, 64, hasher(), 128).expect("open");
    let done = Arc::new(AtomicBool::new(false));

    let loader = {
        let shared = Arc::clone(&shared);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut loads = 0u64;
            loop {
                let finished = done.load(Ordering::Acquire);
                let snap = shared.snapshot();
                let (db, bbs) = snap.load().expect("load");
                assert_eq!(db.len() as u64, snap.rows());
                assert_eq!(bbs.rows() as u64, snap.rows());
                assert_eq!(snap.rows() % BATCH, 0);
                for (i, t) in db.transactions().iter().enumerate().take(4) {
                    assert_eq!(*t, txn(i as u64));
                }
                loads += 1;
                if finished {
                    break;
                }
            }
            loads
        })
    };

    for batch in 0..12 {
        let txns: Vec<Transaction> =
            (batch * BATCH..(batch + 1) * BATCH).map(txn).collect();
        shared.commit(&txns).expect("commit");
    }
    done.store(true, Ordering::Release);
    assert!(loader.join().expect("loader") >= 1);
}
