//! Crash-recovery torture tests: inject a crash at *every* physical I/O
//! point of a multi-commit workload, reopen, and require the deployment
//! to come back as exactly a committed clean prefix — then finish the
//! workload and require the end state to be indistinguishable from a run
//! that never crashed.

use bbs_storage::diskbbs::{deployment_paths, DeploymentBackends, DiskDeployment};
use bbs_storage::{checksum_mismatch, CrashMode, FaultPlan, FileBackend, SharedFaultPlan};
use bbs_core::{BbsMiner, Scheme};
use bbs_hash::{ItemHasher, Md5BloomHasher};
use bbs_tdb::{FrequentPatternMiner, Itemset, NaiveMiner, SupportThreshold, Transaction};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const WIDTH: usize = 32;
const CACHE: usize = 64;
const BATCH: usize = 8;
const BATCHES: usize = 3;

fn base(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bbs_crash_{}_{}", std::process::id(), name));
    p
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        DiskDeployment::remove_files(&self.0).ok();
    }
}

fn hasher() -> Arc<dyn ItemHasher> {
    Arc::new(Md5BloomHasher::new(3))
}

/// A deterministic workload: small arithmetic transactions, plus one
/// record big enough to span heap pages.
fn source_txns() -> Vec<Transaction> {
    (0..(BATCH * BATCHES) as u64)
        .map(|i| {
            let items: Vec<u32> = if i == 2 {
                // ~4.8 KB once encoded: guarantees the heap data spans pages.
                (0..1200).collect()
            } else {
                vec![
                    (i % 5) as u32,
                    5 + (i % 7) as u32,
                    12 + (i % 3) as u32,
                ]
            };
            Transaction::new(i, Itemset::from_values(&items))
        })
        .collect()
}

fn sample_queries() -> Vec<Itemset> {
    [
        &[0u32][..],
        &[5],
        &[12],
        &[0, 5],
        &[1, 6, 13],
        &[2],
        &[0, 5, 12],
    ]
    .iter()
    .map(|q| Itemset::from_values(q))
    .collect()
}

/// Runs the append/flush workload through fault-injected backends.
fn run_workload(plan: &SharedFaultPlan, base: &Path, source: &[Transaction]) -> io::Result<()> {
    let paths = deployment_paths(base);
    let backends = DeploymentBackends {
        commit: plan.wrap("commit", FileBackend::open(&paths.commit)?),
        dat: plan.wrap("dat", FileBackend::open(&paths.dat)?),
        idx: plan.wrap("idx", FileBackend::open(&paths.idx)?),
        slices: plan.wrap("slices", FileBackend::open(&paths.slices)?),
        counts: plan.wrap("counts", FileBackend::open(&paths.counts)?),
        dedup: plan.wrap("dedup", FileBackend::open(&paths.dedup)?),
        log: plan.wrap("log", FileBackend::open(&paths.log)?),
        del: plan.wrap("del", FileBackend::open(&paths.del)?),
    };
    let mut dep = DiskDeployment::open_with(backends, WIDTH, hasher(), CACHE)?;
    for batch in source.chunks(BATCH) {
        for t in batch {
            dep.append(t)?;
        }
        dep.flush()?;
    }
    Ok(())
}

/// Clean-run answers for every commit point: `answers[k]` holds the
/// sample-query counts after `k` batches.
fn reference_answers(base: &Path, source: &[Transaction]) -> Vec<Vec<u64>> {
    let queries = sample_queries();
    let mut answers = vec![Vec::new()];
    let mut dep = DiskDeployment::open(base, WIDTH, hasher(), CACHE).expect("open reference");
    for batch in source.chunks(BATCH) {
        for t in batch {
            dep.append(t).expect("append");
        }
        dep.flush().expect("flush");
        answers.push(
            queries
                .iter()
                .map(|q| dep.index.count_itemset(q).expect("count"))
                .collect(),
        );
    }
    answers
}

/// Asserts the reopened deployment is exactly the clean `rows`-row prefix.
fn assert_clean_prefix(
    dep: &mut DiskDeployment,
    source: &[Transaction],
    answers: &[Vec<u64>],
) -> u64 {
    let rows = dep.committed_rows();
    assert_eq!(dep.db.len(), rows, "heap rows == committed rows");
    assert_eq!(dep.index.rows(), rows, "index rows == committed rows");
    assert_eq!(
        rows % BATCH as u64,
        0,
        "only batch boundaries are committed"
    );
    let loaded = dep.db.load().expect("load heap");
    assert_eq!(
        loaded.transactions(),
        &source[..rows as usize],
        "heap content is the committed prefix"
    );
    // The index answers queries exactly as a never-crashed deployment of
    // the same prefix would.
    let expected = &answers[(rows as usize) / BATCH];
    for (q, want) in sample_queries().iter().zip(expected) {
        assert_eq!(
            dep.index.count_itemset(q).expect("count"),
            *want,
            "query {q:?} at {rows} rows"
        );
    }
    // Exact singleton counts match a naive recount of the prefix.
    for v in [0u32, 3, 5, 9, 12, 14] {
        let item = bbs_tdb::ItemId(v);
        let truth = source[..rows as usize]
            .iter()
            .filter(|t| t.items.items().contains(&item))
            .count() as u64;
        assert_eq!(dep.index.actual_singleton_count(item), truth, "item {v}");
    }
    rows
}

/// Mines the reopened prefix and checks it against the naive oracle.
fn assert_mining_agrees(dep: &mut DiskDeployment, source: &[Transaction], rows: u64) {
    if rows == 0 {
        return;
    }
    let db = dep.db.load().expect("load db");
    let bbs = dep.index.load().expect("load index");
    // High enough that no pattern is supported by the one huge transaction
    // alone (every itemset of more than 3 items lives only there, so a
    // lower floor would make the pattern space explode).
    let threshold = SupportThreshold::percent(30.0);
    let result = BbsMiner::with_index(Scheme::Dfp, bbs).mine(&db, threshold);
    let mut oracle_db = bbs_tdb::TransactionDb::new();
    for t in &source[..rows as usize] {
        oracle_db.push(t.clone());
    }
    let oracle = NaiveMiner::new().mine(&oracle_db, threshold).patterns;
    assert_eq!(result.patterns.len(), oracle.len(), "at {rows} rows");
    for (items, support) in result.patterns.iter() {
        let truth = oracle.support(items).expect("pattern in oracle");
        if result.approx_supports.contains(items) {
            assert!(support >= truth, "{items:?} at {rows} rows");
        } else {
            assert_eq!(support, truth, "{items:?} at {rows} rows");
        }
    }
}

fn crash_at_every_op(mode: CrashMode, name: &str) {
    let b = base(name);
    let _g = Cleanup(b.clone());
    let refbase = base(&format!("{name}_ref"));
    let _gr = Cleanup(refbase.clone());
    let source = source_txns();
    let answers = reference_answers(&refbase, &source);
    let final_answers = answers.last().expect("final").clone();

    let mut n = 0u64;
    loop {
        DiskDeployment::remove_files(&b).ok();
        let plan = FaultPlan::crash_at(n, mode);
        let outcome = run_workload(&plan, &b, &source);
        if !plan.crashed() {
            outcome.expect("uncrashed run must succeed");
            break;
        }
        // The crash fired mid-workload (a late crash during drop-time
        // cleanup can leave `outcome` Ok; the commit record still rules).

        // 1. Reopen with clean backends: recovery must yield a committed
        //    clean prefix, bit-for-bit.
        let mut dep = DiskDeployment::open(&b, WIDTH, hasher(), CACHE)
            .unwrap_or_else(|e| panic!("reopen after crash at op {n} ({mode:?}): {e}"));
        let rows = assert_clean_prefix(&mut dep, &source, &answers);
        assert_mining_agrees(&mut dep, &source, rows);

        // 2. The deployment keeps working: finish the workload and the
        //    end state is indistinguishable from a run that never crashed.
        for t in &source[rows as usize..] {
            dep.append(t).expect("append after recovery");
        }
        dep.flush().expect("flush after recovery");
        for (q, want) in sample_queries().iter().zip(&final_answers) {
            assert_eq!(
                dep.index.count_itemset(q).expect("count"),
                *want,
                "final query {q:?} after crash at op {n}"
            );
        }
        drop(dep);

        // 3. After recovery + a real commit, fsck is clean.
        let report = DiskDeployment::verify(&b).expect("verify");
        assert!(
            report.is_clean(),
            "fsck after crash at op {n} ({mode:?}):\n{report}"
        );

        n += 1;
    }
    assert!(n > 50, "only {n} fault points — injection is not engaged");
}

#[test]
fn crash_fail_at_every_io_point_recovers_a_committed_prefix() {
    crash_at_every_op(CrashMode::Fail, "fail");
}

#[test]
fn crash_short_write_at_every_io_point_recovers_a_committed_prefix() {
    crash_at_every_op(CrashMode::ShortWrite, "short");
}

#[test]
fn crash_torn_write_at_every_io_point_recovers_a_committed_prefix() {
    crash_at_every_op(CrashMode::TornWrite, "torn");
}

#[test]
fn bit_flip_on_read_surfaces_as_checksum_mismatch_not_data() {
    let b = base("flip");
    let _g = Cleanup(b.clone());
    let source = source_txns();
    {
        let mut dep = DiskDeployment::open(&b, WIDTH, hasher(), CACHE).expect("open");
        for t in &source {
            dep.append(t).expect("append");
        }
        dep.flush().expect("flush");
    }

    // Reopen through an injector that flips one bit in reads of the heap
    // data file's first logical page (physical page 1; the big record in
    // row 2 pushes the committed tail past it, so it is not the boundary
    // page and recovery does not touch it).
    let plan = FaultPlan::counting();
    plan.flip_bit("dat", bbs_storage::PAGE_SIZE as u64 + 100, 3);
    let paths = deployment_paths(&b);
    let backends = DeploymentBackends {
        commit: plan.wrap("commit", FileBackend::open(&paths.commit).expect("open")),
        dat: plan.wrap("dat", FileBackend::open(&paths.dat).expect("open")),
        idx: plan.wrap("idx", FileBackend::open(&paths.idx).expect("open")),
        slices: plan.wrap("slices", FileBackend::open(&paths.slices).expect("open")),
        counts: plan.wrap("counts", FileBackend::open(&paths.counts).expect("open")),
        dedup: plan.wrap("dedup", FileBackend::open(&paths.dedup).expect("open")),
        log: plan.wrap("log", FileBackend::open(&paths.log).expect("open")),
        del: plan.wrap("del", FileBackend::open(&paths.del).expect("open")),
    };
    let mut dep = DiskDeployment::open_with(backends, WIDTH, hasher(), CACHE).expect("reopen");

    // Reading through the flipped page must yield the typed error, never
    // silently corrupted data.
    let err = dep.db.get(0).expect_err("corrupt read must fail");
    let mismatch = checksum_mismatch(&err).expect("typed checksum mismatch");
    assert_eq!(mismatch.page, 0);

    // Rows on undamaged pages remain readable.
    assert_eq!(dep.db.get(8).expect("clean row"), source[8]);
}
