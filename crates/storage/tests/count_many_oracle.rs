//! Proptest oracle for the batched shared-scan executor: `count_many`
//! answers must be bit-for-bit identical to N independent `count` calls
//! and to the in-memory reference index, across mixed-length itemsets,
//! τ early-exit bounds, Ramp-style projected extension batches sharing a
//! constraint slice, and concurrent-appender interleavings.

use bbs_bitslice::BitVec;
use bbs_hash::{ItemHasher, Md5BloomHasher};
use bbs_storage::diskbbs::DiskDeployment;
use bbs_storage::snapshot::SharedDeployment;
use bbs_tdb::{IoStats, ItemId, Itemset, Transaction};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn base(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "bbs_cm_oracle_{}_{}_{}",
        std::process::id(),
        name,
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        DiskDeployment::remove_files(&self.0).ok();
    }
}

fn hasher() -> Arc<dyn ItemHasher> {
    Arc::new(Md5BloomHasher::new(3))
}

/// Rows: up to ~100 transactions of 0–5 items drawn from a small alphabet
/// so slices genuinely collide and overlap.
fn rows_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..32, 0..6), 1..100)
}

/// Queries: mixed-length itemsets (empty through 4 items), drawn from a
/// slightly wider alphabet than the rows so some queries name absent items.
fn queries_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..40, 0..5), 1..10)
}

fn build(b: &std::path::Path, rows: &[Vec<u32>]) -> DiskDeployment {
    let mut dep = DiskDeployment::open(b, 64, hasher(), 8).expect("open");
    for (i, r) in rows.iter().enumerate() {
        dep.append(&Transaction::new(i as u64, Itemset::from_values(r)))
            .expect("append");
    }
    dep.flush().expect("flush");
    dep
}

proptest! {
    // Each case builds a real on-disk deployment; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core oracle chain: batched == per-op == in-memory reference,
    /// with τ-consistency of early-exit answers against the exact count.
    #[test]
    fn batched_matches_per_op_and_memory_reference(
        rows in rows_strategy(),
        queries in queries_strategy(),
        // The vendored proptest has no `option::of`; fold "no tau" into
        // the top of the range instead.
        tau in (0u64..80).prop_map(|t| if t >= 64 { None } else { Some(t) }),
    ) {
        let b = base("chain");
        let _g = Cleanup(b.clone());
        let dep = build(&b, &rows);
        let itemsets: Vec<Itemset> =
            queries.iter().map(|q| Itemset::from_values(q)).collect();

        // Batched shared scan vs N independent per-op counts, same tau:
        // must be bit-for-bit identical.
        let batched = dep.index.count_itemsets(&itemsets, tau).expect("count_many");
        for (i, q) in itemsets.iter().enumerate() {
            let per_op = match tau {
                None => dep.index.count_itemset(q).expect("count"),
                Some(t) => dep.index.count_itemset_bounded(q, t).expect("count bounded"),
            };
            prop_assert_eq!(batched[i], per_op, "query {} {:?} tau {:?}", i, q, tau);
        }

        // An independent reader handle (its own cache + hot slices) agrees.
        let mut counter = dep.index.counter().expect("counter");
        let via_counter = counter.count_many(&itemsets, tau).expect("reader count_many");
        prop_assert_eq!(&via_counter, &batched);

        // Exact batched answers equal the in-memory reference index.
        let mem = dep.index.load().expect("load");
        let mut io = IoStats::default();
        let exact = dep.index.count_itemsets(&itemsets, None).expect("exact");
        for (i, q) in itemsets.iter().enumerate() {
            prop_assert_eq!(exact[i], mem.est_count(q, &mut io), "memory ref {:?}", q);
            // τ-consistency: ≥ τ answers are exact, < τ answers are upper
            // bounds on the exact count (so "infrequent" stays settled).
            if let Some(t) = tau {
                if batched[i] >= t {
                    prop_assert_eq!(batched[i], exact[i], "exact above tau {:?}", q);
                } else {
                    prop_assert!(batched[i] >= exact[i], "bound below tau {:?}", q);
                }
            }
        }
    }

    /// Projected extension batches: counting `prefix ∪ {e}` through the
    /// shared constraint-slice prefix equals per-op union counting and the
    /// in-memory constrained path (§3.4 — the prefix's AND *is* a
    /// materialised constraint slice applied to every query in the batch).
    #[test]
    fn projected_extensions_match_union_and_constrained_memory(
        rows in rows_strategy(),
        exts in proptest::collection::vec(0u32..40, 1..8),
    ) {
        // Plant a sentinel "constraint" item on every third row so the
        // shared prefix selects a non-trivial strict subset.
        const SENTINEL: u32 = 1000;
        let planted: Vec<Vec<u32>> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let mut r = r.clone();
                if i % 3 == 0 {
                    r.push(SENTINEL);
                }
                r
            })
            .collect();
        let b = base("proj");
        let _g = Cleanup(b.clone());
        let dep = build(&b, &planted);
        let prefix = Itemset::from_values(&[SENTINEL]);
        let ext_ids: Vec<ItemId> = exts.iter().map(|&e| ItemId(e)).collect();

        let mut counter = dep.index.counter().expect("counter");
        let projected = counter
            .count_extensions_projected(&prefix, &ext_ids, None)
            .expect("projected");

        // In-memory constrained reference: the prefix's AND-result bit
        // vector acts as the constraint slice for each extension.
        let mem = dep.index.load().expect("load");
        let mut io = IoStats::default();
        let mut constraint = BitVec::zeros(mem.rows());
        mem.est_result(&prefix, &mut constraint, &mut io);

        for (i, &e) in exts.iter().enumerate() {
            let union = Itemset::from_values(&[SENTINEL, e]);
            let per_op = counter.count(&union, None).expect("union count");
            prop_assert_eq!(projected[i], per_op, "ext {}", e);
            let constrained =
                mem.est_count_constrained(&Itemset::from_values(&[e]), &constraint, &mut io);
            prop_assert_eq!(projected[i], constrained, "constrained ext {}", e);
        }
    }
}

/// Multi-chunk τ dropout: when a query exits early after chunk 0, the
/// slices it shared drop multiplicity mid-scan; the survivor must keep
/// reading fresh chunk-1 data — never a decoded segment left over from
/// chunk 0.  Needs ≥ 2 chunks, so this is the one test that pays for a
/// 65k-row build.
#[test]
fn tau_dropout_mid_scan_never_reuses_stale_shared_segments() {
    const CHUNK: u64 = bbs_storage::CHUNK_ROWS as u64;
    let b = base("dropout");
    let _g = Cleanup(b.clone());
    let mut dep = DiskDeployment::open(&b, 64, hasher(), 192).expect("open");
    for i in 0..2 * CHUNK {
        let mut items = vec![5u32];
        // Chunk 0: item 6 on even rows only; chunk 1: on every row — so a
        // stale chunk-0 segment visibly corrupts a chunk-1 count.
        if i >= CHUNK || i % 2 == 0 {
            items.push(6);
        }
        if i < 5 {
            items.push(7);
        }
        dep.append(&Transaction::new(i, Itemset::from_values(&items)))
            .expect("append");
    }
    dep.flush().expect("flush");

    // B and C τ-exit after chunk 0 (their chunk-0 counts are far below
    // the bound); A runs to completion.  While all three are active the
    // slices A shares with B (items 5 and 6) are shared-but-not-universal
    // — exactly the decoded-segment case — and the exits drop their
    // multiplicity mid-scan.
    // Between the dropouts' chunk-0 bounds (≈ CHUNK) and A's exact count
    // (≈ 1.5 × CHUNK).
    let tau = CHUNK + CHUNK / 4;
    let queries = [
        Itemset::from_values(&[5, 6]),
        Itemset::from_values(&[5, 6, 7]),
        Itemset::from_values(&[9]),
    ];
    let batched = dep
        .index
        .count_itemsets(&queries, Some(tau))
        .expect("batched");
    for (i, q) in queries.iter().enumerate() {
        let per_op = dep.index.count_itemset_bounded(q, tau).expect("per-op");
        assert_eq!(batched[i], per_op, "query {q:?}");
    }
    // Premise checks: the dropouts actually happened (their answers are
    // early-exit bounds below τ) and A's answer is exact and ≥ τ.
    assert!(batched[1] < tau, "B must tau-exit after chunk 0");
    assert!(batched[2] < tau, "C must tau-exit after chunk 0");
    assert_eq!(
        batched[0],
        dep.index.count_itemset(&queries[0]).expect("exact"),
        "A ran to completion, so its bounded answer is exact"
    );
    assert!(batched[0] >= tau);
}

/// Fixture row for the interleaving test: item 7 everywhere plus a
/// rotating tail (same shape as tests/concurrent.rs).
fn txn(i: u64) -> Transaction {
    Transaction::new(i, Itemset::from_values(&[7, 100 + (i % 8) as u32]))
}

/// Concurrent-appender interleavings: while a writer group-commits,
/// every snapshot a reader takes must answer `count_many` exactly as N
/// per-op `count` calls on that same snapshot — the shared scan may never
/// mix epochs across the queries of one batch.
#[test]
fn concurrent_appenders_never_split_a_batch_across_epochs() {
    const BATCH: u64 = 32;
    const BATCHES: u64 = 24;
    let b = base("interleave");
    let _g = Cleanup(b.clone());
    let shared = SharedDeployment::open(&b, 64, hasher(), 128).expect("open");
    let done = Arc::new(AtomicBool::new(false));
    let queries: Vec<Itemset> = [
        &[7u32][..],
        &[100],
        &[7, 101],
        &[104, 7],
        &[],
        &[9999],
    ]
    .iter()
    .map(|q| Itemset::from_values(q))
    .collect();

    let mut readers = Vec::new();
    for r in 0..3 {
        let shared = Arc::clone(&shared);
        let done = Arc::clone(&done);
        let queries = queries.clone();
        readers.push(std::thread::spawn(move || {
            let mut observations = 0u64;
            loop {
                let finished = done.load(Ordering::Acquire);
                let snap = shared.snapshot();
                let batched = snap.count_many(&queries).expect("count_many");
                for (i, q) in queries.iter().enumerate() {
                    let per_op = snap.count(q).expect("count");
                    assert_eq!(
                        batched[i],
                        per_op,
                        "reader {r}: query {q:?} split from its snapshot"
                    );
                }
                // Item 7 is in every row and the empty itemset counts all
                // rows — both answers are pinned to the snapshot's epoch.
                assert_eq!(batched[0], snap.rows(), "reader {r}: torn batch");
                assert_eq!(batched[4], snap.rows(), "reader {r}: empty itemset");
                observations += 1;
                if finished {
                    break;
                }
            }
            observations
        }));
    }

    for batch in 0..BATCHES {
        let txns: Vec<Transaction> =
            (batch * BATCH..(batch + 1) * BATCH).map(txn).collect();
        shared.commit(&txns).expect("commit");
    }
    done.store(true, Ordering::Release);
    for h in readers {
        assert!(h.join().expect("reader") >= 1);
    }

    let snap = shared.snapshot();
    let final_counts = snap.count_many(&queries).expect("final");
    assert_eq!(final_counts[0], BATCH * BATCHES);
    assert_eq!(final_counts[4], BATCH * BATCHES);
}
