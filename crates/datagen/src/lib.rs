//! Synthetic workload generators for the BBS reproduction.
//!
//! * [`quest`] — the IBM Quest (Agrawal–Srikant) market-basket generator the
//!   paper uses for every parameter-sweep experiment (§4, `T10.I10.D10K`).
//! * [`weblog`] — the dynamic web-server-log workload of §4.8 (rotating hot
//!   set, day-partitioned growth).
//! * [`sampling`] — the Poisson / normal / exponential samplers both
//!   generators need, implemented locally to keep dependencies minimal.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod quest;
pub mod sampling;
pub mod weblog;

pub use quest::{generate_db, QuestConfig, QuestGenerator};
pub use weblog::{DayBatch, WeblogConfig, WeblogGenerator};
