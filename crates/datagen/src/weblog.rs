//! The dynamic web-server-log workload of §4.8.
//!
//! The paper evaluates dynamic databases on a web-server access log
//! (reference [10]): 5000 files on the server, where each day 10 % of the
//! previous day's "hot" files turn cold, and the database grows day by day
//! (`D_0` is yesterday's log; `D_1 … D_n` are appended batches).
//!
//! The original trace is not available, so this module generates a synthetic
//! equivalent with the stated knobs: a rotating hot set drives a skewed
//! reference stream, day boundaries partition the growth, and each session
//! (transaction) requests a handful of files.  The experiment this feeds
//! (Fig. 12) measures *incremental update cost*, which depends only on the
//! growth pattern and the skew — both reproduced here.

use crate::sampling;
use bbs_tdb::{ItemId, Itemset, Transaction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic web-log workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeblogConfig {
    /// Number of files on the server (the item vocabulary).  Paper: 5000.
    pub files: u32,
    /// Fraction of files that are "hot" on any given day.
    pub hot_fraction: f64,
    /// Fraction of the hot set replaced each day.  Paper: 10 %.
    pub daily_rotation: f64,
    /// Probability that a single request hits the hot set.
    pub hot_hit_probability: f64,
    /// Number of days (batches) to generate, including day 0.
    pub days: usize,
    /// Sessions (transactions) per day.
    pub sessions_per_day: usize,
    /// Average files requested per session.
    pub avg_session_len: f64,
    /// Fraction of the previously live sessions that expire (are deleted
    /// from the index) each day.  `0.0` reproduces the paper's pure-growth
    /// log; a positive rate turns the workload dynamic: old sessions are
    /// tombstoned as new ones arrive, so the live set churns instead of
    /// only growing.
    pub churn_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WeblogConfig {
    /// Paper-shaped defaults, scaled down from 6.55 M total transactions to
    /// a laptop-friendly volume while keeping all the stated ratios.
    pub fn paper_scaled(days: usize, sessions_per_day: usize) -> Self {
        WeblogConfig {
            files: 5_000,
            hot_fraction: 0.1,
            daily_rotation: 0.1,
            hot_hit_probability: 0.8,
            days,
            sessions_per_day,
            avg_session_len: 8.0,
            churn_rate: 0.0,
            seed: 1010,
        }
    }

    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        WeblogConfig {
            files: 100,
            hot_fraction: 0.1,
            daily_rotation: 0.1,
            hot_hit_probability: 0.8,
            days: 3,
            sessions_per_day: 50,
            avg_session_len: 5.0,
            churn_rate: 0.0,
            seed: 3,
        }
    }
}

/// One day's batch of sessions.
#[derive(Debug, Clone)]
pub struct DayBatch {
    /// Day index (0-based).
    pub day: usize,
    /// The day's transactions, with globally increasing TIDs.
    pub transactions: Vec<Transaction>,
    /// The files that were hot while this batch was generated.
    pub hot_files: Vec<ItemId>,
    /// TIDs of previously live sessions that expired this day (empty on
    /// day 0 and whenever `churn_rate` is zero).  A driver feeding an
    /// index deletes these alongside inserting `transactions`.
    pub expired_tids: Vec<u64>,
}

/// Generates the day-partitioned web-log workload.
pub struct WeblogGenerator {
    config: WeblogConfig,
    rng: StdRng,
    hot: Vec<ItemId>,
    live: Vec<u64>,
    day: usize,
    next_tid: u64,
}

impl WeblogGenerator {
    /// Creates the generator and draws the initial hot set.
    ///
    /// # Panics
    /// Panics on a degenerate configuration (no files, empty hot set).
    pub fn new(config: WeblogConfig) -> Self {
        assert!(config.files > 0, "need at least one file");
        let hot_count = ((config.files as f64 * config.hot_fraction).round() as usize).max(1);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut hot: Vec<ItemId> = Vec::with_capacity(hot_count);
        while hot.len() < hot_count {
            let f = ItemId(rng.random_range(0..config.files));
            if !hot.contains(&f) {
                hot.push(f);
            }
        }
        WeblogGenerator {
            config,
            rng,
            hot,
            live: Vec::new(),
            day: 0,
            next_tid: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &WeblogConfig {
        &self.config
    }

    /// Current hot set (changes after every [`WeblogGenerator::next_day`]).
    pub fn hot_files(&self) -> &[ItemId] {
        &self.hot
    }

    fn rotate_hot(&mut self) {
        let replace = ((self.hot.len() as f64 * self.config.daily_rotation).round() as usize)
            .min(self.hot.len());
        for _ in 0..replace {
            let victim = self.rng.random_range(0..self.hot.len());
            // Replace with a currently cold file.
            loop {
                let f = ItemId(self.rng.random_range(0..self.config.files));
                if !self.hot.contains(&f) {
                    self.hot[victim] = f;
                    break;
                }
            }
        }
    }

    /// Draws this day's expirations: `churn_rate` of the live sessions,
    /// removed from the live set in one swap-remove pass (order within
    /// the live set carries no meaning).
    fn expire_sessions(&mut self) -> Vec<u64> {
        let n = ((self.live.len() as f64 * self.config.churn_rate).round() as usize)
            .min(self.live.len());
        let mut expired = Vec::with_capacity(n);
        for _ in 0..n {
            let victim = self.rng.random_range(0..self.live.len());
            expired.push(self.live.swap_remove(victim));
        }
        expired.sort_unstable();
        expired
    }

    /// TIDs of the sessions still live (inserted and not yet expired).
    pub fn live_tids(&self) -> &[u64] {
        &self.live
    }

    fn next_session(&mut self) -> Transaction {
        let len = sampling::poisson(&mut self.rng, self.config.avg_session_len).max(1) as usize;
        let len = len.min(self.config.files as usize);
        let mut items: Vec<ItemId> = Vec::with_capacity(len);
        let mut attempts = 0usize;
        while items.len() < len && attempts < 16 * len + 32 {
            attempts += 1;
            let f = if self.rng.random::<f64>() < self.config.hot_hit_probability {
                self.hot[self.rng.random_range(0..self.hot.len())]
            } else {
                ItemId(self.rng.random_range(0..self.config.files))
            };
            if !items.contains(&f) {
                items.push(f);
            }
        }
        let tid = self.next_tid;
        self.next_tid += 1;
        Transaction::new(tid, Itemset::from_items(items))
    }

    /// Generates the next day's batch (rotating the hot set first, except
    /// for day 0).  Returns `None` once the configured number of days has
    /// been produced.
    pub fn next_day(&mut self) -> Option<DayBatch> {
        if self.day >= self.config.days {
            return None;
        }
        let mut expired_tids = Vec::new();
        if self.day > 0 {
            self.rotate_hot();
            if self.config.churn_rate > 0.0 {
                expired_tids = self.expire_sessions();
            }
        }
        let transactions: Vec<Transaction> = (0..self.config.sessions_per_day)
            .map(|_| self.next_session())
            .collect();
        self.live.extend(transactions.iter().map(|t| t.tid.0));
        let batch = DayBatch {
            day: self.day,
            transactions,
            hot_files: self.hot.clone(),
            expired_tids,
        };
        self.day += 1;
        Some(batch)
    }

    /// Generates all remaining days.
    pub fn all_days(mut self) -> Vec<DayBatch> {
        let mut out = Vec::with_capacity(self.config.days);
        while let Some(b) = self.next_day() {
            out.push(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn produces_configured_days_and_sessions() {
        let days = WeblogGenerator::new(WeblogConfig::tiny()).all_days();
        assert_eq!(days.len(), 3);
        for (i, d) in days.iter().enumerate() {
            assert_eq!(d.day, i);
            assert_eq!(d.transactions.len(), 50);
        }
    }

    #[test]
    fn tids_increase_across_days() {
        let days = WeblogGenerator::new(WeblogConfig::tiny()).all_days();
        let tids: Vec<u64> = days
            .iter()
            .flat_map(|d| d.transactions.iter().map(|t| t.tid.0))
            .collect();
        assert_eq!(tids, (0..150).collect::<Vec<u64>>());
    }

    #[test]
    fn hot_set_rotates_but_mostly_persists() {
        let cfg = WeblogConfig {
            files: 1000,
            hot_fraction: 0.1,
            daily_rotation: 0.1,
            ..WeblogConfig::tiny()
        };
        let mut generator = WeblogGenerator::new(cfg);
        let d0 = generator.next_day().expect("day 0");
        let d1 = generator.next_day().expect("day 1");
        let h0: HashSet<ItemId> = d0.hot_files.iter().copied().collect();
        let h1: HashSet<ItemId> = d1.hot_files.iter().copied().collect();
        assert_eq!(h0.len(), 100);
        let stayed = h0.intersection(&h1).count();
        // Exactly 10 % replaced (rotation picks victims with replacement, so
        // allow a small band).
        assert!((85..=95).contains(&stayed), "stayed {stayed}");
    }

    #[test]
    fn traffic_is_skewed_toward_hot_files() {
        let cfg = WeblogConfig::tiny();
        let mut generator = WeblogGenerator::new(cfg);
        let d0 = generator.next_day().expect("day 0");
        let hot: HashSet<ItemId> = d0.hot_files.iter().copied().collect();
        let mut hot_refs = 0usize;
        let mut total = 0usize;
        for t in &d0.transactions {
            for it in t.items.items() {
                total += 1;
                if hot.contains(it) {
                    hot_refs += 1;
                }
            }
        }
        let frac = hot_refs as f64 / total as f64;
        // 80 % of draws target the hot set (plus chance cold hits), but
        // within-session dedup against a 10-file hot set suppresses repeats,
        // so the realised share lands lower; it must still dominate the 10 %
        // a uniform reference stream would give.
        assert!(frac > 0.4, "hot fraction {frac}");
    }

    #[test]
    fn sessions_within_vocabulary_and_nonempty() {
        let cfg = WeblogConfig::tiny();
        for day in WeblogGenerator::new(cfg).all_days() {
            for t in &day.transactions {
                assert!(!t.items.is_empty());
                assert!(t.items.items().iter().all(|f| f.0 < cfg.files));
            }
        }
    }

    #[test]
    fn churn_expires_live_sessions_each_day() {
        let cfg = WeblogConfig {
            churn_rate: 0.2,
            ..WeblogConfig::tiny()
        };
        let mut generator = WeblogGenerator::new(cfg);
        let d0 = generator.next_day().expect("day 0");
        assert!(d0.expired_tids.is_empty(), "nothing can expire on day 0");
        let live_after_d0: HashSet<u64> = generator.live_tids().iter().copied().collect();
        let d1 = generator.next_day().expect("day 1");
        // 20% of day 0's 50 sessions expire on day 1, all drawn from the
        // previously live set, sorted and unique.
        assert_eq!(d1.expired_tids.len(), 10);
        let expired: HashSet<u64> = d1.expired_tids.iter().copied().collect();
        assert_eq!(expired.len(), 10, "expirations are unique");
        assert!(expired.is_subset(&live_after_d0));
        // The live set dropped the expired TIDs and gained day 1's.
        let live: HashSet<u64> = generator.live_tids().iter().copied().collect();
        assert!(live.is_disjoint(&expired));
        for t in &d1.transactions {
            assert!(live.contains(&t.tid.0));
        }
        assert_eq!(live.len(), 50 - 10 + 50);
    }

    #[test]
    fn zero_churn_never_expires() {
        for day in WeblogGenerator::new(WeblogConfig::tiny()).all_days() {
            assert!(day.expired_tids.is_empty());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = WeblogGenerator::new(WeblogConfig::tiny()).all_days();
        let b = WeblogGenerator::new(WeblogConfig::tiny()).all_days();
        assert_eq!(a[2].transactions, b[2].transactions);
    }
}
