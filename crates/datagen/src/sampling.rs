//! Small statistical samplers used by the generators.
//!
//! The Agrawal–Srikant procedure needs Poisson, clipped-normal and
//! exponential variates.  Rather than pulling in a distributions crate,
//! these are implemented directly: Knuth's product method for Poisson
//! (the means involved are ≤ ~50), Box–Muller for the normal, and inverse
//! CDF for the exponential.

use rand::Rng;

/// Samples a Poisson variate with mean `lambda` (Knuth's method).
///
/// Suitable for the small means used in transaction-length sampling; cost is
/// `O(lambda)` per draw.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Guard against pathological lambda: cap at a generous multiple.
        if k > (lambda * 20.0 + 100.0) as u64 {
            return k;
        }
    }
}

/// Samples a normal variate via Box–Muller.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

/// Samples a normal variate clipped to `[lo, hi]`.
pub fn clipped_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    std_dev: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    normal(rng, mean, std_dev).clamp(lo, hi)
}

/// Samples an exponential variate with the given mean (inverse CDF).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "mean must be positive");
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -mean * u.ln()
}

/// Draws an index in `0..weights.len()` proportionally to `weights`
/// (cumulative table + binary search).
///
/// # Panics
/// Panics if `cumulative` is empty or its last entry is not positive.
pub fn pick_weighted<R: Rng + ?Sized>(rng: &mut R, cumulative: &[f64]) -> usize {
    let total = *cumulative.last().expect("non-empty cumulative table");
    assert!(total > 0.0, "weights must sum to a positive value");
    let x = rng.random::<f64>() * total;
    match cumulative.binary_search_by(|w| w.partial_cmp(&x).expect("no NaN weights")) {
        Ok(i) => (i + 1).min(cumulative.len() - 1),
        Err(i) => i.min(cumulative.len() - 1),
    }
}

/// Builds a cumulative table from raw weights.
pub fn cumulative(weights: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w.max(0.0);
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBB5)
    }

    #[test]
    fn poisson_mean_roughly_correct() {
        let mut r = rng();
        let n = 20_000;
        for lambda in [0.5f64, 3.0, 10.0] {
            let sum: u64 = (0..n).map(|_| poisson(&mut r, lambda)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda * 0.1 + 0.1,
                "lambda={lambda}, got mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn normal_mean_and_spread() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn clipped_normal_respects_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = clipped_normal(&mut r, 0.5, 0.5, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut r, 2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn pick_weighted_follows_weights() {
        let mut r = rng();
        let cum = cumulative(&[1.0, 0.0, 3.0]);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[pick_weighted(&mut r, &cum)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight entry never drawn");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn cumulative_ignores_negative_weights() {
        assert_eq!(cumulative(&[1.0, -5.0, 2.0]), vec![1.0, 1.0, 3.0]);
    }
}
