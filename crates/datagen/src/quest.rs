//! The IBM Quest synthetic market-basket generator.
//!
//! This follows the procedure of Agrawal & Srikant, *Fast Algorithms for
//! Mining Association Rules* (VLDB '94) — reference [1] of the BBS paper,
//! and the source of the paper's `T10.I10.D10K` datasets:
//!
//! 1. Build a pool of `L` *potentially large itemsets*.  Each has a length
//!    drawn from a Poisson with mean `I`; its items are partly inherited
//!    from the previous pool entry (an exponentially distributed fraction
//!    with mean 0.5) and partly drawn fresh, modelling correlated patterns.
//!    Each pool entry carries an exponential weight (normalised) and a
//!    *corruption level* drawn from a clipped normal (mean 0.5, σ 0.1).
//! 2. Emit transactions.  Each transaction's length is Poisson with mean
//!    `T`; it is filled by picking pool itemsets by weight, dropping items
//!    from each picked itemset while a uniform draw stays below its
//!    corruption level, and — when an itemset no longer fits — adding it
//!    anyway in half the cases and discarding it otherwise.

use crate::sampling;
use bbs_tdb::{ItemId, Itemset, Transaction, TransactionDb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a Quest dataset, in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuestConfig {
    /// `D` — number of transactions.
    pub transactions: usize,
    /// `V` (sometimes `N`) — number of distinct items.
    pub items: u32,
    /// `T` — average transaction length.
    pub avg_txn_len: f64,
    /// `I` — average length of the maximal potentially large itemsets.
    pub avg_pattern_len: f64,
    /// `L` — size of the potentially-large-itemset pool (Quest default 2000).
    pub pattern_pool: usize,
    /// Mean fraction of items shared with the previous pool entry.
    pub correlation: f64,
    /// Mean corruption level (fraction of a pattern's items dropped).
    pub corruption_mean: f64,
    /// Std-dev of the corruption level.
    pub corruption_sd: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl QuestConfig {
    /// The paper's default dataset: `T10.I10.D10K` with 10 000 items,
    /// pool of 2000 patterns.
    pub fn paper_default() -> Self {
        QuestConfig {
            transactions: 10_000,
            items: 10_000,
            avg_txn_len: 10.0,
            avg_pattern_len: 10.0,
            pattern_pool: 2_000,
            correlation: 0.5,
            corruption_mean: 0.5,
            corruption_sd: 0.1,
            seed: 20020226, // ICDE 2002
        }
    }

    /// A small configuration for unit tests (fast, still structured).
    pub fn tiny() -> Self {
        QuestConfig {
            transactions: 200,
            items: 50,
            avg_txn_len: 6.0,
            avg_pattern_len: 3.0,
            pattern_pool: 20,
            correlation: 0.5,
            corruption_mean: 0.5,
            corruption_sd: 0.1,
            seed: 7,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different transaction count (`D`).
    pub fn with_transactions(mut self, d: usize) -> Self {
        self.transactions = d;
        self
    }

    /// Returns a copy with a different vocabulary size (`V`).
    pub fn with_items(mut self, v: u32) -> Self {
        self.items = v;
        self
    }

    /// Returns a copy with a different average transaction length (`T`).
    pub fn with_avg_txn_len(mut self, t: f64) -> Self {
        self.avg_txn_len = t;
        self
    }

    /// Dataset label in the paper's naming scheme, e.g. `T10.I10.D10K`.
    pub fn label(&self) -> String {
        let d = self.transactions;
        let d_str = if d.is_multiple_of(1000) {
            format!("{}K", d / 1000)
        } else {
            d.to_string()
        };
        format!(
            "T{}.I{}.D{}",
            self.avg_txn_len as u64, self.avg_pattern_len as u64, d_str
        )
    }
}

/// One entry of the potentially-large-itemset pool.
#[derive(Debug, Clone)]
struct PoolEntry {
    items: Vec<ItemId>,
    corruption: f64,
}

/// The Quest generator.  Construction builds the pattern pool; calling
/// [`QuestGenerator::generate`] (or [`generate_db`]) emits transactions.
pub struct QuestGenerator {
    config: QuestConfig,
    pool: Vec<PoolEntry>,
    cumulative_weights: Vec<f64>,
    rng: StdRng,
    next_tid: u64,
}

impl QuestGenerator {
    /// Builds the pattern pool for `config`.
    ///
    /// # Panics
    /// Panics if the configuration is degenerate (no items, no pool).
    pub fn new(config: QuestConfig) -> Self {
        assert!(config.items > 0, "need at least one item");
        assert!(config.pattern_pool > 0, "need a non-empty pattern pool");
        assert!(config.avg_txn_len > 0.0 && config.avg_pattern_len > 0.0);
        let mut rng = StdRng::seed_from_u64(config.seed);

        let mut pool: Vec<PoolEntry> = Vec::with_capacity(config.pattern_pool);
        let mut weights: Vec<f64> = Vec::with_capacity(config.pattern_pool);
        let mut prev: Vec<ItemId> = Vec::new();
        for _ in 0..config.pattern_pool {
            let len = sampling::poisson(&mut rng, config.avg_pattern_len).max(1) as usize;
            let len = len.min(config.items as usize);
            let mut items: Vec<ItemId> = Vec::with_capacity(len);
            // Inherit a prefix from the previous itemset.
            if !prev.is_empty() {
                let frac = sampling::exponential(&mut rng, config.correlation).min(1.0);
                let inherit = ((frac * len as f64).round() as usize).min(prev.len());
                for _ in 0..inherit {
                    let pick = prev[rng.random_range(0..prev.len())];
                    if !items.contains(&pick) {
                        items.push(pick);
                    }
                }
            }
            // Fill the remainder with fresh random items.
            while items.len() < len {
                let candidate = ItemId(rng.random_range(0..config.items));
                if !items.contains(&candidate) {
                    items.push(candidate);
                }
            }
            prev = items.clone();
            pool.push(PoolEntry {
                items,
                corruption: sampling::clipped_normal(
                    &mut rng,
                    config.corruption_mean,
                    config.corruption_sd,
                    0.0,
                    1.0,
                ),
            });
            weights.push(sampling::exponential(&mut rng, 1.0));
        }
        let cumulative_weights = sampling::cumulative(&weights);

        QuestGenerator {
            config,
            pool,
            cumulative_weights,
            rng,
            next_tid: 0,
        }
    }

    /// The configuration this generator was built with.
    pub fn config(&self) -> &QuestConfig {
        &self.config
    }

    /// Generates the next transaction.  TIDs are sequential from 0.
    pub fn next_transaction(&mut self) -> Transaction {
        let target = sampling::poisson(&mut self.rng, self.config.avg_txn_len).max(1) as usize;
        let target = target.min(self.config.items as usize);
        let mut items: Vec<ItemId> = Vec::with_capacity(target + 4);

        // Up to a bounded number of pool draws; bail out if corruption keeps
        // the transaction starved (can happen with tiny vocabularies).
        let mut attempts = 0usize;
        while items.len() < target && attempts < 8 * target + 16 {
            attempts += 1;
            let entry = &self.pool[sampling::pick_weighted(&mut self.rng, &self.cumulative_weights)];
            // Corrupt: drop items while uniform < corruption level.
            let mut picked: Vec<ItemId> = Vec::with_capacity(entry.items.len());
            for &it in &entry.items {
                if self.rng.random::<f64>() >= entry.corruption {
                    picked.push(it);
                }
            }
            if picked.is_empty() {
                continue;
            }
            let fits = items.len() + picked.len() <= target;
            // Quest rule: if the itemset overflows the transaction, add it
            // anyway half the time, otherwise move on.
            if fits || self.rng.random::<bool>() {
                for it in picked {
                    if !items.contains(&it) {
                        items.push(it);
                    }
                }
            }
        }
        if items.is_empty() {
            // Degenerate fallback: one random item, so every transaction is
            // non-empty (empty transactions carry no information).
            items.push(ItemId(self.rng.random_range(0..self.config.items)));
        }

        let tid = self.next_tid;
        self.next_tid += 1;
        Transaction::new(tid, Itemset::from_items(items))
    }

    /// Generates `n` transactions.
    pub fn take_transactions(&mut self, n: usize) -> Vec<Transaction> {
        (0..n).map(|_| self.next_transaction()).collect()
    }

    /// Generates the full configured database.
    pub fn generate(mut self) -> TransactionDb {
        let n = self.config.transactions;
        TransactionDb::from_transactions(self.take_transactions(n))
    }
}

/// One-shot convenience: build the generator and emit the database.
pub fn generate_db(config: QuestConfig) -> TransactionDb {
    QuestGenerator::new(config).generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let db = generate_db(QuestConfig::tiny());
        assert_eq!(db.len(), 200);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_db(QuestConfig::tiny());
        let b = generate_db(QuestConfig::tiny());
        assert_eq!(a.transactions(), b.transactions());
        let c = generate_db(QuestConfig::tiny().with_seed(8));
        assert_ne!(a.transactions(), c.transactions());
    }

    #[test]
    fn items_stay_in_vocabulary() {
        let cfg = QuestConfig::tiny();
        let db = generate_db(cfg);
        for t in db.transactions() {
            assert!(!t.items.is_empty(), "empty transaction generated");
            for it in t.items.items() {
                assert!(it.0 < cfg.items);
            }
        }
    }

    #[test]
    fn average_length_tracks_t() {
        let cfg = QuestConfig {
            transactions: 2_000,
            items: 1_000,
            avg_txn_len: 10.0,
            avg_pattern_len: 4.0,
            pattern_pool: 200,
            correlation: 0.5,
            corruption_mean: 0.5,
            corruption_sd: 0.1,
            seed: 42,
        };
        let db = generate_db(cfg);
        let total: usize = db.transactions().iter().map(|t| t.items.len()).sum();
        let avg = total as f64 / db.len() as f64;
        // The overflow rule makes lengths drift a little above T; allow a
        // generous band — we care that T is the knob, not the exact moment.
        assert!(
            (6.0..=14.0).contains(&avg),
            "avg transaction length {avg}, expected near 10"
        );
    }

    #[test]
    fn has_frequent_structure() {
        // Planted patterns should make *some* 2-itemsets far more frequent
        // than independence would allow.
        let cfg = QuestConfig {
            transactions: 1_000,
            items: 500,
            avg_txn_len: 8.0,
            avg_pattern_len: 4.0,
            pattern_pool: 50,
            correlation: 0.5,
            corruption_mean: 0.3,
            corruption_sd: 0.1,
            seed: 99,
        };
        let db = generate_db(cfg);
        use std::collections::HashMap;
        let mut pair_counts: HashMap<(ItemId, ItemId), u32> = HashMap::new();
        for t in db.transactions() {
            let items = t.items.items();
            for i in 0..items.len() {
                for j in i + 1..items.len() {
                    *pair_counts.entry((items[i], items[j])).or_insert(0) += 1;
                }
            }
        }
        let max_pair = pair_counts.values().copied().max().unwrap_or(0);
        // Under independence a given pair would occur ~ D * (8/500)^2 ≈ 0.26
        // times; planted patterns should push some pair far above that.
        assert!(max_pair >= 20, "max pair support {max_pair}, no structure");
    }

    #[test]
    fn tid_sequence_is_contiguous() {
        let mut generator = QuestGenerator::new(QuestConfig::tiny());
        let batch1 = generator.take_transactions(5);
        let batch2 = generator.take_transactions(5);
        let tids: Vec<u64> = batch1.iter().chain(&batch2).map(|t| t.tid.0).collect();
        assert_eq!(tids, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn label_format() {
        assert_eq!(QuestConfig::paper_default().label(), "T10.I10.D10K");
        assert_eq!(
            QuestConfig::paper_default().with_transactions(123).label(),
            "T10.I10.D123"
        );
    }
}
