//! The distributed deployment end-to-end, over real sockets: a
//! `CoordinatorEngine` whose shards are separate `Engine` servers must
//! be bit-for-bit indistinguishable from a local `ShardedEngine` holding
//! the same transactions — same counts, same mined patterns, same probed
//! rows, with exactly-once inserts composing through the extra hop — and
//! a shard that dies must surface as a typed `SHARD_UNAVAILABLE` (or be
//! failed over to its follower), never as a silently-wrong total.

use bbs_core::Scheme;
use bbs_hash::{ItemHasher, Md5BloomHasher, ModuloHasher};
use bbs_remote::{CoordinatorEngine, CoordinatorOptions, NodeSpec, RemoteOptions, Topology};
use bbs_server::{
    serve, Bind, Client, Engine, RetryPolicy, ServerConfig, ServerHandle, ShardedEngine,
};
use bbs_shard::ShardedDeployment;
use bbs_storage::diskbbs::DiskDeployment;
use bbs_tdb::SupportThreshold;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const WIDTH: usize = 64;

fn base(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bbs_remote_{}_{}", std::process::id(), name));
    p
}

struct CleanupDir(PathBuf);
impl Drop for CleanupDir {
    fn drop(&mut self) {
        ShardedDeployment::remove_files(&self.0).ok();
    }
}

struct CleanupBase(PathBuf);
impl Drop for CleanupBase {
    fn drop(&mut self) {
        DiskDeployment::remove_files(&self.0).ok();
    }
}

fn hasher() -> Arc<dyn ItemHasher> {
    Arc::new(Md5BloomHasher::new(4))
}

fn cfg() -> ServerConfig {
    ServerConfig {
        width: WIDTH,
        cache_pages: 128,
        queue_capacity: 32,
        ..ServerConfig::default()
    }
}

/// Fast-failing connection knobs so a dead-shard test does not sit out
/// the full production backoff schedule.
fn opts() -> CoordinatorOptions {
    CoordinatorOptions {
        remote: RemoteOptions {
            timeout: Duration::from_secs(10),
            policy: RetryPolicy {
                attempts: 2,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(20),
            },
        },
        mine_threads: 2,
    }
}

/// Starts one shard server (an unsharded `Engine` on its own base) on an
/// ephemeral TCP port; returns the handle and the bound address.
fn shard_server(name: &str, cfg: ServerConfig) -> (ServerHandle<Engine>, String, CleanupBase) {
    let b = base(name);
    let guard = CleanupBase(b.clone());
    let engine = Engine::open(&b, cfg).expect("open shard engine");
    let handle = serve(
        engine,
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )
    .expect("serve shard");
    let addr = handle.tcp_addr().expect("tcp addr").to_string();
    (handle, addr, guard)
}

fn topology_for(addrs: &[String], followers: &[Option<String>]) -> Topology {
    Topology {
        version: bbs_remote::TOPOLOGY_VERSION,
        shards: addrs.len(),
        width: WIDTH,
        hasher: "md5/4".into(),
        nodes: addrs
            .iter()
            .zip(followers)
            .enumerate()
            .map(|(id, (primary, follower))| NodeSpec {
                id: id as u32,
                primary: primary.clone(),
                follower: follower.clone(),
            })
            .collect(),
    }
}

fn batch(start: u64, n: u64) -> Vec<(u64, Vec<u32>)> {
    (start..start + n)
        .map(|i| {
            let mut items = vec![1, 2 + (i % 3) as u32];
            if i % 5 == 0 {
                items.push(9);
            }
            (i, items)
        })
        .collect()
}

#[test]
fn coordinator_matches_local_sharded_bit_for_bit() {
    const SHARDS: usize = 3;
    const N: u64 = 90;

    // The distributed side: three shard servers plus a coordinator,
    // itself served over TCP — every hop a real socket.
    let (h0, a0, _g0) = shard_server("eq_s0", cfg());
    let (h1, a1, _g1) = shard_server("eq_s1", cfg());
    let (h2, a2, _g2) = shard_server("eq_s2", cfg());
    let addrs = vec![a0, a1, a2];
    let coordinator = CoordinatorEngine::connect(
        topology_for(&addrs, &[None, None, None]),
        opts(),
    )
    .expect("connect coordinator");
    let ch = serve(
        Arc::clone(&coordinator),
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )
    .expect("serve coordinator");
    let mut dc = Client::connect_tcp(ch.tcp_addr().unwrap().to_string()).expect("connect");

    // The local reference: a sharded directory with the same width,
    // hasher and shard count, served in-process.
    let sd = base("eq_local");
    let _gl = CleanupDir(sd.clone());
    ShardedDeployment::create(&sd, SHARDS, WIDTH, hasher(), 64).expect("create sharded");
    let sharded = ShardedEngine::open(&sd, cfg()).expect("open sharded");
    let lh = serve(
        Arc::clone(&sharded),
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )
    .expect("serve sharded");
    let mut lc = Client::connect_tcp(lh.tcp_addr().unwrap().to_string()).expect("connect");

    // Exactly-once composes end-to-end: the same request ID re-sent
    // through the coordinator answers with the original receipt.
    let txns = batch(0, N);
    let first = dc.insert_with_id(7, &txns).expect("distributed insert");
    assert_eq!((first.appended, first.deduped), (N, false));
    let retry = dc.insert_with_id(7, &txns).expect("re-sent insert");
    assert_eq!((retry.appended, retry.deduped), (N, true));
    assert_eq!(retry.first_row, first.first_row);
    let local = lc.insert_with_id(7, &txns).expect("local insert");
    assert_eq!(local.appended, N);

    // Counting parity, single and batched (empty itemset included).
    for items in [vec![1u32], vec![2], vec![1, 9], vec![4, 9], vec![77]] {
        let d = dc.count(&items).expect("count").support;
        let l = lc.count(&items).expect("count").support;
        assert_eq!(d, l, "count {items:?}");
    }
    let queries: Vec<&[u32]> = vec![&[1], &[2], &[9], &[1, 3], &[2, 9], &[]];
    let d = dc.count_many(&queries).expect("count_many");
    let l = lc.count_many(&queries).expect("count_many");
    assert_eq!(d.supports, l.supports);
    assert_eq!(d.rows, N);

    // Mining parity: bit-for-bit patterns, supports and approx markers.
    for scheme in [Scheme::Sfs, Scheme::Dfp] {
        for threads in [1u16, 3] {
            let dm = dc
                .mine(scheme, SupportThreshold::Count(15), threads)
                .expect("distributed mine");
            let lm = lc
                .mine(scheme, SupportThreshold::Count(15), threads)
                .expect("local mine");
            assert_eq!(dm.patterns, lm.patterns, "{scheme:?} x{threads}");
            assert_eq!(dm.rows, N);
        }
    }

    // Probe parity over the whole concatenated row space.
    for row in 0..N {
        let d = dc.probe(row).expect("probe");
        let l = lc.probe(row).expect("probe");
        assert_eq!(d, l, "row {row}");
    }
    assert_eq!(dc.probe(N).expect("probe"), None);

    // The stats document reports the distributed topology and the fault
    // counters (all zero on this clean run).
    let json = dc.stats().expect("stats");
    assert!(json.contains("\"coordinator\":true"), "{json}");
    assert!(json.contains(&format!("\"shards\":{SHARDS}")));
    assert!(json.contains(&format!("\"rows\":{N}")));
    assert!(json.contains("\"shard_rows\":[30,30,30]"));
    assert!(json.contains("\"scatter_errors\":[0,0,0]"));
    assert!(json.contains("\"timeouts\":[0,0,0]"));
    assert!(json.contains("\"failovers\":[0,0,0]"));
    assert!(json.contains("\"scatter_us\":{\"insert\":{\"count\":2,"));

    // Shutdown drains the coordinator without touching the shards.
    dc.shutdown_server().expect("shutdown");
    ch.wait();
    let mut s0 = Client::connect_tcp(addrs[0].clone()).expect("shard 0 still up");
    s0.ping().expect("shard 0 still answers");

    lc.shutdown_server().expect("shutdown local");
    lh.wait();
    for h in [h0, h1, h2] {
        let mut c = Client::connect_tcp(h.tcp_addr().unwrap().to_string()).expect("connect");
        c.shutdown_server().expect("shutdown shard");
        h.wait();
    }
}

#[test]
fn connect_refuses_width_and_hasher_mismatch() {
    // A shard serving a different slice width: refused, naming both.
    let (h_ok, a_ok, _g0) = shard_server("mm_ok", cfg());
    let (h_wide, a_wide, _g1) = shard_server(
        "mm_wide",
        ServerConfig {
            width: 128,
            ..cfg()
        },
    );
    let err = CoordinatorEngine::connect(
        topology_for(&[a_ok.clone(), a_wide], &[None, None]),
        opts(),
    )
    .expect_err("width mismatch must be refused");
    let msg = err.to_string();
    assert!(
        msg.contains("width 128") && msg.contains("width 64"),
        "error must name both widths: {msg}"
    );

    // A shard serving a different hash family: refused, naming both.
    let b = base("mm_hash");
    let _g2 = CleanupBase(b.clone());
    let modulo = Engine::open_with(&b, cfg(), Arc::new(ModuloHasher)).expect("open modulo");
    let h_mod = serve(
        modulo,
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )
    .expect("serve modulo");
    let a_mod = h_mod.tcp_addr().unwrap().to_string();
    let err = CoordinatorEngine::connect(topology_for(&[a_ok, a_mod], &[None, None]), opts())
        .expect_err("hasher mismatch must be refused");
    let msg = err.to_string();
    assert!(
        msg.contains("mod/1") && msg.contains("md5/4"),
        "error must name both hashers: {msg}"
    );

    h_ok.join();
    h_wide.join();
    h_mod.join();
}

#[test]
fn dead_shard_is_a_typed_unavailable_not_a_wrong_total() {
    let (h0, a0, _g0) = shard_server("dead_s0", cfg());
    let (h1, a1, _g1) = shard_server("dead_s1", cfg());
    let coordinator =
        CoordinatorEngine::connect(topology_for(&[a0, a1.clone()], &[None, None]), opts())
            .expect("connect");
    let ch = serve(
        Arc::clone(&coordinator),
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )
    .expect("serve coordinator");
    let mut client = Client::connect_tcp(ch.tcp_addr().unwrap().to_string()).expect("connect");
    client.insert(&batch(0, 40)).expect("insert");
    assert_eq!(client.count(&[1]).expect("count").support, 40);

    // Kill shard 1 (no follower in the topology): counting must answer
    // with a typed outcome naming the shard — never a partial total.
    let mut s1 = Client::connect_tcp(a1).expect("connect shard 1");
    s1.shutdown_server().expect("shutdown shard 1");
    h1.wait();
    let err = client.count(&[1]).expect_err("count through a dead shard");
    match err {
        bbs_server::ClientError::ShardUnavailable(shard, msg) => {
            assert_eq!(shard, 1);
            assert!(msg.contains("shard 1"), "{msg}");
        }
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }
    let faults = &coordinator.shard_faults()[1];
    assert!(faults.scatter_errors.load(std::sync::atomic::Ordering::Relaxed) >= 1);

    client.shutdown_server().expect("shutdown coordinator");
    ch.wait();
    h0.join();
}

#[test]
fn coordinator_routes_deletes_and_fans_out_maintenance() {
    use bbs_server::maintain_action;

    const SHARDS: usize = 3;
    const N: u64 = 60;
    let (h0, a0, _g0) = shard_server("dyn_s0", cfg());
    let (h1, a1, _g1) = shard_server("dyn_s1", cfg());
    let (h2, a2, _g2) = shard_server("dyn_s2", cfg());
    let addrs = vec![a0, a1, a2];
    let coordinator =
        CoordinatorEngine::connect(topology_for(&addrs, &[None, None, None]), opts())
            .expect("connect coordinator");
    let ch = serve(
        Arc::clone(&coordinator),
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )
    .expect("serve coordinator");
    let mut dc = Client::connect_tcp(ch.tcp_addr().unwrap().to_string()).expect("connect");

    let txns = batch(0, N);
    dc.insert_with_id(1, &txns).expect("insert");

    // Victims span all three shards (consecutive TIDs mod 3); the
    // coordinator must partition by residue and sum the shard receipts.
    let victims: Vec<u64> = (0..N).filter(|t| t % 4 == 0).collect();
    let first = dc.delete_with_id(42, &victims).expect("delete");
    assert_eq!(first.deleted, victims.len() as u64);
    assert!(!first.deduped);

    // Counting parity with the surviving truth, through the extra hop.
    let survivors: Vec<&(u64, Vec<u32>)> = txns.iter().filter(|(t, _)| t % 4 != 0).collect();
    let live = survivors.len() as u64;
    assert_eq!(dc.count(&[1]).expect("count").support, live);
    assert_eq!(dc.count(&[]).expect("count all").support, live);

    // Exactly-once composes: the re-sent delete answers from every
    // shard's dedup window with the original receipts.
    let retry = dc.delete_with_id(42, &victims).expect("retry");
    assert!(retry.deduped, "all shards must dedup the retried delete");
    assert_eq!(retry.deleted, victims.len() as u64);
    assert_eq!(dc.count(&[1]).expect("count").support, live);

    // Maintenance fans out to every shard: the probe aggregates live and
    // tombstoned rows across the fleet, compaction reclaims them all.
    let probe = dc.maintain(maintain_action::PROBE_FPR, 8).expect("probe");
    assert_eq!(probe.action_taken, maintain_action::PROBE_FPR);
    assert_eq!(probe.live_rows, live);
    assert_eq!(probe.deleted_rows, victims.len() as u64);
    assert!((0.0..=1.0).contains(&probe.fpr));
    let compacted = dc.maintain(maintain_action::COMPACT, 0).expect("compact");
    assert_eq!(compacted.live_rows, live);
    assert_eq!(compacted.deleted_rows, 0);
    assert_eq!(dc.count(&[1]).expect("count").support, live);
    assert_eq!(dc.count(&[1]).expect("count").rows, live);

    // Mining over the survivors still scatters cleanly post-compaction.
    let mine = dc
        .mine(Scheme::Dfp, SupportThreshold::Count(10), 2)
        .expect("mine");
    assert_eq!(mine.rows, live);

    // The stats document carries the per-shard health gauges.
    let json = dc.stats().expect("stats");
    assert!(json.contains("\"coordinator\":true"), "{json}");
    assert!(json.contains(&format!("\"shards\":{SHARDS}")));
    assert!(json.contains("\"shard_width\":["), "{json}");

    dc.shutdown_server().expect("shutdown coordinator");
    ch.wait();
    for h in [h0, h1, h2] {
        let mut c = Client::connect_tcp(h.tcp_addr().unwrap().to_string()).expect("connect");
        c.shutdown_server().expect("shutdown shard");
        h.wait();
    }
}

#[test]
fn coordinator_fails_over_to_the_follower_and_keeps_serving() {
    // Shard 0: a primary with a live follower replicating its commit
    // stream.  Shard 1: a plain single server.
    let (h_prim, a_prim, _g0) = shard_server("fo_primary", cfg());
    let fb = base("fo_follower");
    let _g1 = CleanupBase(fb.clone());
    let follower = Engine::open(
        &fb,
        ServerConfig {
            follow: Some(a_prim.clone()),
            poll_interval: Duration::from_millis(10),
            ..cfg()
        },
    )
    .expect("open follower");
    let h_fol = serve(
        follower,
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )
    .expect("serve follower");
    let a_fol = h_fol.tcp_addr().unwrap().to_string();
    let (h1, a1, _g2) = shard_server("fo_s1", cfg());

    let coordinator = CoordinatorEngine::connect(
        topology_for(&[a_prim.clone(), a1], &[Some(a_fol.clone()), None]),
        opts(),
    )
    .expect("connect");
    let ch = serve(
        Arc::clone(&coordinator),
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )
    .expect("serve coordinator");
    let mut client = Client::connect_tcp(ch.tcp_addr().unwrap().to_string()).expect("connect");

    const N: u64 = 60;
    client.insert_with_id(3, &batch(0, N)).expect("insert");
    assert_eq!(client.count(&[1]).expect("count").support, N);

    // Wait for the follower to replicate shard 0's rows before the
    // primary disappears (shard 0 owns the even TIDs: N/2 rows).
    let mut fc = Client::connect_tcp(a_fol).expect("connect follower");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let caught_up = fc.count(&[1]).map(|r| r.rows == N / 2).unwrap_or(false);
        if caught_up {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "follower never caught up"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The primary goes away; the next scatter fails over: promote the
    // follower, re-point shard 0's handle, re-pin, and answer — the
    // same totals, no client-visible error.
    let mut pc = Client::connect_tcp(a_prim).expect("connect primary");
    pc.shutdown_server().expect("shutdown primary");
    h_prim.wait();
    assert_eq!(client.count(&[1]).expect("count after failover").support, N);
    use std::sync::atomic::Ordering;
    assert_eq!(coordinator.shard_faults()[0].failovers.load(Ordering::Relaxed), 1);
    assert_eq!(coordinator.shard_faults()[1].failovers.load(Ordering::Relaxed), 0);

    // The promoted follower now takes shard 0's writes: inserts keep
    // routing, exactly-once still composes.
    client.insert_with_id(4, &batch(N, 20)).expect("insert after failover");
    let retry = client.insert_with_id(4, &batch(N, 20)).expect("retry");
    assert!(retry.deduped);
    assert_eq!(client.count(&[1]).expect("count").support, N + 20);

    // Mining still scatters cleanly over the failed-over topology.
    let mine = client
        .mine(Scheme::Dfp, SupportThreshold::Count(10), 2)
        .expect("mine after failover");
    assert_eq!(mine.rows, N + 20);

    client.shutdown_server().expect("shutdown coordinator");
    ch.wait();
    h_fol.join();
    h1.join();
}
