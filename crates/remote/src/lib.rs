//! Distributed BBS deployments.
//!
//! A local sharded deployment routes transactions across N shard
//! directories inside one process.  This crate stretches the same shape
//! across processes and machines:
//!
//! * [`topology`] — the versioned TOPOLOGY manifest naming each shard's
//!   primary (and optional follower) address, plus the pinned shard
//!   count, slice width, and hasher identity every member must agree on.
//! * [`handle`] — [`RemoteShardHandle`], a `ShardHandle` whose shard
//!   lives behind a socket: snapshot pins, batched counts against a
//!   pinned epoch, chunked row pulls, and per-shard replica failover
//!   when the primary goes silent.
//! * [`coordinator`] — [`CoordinatorEngine`], the scatter-gather
//!   request engine: inserts route by TID residue reusing the client's
//!   request ID (exactly-once composes end-to-end), counts and mining
//!   scatter through the remote handles, and a shard that stays
//!   unreachable after retries and failover answers as a typed
//!   `SHARD_UNAVAILABLE` — never a silently-wrong total.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod handle;
pub mod topology;

pub use coordinator::{hasher_for_id, CoordinatorEngine, CoordinatorOptions};
pub use handle::{RemoteOptions, RemoteShardHandle};
pub use topology::{NodeSpec, Topology, TOPOLOGY_VERSION};
