//! [`CoordinatorEngine`]: the request engine of a distributed deployment.
//!
//! A coordinator is a shard router whose shards live in other processes:
//! it speaks the same wire protocol as every other server (it implements
//! `bbs_server::RequestHandler`, so the same listeners, framing and
//! drain logic serve it), and routes each request over
//! [`RemoteShardHandle`]s:
//!
//! * **insert** partitions the batch by TID residue and forwards each
//!   sub-batch to its owning shard **reusing the client's request ID**,
//!   so exactly-once composes end-to-end: a client retry re-sends the
//!   same ID, every shard that already committed answers from its
//!   exactly-once window, and only the remainder appends — the same
//!   convergence argument as the local shard router, with the coordinator
//!   adding no state of its own.
//! * **count / count_many** pin a snapshot on every shard, scatter the
//!   batch through the gather layer's scaled-τ scheme, and sum — exact,
//!   because per-shard BBS estimates are additive over the TID partition
//!   when every shard serves the same width and hash family (checked at
//!   connect).
//! * **mine** pins every shard, pulls each shard's pinned rows over
//!   chunked `rows` frames, rebuilds the per-shard index in memory, and
//!   runs the identical sharded mining path a local router runs — so the
//!   patterns, supports and approx markers are bit-for-bit what the
//!   local (and therefore unsharded) run returns.
//!
//! A scatter that cannot reach a shard — after retries, and after
//! failover to the shard's follower if the topology names one — answers
//! with a typed `SHARD_UNAVAILABLE` response naming the shard, never a
//! silently-wrong partial total.

use crate::handle::{RemoteOptions, RemoteShardHandle};
use crate::topology::Topology;
use bbs_core::Scheme;
use bbs_hash::{ItemHasher, Md5BloomHasher, ModuloHasher};
use bbs_server::{
    ClientError, DeleteReply, MaintainReply, PinReply, Reply, Request, RequestHandler, Response,
    ScatterMetrics, ServerMetrics, ShardFaults,
};
use bbs_shard::{count_many_sharded, route, scatter, ShardedCounter};
use bbs_tdb::{
    IoStats, ItemId, Itemset, MineResult, SupportThreshold, Transaction, TransactionDb,
};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many count_many work units (Σ per-itemset lengths) one request
/// may carry — the same admission bound the single-node engine applies.
const COUNT_MANY_MAX_WORK: usize = 1 << 16;

/// Coordinator construction knobs.
#[derive(Debug, Clone, Default)]
pub struct CoordinatorOptions {
    /// Per-shard connection settings (timeout, retry policy).
    pub remote: RemoteOptions,
    /// Worker threads for distributed mining (0 = all cores).
    pub mine_threads: usize,
}

/// Reconstructs the hash family a topology names (`md5/K`, `mod/1`).
///
/// The coordinator needs the actual functions — not just the identity
/// string — to rebuild per-shard indexes for distributed mining.
pub fn hasher_for_id(id: &str) -> Option<Arc<dyn ItemHasher>> {
    if id == "mod/1" {
        return Some(Arc::new(ModuloHasher));
    }
    let k: usize = id.strip_prefix("md5/")?.parse().ok()?;
    (k > 0).then(|| Arc::new(Md5BloomHasher::new(k)) as Arc<dyn ItemHasher>)
}

/// The scatter-gather engine over a topology of remote shards.
pub struct CoordinatorEngine {
    topology: Topology,
    handles: Vec<RemoteShardHandle>,
    faults: Vec<Arc<ShardFaults>>,
    metrics: Arc<ServerMetrics>,
    scatter: ScatterMetrics,
    draining: AtomicBool,
    mine_threads: usize,
}

impl std::fmt::Debug for CoordinatorEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoordinatorEngine")
            .field("shards", &self.topology.shards)
            .field("width", &self.topology.width)
            .field("hasher", &self.topology.hasher)
            .finish_non_exhaustive()
    }
}

impl CoordinatorEngine {
    /// Connects to every shard in the topology, pins a snapshot on each,
    /// and validates the pinned width/hasher identity against the
    /// topology — a shard whose deployment disagrees is refused with an
    /// error naming both values.
    pub fn connect(topology: Topology, opts: CoordinatorOptions) -> io::Result<Arc<Self>> {
        let faults: Vec<Arc<ShardFaults>> = (0..topology.shards)
            .map(|_| Arc::new(ShardFaults::default()))
            .collect();
        let nodes: Vec<usize> = (0..topology.shards).collect();
        let handles = scatter(&nodes, |_, &i| {
            let node = &topology.nodes[i];
            let handle = RemoteShardHandle::connect(
                node.id,
                &node.primary,
                node.follower.as_deref(),
                opts.remote.clone(),
                Arc::clone(&faults[i]),
            )?;
            let pin = handle.pin().expect("connect always pins");
            if pin.width as usize != topology.width {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shard {} at {}: serves width {} but the topology pins width {}",
                        node.id, node.primary, pin.width, topology.width
                    ),
                ));
            }
            if pin.hasher != topology.hasher {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shard {} at {}: serves hasher {} but the topology pins hasher {}",
                        node.id, node.primary, pin.hasher, topology.hasher
                    ),
                ));
            }
            Ok(handle)
        })?;
        Ok(Arc::new(CoordinatorEngine {
            topology,
            handles,
            faults,
            metrics: Arc::new(ServerMetrics::new()),
            scatter: ScatterMetrics::default(),
            draining: AtomicBool::new(false),
            mine_threads: opts.mine_threads,
        }))
    }

    /// The topology this coordinator serves.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The per-shard handles, in shard order.
    pub fn handles(&self) -> &[RemoteShardHandle] {
        &self.handles
    }

    /// The per-shard fault counters, in shard order.
    pub fn shard_faults(&self) -> &[Arc<ShardFaults>] {
        &self.faults
    }

    /// Re-pins every shard's latest snapshot (in parallel) so a request
    /// reads one consistent cut; returns the pins in shard order.
    fn refresh_pins(&self) -> io::Result<Vec<PinReply>> {
        scatter(&self.handles, |_, h| {
            h.repin().map_err(|e| match e {
                ClientError::Io(io) => io,
                other => io::Error::other(other.to_string()),
            })
        })
    }

    /// Wraps an `io::Result` dispatch arm: a shard marked unavailable
    /// turns into the typed `SHARD_UNAVAILABLE` response naming it; any
    /// other error stays a plain server error.
    fn fail(&self, what: &str, e: io::Error) -> Response {
        for handle in &self.handles {
            if let Some(msg) = handle.unavailable() {
                return Response::ShardUnavailable(handle.shard(), msg);
            }
        }
        Response::Err(format!("{what} failed: {e}"))
    }

    /// Scatter-gather batched counting over one fresh pin per shard.
    /// Returns `(supports, epoch, rows)` like the local router: epoch is
    /// the per-shard sum (monotonic under any shard commit), rows the
    /// total across shards.
    pub fn count_many(&self, itemsets: &[Vec<u32>]) -> io::Result<(Vec<u64>, u64, u64)> {
        let start = Instant::now();
        let pins = self.refresh_pins()?;
        let epoch: u64 = pins.iter().map(|p| p.epoch).sum();
        let rows: u64 = pins.iter().map(|p| p.rows).sum();
        let sets: Vec<Itemset> = itemsets
            .iter()
            .map(|items| Itemset::from_values(items))
            .collect();
        let supports = count_many_sharded(&self.handles, &sets, None)?;
        let hist = if itemsets.len() == 1 {
            &self.scatter.count
        } else {
            &self.scatter.count_many
        };
        hist.record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        Ok((supports, epoch, rows))
    }

    /// Routes a batch: partition by TID residue, forward each sub-batch
    /// with the client's request ID, merge per-shard receipts (any
    /// failure wins by severity).
    fn insert(&self, req_id: u64, txns: &[(u64, Vec<u32>)]) -> Response {
        let start = Instant::now();
        if self.is_draining() {
            self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
            return Response::Overloaded;
        }
        if txns.is_empty() {
            return match self.refresh_pins() {
                Ok(pins) => Response::Ok(Reply::Insert {
                    first_row: pins.iter().map(|p| p.rows).sum(),
                    appended: 0,
                    epoch: pins.iter().map(|p| p.epoch).sum(),
                    deduped: false,
                }),
                Err(e) => self.fail("insert", e),
            };
        }
        let n = self.topology.shards;
        let mut parts: Vec<Vec<(u64, Vec<u32>)>> = vec![Vec::new(); n];
        for (tid, items) in txns {
            parts[route(*tid, n)].push((*tid, items.clone()));
        }
        type Batch = Vec<(u64, Vec<u32>)>;
        let jobs: Vec<(usize, Batch)> = parts
            .into_iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .collect();
        let outcomes = scatter(&jobs, |_, (shard, part)| {
            Ok((*shard, self.handles[*shard].insert_with_id(req_id, part)))
        })
        .expect("insert scatter is infallible");
        let resp = self.merge_inserts(outcomes);
        self.scatter
            .insert
            .record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        resp
    }

    /// Merges per-shard insert results into one receipt.  Mirrors the
    /// local router: all-committed sums rows (deduped only when every
    /// sub-batch deduped); otherwise the worst failure wins, ranked
    /// `unreachable > server error > disk full > not-primary >
    /// overloaded`, with an unreachable shard surfacing as the typed
    /// `SHARD_UNAVAILABLE` response.
    fn merge_inserts(
        &self,
        outcomes: Vec<(usize, Result<bbs_server::InsertReply, ClientError>)>,
    ) -> Response {
        let mut first_row = None;
        let mut appended = 0u64;
        let mut epoch = 0u64;
        let mut deduped = true;
        let mut worst: Option<(u8, Response)> = None;
        let bump = |rank: u8, resp: Response, worst: &mut Option<(u8, Response)>| {
            if worst.as_ref().is_none_or(|(r, _)| rank > *r) {
                *worst = Some((rank, resp));
            }
        };
        for (shard, outcome) in outcomes {
            match outcome {
                Ok(reply) => {
                    if first_row.is_none() {
                        first_row = Some(reply.first_row);
                    }
                    appended += reply.appended;
                    epoch = epoch.max(reply.epoch);
                    deduped &= reply.deduped;
                }
                Err(ClientError::Overloaded) => bump(1, Response::Overloaded, &mut worst),
                Err(ClientError::NotPrimary(addr)) => {
                    bump(2, Response::NotPrimary(addr), &mut worst)
                }
                Err(ClientError::DiskFull) => bump(3, Response::DiskFull, &mut worst),
                Err(e @ (ClientError::Server(_) | ClientError::Protocol(_))) => bump(
                    4,
                    Response::Err(format!("shard {shard}: {e}")),
                    &mut worst,
                ),
                Err(e) => bump(
                    5,
                    Response::ShardUnavailable(shard as u32, format!("shard {shard}: {e}")),
                    &mut worst,
                ),
            }
        }
        if let Some((_, resp)) = worst {
            return resp;
        }
        Response::Ok(Reply::Insert {
            first_row: first_row.unwrap_or(0),
            appended,
            epoch,
            deduped,
        })
    }

    /// Routes a tombstone delete: partition the TIDs by residue, forward
    /// each partition with the client's request ID, merge per-shard
    /// receipts exactly like inserts (any failure wins by severity, an
    /// unreachable shard surfaces as `SHARD_UNAVAILABLE`).
    fn delete(&self, req_id: u64, tids: &[u64]) -> Response {
        let start = Instant::now();
        if self.is_draining() {
            self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
            return Response::Overloaded;
        }
        if tids.is_empty() {
            return match self.refresh_pins() {
                Ok(pins) => Response::Ok(Reply::Delete {
                    deleted: 0,
                    epoch: pins.iter().map(|p| p.epoch).sum(),
                    deduped: false,
                }),
                Err(e) => self.fail("delete", e),
            };
        }
        let n = self.topology.shards;
        let mut parts: Vec<Vec<u64>> = vec![Vec::new(); n];
        for &tid in tids {
            parts[route(tid, n)].push(tid);
        }
        let jobs: Vec<(usize, Vec<u64>)> = parts
            .into_iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .collect();
        let outcomes = scatter(&jobs, |_, (shard, part)| {
            Ok((*shard, self.handles[*shard].delete_with_id(req_id, part)))
        })
        .expect("delete scatter is infallible");
        let resp = self.merge_deletes(outcomes);
        self.scatter
            .insert
            .record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        resp
    }

    /// Merges per-shard delete receipts — the same severity ladder as
    /// [`CoordinatorEngine::merge_inserts`], with tombstone counts summed
    /// and `deduped` only when every shard answered from its window.
    fn merge_deletes(&self, outcomes: Vec<(usize, Result<DeleteReply, ClientError>)>) -> Response {
        let mut deleted = 0u64;
        let mut epoch = 0u64;
        let mut deduped = true;
        let mut worst: Option<(u8, Response)> = None;
        let bump = |rank: u8, resp: Response, worst: &mut Option<(u8, Response)>| {
            if worst.as_ref().is_none_or(|(r, _)| rank > *r) {
                *worst = Some((rank, resp));
            }
        };
        for (shard, outcome) in outcomes {
            match outcome {
                Ok(reply) => {
                    deleted += reply.deleted;
                    epoch = epoch.max(reply.epoch);
                    deduped &= reply.deduped;
                }
                Err(ClientError::Overloaded) => bump(1, Response::Overloaded, &mut worst),
                Err(ClientError::NotPrimary(addr)) => {
                    bump(2, Response::NotPrimary(addr), &mut worst)
                }
                Err(ClientError::DiskFull) => bump(3, Response::DiskFull, &mut worst),
                Err(e @ (ClientError::Server(_) | ClientError::Protocol(_))) => bump(
                    4,
                    Response::Err(format!("shard {shard}: {e}")),
                    &mut worst,
                ),
                Err(e) => bump(
                    5,
                    Response::ShardUnavailable(shard as u32, format!("shard {shard}: {e}")),
                    &mut worst,
                ),
            }
        }
        if let Some((_, resp)) = worst {
            return resp;
        }
        Response::Ok(Reply::Delete {
            deleted,
            epoch,
            deduped,
        })
    }

    /// Fans one maintenance action out to every shard and merges the
    /// health reports: row counts sum, the reported width and FPR are
    /// the worst shard's, and the action echoed is the most consequential
    /// any shard took.  Note that widened compactions and folds change a
    /// shard's width: the topology's `width` stays what it was at
    /// connect, but counting and mining remain correct because per-shard
    /// estimates are served by each shard's own live files and the mine
    /// path rebuilds indexes from raw rows — only a *new* coordinator
    /// connecting against the stale topology width will be refused until
    /// the topology file is updated.
    fn maintain(&self, action: u8, arg: u64) -> Response {
        let outcomes = scatter(&self.handles, |shard, h| {
            Ok((shard, h.maintain(action, arg)))
        })
        .expect("maintain scatter is infallible");
        let mut merged: Option<MaintainReply> = None;
        for (shard, outcome) in outcomes {
            match outcome {
                Ok(reply) => {
                    let m = merged.get_or_insert(MaintainReply {
                        action_taken: 0,
                        width: 0,
                        live_rows: 0,
                        deleted_rows: 0,
                        fpr: 0.0,
                    });
                    m.action_taken = m.action_taken.max(reply.action_taken);
                    m.width = m.width.max(reply.width);
                    m.live_rows += reply.live_rows;
                    m.deleted_rows += reply.deleted_rows;
                    if reply.fpr > m.fpr {
                        m.fpr = reply.fpr;
                    }
                }
                Err(e) if matches!(e, ClientError::Server(_) | ClientError::Protocol(_)) => {
                    return Response::Err(format!("shard {shard}: {e}"));
                }
                Err(ClientError::NotPrimary(addr)) => return Response::NotPrimary(addr),
                Err(e) => {
                    self.faults[shard].scatter_errors.fetch_add(1, Ordering::Relaxed);
                    return Response::ShardUnavailable(
                        shard as u32,
                        format!("shard {shard}: {e}"),
                    );
                }
            }
        }
        match merged {
            Some(m) => Response::Ok(Reply::Maintain {
                action_taken: m.action_taken,
                width: m.width,
                live_rows: m.live_rows,
                deleted_rows: m.deleted_rows,
                fpr_bits: m.fpr.to_bits(),
            }),
            None => Response::Err("maintain: topology has no shards".into()),
        }
    }

    /// Distributed mining: pin every shard, pull each shard's pinned
    /// rows, rebuild the per-shard index locally, and run the same
    /// global-support-merge path the local shard router runs — candidate
    /// subtrees dealt across workers, per-candidate supports merged
    /// across shards before any prune decision, uncertain candidates
    /// refined with one scan per shard.
    pub fn mine(
        &self,
        scheme: Scheme,
        threshold: SupportThreshold,
        threads: usize,
    ) -> io::Result<(MineResult, u64, u64)> {
        let start = Instant::now();
        let threads = if threads == 0 {
            bbs_server::resolve_threads(self.mine_threads)
        } else {
            threads
        };
        let hasher = hasher_for_id(&self.topology.hasher).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "cannot mine through hasher {:?}: no local construction for this identity",
                    self.topology.hasher
                ),
            )
        })?;
        let pins = self.refresh_pins()?;
        let epoch: u64 = pins.iter().map(|p| p.epoch).sum();

        // Pull every shard's pinned rows (in parallel) and rebuild its
        // transaction store + index locally.
        let loaded: Vec<(TransactionDb, bbs_core::Bbs)> = scatter(&self.handles, |_, h| {
            let rows = h.pull_rows().map_err(|e| match e {
                ClientError::Io(io) => io,
                other => io::Error::other(other.to_string()),
            })?;
            let mut db = TransactionDb::new();
            let mut bbs = bbs_core::Bbs::new(self.topology.width, Arc::clone(&hasher));
            let mut stats = IoStats::new();
            for (tid, items) in rows {
                let txn = Transaction::new(tid, Itemset::from_values(&items));
                bbs.insert(&txn, &mut stats);
                db.push(txn);
            }
            Ok((db, bbs))
        })?;
        let shard_rows: Vec<u64> = loaded.iter().map(|(db, _)| db.len() as u64).collect();
        let rows: u64 = shard_rows.iter().sum();
        let tau = threshold.resolve(rows as usize);

        // Global vocabulary and exact singleton supports: per-shard sums
        // over the disjoint TID partition equal the unsharded values.
        let mut actuals: HashMap<ItemId, u64> = HashMap::new();
        for (_, bbs) in &loaded {
            for item in bbs.vocabulary() {
                *actuals.entry(item).or_insert(0) += bbs.actual_singleton_count(item);
            }
        }
        let mut vocab: Vec<ItemId> = actuals.keys().copied().collect();
        vocab.sort_unstable();

        let make_source = || {
            Ok(ShardedCounter::new(
                loaded.iter().map(|(_, bbs)| MemShard { bbs }).collect(),
                shard_rows.clone(),
            ))
        };
        let filter_out = bbs_core::run_filter_source_threaded(
            make_source,
            &vocab,
            &actuals,
            rows,
            scheme.filter(),
            tau,
            threads,
        )?;

        let mut result = MineResult::default();
        result.stats.candidates = filter_out.stats.candidates;
        result.stats.false_drops = filter_out.stats.false_drops;
        result.stats.certified = filter_out.stats.certified;
        result.stats.bbs_counts = filter_out.stats.bbs_counts;
        result.stats.io.merge(&filter_out.stats.io);
        result.patterns.extend_from(&filter_out.frequent);
        for (items, count) in filter_out.approx.iter() {
            result.patterns.insert(items.clone(), count);
            result.approx_supports.insert(items.clone());
        }

        if !filter_out.uncertain.is_empty() {
            let cands: Vec<Itemset> = filter_out
                .uncertain
                .iter()
                .map(|(items, _)| items.clone())
                .collect();
            let per_shard = scatter(&loaded, |_, (db, _)| {
                let mut counts = vec![0u64; cands.len()];
                for txn in db.transactions() {
                    for (items, count) in cands.iter().zip(counts.iter_mut()) {
                        if items.is_subset_of(&txn.items) {
                            *count += 1;
                        }
                    }
                }
                Ok(counts)
            })?;
            for (k, items) in cands.into_iter().enumerate() {
                let count: u64 = per_shard.iter().map(|c| c[k]).sum();
                if count >= tau {
                    result.patterns.insert(items, count);
                } else {
                    result.stats.false_drops += 1;
                }
            }
        }
        self.scatter
            .mine
            .record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        Ok((result, epoch, rows))
    }

    /// Probes one row of the concatenated row space (shard 0's pinned
    /// rows first, then shard 1's, …), like the local router.
    pub fn probe(&self, row: u64) -> io::Result<Option<(u64, Vec<u32>)>> {
        let start = Instant::now();
        let pins = self.refresh_pins()?;
        let mut local = row;
        let mut found = Ok(None);
        for (handle, pin) in self.handles.iter().zip(&pins) {
            if local < pin.rows {
                found = handle
                    .pull_row_at(pin.epoch, local)
                    .map_err(|e| match e {
                        ClientError::Io(io) => io,
                        other => io::Error::other(other.to_string()),
                    });
                break;
            }
            local -= pin.rows;
        }
        self.scatter
            .probe
            .record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        found
    }

    /// Renders the stats document: wire metrics plus distributed
    /// topology — shard count, per-shard rows and addresses, the
    /// scatter-gather latency histograms, and the per-shard fault
    /// counters (`scatter_errors` / `timeouts` / `failovers`).
    pub fn stats_json(&self) -> String {
        let pins: Vec<PinReply> = self
            .handles
            .iter()
            .map(|h| {
                h.pin().unwrap_or(PinReply {
                    epoch: 0,
                    rows: 0,
                    width: 0,
                    hasher: String::new(),
                })
            })
            .collect();
        let shard_rows: Vec<String> = pins.iter().map(|p| p.rows.to_string()).collect();
        let shard_width: Vec<String> = pins.iter().map(|p| p.width.to_string()).collect();
        let shard_addrs: Vec<String> = self
            .handles
            .iter()
            .map(|h| format!("\"{}\"", h.addr()))
            .collect();
        let mut extra = vec![
            "\"coordinator\":true".to_string(),
            format!("\"topology_version\":{}", self.topology.version),
            format!("\"shards\":{}", self.topology.shards),
            format!("\"width\":{}", self.topology.width),
            format!("\"rows\":{}", pins.iter().map(|p| p.rows).sum::<u64>()),
            format!("\"epoch\":{}", pins.iter().map(|p| p.epoch).sum::<u64>()),
            format!("\"shard_rows\":[{}]", shard_rows.join(",")),
            format!("\"shard_addrs\":[{}]", shard_addrs.join(",")),
            format!("\"shard_width\":[{}]", shard_width.join(",")),
            format!("\"scatter_us\":{}", self.scatter.to_json()),
            format!("\"draining\":{}", self.is_draining()),
        ];
        extra.extend(ShardFaults::to_json_arrays(&self.faults));
        self.metrics.to_json(&extra)
    }

    fn dispatch(&self, req: &Request) -> Response {
        match req {
            Request::Ping => Response::Ok(Reply::Pong),
            Request::Count { items } => {
                match self.count_many(std::slice::from_ref(items)) {
                    Ok((supports, epoch, rows)) => Response::Ok(Reply::Count {
                        support: supports[0],
                        epoch,
                        rows,
                    }),
                    Err(e) => self.fail("count", e),
                }
            }
            Request::CountMany { itemsets } => {
                let work: usize = itemsets.iter().map(|s| s.len().max(1)).sum();
                if work > COUNT_MANY_MAX_WORK {
                    self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
                    return Response::Overloaded;
                }
                self.metrics
                    .count_many_batch
                    .record(itemsets.len() as u64);
                match self.count_many(itemsets) {
                    Ok((supports, epoch, rows)) => Response::Ok(Reply::CountMany {
                        supports,
                        epoch,
                        rows,
                    }),
                    Err(e) => self.fail("count_many", e),
                }
            }
            Request::Insert { req_id, txns } => self.insert(*req_id, txns),
            Request::Delete { req_id, tids } => self.delete(*req_id, tids),
            Request::Maintain { action, arg } => self.maintain(*action, *arg),
            Request::Mine {
                scheme,
                threshold,
                threads,
            } => match self.mine(*scheme, *threshold, usize::from(*threads)) {
                Ok((result, epoch, rows)) => {
                    let mut patterns: Vec<(Vec<u32>, u64, bool)> = result
                        .patterns
                        .sorted()
                        .into_iter()
                        .map(|p| {
                            let approx = result.approx_supports.contains(&p.items);
                            let items = p.items.items().iter().map(|i| i.0).collect();
                            (items, p.support, approx)
                        })
                        .collect();
                    patterns.sort();
                    Response::Ok(Reply::Mine {
                        epoch,
                        rows,
                        patterns,
                    })
                }
                Err(e) => self.fail("mine", e),
            },
            Request::Probe { row } => match self.probe(*row) {
                Ok(txn) => Response::Ok(Reply::Probe { txn }),
                Err(e) => self.fail("probe", e),
            },
            Request::Stats => Response::Ok(Reply::Stats {
                json: self.stats_json(),
            }),
            Request::Shutdown => {
                self.begin_drain();
                Response::Ok(Reply::ShuttingDown)
            }
            Request::Replicate { .. } | Request::Promote => Response::Err(
                "replication endpoints are not served by a coordinator; address the shard \
                 servers directly"
                    .into(),
            ),
            Request::SnapshotPin | Request::CountManyAt { .. } | Request::Rows { .. } => {
                Response::Err(
                    "snapshot pins are not served by a coordinator; pin each shard server \
                     individually"
                        .into(),
                )
            }
        }
    }
}

impl RequestHandler for CoordinatorEngine {
    fn handle(&self, req: &Request) -> Response {
        let start = Instant::now();
        let opcode = req.opcode();
        if let Some(ep) = self.metrics.endpoint(opcode) {
            ep.requests.fetch_add(1, Ordering::Relaxed);
        }
        let resp = self.dispatch(req);
        if let Some(ep) = self.metrics.endpoint(opcode) {
            ep.latency_us
                .record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            if matches!(resp, Response::Err(_) | Response::ShardUnavailable(_, _)) {
                ep.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        resp
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    fn begin_drain(&self) {
        // Draining a coordinator stops *it* from admitting requests; the
        // shard servers keep running (other coordinators or operators
        // may still be using them).
        self.draining.store(true, Ordering::Release);
    }

    fn join(&self) {
        self.begin_drain();
    }

    fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }
}

/// An in-memory per-shard counter for the distributed mine path: exact
/// per-shard BBS estimates (an exact answer satisfies every τ budget),
/// so cross-shard sums are exactly the global estimates.
struct MemShard<'a> {
    bbs: &'a bbs_core::Bbs,
}

impl bbs_shard::ShardCounter for MemShard<'_> {
    fn count(&mut self, itemset: &Itemset, _tau: Option<u64>) -> io::Result<u64> {
        let mut io = IoStats::new();
        Ok(self.bbs.est_count(itemset, &mut io))
    }

    fn count_extensions(
        &mut self,
        prefix: &Itemset,
        extensions: &[ItemId],
        _tau: Option<u64>,
    ) -> io::Result<Vec<u64>> {
        let mut io = IoStats::new();
        Ok(extensions
            .iter()
            .map(|&e| self.bbs.est_count(&prefix.with_item(e), &mut io))
            .collect())
    }
}
