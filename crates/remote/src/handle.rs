//! [`RemoteShardHandle`]: one shard of a distributed deployment, reached
//! over the wire protocol.
//!
//! The handle implements the same [`ShardHandle`]/[`ShardCounter`] seam a
//! local shard does, so the gather layer (`bbs_shard::gather`, with its
//! scaled-τ cross-shard scheme) runs unchanged over remote nodes.  Under
//! the hood every call goes through a [`RetryClient`] — per-request
//! timeouts, capped exponential backoff with jitter, reconnect after
//! transport failures — and counting runs against a **pinned epoch** so
//! the τ scheme's re-queries patch the same snapshot the first pass
//! scattered over.
//!
//! # Failure model
//!
//! Three layers, from inside out:
//!
//! 1. **Transient faults** (dropped connection, timeout, overload) are
//!    retried by the [`RetryClient`] with backoff; idempotent reads are
//!    always safe to re-send, and inserts reuse their request ID so the
//!    shard's exactly-once window answers a retry of a committed batch
//!    with its original receipt.
//! 2. **Stale pins** (the shard evicted our pinned snapshot) come back as
//!    a typed error; the handle re-pins the latest snapshot and retries
//!    once.
//! 3. **Primary loss** (the retry budget exhausted on transport errors)
//!    triggers **replica failover** when the topology names a follower:
//!    the handle promotes the follower, re-points itself at it, re-pins,
//!    and retries the call once.  Without a follower — or if the follower
//!    is also unreachable — the handle records itself *unavailable* with
//!    a message naming the shard, which the coordinator surfaces as a
//!    typed `SHARD_UNAVAILABLE` response instead of a silently-wrong
//!    partial total.

use bbs_server::{
    maintain_action, ClientError, ClientResult, DeleteReply, InsertReply, MaintainReply, PinReply,
    RetryClient, RetryPolicy, ServerAddr, ShardFaults,
};
use bbs_shard::{ShardCounter, ShardHandle};
use bbs_tdb::{ItemId, Itemset};
use std::io;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Connection knobs for one remote shard.
#[derive(Debug, Clone)]
pub struct RemoteOptions {
    /// Bound on any single request's wait for its response frame.
    pub timeout: Duration,
    /// Retry/backoff schedule for transient faults.
    pub policy: RetryPolicy,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        RemoteOptions {
            timeout: Duration::from_secs(5),
            policy: RetryPolicy::default(),
        }
    }
}

struct Inner {
    client: RetryClient,
    addr: String,
    follower: Option<String>,
    pin: Option<PinReply>,
}

impl Inner {
    fn dial(addr: &str, opts: &RemoteOptions) -> RetryClient {
        let mut client = RetryClient::with_policy(ServerAddr::Tcp(addr.to_string()), opts.policy);
        client.set_timeout(Some(opts.timeout));
        client
    }
}

/// One shard of a distributed deployment, addressed over TCP.
pub struct RemoteShardHandle {
    shard: u32,
    opts: RemoteOptions,
    faults: Arc<ShardFaults>,
    inner: Mutex<Inner>,
    unavailable: Mutex<Option<String>>,
}

impl RemoteShardHandle {
    /// Connects to the shard's primary and pins its latest snapshot.
    /// The returned pin carries the width/hasher identity the caller
    /// (the coordinator) validates against the topology.
    pub fn connect(
        shard: u32,
        primary: &str,
        follower: Option<&str>,
        opts: RemoteOptions,
        faults: Arc<ShardFaults>,
    ) -> io::Result<RemoteShardHandle> {
        let handle = RemoteShardHandle {
            shard,
            opts: opts.clone(),
            faults,
            inner: Mutex::new(Inner {
                client: Inner::dial(primary, &opts),
                addr: primary.to_string(),
                follower: follower.map(str::to_string),
                pin: None,
            }),
            unavailable: Mutex::new(None),
        };
        handle.repin().map_err(|e| {
            io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("shard {shard} at {primary}: {e}"),
            )
        })?;
        Ok(handle)
    }

    /// The shard ordinal this handle serves.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The address currently serving this shard (the follower's after a
    /// failover).
    pub fn addr(&self) -> String {
        self.lock().addr.clone()
    }

    /// The snapshot pin operations currently run against.
    pub fn pin(&self) -> Option<PinReply> {
        self.lock().pin.clone()
    }

    /// The message recorded when this shard became unreachable, if any
    /// (cleared by the next successful call).
    pub fn unavailable(&self) -> Option<String> {
        self.unavailable.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn set_unavailable(&self, msg: Option<String>) {
        *self.unavailable.lock().unwrap_or_else(|e| e.into_inner()) = msg;
    }

    /// True when an error means the server stopped answering (as opposed
    /// to answering with a rejection): the retry budget drained on the
    /// transport itself, so failover is the only move left.
    fn is_transport(e: &ClientError) -> bool {
        matches!(e, ClientError::Io(_) | ClientError::BadFrame(_))
    }

    fn note_fault(&self, e: &ClientError) {
        let timed_out = matches!(
            e,
            ClientError::Io(io) if matches!(io.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock)
        );
        if timed_out {
            self.faults.timeouts.fetch_add(1, Ordering::Relaxed);
        } else {
            self.faults.scatter_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Promotes the follower and re-points this handle at it.  The old
    /// primary is abandoned (it is presumed dead; if it comes back it
    /// will answer `NotPrimary` readers and can be re-seeded as a new
    /// follower out of band).
    fn failover(&self, inner: &mut Inner) -> ClientResult<()> {
        let follower = inner.follower.take().ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                format!("shard {} has no follower to fail over to", self.shard),
            ))
        })?;
        let mut client = Inner::dial(&follower, &self.opts);
        client.promote().map_err(|e| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                format!(
                    "shard {}: follower {follower} did not take over: {e}",
                    self.shard
                ),
            ))
        })?;
        inner.client = client;
        inner.addr = follower;
        inner.pin = None;
        self.faults.failovers.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Runs `f` against the current connection; on transport exhaustion,
    /// fails over to the follower (when one exists) and retries once.
    /// Success clears the unavailable marker; a dead end records it.
    fn call<T>(&self, f: impl Fn(&mut RetryClient) -> ClientResult<T>) -> ClientResult<T> {
        let mut inner = self.lock();
        let first = f(&mut inner.client);
        let outcome = match first {
            Err(e) if Self::is_transport(&e) => {
                self.note_fault(&e);
                match self.failover(&mut inner) {
                    Ok(()) => {
                        // The pin died with the old primary; restore one
                        // before retrying a pinned read.
                        match Self::pin_inner(&mut inner) {
                            Ok(()) => f(&mut inner.client),
                            Err(pe) => Err(pe),
                        }
                    }
                    Err(fe) => {
                        // Keep the original story: the primary went
                        // silent, and this is why.
                        Err(ClientError::Io(io::Error::new(
                            io::ErrorKind::NotConnected,
                            format!("primary unreachable ({e}); {fe}"),
                        )))
                    }
                }
            }
            other => other,
        };
        match outcome {
            Ok(v) => {
                self.set_unavailable(None);
                Ok(v)
            }
            Err(e) => {
                if Self::is_transport(&e) {
                    self.set_unavailable(Some(format!("shard {}: {e}", self.shard)));
                }
                Err(e)
            }
        }
    }

    fn pin_inner(inner: &mut Inner) -> ClientResult<()> {
        let pin = inner.client.snapshot_pin()?;
        inner.pin = Some(pin);
        Ok(())
    }

    /// Pins the shard's latest snapshot; subsequent counts and row pulls
    /// answer from it.  Returns the new pin.
    pub fn repin(&self) -> ClientResult<PinReply> {
        self.call(|c| c.snapshot_pin()).inspect(|pin| {
            self.lock().pin = Some(pin.clone());
        })
    }

    /// Inserts this shard's partition of a batch, reusing the caller's
    /// request ID so exactly-once composes end-to-end: a coordinator
    /// retry re-sends the same ID and the shard's window answers with
    /// the original receipt.
    pub fn insert_with_id(
        &self,
        req_id: u64,
        txns: &[(u64, Vec<u32>)],
    ) -> ClientResult<InsertReply> {
        self.call(|c| c.insert_with_id(req_id, txns))
    }

    /// Tombstones this shard's partition of a delete batch, reusing the
    /// caller's request ID — the same exactly-once composition as
    /// inserts: a coordinator retry re-sends the same ID and the shard's
    /// window answers with the original receipt.
    pub fn delete_with_id(&self, req_id: u64, tids: &[u64]) -> ClientResult<DeleteReply> {
        self.call(|c| c.delete_with_id(req_id, tids))
    }

    /// Runs one maintenance action on the shard and returns its health
    /// report.  Compaction and folds swap the shard's snapshot (the
    /// server evicts every pin), so any action that may rewrite files
    /// drops the local pin — the next pinned read re-pins the post-swap
    /// snapshot instead of burning its one stale-pin retry.
    pub fn maintain(&self, action: u8, arg: u64) -> ClientResult<MaintainReply> {
        let out = self.call(|c| c.maintain(action, arg));
        if out.is_ok() && action != maintain_action::PROBE_FPR {
            self.lock().pin = None;
        }
        out
    }

    /// Batched counting against the current pin, re-pinning once if the
    /// shard evicted it.  The heart of the remote [`ShardHandle`].
    pub fn count_many_pinned(
        &self,
        itemsets: &[Vec<u32>],
        tau: Option<u64>,
    ) -> ClientResult<Vec<u64>> {
        for _ in 0..2 {
            let epoch = match self.pin() {
                Some(pin) => pin.epoch,
                None => self.repin()?.epoch,
            };
            match self.call(|c| c.count_many_at(epoch, itemsets, tau)) {
                Ok(reply) => return Ok(reply.supports),
                Err(ClientError::Server(msg)) if msg.starts_with("stale pin") => {
                    self.repin()?;
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::Protocol(format!(
            "shard {}: pin went stale twice in a row",
            self.shard
        )))
    }

    /// Pulls one row of the pinned snapshot (`None` past the end) — the
    /// remote leg of a coordinator probe.
    pub fn pull_row_at(&self, epoch: u64, row: u64) -> ClientResult<Option<(u64, Vec<u32>)>> {
        let reply = self.call(|c| c.rows(epoch, row, 1))?;
        Ok(reply.txns.into_iter().next())
    }

    /// Pulls every transaction of the current pin, in row order, chunked
    /// under the server's per-reply row and byte budgets.
    pub fn pull_rows(&self) -> ClientResult<Vec<(u64, Vec<u32>)>> {
        const CHUNK: u32 = 8192;
        let mut txns: Vec<(u64, Vec<u32>)> = Vec::new();
        loop {
            let epoch = match self.pin() {
                Some(pin) => pin.epoch,
                None => self.repin()?.epoch,
            };
            let from = txns.len() as u64;
            match self.call(|c| c.rows(epoch, from, CHUNK)) {
                Ok(reply) => {
                    if txns.is_empty() && reply.total == 0 {
                        return Ok(txns);
                    }
                    if reply.txns.is_empty() && from < reply.total {
                        return Err(ClientError::Protocol(format!(
                            "shard {}: empty rows reply at {from}/{}",
                            self.shard, reply.total
                        )));
                    }
                    txns.extend(reply.txns);
                    if txns.len() as u64 >= reply.total {
                        return Ok(txns);
                    }
                }
                Err(ClientError::Server(msg)) if msg.starts_with("stale pin") => {
                    // The pin died (eviction or failover): re-pin and
                    // restart the pull — a half-pulled row set from one
                    // snapshot must not be extended from another.
                    self.repin()?;
                    txns.clear();
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Converts a wire-layer error into the `io::Result` seam the gather
/// layer speaks.
fn to_io(e: ClientError) -> io::Error {
    match e {
        ClientError::Io(io) => io,
        other => io::Error::other(other.to_string()),
    }
}

impl ShardHandle for RemoteShardHandle {
    fn rows(&self) -> u64 {
        self.pin().map(|p| p.rows).unwrap_or(0)
    }

    fn count_many(&self, itemsets: &[Itemset], tau: Option<u64>) -> io::Result<Vec<u64>> {
        let sets: Vec<Vec<u32>> = itemsets
            .iter()
            .map(|s| s.items().iter().map(|i| i.0).collect())
            .collect();
        self.count_many_pinned(&sets, tau).map_err(to_io)
    }
}

impl ShardCounter for &RemoteShardHandle {
    fn count(&mut self, itemset: &Itemset, tau: Option<u64>) -> io::Result<u64> {
        let counts = ShardHandle::count_many(*self, std::slice::from_ref(itemset), tau)?;
        Ok(counts[0])
    }

    fn count_extensions(
        &mut self,
        prefix: &Itemset,
        extensions: &[ItemId],
        tau: Option<u64>,
    ) -> io::Result<Vec<u64>> {
        let sets: Vec<Itemset> = extensions.iter().map(|&e| prefix.with_item(e)).collect();
        ShardHandle::count_many(*self, &sets, tau)
    }
}
