//! The `TOPOLOGY` manifest: which address serves which shard.
//!
//! A distributed deployment is described by one JSON file the coordinator
//! reads at startup.  It pins the same parameters the on-disk `MANIFEST`
//! pins for a local sharded directory — shard count, signature width —
//! plus the hash-family identity and one network node per shard:
//!
//! ```json
//! {
//!   "version": 1,
//!   "shards": 2,
//!   "width": 1600,
//!   "hasher": "md5/4",
//!   "nodes": [
//!     { "id": 0, "primary": "127.0.0.1:7001", "follower": "127.0.0.1:7101" },
//!     { "id": 1, "primary": "127.0.0.1:7002" }
//!   ]
//! }
//! ```
//!
//! The pinned `width`/`hasher` pair is what makes the scatter-gather
//! sums trustworthy: per-shard AND+popcount estimates only sum to the
//! unsharded answer when every shard hashes items to the same slices.
//! At connect time the coordinator checks each shard server's actual
//! width and hasher (reported by the `snapshot_pin` frame) against the
//! topology and refuses to serve on any disagreement, naming both values.
//!
//! The parser is a strict, dependency-free JSON subset: objects, arrays,
//! strings (with the standard escapes), and non-negative integers —
//! exactly what a topology needs.  Unknown object keys are rejected, not
//! ignored, so a typo'd `"folower"` fails loudly at startup instead of
//! silently disabling failover.

use std::fmt;
use std::io;
use std::path::Path;

/// Topology format version this build reads and writes.
pub const TOPOLOGY_VERSION: u32 = 1;

/// One shard's network placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Shard ordinal this node serves (`tid mod shards == id`).
    pub id: u32,
    /// The primary server's TCP `host:port` address.
    pub primary: String,
    /// Optional replication follower the coordinator fails over to when
    /// the primary goes silent.
    pub follower: Option<String>,
}

/// A distributed deployment's shard map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Topology format version.
    pub version: u32,
    /// Number of shards (the TID routing modulus).
    pub shards: usize,
    /// Signature width every shard must serve.
    pub width: usize,
    /// Identity of the item-hash family every shard must use
    /// (e.g. `md5/4`; see `bbs_hash::ItemHasher::id`).
    pub hasher: String,
    /// One node per shard, in shard order.
    pub nodes: Vec<NodeSpec>,
}

impl Topology {
    /// Reads and validates a topology file.
    pub fn read(path: &Path) -> io::Result<Topology> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        Self::parse(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }

    /// Parses and validates a topology document.
    pub fn parse(text: &str) -> Result<Topology, String> {
        let value = Json::parse(text)?;
        let obj = value.object("topology")?;
        let mut version = None;
        let mut shards = None;
        let mut width = None;
        let mut hasher = None;
        let mut nodes = None;
        for (key, val) in obj {
            match key.as_str() {
                "version" => version = Some(val.number("version")? as u32),
                "shards" => shards = Some(val.number("shards")? as usize),
                "width" => width = Some(val.number("width")? as usize),
                "hasher" => hasher = Some(val.string("hasher")?),
                "nodes" => {
                    let mut parsed = Vec::new();
                    for (i, node) in val.array("nodes")?.iter().enumerate() {
                        parsed.push(Self::parse_node(node, i)?);
                    }
                    nodes = Some(parsed);
                }
                other => return Err(format!("unknown topology key {other:?}")),
            }
        }
        let topology = Topology {
            version: version.ok_or("missing \"version\"")?,
            shards: shards.ok_or("missing \"shards\"")?,
            width: width.ok_or("missing \"width\"")?,
            hasher: hasher.ok_or("missing \"hasher\"")?,
            nodes: nodes.ok_or("missing \"nodes\"")?,
        };
        topology.validate()?;
        Ok(topology)
    }

    fn parse_node(value: &Json, index: usize) -> Result<NodeSpec, String> {
        let obj = value.object(&format!("nodes[{index}]"))?;
        let mut id = None;
        let mut primary = None;
        let mut follower = None;
        for (key, val) in obj {
            match key.as_str() {
                "id" => id = Some(val.number("id")? as u32),
                "primary" => primary = Some(val.string("primary")?),
                "follower" => follower = Some(val.string("follower")?),
                other => return Err(format!("nodes[{index}]: unknown key {other:?}")),
            }
        }
        Ok(NodeSpec {
            id: id.ok_or_else(|| format!("nodes[{index}]: missing \"id\""))?,
            primary: primary.ok_or_else(|| format!("nodes[{index}]: missing \"primary\""))?,
            follower,
        })
    }

    fn validate(&self) -> Result<(), String> {
        if self.version != TOPOLOGY_VERSION {
            return Err(format!(
                "unsupported topology version {} (this build reads version {TOPOLOGY_VERSION})",
                self.version
            ));
        }
        if self.shards == 0 {
            return Err("a topology needs at least 1 shard".into());
        }
        if self.shards > bbs_shard::MAX_SHARDS {
            return Err(format!(
                "{} shards exceeds the routing width ({} shards max)",
                self.shards,
                bbs_shard::MAX_SHARDS
            ));
        }
        if self.width == 0 {
            return Err("signature width must be nonzero".into());
        }
        if self.hasher.is_empty() {
            return Err("hasher identity must be nonempty".into());
        }
        if self.nodes.len() != self.shards {
            return Err(format!(
                "topology names {} node(s) for {} shard(s); every shard needs exactly one node",
                self.nodes.len(),
                self.shards
            ));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.id as usize != i {
                return Err(format!(
                    "nodes[{i}] has id {} — nodes must be listed in shard order 0..{}",
                    node.id,
                    self.shards - 1
                ));
            }
            if node.primary.is_empty() {
                return Err(format!("nodes[{i}]: primary address must be nonempty"));
            }
            if node.follower.as_deref() == Some("") {
                return Err(format!("nodes[{i}]: follower address must be nonempty"));
            }
            if node.follower.as_deref() == Some(node.primary.as_str()) {
                return Err(format!(
                    "nodes[{i}]: follower must differ from the primary ({})",
                    node.primary
                ));
            }
        }
        Ok(())
    }

    /// Renders the topology back to its JSON document form.
    pub fn to_json(&self) -> String {
        let nodes: Vec<String> = self
            .nodes
            .iter()
            .map(|n| {
                let follower = match &n.follower {
                    Some(addr) => format!(", \"follower\": {}", json_string(addr)),
                    None => String::new(),
                };
                format!(
                    "    {{ \"id\": {}, \"primary\": {}{follower} }}",
                    n.id,
                    json_string(&n.primary)
                )
            })
            .collect();
        format!(
            "{{\n  \"version\": {},\n  \"shards\": {},\n  \"width\": {},\n  \"hasher\": {},\n  \"nodes\": [\n{}\n  ]\n}}\n",
            self.version,
            self.shards,
            self.width,
            json_string(&self.hasher),
            nodes.join(",\n")
        )
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology v{}: {} shard(s), width {}, hasher {}",
            self.version, self.shards, self.width, self.hasher
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The JSON subset a topology file may use.
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(u64),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn object(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Object(fields) => Ok(fields),
            _ => Err(format!("{what} must be a JSON object")),
        }
    }

    fn array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Array(items) => Ok(items),
            _ => Err(format!("{what} must be a JSON array")),
        }
    }

    fn string(&self, what: &str) -> Result<String, String> {
        match self {
            Json::String(s) => Ok(s.clone()),
            _ => Err(format!("{what} must be a JSON string")),
        }
    }

    fn number(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Number(n) => Ok(*n),
            _ => Err(format!("{what} must be a non-negative integer")),
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {}",
            char::from(byte),
            *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(&other) => Err(format!(
            "unexpected {:?} at byte {} (a topology holds only objects, arrays, \
             strings and non-negative integers)",
            char::from(other),
            *pos
        )),
        None => Err("unexpected end of document".into()),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        if fields.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate key {key:?}"));
        }
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected a string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    _ => return Err(format!("unsupported escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
            None => return Err("unterminated string".into()),
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    let digits = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ascii");
    digits
        .parse::<u64>()
        .map(Json::Number)
        .map_err(|_| format!("number {digits:?} does not fit in 64 bits"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_shard_doc() -> String {
        r#"{
            "version": 1,
            "shards": 2,
            "width": 1600,
            "hasher": "md5/4",
            "nodes": [
                { "id": 0, "primary": "127.0.0.1:7001", "follower": "127.0.0.1:7101" },
                { "id": 1, "primary": "127.0.0.1:7002" }
            ]
        }"#
        .to_string()
    }

    #[test]
    fn parses_the_quick_start_topology() {
        let t = Topology::parse(&two_shard_doc()).expect("parse");
        assert_eq!(t.version, TOPOLOGY_VERSION);
        assert_eq!(t.shards, 2);
        assert_eq!(t.width, 1600);
        assert_eq!(t.hasher, "md5/4");
        assert_eq!(t.nodes[0].follower.as_deref(), Some("127.0.0.1:7101"));
        assert_eq!(t.nodes[1].follower, None);
    }

    #[test]
    fn round_trips_through_to_json() {
        let t = Topology::parse(&two_shard_doc()).expect("parse");
        let again = Topology::parse(&t.to_json()).expect("reparse rendered form");
        assert_eq!(t, again);
    }

    #[test]
    fn rejects_structural_mistakes() {
        // (document mutation, expected message fragment)
        type Mutation = Box<dyn Fn(&str) -> String>;
        let cases: Vec<(Mutation, &str)> = vec![
            (
                Box::new(|d: &str| d.replace("\"version\": 1", "\"version\": 9")),
                "unsupported topology version 9",
            ),
            (
                Box::new(|d: &str| d.replace("\"shards\": 2", "\"shards\": 3")),
                "names 2 node(s) for 3 shard(s)",
            ),
            (
                Box::new(|d: &str| d.replace("\"id\": 1", "\"id\": 5")),
                "must be listed in shard order",
            ),
            (
                Box::new(|d: &str| d.replace("\"follower\"", "\"folower\"")),
                "unknown key \"folower\"",
            ),
            (
                Box::new(|d: &str| d.replace("\"width\": 1600", "\"width\": 0")),
                "width must be nonzero",
            ),
            (
                Box::new(|d: &str| {
                    d.replace("\"follower\": \"127.0.0.1:7101\"", "\"follower\": \"127.0.0.1:7001\"")
                }),
                "follower must differ from the primary",
            ),
            (
                Box::new(|d: &str| d.replace("\"hasher\": \"md5/4\",", "")),
                "missing \"hasher\"",
            ),
        ];
        let doc = two_shard_doc();
        for (mutate, fragment) in cases {
            let mutated = mutate(&doc);
            assert_ne!(mutated, doc, "mutation must change the document");
            let err = Topology::parse(&mutated).expect_err(fragment);
            assert!(err.contains(fragment), "wanted {fragment:?} in {err:?}");
        }
    }

    #[test]
    fn rejects_malformed_json() {
        for doc in [
            "",
            "{",
            "[1, 2]",
            "{\"version\": 1,}",
            "{\"version\": -1}",
            "{\"version\": 1 \"shards\": 2}",
            "{\"version\": 1} trailing",
        ] {
            assert!(Topology::parse(doc).is_err(), "must reject {doc:?}");
        }
    }

    #[test]
    fn read_reports_the_file_path() {
        let err =
            Topology::read(Path::new("/nonexistent/topology.json")).expect_err("missing file");
        assert!(err.to_string().contains("/nonexistent/topology.json"));
    }
}
