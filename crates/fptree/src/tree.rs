//! The FP-tree data structure (Han, Pei & Yin, SIGMOD 2000).

use bbs_tdb::ItemId;
use std::collections::HashMap;

/// One node of an FP-tree.
#[derive(Debug, Clone)]
pub struct FpNode {
    /// The item this node represents (meaningless for the root).
    pub item: ItemId,
    /// Number of transactions sharing this prefix path.
    pub count: u64,
    /// Parent node index (the root is its own parent).
    pub parent: usize,
    /// Children, keyed by item.
    pub children: HashMap<ItemId, usize>,
    /// Next node holding the same item (the header's node-link chain).
    pub next: Option<usize>,
}

/// One header-table entry.
#[derive(Debug, Clone)]
pub struct HeaderEntry {
    /// The item.
    pub item: ItemId,
    /// Total support of the item in the tree.
    pub count: u64,
    /// First node of the item's node-link chain.
    pub head: Option<usize>,
}

/// An FP-tree: a prefix tree over frequency-ordered transactions plus a
/// header table threading same-item nodes together.
#[derive(Debug, Clone)]
pub struct FpTree {
    nodes: Vec<FpNode>,
    /// Header entries in *descending* support order (the f-list).
    header: Vec<HeaderEntry>,
    header_index: HashMap<ItemId, usize>,
}

/// Root node index.
pub const ROOT: usize = 0;

impl FpTree {
    /// Creates a tree for the given frequent items with their total counts.
    ///
    /// `item_counts` must already be restricted to frequent items; it is
    /// sorted here into the canonical f-list order (count descending, item
    /// ascending as the tie-break).
    pub fn new(mut item_counts: Vec<(ItemId, u64)>) -> Self {
        item_counts.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let header: Vec<HeaderEntry> = item_counts
            .into_iter()
            .map(|(item, count)| HeaderEntry {
                item,
                count,
                head: None,
            })
            .collect();
        let header_index = header
            .iter()
            .enumerate()
            .map(|(i, h)| (h.item, i))
            .collect();
        FpTree {
            nodes: vec![FpNode {
                item: ItemId(u32::MAX),
                count: 0,
                parent: ROOT,
                children: HashMap::new(),
                next: None,
            }],
            header,
            header_index,
        }
    }

    /// Number of nodes, including the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The header table, descending support order.
    pub fn header(&self) -> &[HeaderEntry] {
        &self.header
    }

    /// A node by index.
    pub fn node(&self, idx: usize) -> &FpNode {
        &self.nodes[idx]
    }

    /// The f-list rank of an item, if it is frequent in this tree.
    pub fn rank_of(&self, item: ItemId) -> Option<usize> {
        self.header_index.get(&item).copied()
    }

    /// Filters a transaction's items down to this tree's frequent items and
    /// orders them by f-list rank — the canonical insertion order.
    pub fn order_items(&self, items: &[ItemId]) -> Vec<ItemId> {
        let mut ranked: Vec<(usize, ItemId)> = items
            .iter()
            .filter_map(|&it| self.rank_of(it).map(|r| (r, it)))
            .collect();
        ranked.sort_unstable();
        ranked.into_iter().map(|(_, it)| it).collect()
    }

    /// Inserts one frequency-ordered item path with a count (transactions
    /// insert with count 1; conditional pattern bases with their path
    /// counts).
    pub fn insert_path(&mut self, ordered_items: &[ItemId], count: u64) {
        let mut at = ROOT;
        for &item in ordered_items {
            if let Some(&child) = self.nodes[at].children.get(&item) {
                self.nodes[child].count += count;
                at = child;
            } else {
                let idx = self.nodes.len();
                let header_slot = self.header_index[&item];
                let next = self.header[header_slot].head.replace(idx);
                self.nodes.push(FpNode {
                    item,
                    count,
                    parent: at,
                    children: HashMap::new(),
                    next,
                });
                self.nodes[at].children.insert(item, idx);
                at = idx;
            }
        }
    }

    /// Iterates the node-link chain of a header entry.
    pub fn chain(&self, entry: &HeaderEntry) -> ChainIter<'_> {
        ChainIter {
            tree: self,
            at: entry.head,
        }
    }

    /// The items on the path from a node's parent up to (excluding) the
    /// root, returned deepest-first.
    pub fn prefix_path(&self, mut idx: usize) -> Vec<ItemId> {
        let mut out = Vec::new();
        idx = self.nodes[idx].parent;
        while idx != ROOT {
            out.push(self.nodes[idx].item);
            idx = self.nodes[idx].parent;
        }
        out
    }

    /// If the tree consists of a single path from the root, returns the
    /// `(item, count)` sequence along it (top-down); otherwise `None`.
    pub fn single_path(&self) -> Option<Vec<(ItemId, u64)>> {
        let mut out = Vec::new();
        let mut at = ROOT;
        loop {
            let node = &self.nodes[at];
            match node.children.len() {
                0 => return Some(out),
                1 => {
                    let (&item, &child) = node.children.iter().next().expect("one child");
                    out.push((item, self.nodes[child].count));
                    at = child;
                }
                _ => return None,
            }
        }
    }

    /// Approximate heap bytes of the tree (nodes + header), used by the
    /// memory-budget cost model.
    pub fn approx_bytes(&self) -> usize {
        self.nodes.len() * 96 + self.header.len() * 32
    }
}

/// Iterator over a header entry's node-link chain.
pub struct ChainIter<'a> {
    tree: &'a FpTree,
    at: Option<usize>,
}

impl Iterator for ChainIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let idx = self.at?;
        self.at = self.tree.nodes[idx].next;
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(vals: &[u32]) -> Vec<ItemId> {
        vals.iter().map(|&v| ItemId(v)).collect()
    }

    fn sample_tree() -> FpTree {
        // Items with supports: 3→4, 1→3, 2→2.
        let mut tree = FpTree::new(vec![(ItemId(1), 3), (ItemId(2), 2), (ItemId(3), 4)]);
        // f-list order: 3, 1, 2.
        tree.insert_path(&ids(&[3, 1, 2]), 1);
        tree.insert_path(&ids(&[3, 1]), 1);
        tree.insert_path(&ids(&[3, 1, 2]), 1);
        tree.insert_path(&ids(&[3]), 1);
        tree
    }

    #[test]
    fn header_is_sorted_descending() {
        let tree = sample_tree();
        let order: Vec<u32> = tree.header().iter().map(|h| h.item.0).collect();
        assert_eq!(order, vec![3, 1, 2]);
        assert_eq!(tree.rank_of(ItemId(3)), Some(0));
        assert_eq!(tree.rank_of(ItemId(9)), None);
    }

    #[test]
    fn shared_prefixes_compress() {
        let tree = sample_tree();
        // Root + one node per distinct prefix: 3, 3-1, 3-1-2 → 4 nodes.
        assert_eq!(tree.node_count(), 4);
        let h3 = &tree.header()[0];
        let chain: Vec<usize> = tree.chain(h3).collect();
        assert_eq!(chain.len(), 1);
        assert_eq!(tree.node(chain[0]).count, 4);
    }

    #[test]
    fn order_items_filters_and_ranks() {
        let tree = sample_tree();
        assert_eq!(tree.order_items(&ids(&[2, 9, 3])), ids(&[3, 2]));
        assert_eq!(tree.order_items(&ids(&[1, 2, 3])), ids(&[3, 1, 2]));
        assert!(tree.order_items(&ids(&[7, 8])).is_empty());
    }

    #[test]
    fn prefix_path_walks_to_root() {
        let tree = sample_tree();
        let h2 = tree
            .header()
            .iter()
            .find(|h| h.item == ItemId(2))
            .expect("item 2");
        let node2 = tree.chain(h2).next().expect("one node for item 2");
        assert_eq!(tree.prefix_path(node2), ids(&[1, 3]));
    }

    #[test]
    fn single_path_detection() {
        let mut linear = FpTree::new(vec![(ItemId(1), 3), (ItemId(2), 2)]);
        linear.insert_path(&ids(&[1, 2]), 2);
        linear.insert_path(&ids(&[1]), 1);
        assert_eq!(
            linear.single_path(),
            Some(vec![(ItemId(1), 3), (ItemId(2), 2)])
        );
        let branched = sample_tree();
        // Node "3" has children {1} only; node "1" has child {2}; single
        // path actually... 3 -> 1 -> 2 is a single chain here.
        assert!(branched.single_path().is_some());
        let mut forked = sample_tree();
        forked.insert_path(&ids(&[1]), 1);
        assert_eq!(forked.single_path(), None);
    }

    #[test]
    fn empty_tree_is_single_empty_path() {
        let tree = FpTree::new(vec![]);
        assert_eq!(tree.single_path(), Some(vec![]));
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn chain_links_multiple_nodes() {
        let mut tree = FpTree::new(vec![(ItemId(1), 3), (ItemId(2), 3)]);
        tree.insert_path(&ids(&[1, 2]), 1);
        tree.insert_path(&ids(&[2]), 2);
        let h2 = tree
            .header()
            .iter()
            .find(|h| h.item == ItemId(2))
            .expect("item 2");
        let counts: Vec<u64> = tree.chain(h2).map(|i| tree.node(i).count).collect();
        assert_eq!(counts.iter().sum::<u64>(), 3);
        assert_eq!(counts.len(), 2);
    }
}
