//! The FP-growth baseline (the paper's **FPS**).
//!
//! Frequent-pattern mining without candidate generation (Han, Pei & Yin,
//! SIGMOD 2000): two database scans build an [`FpTree`][tree::FpTree] —
//! a prefix tree over frequency-ordered transactions with a header table —
//! and recursion over *conditional pattern bases* grows patterns fragment
//! by fragment.  A single-path conditional tree short-circuits into direct
//! combination enumeration.
//!
//! Two properties matter for the comparison with BBS:
//!
//! * the tree must be **rebuilt for every mining run** (it depends on the
//!   support threshold and on global item frequencies, so it cannot be
//!   maintained incrementally — §3.4 of the BBS paper);
//! * when the tree outgrows memory the original algorithm falls back to
//!   database projection; the [`MemoryBudget`] cost model charges the
//!   equivalent extra scans (Fig. 11).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod tree;

use bbs_tdb::io::pages_for;
use bbs_tdb::{
    FrequentPatternMiner, IoStats, ItemId, Itemset, MemoryBudget, MineResult, PatternSet,
    SupportThreshold, TransactionDb,
};
use tree::FpTree;

/// The FP-growth miner.
#[derive(Debug, Clone)]
pub struct FpGrowthMiner {
    budget: MemoryBudget,
}

impl Default for FpGrowthMiner {
    fn default() -> Self {
        FpGrowthMiner::new()
    }
}

impl FpGrowthMiner {
    /// A miner with unlimited memory.
    pub fn new() -> Self {
        FpGrowthMiner {
            budget: MemoryBudget::unlimited(),
        }
    }

    /// Applies a memory budget (see the crate docs for the cost model).
    pub fn with_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// Builds the initial FP-tree over `db` at threshold `tau` (two scans).
pub fn build_tree(db: &TransactionDb, tau: u64, io: &mut IoStats) -> FpTree {
    let frequent: Vec<(ItemId, u64)> = db
        .count_singletons(io)
        .into_iter()
        .filter(|&(_, c)| c >= tau)
        .collect();
    let mut tree = FpTree::new(frequent);
    for txn in db.scan(io) {
        let ordered = tree.order_items(txn.items.items());
        if !ordered.is_empty() {
            tree.insert_path(&ordered, 1);
        }
    }
    tree
}

/// Recursive FP-growth over a (conditional) tree.
fn fp_growth(tree: &FpTree, suffix: &Itemset, tau: u64, out: &mut PatternSet) {
    if let Some(path) = tree.single_path() {
        if !path.is_empty() {
            emit_path_combinations(&path, suffix, out);
        }
        return;
    }
    // Process header entries from least to most frequent (bottom of the
    // f-list first), as in the original algorithm.
    for entry in tree.header().iter().rev() {
        if entry.count < tau {
            continue;
        }
        let pattern = suffix.with_item(entry.item);
        out.insert(pattern.clone(), entry.count);

        // Conditional pattern base: prefix paths of every node in the
        // item's chain, weighted by the node's count.
        let mut base: Vec<(Vec<ItemId>, u64)> = Vec::new();
        let mut conditional_counts: std::collections::HashMap<ItemId, u64> =
            std::collections::HashMap::new();
        for node_idx in tree.chain(entry) {
            let node = tree.node(node_idx);
            let path = tree.prefix_path(node_idx);
            for &it in &path {
                *conditional_counts.entry(it).or_insert(0) += node.count;
            }
            if !path.is_empty() {
                base.push((path, node.count));
            }
        }
        let frequent: Vec<(ItemId, u64)> = conditional_counts
            .into_iter()
            .filter(|&(_, c)| c >= tau)
            .collect();
        if frequent.is_empty() {
            continue;
        }
        let mut conditional = FpTree::new(frequent);
        for (path, count) in &base {
            let ordered = conditional.order_items(path);
            if !ordered.is_empty() {
                conditional.insert_path(&ordered, *count);
            }
        }
        fp_growth(&conditional, &pattern, tau, out);
    }
}

/// Single-path shortcut: every non-empty combination of the path's nodes is
/// frequent, with support equal to the count of its deepest node.
fn emit_path_combinations(path: &[(ItemId, u64)], suffix: &Itemset, out: &mut PatternSet) {
    // Depth-first over include/exclude decisions; the path is top-down, so
    // counts are non-increasing and the last included node's count is the
    // minimum.
    fn recurse(
        path: &[(ItemId, u64)],
        idx: usize,
        current: &Itemset,
        current_count: Option<u64>,
        out: &mut PatternSet,
    ) {
        if idx == path.len() {
            if let Some(c) = current_count {
                out.insert(current.clone(), c);
            }
            return;
        }
        // Exclude path[idx].
        recurse(path, idx + 1, current, current_count, out);
        // Include path[idx].
        let (item, count) = path[idx];
        let next = current.with_item(item);
        recurse(path, idx + 1, &next, Some(count), out);
    }
    recurse(path, 0, suffix, None, out);
}

impl FrequentPatternMiner for FpGrowthMiner {
    fn name(&self) -> &str {
        "FPS"
    }

    fn mine(&mut self, db: &TransactionDb, min_support: SupportThreshold) -> MineResult {
        let tau = min_support.resolve(db.len());
        let mut result = MineResult::default();
        let mut io = IoStats::new();

        let tree = build_tree(db, tau, &mut io);

        // Memory-budget cost model: a tree that does not fit forces the
        // database-projection fallback; charge one extra full scan per
        // budget-sized piece of the tree beyond the first.
        if let Some(limit) = self.budget.limit() {
            let bytes = tree.approx_bytes();
            if bytes > limit {
                let extra = (bytes.div_ceil(limit.max(1)) - 1) as u64;
                io.db_scans += extra;
                io.db_pages_read += extra * pages_for(db.total_bytes(), db.page_size());
            }
        }

        fp_growth(&tree, &Itemset::empty(), tau, &mut result.patterns);
        result.stats.candidates = result.patterns.len() as u64;
        result.stats.io = io;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_datagen::QuestConfig;
    use bbs_tdb::{NaiveMiner, Transaction};

    fn set(vals: &[u32]) -> Itemset {
        Itemset::from_values(vals)
    }

    fn paper_db() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            Transaction::new(100, set(&[0, 1, 2, 3, 4, 5, 14, 15])),
            Transaction::new(200, set(&[1, 2, 3, 5, 6, 7])),
            Transaction::new(300, set(&[1, 5, 14, 15])),
            Transaction::new(400, set(&[0, 1, 2, 7])),
            Transaction::new(500, set(&[1, 2, 5, 6, 11, 15])),
        ])
    }

    /// The canonical FP-growth example from Han et al.'s paper.
    fn han_db() -> TransactionDb {
        TransactionDb::from_itemsets(vec![
            set(&[1, 2, 5]),
            set(&[2, 4]),
            set(&[2, 3]),
            set(&[1, 2, 4]),
            set(&[1, 3]),
            set(&[2, 3]),
            set(&[1, 3]),
            set(&[1, 2, 3, 5]),
            set(&[1, 2, 3]),
        ])
    }

    #[test]
    fn matches_oracle_on_paper_db() {
        let db = paper_db();
        for tau in [2u64, 3, 4, 5] {
            let oracle = NaiveMiner::new()
                .mine(&db, SupportThreshold::Count(tau))
                .patterns;
            let got = FpGrowthMiner::new()
                .mine(&db, SupportThreshold::Count(tau))
                .patterns;
            assert_eq!(got, oracle, "tau = {tau}");
        }
    }

    #[test]
    fn matches_oracle_on_han_example() {
        let db = han_db();
        let oracle = NaiveMiner::new()
            .mine(&db, SupportThreshold::Count(2))
            .patterns;
        let got = FpGrowthMiner::new()
            .mine(&db, SupportThreshold::Count(2))
            .patterns;
        assert_eq!(got, oracle);
        // Spot-check a known deep pattern: {1,2,5} has support 2.
        assert_eq!(got.support(&set(&[1, 2, 5])), Some(2));
    }

    #[test]
    fn matches_oracle_on_generated_data() {
        let db = bbs_datagen::generate_db(QuestConfig::tiny());
        for pct in [3.0f64, 5.0, 10.0] {
            let t = SupportThreshold::percent(pct);
            let oracle = NaiveMiner::new().mine(&db, t).patterns;
            let got = FpGrowthMiner::new().mine(&db, t).patterns;
            assert_eq!(got, oracle, "pct = {pct}");
        }
    }

    #[test]
    fn two_scans_when_memory_unlimited() {
        let db = paper_db();
        let r = FpGrowthMiner::new().mine(&db, SupportThreshold::Count(3));
        assert_eq!(r.stats.io.db_scans, 2);
    }

    #[test]
    fn budget_charges_extra_scans() {
        let db = bbs_datagen::generate_db(QuestConfig::tiny());
        let tau = SupportThreshold::percent(3.0);
        let free = FpGrowthMiner::new().mine(&db, tau);
        let tight = FpGrowthMiner::new()
            .with_budget(MemoryBudget::bytes(1024))
            .mine(&db, tau);
        assert_eq!(free.patterns, tight.patterns, "answer unchanged");
        assert!(tight.stats.io.db_scans > free.stats.io.db_scans);
    }

    #[test]
    fn empty_db_and_high_threshold() {
        let db = TransactionDb::new();
        let r = FpGrowthMiner::new().mine(&db, SupportThreshold::Count(1));
        assert!(r.patterns.is_empty());
        let db = paper_db();
        let r = FpGrowthMiner::new().mine(&db, SupportThreshold::Count(6));
        assert!(r.patterns.is_empty());
    }

    #[test]
    fn single_item_database() {
        let db = TransactionDb::from_itemsets(vec![set(&[7]), set(&[7]), set(&[7])]);
        let r = FpGrowthMiner::new().mine(&db, SupportThreshold::Count(2));
        assert_eq!(r.patterns.len(), 1);
        assert_eq!(r.patterns.support(&set(&[7])), Some(3));
    }
}
