//! Property tests for the blocked/tiered AND+popcount kernels.
//!
//! The blocked kernels in `ops_simd` must preserve the zero-extension
//! contract of the straight-line seed kernels exactly: operands of mixed
//! lengths behave as if padded with zero words, the fused count equals the
//! naive materialise-then-popcount result, and the early-exit variant is
//! τ-consistent (exact at or above τ, an upper bound below it).

use bbs_bitslice::ops;
use bbs_bitslice::ops_simd::{self, Tier};
use proptest::prelude::*;

/// Naive oracle: materialise the AND with explicit zero-extension over
/// `words` words, then popcount.
fn naive_and_popcount(srcs: &[Vec<u64>], words: usize) -> usize {
    if srcs.is_empty() {
        return words * 64;
    }
    let mut out = vec![u64::MAX; words];
    for s in srcs {
        for (i, w) in out.iter_mut().enumerate() {
            *w &= s.get(i).copied().unwrap_or(0);
        }
    }
    out.iter().map(|w| w.count_ones() as usize).sum()
}

/// Builds operand word vectors of the given mixed lengths; the word stream
/// of operand `k` is a pure function of `(seed, k)`.
fn operands(seed: u64, lens: &[usize]) -> Vec<Vec<u64>> {
    lens.iter()
        .enumerate()
        .map(|(k, &len)| {
            let mut x = seed.wrapping_add(k as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            (0..len)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                })
                .collect()
        })
        .collect()
}

proptest! {
    #[test]
    fn prop_fused_equals_naive_mixed_lengths(
        seed in any::<u64>(),
        lens in proptest::collection::vec(0usize..700, 0..6),
        words in 0usize..700,
    ) {
        let ops_vec = operands(seed, &lens);
        let srcs: Vec<&[u64]> = ops_vec.iter().map(|v| v.as_slice()).collect();
        let want = naive_and_popcount(&ops_vec, words);
        prop_assert_eq!(ops::and_all_count(&srcs, words), want);
        prop_assert_eq!(ops_simd::and_all_count_tier(Tier::Portable, &srcs, words, None), want);
        prop_assert_eq!(ops_simd::and_all_count_tier(Tier::Scalar, &srcs, words, None), want);
        prop_assert_eq!(ops_simd::and_all_count_tier(Tier::Avx2, &srcs, words, None), want);
        prop_assert_eq!(ops_simd::and_all_count_tier(Tier::Avx512, &srcs, words, None), want);
    }

    #[test]
    fn prop_and_assign_zero_extends(
        seed in any::<u64>(),
        len_a in 1usize..200,
        len_b in 0usize..200,
    ) {
        let ops_vec = operands(seed, &[len_a, len_b]);
        let (va, vb) = (&ops_vec[0], &ops_vec[1]);
        let mut dst = va.clone();
        ops::and_assign(&mut dst, vb);
        for (i, w) in dst.iter().enumerate() {
            let expect = va[i] & vb.get(i).copied().unwrap_or(0);
            prop_assert_eq!(*w, expect, "word {}", i);
        }
        // and_count must agree with the materialised result.
        let want: usize = dst.iter().map(|w| w.count_ones() as usize).sum();
        prop_assert_eq!(ops::and_count(va, vb), want);
    }

    #[test]
    fn prop_early_exit_tau_consistent(
        seed in any::<u64>(),
        lens in proptest::collection::vec(0usize..600, 1..5),
        words in 0usize..600,
        tau_raw in 0usize..40_000,
    ) {
        let ops_vec = operands(seed, &lens);
        let srcs: Vec<&[u64]> = ops_vec.iter().map(|v| v.as_slice()).collect();
        let exact = naive_and_popcount(&ops_vec, words);
        for tier in [Tier::Portable, Tier::Scalar, Tier::Avx2, Tier::Avx512] {
            let got = ops_simd::and_all_count_tier(tier, &srcs, words, Some(tau_raw));
            if got >= tau_raw {
                prop_assert_eq!(got, exact, "tier {:?}", tier);
            } else {
                // Below tau the kernel may stop early, but must never
                // undercount: the decision `est < tau` stays identical.
                prop_assert!(got >= exact, "tier {:?}: {} undercounts {}", tier, got, exact);
                prop_assert!(exact < tau_raw, "tier {:?}: early exit on frequent set", tier);
            }
        }
        prop_assert_eq!(ops::and_count_many(&srcs, words, tau_raw) >= tau_raw, exact >= tau_raw);
    }
}
