//! A growable, dense, word-packed bit vector.

use crate::ops::{self, OnesIter};
use crate::{words_for, WORD_BITS};
use std::fmt;

/// A dense bit vector backed by `u64` words.
///
/// `BitVec` is the workhorse behind both the BBS bit-slices (one very long
/// column per hash position) and the AND-result vectors that `CountItemSet`
/// produces.  It keeps an explicit logical length in bits; bits past the
/// length are guaranteed to be zero (an invariant every mutating method
/// preserves), so popcounts never need masking.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        BitVec::default()
    }

    /// Creates a zeroed bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; words_for(len)],
            len,
        }
    }

    /// Creates an all-ones bit vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            words: vec![u64::MAX; words_for(len)],
            len,
        };
        v.mask_tail();
        v
    }

    /// Creates an empty bit vector with room for `len` bits pre-allocated.
    pub fn with_capacity(len: usize) -> Self {
        BitVec {
            words: Vec::with_capacity(words_for(len)),
            len: 0,
        }
    }

    /// Builds a bit vector of `len` bits with the given indices set.
    ///
    /// # Panics
    /// Panics if any index is `>= len`.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut v = BitVec::zeros(len);
        for &i in indices {
            v.set(i);
        }
        v
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to one.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        self.words[i / WORD_BITS] |= 1 << (i % WORD_BITS);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear_bit(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        self.words[i / WORD_BITS] &= !(1 << (i % WORD_BITS));
    }

    /// Appends a bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let i = self.len;
        self.grow_to(self.len + 1);
        if bit {
            self.set(i);
        }
    }

    /// Grows the logical length to `new_len` bits (no-op if already larger),
    /// zero-filling the new bits.
    pub fn grow_to(&mut self, new_len: usize) {
        if new_len <= self.len {
            return;
        }
        let need = words_for(new_len);
        if need > self.words.len() {
            self.words.resize(need, 0);
        }
        self.len = new_len;
    }

    /// Truncates to `new_len` bits, clearing any dropped bits.
    pub fn truncate(&mut self, new_len: usize) {
        if new_len >= self.len {
            return;
        }
        self.len = new_len;
        self.words.truncate(words_for(new_len));
        self.mask_tail();
    }

    /// Sets every bit to zero, keeping the length.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        ops::count_ones(&self.words)
    }

    /// `self &= other` (zero-extending `other` if shorter).
    pub fn and_assign(&mut self, other: &BitVec) {
        ops::and_assign(&mut self.words, &other.words);
    }

    /// `self |= other`.  `other` must not be longer than `self`.
    ///
    /// # Panics
    /// Panics if `other.len() > self.len()`.
    pub fn or_assign(&mut self, other: &BitVec) {
        assert!(
            other.len <= self.len,
            "or_assign: source ({}) longer than destination ({})",
            other.len,
            self.len
        );
        ops::or_assign(&mut self.words, &other.words);
    }

    /// `self &= !other` (zero-extending `other`).
    pub fn and_not_assign(&mut self, other: &BitVec) {
        ops::and_not_assign(&mut self.words, &other.words);
    }

    /// Popcount of `self & other` without materialising the intermediate.
    pub fn and_count(&self, other: &BitVec) -> usize {
        ops::and_count(&self.words, &other.words)
    }

    /// True if every set bit of `self` is also set in `other`
    /// (`self ⊆ other` as sets of positions).
    pub fn is_subset_of(&self, other: &BitVec) -> bool {
        for (i, &w) in self.words.iter().enumerate() {
            if w & !ops::word_or_zero(&other.words, i) != 0 {
                return false;
            }
        }
        true
    }

    /// Iterator over set-bit indices, ascending.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter::new(&self.words, self.len)
    }

    /// Raw word storage (little-endian bit order within each word).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable raw word storage.  Callers must keep bits `>= len` zero.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Constructs a `BitVec` directly from words and a bit length.
    ///
    /// Any bits at positions `>= len` are cleared to restore the tail
    /// invariant.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        words.resize(words_for(len), 0);
        let mut v = BitVec { words, len };
        v.mask_tail();
        v
    }

    /// Approximate heap size in bytes (capacity of the word buffer).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        for i in 0..self.len.min(128) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 128 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut v = BitVec::new();
        for b in iter {
            v.push(b);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(70);
        assert_eq!(z.len(), 70);
        assert_eq!(z.count_ones(), 0);
        let o = BitVec::ones(70);
        assert_eq!(o.count_ones(), 70);
        // Tail bits beyond 70 must be masked off.
        assert_eq!(o.words()[1] >> 6, 0);
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut v = BitVec::zeros(100);
        v.set(0);
        v.set(63);
        v.set(64);
        v.set(99);
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(99));
        assert!(!v.get(1) && !v.get(65));
        assert_eq!(v.count_ones(), 4);
        v.clear_bit(63);
        assert!(!v.get(63));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zeros(10);
        let _ = v.get(10);
    }

    #[test]
    fn push_grows() {
        let mut v = BitVec::new();
        for i in 0..130 {
            v.push(i % 3 == 0);
        }
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), (0..130).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn grow_to_is_monotonic_and_zero_fills() {
        let mut v = BitVec::zeros(5);
        v.set(4);
        v.grow_to(200);
        assert_eq!(v.len(), 200);
        assert_eq!(v.count_ones(), 1);
        v.grow_to(100); // no-op
        assert_eq!(v.len(), 200);
    }

    #[test]
    fn truncate_clears_dropped_bits() {
        let mut v = BitVec::ones(130);
        v.truncate(65);
        assert_eq!(v.len(), 65);
        assert_eq!(v.count_ones(), 65);
        v.grow_to(130);
        // Regrown bits must be zero, not stale ones.
        assert_eq!(v.count_ones(), 65);
    }

    #[test]
    fn and_or_andnot() {
        let a = BitVec::from_indices(10, &[1, 3, 5, 7]);
        let b = BitVec::from_indices(10, &[3, 4, 5]);
        let mut x = a.clone();
        x.and_assign(&b);
        assert_eq!(x.iter_ones().collect::<Vec<_>>(), vec![3, 5]);
        let mut y = a.clone();
        y.or_assign(&b);
        assert_eq!(y.iter_ones().collect::<Vec<_>>(), vec![1, 3, 4, 5, 7]);
        let mut z = a.clone();
        z.and_not_assign(&b);
        assert_eq!(z.iter_ones().collect::<Vec<_>>(), vec![1, 7]);
    }

    #[test]
    fn and_with_shorter_zero_extends() {
        let mut a = BitVec::ones(200);
        let b = BitVec::from_indices(10, &[2]);
        a.and_assign(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![2]);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn subset_relation() {
        let a = BitVec::from_indices(100, &[1, 64]);
        let b = BitVec::from_indices(100, &[1, 2, 64, 65]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(BitVec::zeros(10).is_subset_of(&a));
    }

    #[test]
    fn subset_against_shorter_vector() {
        let a = BitVec::from_indices(200, &[150]);
        let b = BitVec::from_indices(10, &[5]);
        assert!(!a.is_subset_of(&b));
        assert!(b.is_subset_of(&BitVec::from_indices(200, &[5, 150])));
    }

    #[test]
    fn from_words_masks_tail() {
        let v = BitVec::from_words(vec![u64::MAX], 4);
        assert_eq!(v.count_ones(), 4);
    }

    #[test]
    fn collect_from_bools() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 2]);
    }

    proptest! {
        #[test]
        fn prop_set_bits_roundtrip(idx in proptest::collection::btree_set(0usize..500, 0..60)) {
            let indices: Vec<usize> = idx.iter().copied().collect();
            let v = BitVec::from_indices(500, &indices);
            prop_assert_eq!(v.iter_ones().collect::<Vec<_>>(), indices);
            prop_assert_eq!(v.count_ones(), idx.len());
        }

        #[test]
        fn prop_and_count_agrees_with_materialised(
            a in proptest::collection::btree_set(0usize..300, 0..40),
            b in proptest::collection::btree_set(0usize..300, 0..40),
        ) {
            let va = BitVec::from_indices(300, &a.iter().copied().collect::<Vec<_>>());
            let vb = BitVec::from_indices(300, &b.iter().copied().collect::<Vec<_>>());
            let mut m = va.clone();
            m.and_assign(&vb);
            prop_assert_eq!(va.and_count(&vb), m.count_ones());
            prop_assert_eq!(m.count_ones(), a.intersection(&b).count());
        }

        #[test]
        fn prop_subset_iff_intersection_equals_self(
            a in proptest::collection::btree_set(0usize..200, 0..30),
            b in proptest::collection::btree_set(0usize..200, 0..30),
        ) {
            let va = BitVec::from_indices(200, &a.iter().copied().collect::<Vec<_>>());
            let vb = BitVec::from_indices(200, &b.iter().copied().collect::<Vec<_>>());
            let mut m = va.clone();
            m.and_assign(&vb);
            prop_assert_eq!(va.is_subset_of(&vb), m == va);
        }
    }
}
