//! Fixed-width Bloom-filter signatures.

use crate::bitvec::BitVec;
use crate::ops::OnesIter;
use std::fmt;

/// An `m`-bit Bloom-filter signature for one transaction or one query
/// itemset.
///
/// A signature is just a short [`BitVec`] with a fixed width, but the wrapper
/// makes the intent explicit and provides the two operations the mining
/// algorithms actually use:
///
/// * [`Signature::merge`] — superimpose another signature (used when a query
///   itemset grows by one item during filter enumeration);
/// * [`Signature::covers`] / [`Signature::is_covered_by`] — the containment
///   test of the paper's Lemma 2: if any query bit is set where the
///   transaction bit is clear, the transaction cannot contain the itemset.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    bits: BitVec,
}

impl Signature {
    /// Creates an all-zero signature of `width` bits.
    pub fn zeros(width: usize) -> Self {
        Signature {
            bits: BitVec::zeros(width),
        }
    }

    /// Builds a signature of `width` bits with the given positions set.
    ///
    /// # Panics
    /// Panics if any position is `>= width`.
    pub fn from_positions(width: usize, positions: &[usize]) -> Self {
        Signature {
            bits: BitVec::from_indices(width, positions),
        }
    }

    /// Signature width in bits (the paper's `m`).
    #[inline]
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Sets one bit position.
    ///
    /// # Panics
    /// Panics if `pos >= width`.
    #[inline]
    pub fn set(&mut self, pos: usize) {
        self.bits.set(pos);
    }

    /// Returns whether a bit position is set.
    #[inline]
    pub fn get(&self, pos: usize) -> bool {
        self.bits.get(pos)
    }

    /// Number of set bits (the signature's weight).
    #[inline]
    pub fn weight(&self) -> usize {
        self.bits.count_ones()
    }

    /// True if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.weight() == 0
    }

    /// Superimposes (`OR`s) `other` into `self`.
    ///
    /// # Panics
    /// Panics if the widths differ.
    pub fn merge(&mut self, other: &Signature) {
        assert_eq!(
            self.width(),
            other.width(),
            "signature width mismatch in merge"
        );
        self.bits.or_assign(&other.bits);
    }

    /// True if every bit set in `self` is also set in `other`.
    ///
    /// When `self` is a query signature and `other` a transaction signature,
    /// `self.is_covered_by(other)` is the necessary condition for the
    /// transaction to contain the query itemset (Lemma 2).
    pub fn is_covered_by(&self, other: &Signature) -> bool {
        self.bits.is_subset_of(&other.bits)
    }

    /// True if `self` covers `other` (i.e. `other ⊆ self`).
    pub fn covers(&self, other: &Signature) -> bool {
        other.is_covered_by(self)
    }

    /// Iterator over set bit positions, ascending.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        self.bits.iter_ones()
    }

    /// Borrow the underlying bit vector.
    pub fn as_bitvec(&self) -> &BitVec {
        &self.bits
    }

    /// Consume into the underlying bit vector.
    pub fn into_bitvec(self) -> BitVec {
        self.bits
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature[{}b:", self.width())?;
        let mut first = true;
        for p in self.iter_ones() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, " {p}")?;
            first = false;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_weight() {
        let s = Signature::from_positions(16, &[0, 7, 15]);
        assert_eq!(s.width(), 16);
        assert_eq!(s.weight(), 3);
        assert!(s.get(0) && s.get(7) && s.get(15));
        assert!(!s.get(1));
    }

    #[test]
    fn duplicate_positions_collapse() {
        let s = Signature::from_positions(8, &[3, 3, 3]);
        assert_eq!(s.weight(), 1);
    }

    #[test]
    fn merge_superimposes() {
        let mut a = Signature::from_positions(8, &[0, 1]);
        let b = Signature::from_positions(8, &[1, 2]);
        a.merge(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn merge_width_mismatch_panics() {
        let mut a = Signature::zeros(8);
        a.merge(&Signature::zeros(16));
    }

    #[test]
    fn coverage_is_subset_semantics() {
        let query = Signature::from_positions(8, &[1, 3]);
        let txn = Signature::from_positions(8, &[0, 1, 3, 5]);
        assert!(query.is_covered_by(&txn));
        assert!(txn.covers(&query));
        assert!(!txn.is_covered_by(&query));
        assert!(Signature::zeros(8).is_covered_by(&txn));
    }

    #[test]
    fn paper_running_example_vectors() {
        // Table 1 of the paper: h(x) = x mod 8, m = 8.
        // Transaction 100 = {0,1,2,3,4,5,14,15} -> all 8 bits set.
        let t100 = Signature::from_positions(8, &[0, 1, 2, 3, 4, 5, 14 % 8, 15 % 8]);
        assert_eq!(t100.weight(), 8);
        // Transaction 300 = {1,5,14,15} -> bits {1,5,6,7}.
        let t300 = Signature::from_positions(8, &[1, 5, 14 % 8, 15 % 8]);
        assert_eq!(t300.iter_ones().collect::<Vec<_>>(), vec![1, 5, 6, 7]);
        assert!(t300.is_covered_by(&t100));
    }

    proptest! {
        #[test]
        fn prop_merge_then_cover(
            a in proptest::collection::vec(0usize..64, 0..10),
            b in proptest::collection::vec(0usize..64, 0..10),
        ) {
            let sa = Signature::from_positions(64, &a);
            let sb = Signature::from_positions(64, &b);
            let mut merged = sa.clone();
            merged.merge(&sb);
            // A merged signature covers both constituents.
            prop_assert!(sa.is_covered_by(&merged));
            prop_assert!(sb.is_covered_by(&merged));
            // And anything covering both constituents covers nothing less
            // than the merge.
            prop_assert!(merged.is_covered_by(&merged));
        }
    }
}
