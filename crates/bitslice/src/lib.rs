//! Bit-level substrate for the BBS (Bit-Sliced Bloom-filtered Signature file)
//! frequent-pattern index.
//!
//! The paper's `CountItemSet` primitive is, at bottom, "AND a handful of long
//! bit columns together and popcount the result".  This crate provides the
//! three data structures that make that operation cheap and safe:
//!
//! * [`BitVec`] — a growable, dense, word-packed bit vector with bulk boolean
//!   operations and set-bit iteration.
//! * [`Signature`] — a fixed-width (`m`-bit) vector representing one
//!   transaction's (or one query itemset's) Bloom filter.
//! * [`SliceMatrix`] — the transposed store: `m` bit-slices, where slice `j`
//!   holds bit `j` of every row's signature.  Appending a row touches only
//!   the slices whose bits are set, so insertion cost is proportional to the
//!   number of set bits, not to `m`.
//!
//! All heavy loops run over `u64` words (see [`ops`]), and the multi-way
//! AND-and-count kernels avoid materialising intermediates where possible.
//! The hot kernels are tiered (see [`ops_simd`]): an explicit AVX2 path
//! behind runtime feature detection, an autovectorizable blocked scalar
//! path, and a straight-line portable reference.
//!
//! `unsafe` is denied crate-wide and allowed only inside [`ops_simd`],
//! where it is confined to `std::arch` intrinsics guarded by
//! `is_x86_feature_detected!`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bitvec;
pub mod matrix;
pub mod ops;
pub mod ops_simd;
pub mod signature;

pub use bitvec::BitVec;
pub use matrix::SliceMatrix;
pub use signature::Signature;

/// Number of bits in one storage word.
pub const WORD_BITS: usize = u64::BITS as usize;

/// Number of `u64` words needed to hold `bits` bits.
#[inline]
pub const fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}
