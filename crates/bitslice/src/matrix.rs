//! Slice-major storage of fixed-width signatures.

use crate::bitvec::BitVec;
use crate::ops;
use crate::signature::Signature;
use crate::words_for;

/// A collection of `m`-bit signatures stored transposed: slice `j` holds bit
/// `j` of every row.
///
/// This is the physical layout of the paper's BBS file (§2.1): counting the
/// occurrences of an itemset touches only the slices selected by the query
/// signature, each of which is a contiguous run of words — exactly the access
/// pattern bit-sliced signature files were designed for.
///
/// Slices grow lazily: appending a row only grows the slices whose bits are
/// set, and the boolean kernels zero-extend short slices, so a slice that has
/// never seen a set bit occupies no memory at all.
#[derive(Clone, Debug)]
pub struct SliceMatrix {
    width: usize,
    rows: usize,
    slices: Vec<BitVec>,
}

impl SliceMatrix {
    /// Creates an empty matrix of signatures that are `width` bits wide.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "slice matrix width must be positive");
        SliceMatrix {
            width,
            rows: 0,
            slices: vec![BitVec::new(); width],
        }
    }

    /// Signature width `m`.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows (transactions) stored.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Appends one signature as a new row and returns its row index.
    ///
    /// # Panics
    /// Panics if the signature width does not match the matrix width.
    pub fn push_row(&mut self, sig: &Signature) -> usize {
        assert_eq!(
            sig.width(),
            self.width,
            "signature width {} != matrix width {}",
            sig.width(),
            self.width
        );
        let row = self.rows;
        self.rows += 1;
        for pos in sig.iter_ones() {
            let slice = &mut self.slices[pos];
            slice.grow_to(row + 1);
            slice.set(row);
        }
        row
    }

    /// Borrows bit-slice `j`.  Its logical length may be shorter than
    /// [`SliceMatrix::rows`]; missing trailing bits are zero.
    #[inline]
    pub fn slice(&self, j: usize) -> &BitVec {
        &self.slices[j]
    }

    /// Raw words of slice `j`.
    #[inline]
    pub fn slice_words(&self, j: usize) -> &[u64] {
        self.slices[j].words()
    }

    /// ANDs together every slice selected by the set bits of `query`,
    /// writing the result (one bit per row) into `out`.
    ///
    /// A query with no set bits selects nothing, and by the semantics of
    /// `CountItemSet` on an empty itemset the result is "every row" — `out`
    /// is set to all ones.
    pub fn and_selected(&self, query: &Signature, out: &mut BitVec) {
        assert_eq!(query.width(), self.width, "query width mismatch");
        let mut ones = query.iter_ones();
        match ones.next() {
            None => {
                *out = BitVec::ones(self.rows);
            }
            Some(first) => {
                out.clear_all();
                out.grow_to(self.rows);
                out.truncate(self.rows);
                // Seed with the first slice, then AND the rest in.
                {
                    let dst = out.words_mut();
                    let src = self.slices[first].words();
                    let n = src.len().min(dst.len());
                    dst[..n].copy_from_slice(&src[..n]);
                    for w in dst[n..].iter_mut() {
                        *w = 0;
                    }
                }
                for pos in ones {
                    ops::and_assign(out.words_mut(), self.slices[pos].words());
                }
            }
        }
    }

    /// Fused AND + popcount over the slices selected by `query`.
    ///
    /// Equivalent to `and_selected` followed by `count_ones`, but without
    /// materialising the result vector.  An all-zero query counts every row.
    pub fn count_selected(&self, query: &Signature) -> usize {
        assert_eq!(query.width(), self.width, "query width mismatch");
        let selected: Vec<&[u64]> = query.iter_ones().map(|p| self.slices[p].words()).collect();
        if selected.is_empty() {
            return self.rows;
        }
        // Limit the word walk to the number of words covering `rows`; the
        // tail-invariant of BitVec guarantees no stray bits beyond each
        // slice's logical length.
        ops::and_all_count(&selected, words_for(self.rows))
    }

    /// Reconstructs the signature of one row (O(width); intended for tests,
    /// debugging and the row-verification path).
    ///
    /// # Panics
    /// Panics if `row >= rows`.
    pub fn row_signature(&self, row: usize) -> Signature {
        assert!(row < self.rows, "row {row} out of range ({})", self.rows);
        let mut sig = Signature::zeros(self.width);
        for (j, slice) in self.slices.iter().enumerate() {
            if row < slice.len() && slice.get(row) {
                sig.set(j);
            }
        }
        sig
    }

    /// Folds the matrix down to `new_width` slices by ORing slice `j` into
    /// slice `j % new_width`.
    ///
    /// This implements the paper's *MemBBS* construction for the adaptive
    /// (memory-constrained) filter: the first `k` slices are kept and the
    /// remaining `m − k` are "rehashed" onto them.  Folding a query signature
    /// with [`fold_signature`] keeps the no-false-miss guarantee: any bit set
    /// in the original is set in the fold.
    pub fn fold(&self, new_width: usize) -> SliceMatrix {
        assert!(new_width > 0, "fold width must be positive");
        if new_width >= self.width {
            return self.clone();
        }
        let mut folded = SliceMatrix::new(new_width);
        folded.rows = self.rows;
        for (j, slice) in self.slices.iter().enumerate() {
            let dst = &mut folded.slices[j % new_width];
            dst.grow_to(slice.len());
            ops::or_assign(dst.words_mut(), slice.words());
        }
        folded
    }

    /// Reassembles a matrix from raw slices (deserialization path).
    ///
    /// Each slice's logical length may be at most `rows` (shorter slices
    /// zero-extend, as during lazy growth).
    pub fn from_slices(
        width: usize,
        rows: usize,
        slices: Vec<BitVec>,
    ) -> Result<SliceMatrix, &'static str> {
        if width == 0 {
            return Err("width must be positive");
        }
        if slices.len() != width {
            return Err("slice count must equal width");
        }
        if slices.iter().any(|s| s.len() > rows) {
            return Err("slice longer than row count");
        }
        Ok(SliceMatrix {
            width,
            rows,
            slices,
        })
    }

    /// Total heap bytes consumed by the slice storage.
    pub fn heap_bytes(&self) -> usize {
        self.slices.iter().map(|s| s.heap_bytes()).sum()
    }

    /// Bytes a dense on-disk image of this matrix would occupy
    /// (`width × ceil(rows / 8)`), independent of lazy in-memory growth.
    /// This is the figure the I/O cost model charges for full BBS scans.
    pub fn dense_bytes(&self) -> usize {
        self.width * self.rows.div_ceil(8)
    }
}

/// Folds a query signature to `new_width` bits by mapping bit `j` to
/// `j % new_width`, matching [`SliceMatrix::fold`].
pub fn fold_signature(sig: &Signature, new_width: usize) -> Signature {
    let mut out = Signature::zeros(new_width);
    for p in sig.iter_ones() {
        out.set(p % new_width);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sig(width: usize, positions: &[usize]) -> Signature {
        Signature::from_positions(width, positions)
    }

    /// The paper's running example (Tables 1–2): m = 8, h(x) = x mod 8.
    fn running_example() -> SliceMatrix {
        let txns: Vec<Vec<usize>> = vec![
            vec![0, 1, 2, 3, 4, 5, 14, 15],
            vec![1, 2, 3, 5, 6, 7],
            vec![1, 5, 14, 15],
            vec![0, 1, 2, 7],
            vec![1, 2, 5, 6, 11, 15],
        ];
        let mut m = SliceMatrix::new(8);
        for items in &txns {
            let positions: Vec<usize> = items.iter().map(|i| i % 8).collect();
            m.push_row(&sig(8, &positions));
        }
        m
    }

    #[test]
    fn running_example_slices_match_table_2() {
        let m = running_example();
        assert_eq!(m.rows(), 5);
        // Table 2 columns (slice j = bit j of each transaction, rows in
        // transaction order 100..500):
        let expected: [&[usize]; 8] = [
            &[0, 3],          // slice 0: transactions 100, 400
            &[0, 1, 2, 3, 4], // slice 1: all
            &[0, 1, 3, 4],    // slice 2
            &[0, 1, 4],       // slice 3: 100, 200, 500 (500 has 11 % 8 = 3)
            &[0],             // slice 4: 100 only
            &[0, 1, 2, 4],    // slice 5
            &[0, 1, 2, 4],    // slice 6: 14%8=6 or item 6
            &[0, 1, 2, 3, 4], // slice 7: 15%8=7 or item 7
        ];
        for (j, exp) in expected.iter().enumerate() {
            let got: Vec<usize> = m.slice(j).iter_ones().collect();
            assert_eq!(&got, exp, "slice {j}");
        }
    }

    #[test]
    fn running_example_count_itemset() {
        let m = running_example();
        // Example 2 of the paper: I = {0,1} -> vector 11000000 -> slices 0,1
        // AND = rows {0,3} -> count 2 (exact).
        assert_eq!(m.count_selected(&sig(8, &[0, 1])), 2);
        // I = {1,3} -> slices 1,3 -> count 3 (overestimate; true count 2).
        assert_eq!(m.count_selected(&sig(8, &[1, 3])), 3);
    }

    #[test]
    fn and_selected_matches_count_selected() {
        let m = running_example();
        let q = sig(8, &[1, 3]);
        let mut out = BitVec::new();
        m.and_selected(&q, &mut out);
        assert_eq!(out.len(), 5);
        assert_eq!(out.count_ones(), m.count_selected(&q));
        assert_eq!(out.iter_ones().collect::<Vec<_>>(), vec![0, 1, 4]);
    }

    #[test]
    fn empty_query_counts_all_rows() {
        let m = running_example();
        assert_eq!(m.count_selected(&Signature::zeros(8)), 5);
        let mut out = BitVec::new();
        m.and_selected(&Signature::zeros(8), &mut out);
        assert_eq!(out.count_ones(), 5);
    }

    #[test]
    fn untouched_slice_counts_zero() {
        let mut m = SliceMatrix::new(16);
        m.push_row(&sig(16, &[0]));
        m.push_row(&sig(16, &[1]));
        // Slice 9 never set: selecting it alone yields zero.
        assert_eq!(m.count_selected(&sig(16, &[9])), 0);
        // Combined with a set slice still zero.
        assert_eq!(m.count_selected(&sig(16, &[0, 9])), 0);
    }

    #[test]
    fn row_signature_roundtrip() {
        let mut m = SliceMatrix::new(12);
        let sigs = [sig(12, &[0, 5, 11]), sig(12, &[3]), sig(12, &[])];
        for s in &sigs {
            m.push_row(s);
        }
        for (i, s) in sigs.iter().enumerate() {
            assert_eq!(&m.row_signature(i), s);
        }
    }

    #[test]
    #[should_panic(expected = "width")]
    fn push_row_width_mismatch_panics() {
        let mut m = SliceMatrix::new(8);
        m.push_row(&sig(16, &[0]));
    }

    #[test]
    fn fold_preserves_no_false_miss() {
        let m = running_example();
        let folded = m.fold(3);
        assert_eq!(folded.width(), 3);
        assert_eq!(folded.rows(), 5);
        for positions in [&[0usize, 1][..], &[1, 3], &[2, 5, 7]] {
            let q = sig(8, positions);
            let fq = fold_signature(&q, 3);
            // Folding can only increase the estimate, never decrease it.
            assert!(
                folded.count_selected(&fq) >= m.count_selected(&q),
                "fold lost rows for query {positions:?}"
            );
        }
    }

    #[test]
    fn fold_to_wider_is_identity() {
        let m = running_example();
        let f = m.fold(8);
        for j in 0..8 {
            assert_eq!(
                f.slice(j).iter_ones().collect::<Vec<_>>(),
                m.slice(j).iter_ones().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn fold_row_signature_is_folded_original() {
        let m = running_example();
        let folded = m.fold(3);
        for row in 0..m.rows() {
            let orig = m.row_signature(row);
            let expect = fold_signature(&orig, 3);
            assert_eq!(folded.row_signature(row), expect, "row {row}");
        }
    }

    #[test]
    fn dense_bytes_formula() {
        let mut m = SliceMatrix::new(1600);
        for _ in 0..100 {
            m.push_row(&sig(1600, &[0]));
        }
        assert_eq!(m.dense_bytes(), 1600 * 13);
    }

    proptest! {
        #[test]
        fn prop_count_equals_coverage_scan(
            rows in proptest::collection::vec(
                proptest::collection::btree_set(0usize..32, 0..8), 1..30),
            query in proptest::collection::btree_set(0usize..32, 0..6),
        ) {
            let mut m = SliceMatrix::new(32);
            let mut sigs = Vec::new();
            for r in &rows {
                let s = sig(32, &r.iter().copied().collect::<Vec<_>>());
                m.push_row(&s);
                sigs.push(s);
            }
            let q = sig(32, &query.iter().copied().collect::<Vec<_>>());
            let expect = sigs.iter().filter(|s| q.is_covered_by(s)).count();
            prop_assert_eq!(m.count_selected(&q), expect);
            let mut out = BitVec::new();
            m.and_selected(&q, &mut out);
            prop_assert_eq!(out.count_ones(), expect);
        }

        #[test]
        fn prop_fold_never_undercounts(
            rows in proptest::collection::vec(
                proptest::collection::btree_set(0usize..24, 0..6), 1..20),
            query in proptest::collection::btree_set(0usize..24, 1..5),
            new_width in 1usize..24,
        ) {
            let mut m = SliceMatrix::new(24);
            for r in &rows {
                m.push_row(&sig(24, &r.iter().copied().collect::<Vec<_>>()));
            }
            let q = sig(24, &query.iter().copied().collect::<Vec<_>>());
            let folded = m.fold(new_width);
            let fq = fold_signature(&q, new_width);
            prop_assert!(folded.count_selected(&fq) >= m.count_selected(&q));
        }
    }
}
