//! Word-level boolean kernels.
//!
//! All functions treat a `&[u64]` as a little-endian bit string: bit `i`
//! lives in `words[i / 64]` at position `i % 64`.  Slices of different
//! lengths are handled by implicit zero-extension — a missing word behaves
//! as `0u64` — which matches the semantics of a lazily grown bit-slice where
//! trailing rows simply have not had any bit set yet.
//!
//! The heavy entry points (`and_assign`, `count_ones`, `and_all_count`,
//! `and_count_many`) delegate to the tiered blocked kernels in
//! [`crate::ops_simd`]; this module owns the zero-extension contract and
//! the small helpers.

use crate::ops_simd;

/// Returns the `i`-th word of `words`, or `0` if the slice is too short.
#[inline(always)]
pub fn word_or_zero(words: &[u64], i: usize) -> u64 {
    words.get(i).copied().unwrap_or(0)
}

/// Counts the set bits in `words`.
#[inline]
pub fn count_ones(words: &[u64]) -> usize {
    ops_simd::popcount(words)
}

/// `dst &= src`, zero-extending `src` if it is shorter than `dst`.
pub fn and_assign(dst: &mut [u64], src: &[u64]) {
    let n = src.len().min(dst.len());
    let (head, tail) = dst.split_at_mut(n);
    ops_simd::and_words(head, &src[..n]);
    tail.fill(0);
}

/// `dst |= src`. `src` longer than `dst` is a caller bug; the excess is
/// ignored (the destination defines the universe size).
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    let n = src.len().min(dst.len());
    for i in 0..n {
        dst[i] |= src[i];
    }
}

/// `dst &= !src`, zero-extending `src`.
pub fn and_not_assign(dst: &mut [u64], src: &[u64]) {
    let n = src.len().min(dst.len());
    for i in 0..n {
        dst[i] &= !src[i];
    }
}

/// Popcount of `a & b` without materialising the intermediate.
pub fn and_count(a: &[u64], b: &[u64]) -> usize {
    ops_simd::and_all_count_bounded(&[a, b], a.len().min(b.len()), None)
}

/// ANDs every slice in `srcs` into `dst` (which must be pre-filled, e.g. with
/// all-ones or with the first operand).  Short sources zero-extend.
pub fn and_all_into(dst: &mut [u64], srcs: &[&[u64]]) {
    for src in srcs {
        and_assign(dst, src);
    }
}

/// Fused multi-way AND + popcount: returns `popcount(srcs[0] & … & srcs[k-1])`
/// over the first `words` words, without writing an output vector.
///
/// With an empty `srcs` the result is the popcount of the implicit all-ones
/// universe, i.e. `words * 64`; callers that need "count of rows" semantics
/// should special-case the empty query before calling in.
pub fn and_all_count(srcs: &[&[u64]], words: usize) -> usize {
    ops_simd::and_all_count_bounded(srcs, words, None)
}

/// Fused multi-way AND + popcount with early exit against a threshold `tau`.
///
/// Identical to [`and_all_count`] except that counting stops as soon as the
/// running upper bound (bits counted so far plus one bit per remaining row)
/// provably drops below `tau`.  The return value is:
///
/// * exact whenever it is `≥ tau`;
/// * otherwise an **upper bound** on `and_all_count(srcs, words)` — it
///   never undercounts, so a caller that only tests `count < tau` (the
///   BBS filter step, whose estimates already only overcount by Lemmas
///   1–4) gets exactly the same accept/prune decisions as with the exact
///   kernel.
pub fn and_count_many(srcs: &[&[u64]], words: usize, tau: usize) -> usize {
    ops_simd::and_all_count_bounded(srcs, words, Some(tau))
}

/// Iterator over the indices of set bits in a word slice.
pub struct OnesIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    limit: usize,
}

impl<'a> OnesIter<'a> {
    /// Creates an iterator over set bits in `words`, yielding only indices
    /// `< limit` (the logical bit length).
    pub fn new(words: &'a [u64], limit: usize) -> Self {
        let current = words.first().copied().unwrap_or(0);
        OnesIter {
            words,
            word_idx: 0,
            current,
            limit,
        }
    }
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                let idx = self.word_idx * 64 + tz;
                self.current &= self.current - 1;
                if idx >= self.limit {
                    return None;
                }
                return Some(idx);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() || self.word_idx * 64 >= self.limit {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_or_zero_in_and_out_of_range() {
        let w = [1u64, 2, 3];
        assert_eq!(word_or_zero(&w, 0), 1);
        assert_eq!(word_or_zero(&w, 2), 3);
        assert_eq!(word_or_zero(&w, 3), 0);
        assert_eq!(word_or_zero(&[], 0), 0);
    }

    #[test]
    fn count_ones_basic() {
        assert_eq!(count_ones(&[]), 0);
        assert_eq!(count_ones(&[0]), 0);
        assert_eq!(count_ones(&[u64::MAX]), 64);
        assert_eq!(count_ones(&[0b1011, 0b1]), 4);
    }

    #[test]
    fn and_assign_equal_len() {
        let mut a = [0b1100u64, 0b1111];
        and_assign(&mut a, &[0b1010, 0b0101]);
        assert_eq!(a, [0b1000, 0b0101]);
    }

    #[test]
    fn and_assign_short_src_zero_extends() {
        let mut a = [u64::MAX, u64::MAX, u64::MAX];
        and_assign(&mut a, &[0b1]);
        assert_eq!(a, [0b1, 0, 0]);
    }

    #[test]
    fn or_assign_basic() {
        let mut a = [0b1000u64, 0];
        or_assign(&mut a, &[0b0011, 0b1]);
        assert_eq!(a, [0b1011, 0b1]);
    }

    #[test]
    fn and_not_assign_basic() {
        let mut a = [0b1111u64];
        and_not_assign(&mut a, &[0b0101]);
        assert_eq!(a, [0b1010]);
    }

    #[test]
    fn and_count_matches_materialised() {
        let a = [0xF0F0u64, 0xFF];
        let b = [0xFF00u64, 0x0F];
        assert_eq!(and_count(&a, &b), (0xF000u64.count_ones() + 0x0Fu64.count_ones()) as usize);
    }

    #[test]
    fn and_all_count_zero_one_two_many() {
        let a = [0b1111u64];
        let b = [0b1010u64];
        let c = [0b0110u64];
        assert_eq!(and_all_count(&[], 1), 64);
        assert_eq!(and_all_count(&[&a], 1), 4);
        assert_eq!(and_all_count(&[&a, &b], 1), 2);
        assert_eq!(and_all_count(&[&a, &b, &c], 1), 1); // 0b0010
    }

    #[test]
    fn and_all_count_respects_word_limit() {
        let a = [u64::MAX, u64::MAX];
        assert_eq!(and_all_count(&[&a], 1), 64);
        assert_eq!(and_all_count(&[&a], 2), 128);
    }

    #[test]
    fn and_all_count_short_operand_zero_extends() {
        let a = [u64::MAX, u64::MAX];
        let b = [u64::MAX];
        // The second word of b is implicitly 0, so only word 0 contributes.
        assert_eq!(and_all_count(&[&a, &b], 2), 64);
        assert_eq!(and_all_count(&[&a, &b, &a], 2), 64);
    }

    #[test]
    fn and_count_many_exact_at_or_above_tau() {
        let a = [u64::MAX; 40];
        let b = [0xAAAA_AAAA_AAAA_AAAAu64; 40];
        let exact = and_all_count(&[&a, &b], 40);
        assert_eq!(exact, 40 * 32);
        // tau below the exact count: result must be the exact value.
        assert_eq!(and_count_many(&[&a, &b], 40, exact), exact);
        assert_eq!(and_count_many(&[&a, &b], 40, 1), exact);
        // Unreachable tau: any early exit must still be an upper bound.
        let est = and_count_many(&[&a, &b], 40, usize::MAX);
        assert!(est >= exact);
    }

    #[test]
    fn and_count_many_zero_extends_like_exact() {
        let a = [u64::MAX, u64::MAX, u64::MAX];
        let b = [u64::MAX];
        let got = and_count_many(&[&a, &b], 3, 1);
        // Exact count is 64; tau=1 is below it, so the result is exact.
        assert_eq!(got, 64);
    }

    #[test]
    fn ones_iter_walks_all_set_bits() {
        let words = [0b1001u64, 0b1];
        let got: Vec<usize> = OnesIter::new(&words, 128).collect();
        assert_eq!(got, vec![0, 3, 64]);
    }

    #[test]
    fn ones_iter_respects_limit() {
        let words = [u64::MAX];
        let got: Vec<usize> = OnesIter::new(&words, 3).collect();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn ones_iter_empty() {
        assert_eq!(OnesIter::new(&[], 100).count(), 0);
        assert_eq!(OnesIter::new(&[0, 0, 0], 192).count(), 0);
    }
}
