//! Tiered, cache-blocked multi-way AND + popcount kernels.
//!
//! `CountItemSet` is "AND k long bit columns, popcount the result".  The
//! naive shape — k-1 pairwise passes, or a word-at-a-time loop across all
//! operands — is latency-bound and reads the accumulator from memory k
//! times.  The kernels here instead process the operands **one cache block
//! at a time**: a [`BLOCK_WORDS`]-word (4 KiB) stack buffer is seeded from
//! the first operand, every remaining operand is ANDed into it while it is
//! L1-resident, and the block is popcounted before moving on.  Each operand
//! is still streamed from memory exactly once, but the intermediate never
//! leaves the top of the cache hierarchy.
//!
//! Four tiers share that structure and are selected once at runtime:
//!
//! 1. **AVX-512** (`x86_64` only) — 512-bit ANDs plus the dedicated
//!    `VPOPCNTDQ` per-lane popcount instruction, gated on
//!    `is_x86_feature_detected!("avx512f")` + `"avx512vpopcntdq"`.
//! 2. **AVX2** (`x86_64` only) — explicit `std::arch` intrinsics, 256-bit
//!    ANDs plus hardware `POPCNT`, gated on `is_x86_feature_detected!`.
//! 3. **Blocked scalar** — `chunks_exact(4)` loops the compiler can
//!    autovectorize on any target (and does, with SSE2 on baseline x86-64).
//! 4. **Portable reference** — the straight-line word loop; never selected
//!    by dispatch but kept public as the correctness oracle for tests and
//!    as the bench baseline.
//!
//! Dispatch can be overridden with the `BBS_KERNEL_TIER` environment
//! variable (`portable` | `scalar` | `avx2` | `avx512`), read once on the
//! first kernel call — the CI smoke matrix re-runs the kernel property
//! tests under each forced tier.  Forcing a tier the hardware lacks, or an
//! unrecognized value entirely, falls back to auto-detection rather than
//! faulting, with a one-line warning on stderr naming the rejected value.
//!
//! All entry points preserve the zero-extension semantics of [`crate::ops`]:
//! a missing trailing word behaves as `0u64`, so the fused count only walks
//! the prefix every operand covers.
//!
//! This module is the only place in the crate allowed to use `unsafe`; it
//! is confined to the feature-gated intrinsic paths below.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

/// Words per cache block: 512 × 8 B = 4 KiB, small enough to stay
/// L1-resident alongside one streaming operand block.
pub const BLOCK_WORDS: usize = 512;

/// Which kernel implementation dispatch selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Straight-line portable loop (reference/baseline; never auto-selected).
    Portable,
    /// Cache-blocked `chunks_exact` scalar code (autovectorizable).
    Scalar,
    /// Explicit AVX2 + hardware POPCNT intrinsics.
    Avx2,
    /// Explicit AVX-512 intrinsics with per-lane VPOPCNTDQ popcounts.
    Avx512,
}

impl Tier {
    /// Short human-readable name (used in bench output).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Portable => "portable",
            Tier::Scalar => "scalar",
            Tier::Avx2 => "avx2",
            Tier::Avx512 => "avx512",
        }
    }
}

const TIER_UNKNOWN: u8 = 0;
const TIER_SCALAR: u8 = 1;
const TIER_AVX2: u8 = 2;
const TIER_AVX512: u8 = 3;
const TIER_PORTABLE: u8 = 4;

static TIER: AtomicU8 = AtomicU8::new(TIER_UNKNOWN);

/// The tier runtime dispatch resolved to on this machine (cached after the
/// first call).
#[inline]
pub fn active_tier() -> Tier {
    match TIER.load(Ordering::Relaxed) {
        TIER_AVX512 => Tier::Avx512,
        TIER_AVX2 => Tier::Avx2,
        TIER_SCALAR => Tier::Scalar,
        TIER_PORTABLE => Tier::Portable,
        _ => detect_tier(),
    }
}

#[cold]
fn detect_tier() -> Tier {
    let forced = std::env::var("BBS_KERNEL_TIER").ok();
    let (tier, warning) = resolve_tier(forced.as_deref(), avx2_available(), avx512_available());
    if let Some(msg) = warning {
        eprintln!("bbs: {msg}");
    }
    let code = match tier {
        Tier::Portable => TIER_PORTABLE,
        Tier::Scalar => TIER_SCALAR,
        Tier::Avx2 => TIER_AVX2,
        Tier::Avx512 => TIER_AVX512,
    };
    TIER.store(code, Ordering::Relaxed);
    tier
}

/// Resolves a `BBS_KERNEL_TIER` override against the hardware's actual
/// capabilities.  Pure so the pinned behavior is unit-testable: a
/// recognized-and-available tier wins; a recognized-but-unavailable or
/// unrecognized value falls back to runtime detection, with a one-line
/// warning explaining the fallback.
fn resolve_tier(forced: Option<&str>, avx2: bool, avx512: bool) -> (Tier, Option<String>) {
    let auto = if avx512 {
        Tier::Avx512
    } else if avx2 {
        Tier::Avx2
    } else {
        Tier::Scalar
    };
    match forced {
        None => (auto, None),
        Some("portable") => (Tier::Portable, None),
        Some("scalar") => (Tier::Scalar, None),
        Some("avx2") if avx2 => (Tier::Avx2, None),
        Some("avx512") if avx512 => (Tier::Avx512, None),
        Some(unavailable @ ("avx2" | "avx512")) => (
            auto,
            Some(format!(
                "BBS_KERNEL_TIER={unavailable} is not supported by this CPU; \
                 using runtime detection ({})",
                auto.name()
            )),
        ),
        Some(other) => (
            auto,
            Some(format!(
                "ignoring invalid BBS_KERNEL_TIER value {other:?} \
                 (expected portable|scalar|avx2|avx512); \
                 using runtime detection ({})",
                auto.name()
            )),
        ),
    }
}

/// True if the explicit AVX2 tier is available on this machine.
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("popcnt")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True if the explicit AVX-512 (VPOPCNTDQ) tier is available on this
/// machine.
#[inline]
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vpopcntdq")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

// ---------------------------------------------------------------------------
// Dispatched primitive ops (equal-length word runs).
// ---------------------------------------------------------------------------

/// `dst &= src` over `min(dst.len(), src.len())` words, dispatched.
///
/// Unlike [`crate::ops::and_assign`] this does **not** zero the tail of a
/// longer `dst`; it is the raw equal-run primitive the public op wraps.
#[inline]
pub fn and_words(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    #[cfg(target_arch = "x86_64")]
    match active_tier() {
        Tier::Avx512 => {
            // SAFETY: dispatch verified avx512f support at runtime.
            unsafe { and_words_avx512(&mut dst[..n], &src[..n]) };
            return;
        }
        Tier::Avx2 => {
            // SAFETY: dispatch verified avx2 support at runtime.
            unsafe { and_words_avx2(&mut dst[..n], &src[..n]) };
            return;
        }
        _ => {}
    }
    and_words_scalar(&mut dst[..n], &src[..n]);
}

/// Popcount of `words`, dispatched.
#[inline]
pub fn popcount(words: &[u64]) -> usize {
    #[cfg(target_arch = "x86_64")]
    match active_tier() {
        // SAFETY: dispatch verified avx512f+avx512vpopcntdq at runtime.
        Tier::Avx512 => return unsafe { popcount_avx512(words) },
        // SAFETY: dispatch verified avx2+popcnt support at runtime.
        Tier::Avx2 => return unsafe { popcount_avx2(words) },
        _ => {}
    }
    popcount_scalar(words)
}

/// `chunks_exact(4)` AND the compiler can autovectorize on any target.
pub fn and_words_scalar(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    let (dst, src) = (&mut dst[..n], &src[..n]);
    let mut d = dst.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    for (dw, sw) in (&mut d).zip(&mut s) {
        dw[0] &= sw[0];
        dw[1] &= sw[1];
        dw[2] &= sw[2];
        dw[3] &= sw[3];
    }
    for (dw, sw) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dw &= *sw;
    }
}

/// `chunks_exact(4)` popcount with four independent accumulators.
pub fn popcount_scalar(words: &[u64]) -> usize {
    let mut c = words.chunks_exact(4);
    let (mut a0, mut a1, mut a2, mut a3) = (0usize, 0usize, 0usize, 0usize);
    for w in &mut c {
        a0 += w[0].count_ones() as usize;
        a1 += w[1].count_ones() as usize;
        a2 += w[2].count_ones() as usize;
        a3 += w[3].count_ones() as usize;
    }
    let tail: usize = c.remainder().iter().map(|w| w.count_ones() as usize).sum();
    a0 + a1 + a2 + a3 + tail
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn and_words_avx2(dst: &mut [u64], src: &[u64]) {
    use std::arch::x86_64::{_mm256_and_si256, _mm256_loadu_si256, _mm256_storeu_si256};
    let n = dst.len().min(src.len());
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds both slices; loadu/storeu tolerate any
        // alignment.
        unsafe {
            let d = dst.as_mut_ptr().add(i).cast();
            let s = src.as_ptr().add(i).cast();
            _mm256_storeu_si256(d, _mm256_and_si256(_mm256_loadu_si256(d), _mm256_loadu_si256(s)));
        }
        i += 4;
    }
    while i < n {
        dst[i] &= src[i];
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "popcnt")]
unsafe fn popcount_avx2(words: &[u64]) -> usize {
    // With the `popcnt` feature enabled, `u64::count_ones` lowers to the
    // hardware POPCNT instruction; four accumulators hide its latency.
    let mut c = words.chunks_exact(4);
    let (mut a0, mut a1, mut a2, mut a3) = (0usize, 0usize, 0usize, 0usize);
    for w in &mut c {
        a0 += w[0].count_ones() as usize;
        a1 += w[1].count_ones() as usize;
        a2 += w[2].count_ones() as usize;
        a3 += w[3].count_ones() as usize;
    }
    let tail: usize = c.remainder().iter().map(|w| w.count_ones() as usize).sum();
    a0 + a1 + a2 + a3 + tail
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn and_words_avx512(dst: &mut [u64], src: &[u64]) {
    use std::arch::x86_64::{_mm512_and_si512, _mm512_loadu_si512, _mm512_storeu_si512};
    let n = dst.len().min(src.len());
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n bounds both slices; loadu/storeu tolerate any
        // alignment.
        unsafe {
            let d = dst.as_mut_ptr().add(i).cast();
            let s = src.as_ptr().add(i).cast();
            _mm512_storeu_si512(d, _mm512_and_si512(_mm512_loadu_si512(d), _mm512_loadu_si512(s)));
        }
        i += 8;
    }
    while i < n {
        dst[i] &= src[i];
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512vpopcntdq")]
unsafe fn popcount_avx512(words: &[u64]) -> usize {
    // VPOPCNTDQ counts all eight 64-bit lanes at once; the per-lane sums
    // accumulate vertically and reduce horizontally once at the end.
    use std::arch::x86_64::{
        _mm512_add_epi64, _mm512_loadu_si512, _mm512_popcnt_epi64, _mm512_reduce_add_epi64,
        _mm512_setzero_si512,
    };
    let n = words.len();
    let mut acc = _mm512_setzero_si512();
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n bounds the load; loadu tolerates any alignment.
        unsafe {
            let v = _mm512_loadu_si512(words.as_ptr().add(i).cast());
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
        }
        i += 8;
    }
    let mut total = _mm512_reduce_add_epi64(acc) as usize;
    while i < n {
        total += words[i].count_ones() as usize;
        i += 1;
    }
    total
}

// ---------------------------------------------------------------------------
// Fused blocked multi-way AND + popcount.
// ---------------------------------------------------------------------------

/// Fused blocked multi-way AND + popcount with optional early exit.
///
/// Counts `popcount(srcs[0] & … & srcs[k-1])` over the first `words` words,
/// zero-extending short operands.  With `tau = Some(τ)`, counting stops as
/// soon as the running upper bound `acc + 64·words_left` drops below `τ`
/// and returns that bound.  The result is therefore:
///
/// * **exact** when it is `≥ τ` (or when `tau` is `None`), and
/// * an **upper bound** on the true count when it is `< τ`.
///
/// Since BBS estimates never undercount (Lemmas 1–4) and the filter only
/// ever compares the estimate against `τ`, a `< τ` upper bound is as good
/// as the exact value: the itemset is pruned either way, and no frequent
/// itemset can be lost.
pub fn and_all_count_bounded(srcs: &[&[u64]], words: usize, tau: Option<usize>) -> usize {
    and_all_count_tier(active_tier(), srcs, words, tau)
}

/// Like [`and_all_count_bounded`] but with the tier forced by the caller —
/// for benches and tests that compare implementations.  Forcing
/// [`Tier::Avx2`] or [`Tier::Avx512`] on a machine without the feature set
/// falls back to scalar.
pub fn and_all_count_tier(tier: Tier, srcs: &[&[u64]], words: usize, tau: Option<usize>) -> usize {
    if srcs.is_empty() {
        return words * 64;
    }
    // Beyond the shortest operand the AND is identically zero, so only the
    // common prefix can contribute to the count.
    let shortest = srcs.iter().map(|s| s.len()).min().unwrap_or(0);
    let n = words.min(shortest);
    if tier == Tier::Portable {
        return and_all_count_portable_prefix(srcs, n, tau);
    }
    #[cfg(target_arch = "x86_64")]
    let use_avx512 = tier == Tier::Avx512 && avx512_available();
    #[cfg(target_arch = "x86_64")]
    let use_avx2 = tier == Tier::Avx2 && avx2_available();
    #[cfg(not(target_arch = "x86_64"))]
    let (use_avx512, use_avx2) = (false, false);

    let mut buf = [0u64; BLOCK_WORDS];
    let mut acc = 0usize;
    let mut i = 0;
    while i < n {
        let b = (n - i).min(BLOCK_WORDS);
        let blk = &mut buf[..b];
        blk.copy_from_slice(&srcs[0][i..i + b]);
        #[cfg(target_arch = "x86_64")]
        if use_avx512 || use_avx2 {
            acc += if use_avx512 {
                // SAFETY: `use_avx512` implies runtime avx512f+vpopcntdq
                // detection.
                unsafe { block_pass_avx512(blk, &srcs[1..], i) }
            } else {
                // SAFETY: `use_avx2` implies runtime avx2+popcnt detection.
                unsafe { block_pass_avx2(blk, &srcs[1..], i) }
            };
            i += b;
            if let Some(tau) = tau {
                let bound = acc + (n - i) * 64;
                if bound < tau {
                    return bound;
                }
            }
            continue;
        }
        let _ = (use_avx512, use_avx2);
        for s in &srcs[1..] {
            and_words_scalar(blk, &s[i..i + b]);
        }
        acc += popcount_scalar(blk);
        i += b;
        if let Some(tau) = tau {
            let bound = acc + (n - i) * 64;
            if bound < tau {
                return bound;
            }
        }
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "popcnt")]
unsafe fn block_pass_avx2(blk: &mut [u64], rest: &[&[u64]], offset: usize) -> usize {
    for s in rest {
        // SAFETY: callers sliced every operand to cover offset + blk.len().
        unsafe { and_words_avx2(blk, &s[offset..offset + blk.len()]) };
    }
    // SAFETY: same feature set as this function.
    unsafe { popcount_avx2(blk) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512vpopcntdq")]
unsafe fn block_pass_avx512(blk: &mut [u64], rest: &[&[u64]], offset: usize) -> usize {
    for s in rest {
        // SAFETY: callers sliced every operand to cover offset + blk.len().
        unsafe { and_words_avx512(blk, &s[offset..offset + blk.len()]) };
    }
    // SAFETY: same feature set as this function.
    unsafe { popcount_avx512(blk) }
}

/// Straight-line portable multi-way AND + popcount: the pre-blocking
/// word-at-a-time kernel, kept as the correctness oracle and the bench
/// baseline ("scalar seed kernel").
pub fn and_all_count_portable(srcs: &[&[u64]], words: usize) -> usize {
    if srcs.is_empty() {
        return words * 64;
    }
    let shortest = srcs.iter().map(|s| s.len()).min().unwrap_or(0);
    and_all_count_portable_prefix(srcs, words.min(shortest), None)
}

fn and_all_count_portable_prefix(srcs: &[&[u64]], n: usize, tau: Option<usize>) -> usize {
    let mut acc = 0usize;
    for i in 0..n {
        let mut w = srcs[0][i];
        for s in &srcs[1..] {
            w &= s[i];
            if w == 0 {
                break;
            }
        }
        acc += w.count_ones() as usize;
        if let Some(tau) = tau {
            // Early exit at word granularity for the reference tier.
            let bound = acc + (n - i - 1) * 64;
            if bound < tau {
                return bound;
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(seed: u64, words: usize, density_shift: u32) -> Vec<u64> {
        // xorshift64* stream, ANDed down to the requested density.
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..words)
            .map(|_| {
                let mut w = u64::MAX;
                for _ in 0..density_shift {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    w &= x;
                }
                w
            })
            .collect()
    }

    #[test]
    fn tiers_agree_on_random_operands() {
        let a = fill(1, 1600, 1);
        let b = fill(2, 1600, 2);
        let c = fill(3, 1500, 1); // shorter: zero-extension path
        let d = fill(4, 1601, 3);
        let srcs: Vec<&[u64]> = vec![&a, &b, &c, &d];
        for words in [0, 1, 3, 4, 511, 512, 513, 1024, 1499, 1500, 1600, 2000] {
            let want = and_all_count_portable(&srcs, words);
            assert_eq!(and_all_count_tier(Tier::Scalar, &srcs, words, None), want);
            assert_eq!(and_all_count_tier(Tier::Avx2, &srcs, words, None), want);
            assert_eq!(and_all_count_tier(Tier::Avx512, &srcs, words, None), want);
            assert_eq!(and_all_count_bounded(&srcs, words, None), want);
        }
    }

    #[test]
    fn single_and_empty_operands() {
        let a = fill(9, 100, 1);
        let srcs: Vec<&[u64]> = vec![&a];
        let want: usize = a.iter().map(|w| w.count_ones() as usize).sum();
        assert_eq!(and_all_count_bounded(&srcs, 100, None), want);
        assert_eq!(and_all_count_bounded(&[], 7, None), 7 * 64);
        let empty: &[u64] = &[];
        assert_eq!(and_all_count_bounded(&[&a, empty], 100, None), 0);
    }

    #[test]
    fn early_exit_is_tau_consistent() {
        let a = fill(5, 2048, 3);
        let b = fill(6, 2048, 3);
        let srcs: Vec<&[u64]> = vec![&a, &b];
        let exact = and_all_count_bounded(&srcs, 2048, None);
        for tau in [0, 1, exact / 2, exact, exact + 1, exact * 2 + 10, usize::MAX] {
            for tier in [Tier::Portable, Tier::Scalar, Tier::Avx2, Tier::Avx512] {
                let got = and_all_count_tier(tier, &srcs, 2048, Some(tau));
                if got >= tau {
                    assert_eq!(got, exact, "tier {tier:?} tau {tau}");
                } else {
                    assert!(got >= exact, "tier {tier:?} tau {tau}: {got} undercounts {exact}");
                }
            }
        }
    }

    #[test]
    fn and_words_matches_scalar_on_all_lengths() {
        for len in 0..70 {
            let a = fill(11, len, 1);
            let b = fill(12, len, 1);
            let mut d1 = a.clone();
            and_words(&mut d1, &b);
            let mut d2 = a.clone();
            and_words_scalar(&mut d2, &b);
            assert_eq!(d1, d2);
            let want: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x & y).collect();
            assert_eq!(d1, want);
            assert_eq!(popcount(&d1), popcount_scalar(&d1));
        }
    }

    #[test]
    fn dispatch_resolves_to_a_real_tier() {
        let t = active_tier();
        // Portable is reachable only through the BBS_KERNEL_TIER override
        // (the CI tier matrix runs the suite under each forced value).
        assert!(matches!(
            t,
            Tier::Portable | Tier::Scalar | Tier::Avx2 | Tier::Avx512
        ));
        assert!(!t.name().is_empty());
        if std::env::var("BBS_KERNEL_TIER").is_err() {
            // Unforced dispatch never resolves to the reference tier.
            assert!(t != Tier::Portable);
        }
    }

    #[test]
    fn resolve_tier_honors_valid_overrides_without_warning() {
        assert_eq!(resolve_tier(Some("portable"), true, true), (Tier::Portable, None));
        assert_eq!(resolve_tier(Some("scalar"), false, false), (Tier::Scalar, None));
        assert_eq!(resolve_tier(Some("avx2"), true, false), (Tier::Avx2, None));
        assert_eq!(resolve_tier(Some("avx512"), true, true), (Tier::Avx512, None));
    }

    #[test]
    fn resolve_tier_auto_detects_when_unforced() {
        assert_eq!(resolve_tier(None, false, false), (Tier::Scalar, None));
        assert_eq!(resolve_tier(None, true, false), (Tier::Avx2, None));
        assert_eq!(resolve_tier(None, true, true), (Tier::Avx512, None));
    }

    #[test]
    fn resolve_tier_falls_back_on_invalid_value_with_warning() {
        let (tier, warning) = resolve_tier(Some("sse9"), true, false);
        assert_eq!(tier, Tier::Avx2, "invalid value uses runtime detection");
        let msg = warning.expect("a warning names the rejected value");
        assert!(msg.contains("sse9"), "warning names the value: {msg}");
        assert!(msg.contains("avx2"), "warning names the fallback: {msg}");
        // Empty string is invalid too, not a silent auto.
        let (tier, warning) = resolve_tier(Some(""), false, false);
        assert_eq!(tier, Tier::Scalar);
        assert!(warning.is_some());
    }

    #[test]
    fn resolve_tier_falls_back_when_forced_tier_is_unavailable() {
        let (tier, warning) = resolve_tier(Some("avx512"), true, false);
        assert_eq!(tier, Tier::Avx2);
        let msg = warning.expect("unavailable tier warns");
        assert!(msg.contains("avx512"), "{msg}");
        let (tier, warning) = resolve_tier(Some("avx2"), false, false);
        assert_eq!(tier, Tier::Scalar);
        assert!(warning.is_some());
    }
}
