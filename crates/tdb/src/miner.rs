//! The common interface every frequent-pattern miner implements, plus a
//! naive exact reference miner used for cross-validation.

use crate::io::IoStats;
use crate::item::{ItemId, Itemset};
use crate::pattern::PatternSet;
use crate::store::TransactionDb;

/// A minimum-support threshold, either absolute or as a fraction of the
/// database size (the paper quotes percentages, e.g. τ = 0.3 %).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SupportThreshold {
    /// Absolute number of transactions.
    Count(u64),
    /// Fraction of the database size, in `[0, 1]`.
    Fraction(f64),
}

impl SupportThreshold {
    /// A percentage, e.g. `SupportThreshold::percent(0.3)` for the paper's
    /// default τ = 0.3 %.
    pub fn percent(pct: f64) -> Self {
        SupportThreshold::Fraction(pct / 100.0)
    }

    /// Resolves to an absolute count for a database of `db_len` rows.
    ///
    /// A fractional threshold rounds up (a pattern must appear in at least
    /// `ceil(f · D)` transactions) and is clamped to at least 1 so that the
    /// empty pattern set on an empty database stays consistent.
    pub fn resolve(&self, db_len: usize) -> u64 {
        match *self {
            SupportThreshold::Count(c) => c.max(1),
            SupportThreshold::Fraction(f) => {
                assert!((0.0..=1.0).contains(&f), "fraction out of range: {f}");
                ((f * db_len as f64).ceil() as u64).max(1)
            }
        }
    }
}

/// Counters describing one mining run, over and above the raw I/O ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MineStats {
    /// Candidate patterns produced by the filtering phase (BBS schemes) or
    /// candidate generation (Apriori).  For FP-growth this is the number of
    /// patterns emitted (its search is exact).
    pub candidates: u64,
    /// Candidates that turned out to be infrequent (false drops).
    pub false_drops: u64,
    /// Patterns certified frequent *without* consulting the database
    /// (DualFilter's flag 1/2 cases).
    pub certified: u64,
    /// `CountItemSet` invocations against the BBS.
    pub bbs_counts: u64,
    /// Simulated I/O ledger.
    pub io: IoStats,
}

impl MineStats {
    /// False-drop ratio relative to `actual` frequent patterns, if defined.
    pub fn fdr(&self, actual: u64) -> Option<f64> {
        crate::pattern::false_drop_ratio(self.false_drops, actual)
    }
}

/// The result of one mining run: the frequent patterns with their actual
/// supports, plus run statistics.
#[derive(Debug, Clone, Default)]
pub struct MineResult {
    /// The frequent patterns (non-empty itemsets only).
    pub patterns: PatternSet,
    /// Patterns whose reported support is a certified *upper-bound estimate*
    /// rather than an exact count.
    ///
    /// Only the DualFilter schemes populate this: a flag-2 certification
    /// (Lemma 5) guarantees the pattern is frequent without ever learning
    /// its exact support.  For every itemset in this set the reported
    /// support satisfies `actual ≤ reported` and `actual ≥ threshold`.
    /// All other miners report exact supports and leave this empty.
    pub approx_supports: std::collections::HashSet<Itemset>,
    /// Run statistics.
    pub stats: MineStats,
}

/// A frequent-pattern mining algorithm.
///
/// `mine` must return *exactly* the itemsets whose support is at least the
/// resolved threshold, with their exact support counts.  All six algorithms
/// in this workspace (SFS, SFP, DFS, DFP, Apriori, FP-growth) satisfy this
/// contract and are interchangeable behind the trait.
pub trait FrequentPatternMiner {
    /// Human-readable algorithm name (e.g. `"DFP"`).
    fn name(&self) -> &str;

    /// Mines all frequent patterns from `db` at threshold `min_support`.
    fn mine(&mut self, db: &TransactionDb, min_support: SupportThreshold) -> MineResult;
}

/// Exact reference miner: depth-first enumeration with a full-scan support
/// count per candidate.
///
/// Exponentially slower than the real algorithms but obviously correct,
/// which is exactly what a cross-validation oracle should be.  Use only on
/// small databases.
#[derive(Debug, Default, Clone)]
pub struct NaiveMiner;

impl NaiveMiner {
    /// Creates the reference miner.
    pub fn new() -> Self {
        NaiveMiner
    }

    #[allow(clippy::too_many_arguments)]
    fn extend(
        &self,
        db: &TransactionDb,
        tau: u64,
        items: &[ItemId],
        start: usize,
        base: &Itemset,
        out: &mut PatternSet,
        io: &mut IoStats,
    ) {
        for (offset, &item) in items[start..].iter().enumerate() {
            let candidate = base.with_item(item);
            let support = db.count_support(&candidate, io);
            if support >= tau {
                out.insert(candidate.clone(), support);
                self.extend(db, tau, items, start + offset + 1, &candidate, out, io);
            }
        }
    }
}

impl FrequentPatternMiner for NaiveMiner {
    fn name(&self) -> &str {
        "Naive"
    }

    fn mine(&mut self, db: &TransactionDb, min_support: SupportThreshold) -> MineResult {
        let tau = min_support.resolve(db.len());
        let mut result = MineResult::default();
        let vocab = db.vocabulary();
        let mut io = IoStats::new();
        self.extend(db, tau, &vocab, 0, &Itemset::empty(), &mut result.patterns, &mut io);
        result.stats.io = io;
        result.stats.candidates = result.patterns.len() as u64;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Itemset;

    fn set(vals: &[u32]) -> Itemset {
        Itemset::from_values(vals)
    }

    fn paper_db() -> TransactionDb {
        // Table 1 of the paper.
        TransactionDb::from_transactions(vec![
            crate::store::Transaction::new(100, set(&[0, 1, 2, 3, 4, 5, 14, 15])),
            crate::store::Transaction::new(200, set(&[1, 2, 3, 5, 6, 7])),
            crate::store::Transaction::new(300, set(&[1, 5, 14, 15])),
            crate::store::Transaction::new(400, set(&[0, 1, 2, 7])),
            crate::store::Transaction::new(500, set(&[1, 2, 5, 6, 11, 15])),
        ])
    }

    #[test]
    fn threshold_resolution() {
        assert_eq!(SupportThreshold::Count(5).resolve(100), 5);
        assert_eq!(SupportThreshold::Count(0).resolve(100), 1);
        assert_eq!(SupportThreshold::Fraction(0.25).resolve(100), 25);
        assert_eq!(SupportThreshold::percent(0.3).resolve(10_000), 30);
        // ceil: 0.3% of 1001 = 3.003 -> 4.
        assert_eq!(SupportThreshold::percent(0.3).resolve(1001), 4);
        assert_eq!(SupportThreshold::Fraction(0.0).resolve(100), 1);
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn threshold_rejects_bad_fraction() {
        SupportThreshold::Fraction(1.5).resolve(10);
    }

    #[test]
    fn naive_miner_on_paper_db() {
        let db = paper_db();
        let r = NaiveMiner::new().mine(&db, SupportThreshold::Count(3));
        // Hand-checked supports: 1→5, 2→4, 5→4, 15→3, {1,2}→4, {1,5}→4,
        // {2,5}→3, {1,15}→3, {5,15}→3, {1,2,5}→3, {1,5,15}→3.
        assert_eq!(r.patterns.support(&set(&[1])), Some(5));
        assert_eq!(r.patterns.support(&set(&[2])), Some(4));
        assert_eq!(r.patterns.support(&set(&[5])), Some(4));
        assert_eq!(r.patterns.support(&set(&[15])), Some(3));
        assert_eq!(r.patterns.support(&set(&[1, 2])), Some(4));
        assert_eq!(r.patterns.support(&set(&[1, 5])), Some(4));
        assert_eq!(r.patterns.support(&set(&[2, 5])), Some(3));
        assert_eq!(r.patterns.support(&set(&[1, 15])), Some(3));
        assert_eq!(r.patterns.support(&set(&[5, 15])), Some(3));
        assert_eq!(r.patterns.support(&set(&[1, 2, 5])), Some(3));
        assert_eq!(r.patterns.support(&set(&[1, 5, 15])), Some(3));
        assert_eq!(r.patterns.len(), 11);
    }

    #[test]
    fn naive_miner_monotone_in_threshold() {
        let db = paper_db();
        let lo = NaiveMiner::new().mine(&db, SupportThreshold::Count(2));
        let hi = NaiveMiner::new().mine(&db, SupportThreshold::Count(4));
        assert!(hi.patterns.len() <= lo.patterns.len());
        for (items, support) in hi.patterns.iter() {
            assert_eq!(lo.patterns.support(items), Some(support));
        }
    }

    #[test]
    fn naive_miner_empty_db() {
        let db = TransactionDb::new();
        let r = NaiveMiner::new().mine(&db, SupportThreshold::Count(1));
        assert!(r.patterns.is_empty());
    }

    #[test]
    fn naive_miner_threshold_above_db_size() {
        let db = paper_db();
        let r = NaiveMiner::new().mine(&db, SupportThreshold::Count(6));
        assert!(r.patterns.is_empty());
    }

    #[test]
    fn apriori_closure_property_holds() {
        // Every subset of a frequent pattern is frequent (downward closure);
        // the reference miner must exhibit it.
        let db = paper_db();
        let r = NaiveMiner::new().mine(&db, SupportThreshold::Count(3));
        for (items, _) in r.patterns.iter() {
            for k in 1..items.len() {
                for sub in items.subsets_of_len(k) {
                    assert!(
                        r.patterns.contains(&sub),
                        "subset {sub:?} of {items:?} missing"
                    );
                }
            }
        }
    }
}
