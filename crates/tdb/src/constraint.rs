//! Selection constraints over transactions, materialised as bit-slices.
//!
//! §3.4 / §4.9 of the paper: a constraint is a predicate over transactions
//! ("falls in October", "TID divisible by 7").  Materialising it as one
//! extra bit-slice — bit `r` set iff row `r` satisfies the predicate — lets
//! `CountItemSet` answer constrained counting queries by ANDing one more
//! slice into the result.

use crate::store::{TransactionDb, Transaction};
use bbs_bitslice::BitVec;

/// A predicate over transactions that can be compiled to a constraint slice.
pub trait Constraint {
    /// Whether row `row` (holding `txn`) satisfies the constraint.
    fn matches(&self, row: usize, txn: &Transaction) -> bool;

    /// A short human-readable description for reports.
    fn describe(&self) -> String;
}

/// `TID mod divisor == remainder` — the paper's "Sunday transactions" query
/// (`TID` divisible by 7).
#[derive(Debug, Clone, Copy)]
pub struct TidModulo {
    /// Divisor (must be non-zero).
    pub divisor: u64,
    /// Required remainder.
    pub remainder: u64,
}

impl TidModulo {
    /// `TID % divisor == 0`.
    pub fn divisible_by(divisor: u64) -> Self {
        assert!(divisor > 0, "divisor must be non-zero");
        TidModulo {
            divisor,
            remainder: 0,
        }
    }
}

impl Constraint for TidModulo {
    fn matches(&self, _row: usize, txn: &Transaction) -> bool {
        txn.tid.0 % self.divisor == self.remainder
    }

    fn describe(&self) -> String {
        format!("TID % {} == {}", self.divisor, self.remainder)
    }
}

/// `TID` within a half-open range — models time-window constraints such as
/// "during the month of October" when TIDs are assigned chronologically.
#[derive(Debug, Clone, Copy)]
pub struct TidRange {
    /// Inclusive lower bound.
    pub start: u64,
    /// Exclusive upper bound.
    pub end: u64,
}

impl Constraint for TidRange {
    fn matches(&self, _row: usize, txn: &Transaction) -> bool {
        (self.start..self.end).contains(&txn.tid.0)
    }

    fn describe(&self) -> String {
        format!("TID in [{}, {})", self.start, self.end)
    }
}

/// An arbitrary closure constraint.
pub struct FnConstraint<F: Fn(usize, &Transaction) -> bool> {
    f: F,
    label: String,
}

impl<F: Fn(usize, &Transaction) -> bool> FnConstraint<F> {
    /// Wraps a closure with a description label.
    pub fn new(label: impl Into<String>, f: F) -> Self {
        FnConstraint {
            f,
            label: label.into(),
        }
    }
}

impl<F: Fn(usize, &Transaction) -> bool> Constraint for FnConstraint<F> {
    fn matches(&self, row: usize, txn: &Transaction) -> bool {
        (self.f)(row, txn)
    }

    fn describe(&self) -> String {
        self.label.clone()
    }
}

/// Compiles a constraint to a bit-slice over the database's rows.
pub fn build_constraint_slice<C: Constraint + ?Sized>(db: &TransactionDb, c: &C) -> BitVec {
    let mut bits = BitVec::zeros(db.len());
    for (row, txn) in db.transactions().iter().enumerate() {
        if c.matches(row, txn) {
            bits.set(row);
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Itemset;
    use crate::store::Transaction;

    fn db() -> TransactionDb {
        TransactionDb::from_transactions((0..20).map(|i| {
            Transaction::new(i * 3, Itemset::from_values(&[i as u32]))
        }))
    }

    #[test]
    fn tid_modulo_slice() {
        let db = db();
        let slice = build_constraint_slice(&db, &TidModulo::divisible_by(7));
        // TIDs are 0,3,6,…,57; divisible by 7: 0, 21, 42 → rows 0, 7, 14.
        assert_eq!(slice.iter_ones().collect::<Vec<_>>(), vec![0, 7, 14]);
    }

    #[test]
    fn tid_range_slice() {
        let db = db();
        let slice = build_constraint_slice(&db, &TidRange { start: 9, end: 16 });
        // TIDs 9, 12, 15 → rows 3, 4, 5.
        assert_eq!(slice.iter_ones().collect::<Vec<_>>(), vec![3, 4, 5]);
    }

    #[test]
    fn fn_constraint_sees_row_and_txn() {
        let db = db();
        let c = FnConstraint::new("even rows with small items", |row, txn: &Transaction| {
            row % 2 == 0 && txn.items.items()[0].0 < 6
        });
        let slice = build_constraint_slice(&db, &c);
        assert_eq!(slice.iter_ones().collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(c.describe(), "even rows with small items");
    }

    #[test]
    fn constraint_on_empty_db() {
        let db = TransactionDb::new();
        let slice = build_constraint_slice(&db, &TidModulo::divisible_by(7));
        assert_eq!(slice.len(), 0);
        assert_eq!(slice.count_ones(), 0);
    }
}
