//! The transaction store: an append-only database of variable-length
//! transactions with a positional index and page-granular I/O accounting.

use crate::io::{pages_for, IoStats, DEFAULT_PAGE_SIZE};
use crate::item::{ItemId, Itemset};

/// A transaction identifier.
///
/// TIDs are externally meaningful (the paper's §4.9 constraint example keys
/// on `TID mod 7`); row *positions* in the store are a separate notion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub u64);

/// One transaction: a TID and its itemset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// External transaction identifier.
    pub tid: Tid,
    /// The items purchased / accessed, sorted and duplicate-free.
    pub items: Itemset,
}

impl Transaction {
    /// Creates a transaction.
    pub fn new(tid: u64, items: Itemset) -> Self {
        Transaction {
            tid: Tid(tid),
            items,
        }
    }

    /// Serialized size in bytes under the store's record layout:
    /// 8-byte TID + 4-byte item count + 4 bytes per item.
    pub fn record_bytes(&self) -> usize {
        8 + 4 + 4 * self.items.len()
    }
}

/// An append-only transaction database.
///
/// Rows live in memory, but the store keeps the byte offset each record
/// would occupy in a flat file, so it can charge page-granular I/O:
///
/// * a **sequential scan** costs `ceil(total_bytes / page)` page reads and
///   one `db_scans` tick;
/// * a **probe** of specific rows costs one page read per *distinct* page
///   touched (the paper's Probe refiner retrieves "only the relevant
///   tuples" through a positional index).
#[derive(Debug, Clone, Default)]
pub struct TransactionDb {
    txns: Vec<Transaction>,
    /// Byte offset of each record in the simulated flat file.
    offsets: Vec<usize>,
    total_bytes: usize,
    page_size: usize,
}

impl TransactionDb {
    /// Creates an empty database with the default page size.
    pub fn new() -> Self {
        TransactionDb::with_page_size(DEFAULT_PAGE_SIZE)
    }

    /// Creates an empty database with an explicit page size (bytes).
    pub fn with_page_size(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        TransactionDb {
            txns: Vec::new(),
            offsets: Vec::new(),
            total_bytes: 0,
            page_size,
        }
    }

    /// Builds a database from transactions, assigning TIDs `0, 1, 2, …` when
    /// `None` is passed, or using the provided iterator of transactions.
    pub fn from_transactions<I: IntoIterator<Item = Transaction>>(txns: I) -> Self {
        let mut db = TransactionDb::new();
        for t in txns {
            db.push(t);
        }
        db
    }

    /// Builds a database from bare itemsets, assigning sequential TIDs.
    pub fn from_itemsets<I: IntoIterator<Item = Itemset>>(itemsets: I) -> Self {
        let mut db = TransactionDb::new();
        for (i, items) in itemsets.into_iter().enumerate() {
            db.push(Transaction::new(i as u64, items));
        }
        db
    }

    /// Appends a transaction and returns its row position.
    pub fn push(&mut self, txn: Transaction) -> usize {
        let row = self.txns.len();
        self.offsets.push(self.total_bytes);
        self.total_bytes += txn.record_bytes();
        self.txns.push(txn);
        row
    }

    /// Number of transactions.
    #[inline]
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// True if there are no transactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Page size used for I/O accounting.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Size of the simulated flat file in bytes.
    #[inline]
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Number of pages in the simulated flat file.
    pub fn total_pages(&self) -> u64 {
        pages_for(self.total_bytes, self.page_size)
    }

    /// Direct access to a row (no I/O charge; use [`TransactionDb::probe`]
    /// for the accounted path).
    #[inline]
    pub fn get(&self, row: usize) -> &Transaction {
        &self.txns[row]
    }

    /// All rows, in insertion order (no I/O charge).
    #[inline]
    pub fn transactions(&self) -> &[Transaction] {
        &self.txns
    }

    /// Page number of a row in the simulated flat file.
    pub fn page_of(&self, row: usize) -> u64 {
        (self.offsets[row] / self.page_size) as u64
    }

    /// Sequentially scans every transaction, charging one full pass.
    pub fn scan<'a>(&'a self, stats: &mut IoStats) -> impl Iterator<Item = &'a Transaction> {
        stats.db_scans += 1;
        stats.db_pages_read += self.total_pages();
        self.txns.iter()
    }

    /// Fetches the given rows (ascending or not), charging one probe per row
    /// and one page read per distinct page touched.
    ///
    /// # Panics
    /// Panics if any row is out of range.
    pub fn probe<'a>(
        &'a self,
        rows: &[usize],
        stats: &mut IoStats,
    ) -> Vec<&'a Transaction> {
        stats.db_probes += rows.len() as u64;
        let mut pages: Vec<u64> = rows.iter().map(|&r| self.page_of(r)).collect();
        pages.sort_unstable();
        pages.dedup();
        stats.db_pages_read += pages.len() as u64;
        rows.iter().map(|&r| &self.txns[r]).collect()
    }

    /// Like [`TransactionDb::probe`], but charges a page read only on the
    /// *first* touch of each page within the given buffer pool — the model
    /// for a mining run that probes repeatedly while the working set stays
    /// cached (on the paper's 64 MB machine the whole default database fit
    /// in the buffer cache).
    pub fn probe_cached<'a>(
        &'a self,
        rows: &[usize],
        pool: &mut BufferPool,
        stats: &mut IoStats,
    ) -> Vec<&'a Transaction> {
        stats.db_probes += rows.len() as u64;
        for &r in rows {
            if pool.touch(self.page_of(r)) {
                stats.db_pages_read += 1;
            }
        }
        rows.iter().map(|&r| &self.txns[r]).collect()
    }

    /// The set of distinct items appearing anywhere in the database, sorted.
    pub fn vocabulary(&self) -> Vec<ItemId> {
        let mut items: Vec<ItemId> = self
            .txns
            .iter()
            .flat_map(|t| t.items.items().iter().copied())
            .collect();
        items.sort_unstable();
        items.dedup();
        items
    }

    /// Exact support count of an itemset by full scan (charged).
    pub fn count_support(&self, itemset: &Itemset, stats: &mut IoStats) -> u64 {
        self.scan(stats)
            .filter(|t| itemset.is_subset_of(&t.items))
            .count() as u64
    }

    /// Exact support counts of all 1-itemsets in one pass (charged).
    ///
    /// Returns `(item, count)` pairs sorted by item.
    pub fn count_singletons(&self, stats: &mut IoStats) -> Vec<(ItemId, u64)> {
        use std::collections::HashMap;
        let mut counts: HashMap<ItemId, u64> = HashMap::new();
        for t in self.scan(stats) {
            for &it in t.items.items() {
                *counts.entry(it).or_insert(0) += 1;
            }
        }
        let mut out: Vec<(ItemId, u64)> = counts.into_iter().collect();
        out.sort_unstable_by_key(|&(it, _)| it);
        out
    }
}

/// An unbounded buffer pool: remembers which pages have been read so that
/// repeated probes within one mining run charge each page once.
///
/// Unbounded is the honest model for the paper's scales (the 500 KB default
/// database against 64 MB of RAM); a run that needs eviction modelling can
/// create a fresh pool per phase instead.
#[derive(Debug, Default, Clone)]
pub struct BufferPool {
    touched: std::collections::HashSet<u64>,
}

impl BufferPool {
    /// An empty (all-cold) pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Marks a page touched; returns `true` if this is the first touch
    /// (i.e. a real read should be charged).
    pub fn touch(&mut self, page: u64) -> bool {
        self.touched.insert(page)
    }

    /// Number of distinct pages resident.
    pub fn resident_pages(&self) -> usize {
        self.touched.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db3() -> TransactionDb {
        TransactionDb::from_itemsets(vec![
            Itemset::from_values(&[1, 2, 3]),
            Itemset::from_values(&[2, 3]),
            Itemset::from_values(&[1, 3, 9]),
        ])
    }

    #[test]
    fn push_assigns_rows_and_offsets() {
        let db = db3();
        assert_eq!(db.len(), 3);
        // Record sizes: 12+4*3=24, 12+8=20, 12+12=24.
        assert_eq!(db.total_bytes(), 24 + 20 + 24);
        assert_eq!(db.get(0).tid, Tid(0));
        assert_eq!(db.get(2).items, Itemset::from_values(&[1, 3, 9]));
    }

    #[test]
    fn scan_charges_one_pass() {
        let db = db3();
        let mut io = IoStats::new();
        let n = db.scan(&mut io).count();
        assert_eq!(n, 3);
        assert_eq!(io.db_scans, 1);
        assert_eq!(io.db_pages_read, 1); // 68 bytes < one 4096-byte page
    }

    #[test]
    fn page_accounting_with_small_pages() {
        let mut db = TransactionDb::with_page_size(32);
        for i in 0..4 {
            db.push(Transaction::new(i, Itemset::from_values(&[i as u32])));
        }
        // Each record is 16 bytes; offsets 0,16,32,48 → pages 0,0,1,1.
        assert_eq!(db.page_of(0), 0);
        assert_eq!(db.page_of(1), 0);
        assert_eq!(db.page_of(2), 1);
        assert_eq!(db.page_of(3), 1);
        assert_eq!(db.total_pages(), 2);

        let mut io = IoStats::new();
        let got = db.probe(&[0, 1], &mut io);
        assert_eq!(got.len(), 2);
        assert_eq!(io.db_probes, 2);
        assert_eq!(io.db_pages_read, 1, "same page fetched once");

        let mut io2 = IoStats::new();
        db.probe(&[0, 3], &mut io2);
        assert_eq!(io2.db_pages_read, 2, "two distinct pages");
    }

    #[test]
    fn cached_probe_charges_first_touch_only() {
        let mut db = TransactionDb::with_page_size(32);
        for i in 0..4 {
            db.push(Transaction::new(i, Itemset::from_values(&[i as u32])));
        }
        let mut pool = BufferPool::new();
        let mut io = IoStats::new();
        db.probe_cached(&[0, 1], &mut pool, &mut io);
        assert_eq!(io.db_pages_read, 1);
        // Same page again: cached, no charge; new page: one charge.
        db.probe_cached(&[0, 2], &mut pool, &mut io);
        assert_eq!(io.db_pages_read, 2);
        assert_eq!(io.db_probes, 4);
        assert_eq!(pool.resident_pages(), 2);
        // Uncached probe keeps recounting.
        let mut raw = IoStats::new();
        db.probe(&[0], &mut raw);
        db.probe(&[0], &mut raw);
        assert_eq!(raw.db_pages_read, 2);
    }

    #[test]
    fn count_support_scans() {
        let db = db3();
        let mut io = IoStats::new();
        assert_eq!(db.count_support(&Itemset::from_values(&[3]), &mut io), 3);
        assert_eq!(db.count_support(&Itemset::from_values(&[1, 3]), &mut io), 2);
        assert_eq!(db.count_support(&Itemset::from_values(&[7]), &mut io), 0);
        assert_eq!(
            db.count_support(&Itemset::empty(), &mut io),
            3,
            "empty itemset is contained in every transaction"
        );
        assert_eq!(io.db_scans, 4);
    }

    #[test]
    fn count_singletons_matches_per_item_scans() {
        let db = db3();
        let mut io = IoStats::new();
        let singles = db.count_singletons(&mut io);
        assert_eq!(
            singles,
            vec![
                (ItemId(1), 2),
                (ItemId(2), 2),
                (ItemId(3), 3),
                (ItemId(9), 1)
            ]
        );
        assert_eq!(io.db_scans, 1);
    }

    #[test]
    fn vocabulary_is_sorted_unique() {
        let db = db3();
        assert_eq!(
            db.vocabulary(),
            vec![ItemId(1), ItemId(2), ItemId(3), ItemId(9)]
        );
    }

    #[test]
    fn empty_db() {
        let db = TransactionDb::new();
        assert!(db.is_empty());
        assert_eq!(db.total_pages(), 0);
        assert_eq!(db.vocabulary(), Vec::<ItemId>::new());
    }
}
