//! Association-rule generation from mined frequent patterns.
//!
//! Frequent-pattern mining is "a fundamental step" (the paper's opening
//! line) — the classic consumer is association-rule mining: from every
//! frequent itemset `Z` and non-empty proper subset `X ⊂ Z`, emit
//! `X ⇒ Z∖X` when its confidence `supp(Z)/supp(X)` reaches a threshold.
//! This module closes that loop so the workspace covers the end-to-end
//! task, not just the pattern-mining step.

use crate::item::Itemset;
use crate::pattern::PatternSet;

/// An association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationRule {
    /// Left-hand side (non-empty).
    pub antecedent: Itemset,
    /// Right-hand side (non-empty, disjoint from the antecedent).
    pub consequent: Itemset,
    /// Support count of antecedent ∪ consequent.
    pub support: u64,
    /// `supp(X ∪ Y) / supp(X)`, in `(0, 1]`.
    pub confidence: f64,
    /// `confidence / (supp(Y) / |D|)` — how much more likely the consequent
    /// is given the antecedent than baseline.  `None` when the database
    /// size is unknown or the consequent's support is missing.
    pub lift: Option<f64>,
}

impl std::fmt::Display for AssociationRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} => {:?} (support {}, confidence {:.3}",
            self.antecedent, self.consequent, self.support, self.confidence
        )?;
        if let Some(l) = self.lift {
            write!(f, ", lift {l:.2}")?;
        }
        write!(f, ")")
    }
}

/// Generates all rules meeting `min_confidence` from a *complete* pattern
/// set (one where every subset of a frequent pattern is present — true for
/// any output of the miners in this workspace).
///
/// `db_size` enables lift computation when provided.
///
/// Uses the standard confidence-antimonotonicity prune: for a fixed
/// pattern `Z`, if `X ⇒ Z∖X` fails the confidence bar, every rule with an
/// antecedent `⊂ X` fails too, so consequents are grown level-wise.
pub fn generate_rules(
    patterns: &PatternSet,
    min_confidence: f64,
    db_size: Option<u64>,
) -> Vec<AssociationRule> {
    assert!(
        (0.0..=1.0).contains(&min_confidence),
        "confidence must be in [0, 1]"
    );
    let mut rules = Vec::new();
    for (itemset, support) in patterns.iter() {
        if itemset.len() < 2 {
            continue;
        }
        // Level-wise over consequent size.  Consequents that failed at size
        // s cannot be extended (confidence only drops as the antecedent
        // shrinks), mirroring Apriori's rule-generation phase.
        let mut consequents: Vec<Itemset> = itemset
            .items()
            .iter()
            .map(|&i| Itemset::from_items(vec![i]))
            .collect();
        while !consequents.is_empty() {
            let mut surviving = Vec::new();
            for consequent in &consequents {
                if consequent.len() >= itemset.len() {
                    continue;
                }
                let antecedent = subtract(itemset, consequent);
                let Some(ante_support) = patterns.support(&antecedent) else {
                    continue; // incomplete pattern set; skip defensively
                };
                let confidence = support as f64 / ante_support as f64;
                if confidence >= min_confidence {
                    let lift = match (db_size, patterns.support(consequent)) {
                        (Some(n), Some(cons_support)) if cons_support > 0 => {
                            Some(confidence / (cons_support as f64 / n as f64))
                        }
                        _ => None,
                    };
                    rules.push(AssociationRule {
                        antecedent,
                        consequent: consequent.clone(),
                        support,
                        confidence,
                        lift,
                    });
                    surviving.push(consequent.clone());
                }
            }
            consequents = grow_consequents(&surviving);
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .expect("confidences are finite")
            .then(b.support.cmp(&a.support))
    });
    rules
}

fn subtract(from: &Itemset, remove: &Itemset) -> Itemset {
    Itemset::from_items(
        from.items()
            .iter()
            .filter(|i| !remove.contains(**i))
            .copied()
            .collect(),
    )
}

/// Apriori-style join of same-size consequents sharing all but their last
/// item.
fn grow_consequents(level: &[Itemset]) -> Vec<Itemset> {
    let mut out = Vec::new();
    for i in 0..level.len() {
        for j in i + 1..level.len() {
            let a = level[i].items();
            let b = level[j].items();
            if a.len() == b.len() && a[..a.len() - 1] == b[..b.len() - 1] {
                out.push(level[i].with_item(*b.last().expect("non-empty")));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(vals: &[u32]) -> Itemset {
        Itemset::from_values(vals)
    }

    /// supp: {1}=8, {2}=6, {3}=4, {1,2}=5, {1,3}=4, {2,3}=3, {1,2,3}=3,
    /// over a 10-transaction database.
    fn patterns() -> PatternSet {
        let mut ps = PatternSet::new();
        ps.insert(set(&[1]), 8);
        ps.insert(set(&[2]), 6);
        ps.insert(set(&[3]), 4);
        ps.insert(set(&[1, 2]), 5);
        ps.insert(set(&[1, 3]), 4);
        ps.insert(set(&[2, 3]), 3);
        ps.insert(set(&[1, 2, 3]), 3);
        ps
    }

    fn find<'a>(
        rules: &'a [AssociationRule],
        ante: &Itemset,
        cons: &Itemset,
    ) -> Option<&'a AssociationRule> {
        rules
            .iter()
            .find(|r| &r.antecedent == ante && &r.consequent == cons)
    }

    #[test]
    fn confidence_values_are_exact() {
        let rules = generate_rules(&patterns(), 0.0, Some(10));
        // {1} => {2}: 5/8.
        let r = find(&rules, &set(&[1]), &set(&[2])).expect("rule");
        assert!((r.confidence - 0.625).abs() < 1e-12);
        assert_eq!(r.support, 5);
        // lift = 0.625 / (6/10) ≈ 1.0417.
        assert!((r.lift.expect("lift") - 0.625 / 0.6).abs() < 1e-12);
        // {3} => {1}: 4/4 = 1.0, lift = 1.0/(8/10) = 1.25.
        let r = find(&rules, &set(&[3]), &set(&[1])).expect("rule");
        assert_eq!(r.confidence, 1.0);
        assert!((r.lift.expect("lift") - 1.25).abs() < 1e-12);
    }

    #[test]
    fn min_confidence_filters_rules() {
        let all = generate_rules(&patterns(), 0.0, None);
        let strict = generate_rules(&patterns(), 0.8, None);
        assert!(strict.len() < all.len());
        assert!(strict.iter().all(|r| r.confidence >= 0.8));
        // {3} => {1} (confidence 1.0) survives.
        assert!(find(&strict, &set(&[3]), &set(&[1])).is_some());
        // {1} => {2} (0.625) does not.
        assert!(find(&strict, &set(&[1]), &set(&[2])).is_none());
    }

    #[test]
    fn multi_item_consequents_emerge() {
        let rules = generate_rules(&patterns(), 0.0, None);
        // {3} => {1,2}: supp(123)/supp(3) = 3/4.
        let r = find(&rules, &set(&[3]), &set(&[1, 2])).expect("rule");
        assert!((r.confidence - 0.75).abs() < 1e-12);
        // Every rule partitions its pattern.
        for r in &rules {
            assert!(!r.antecedent.is_empty() && !r.consequent.is_empty());
            let whole = r.antecedent.union(&r.consequent);
            assert!(patterns().contains(&whole));
            for i in r.consequent.items() {
                assert!(!r.antecedent.contains(*i));
            }
        }
    }

    #[test]
    fn sorted_by_confidence_then_support() {
        let rules = generate_rules(&patterns(), 0.0, None);
        for w in rules.windows(2) {
            assert!(
                w[0].confidence > w[1].confidence
                    || (w[0].confidence == w[1].confidence && w[0].support >= w[1].support)
            );
        }
    }

    #[test]
    fn singletons_yield_no_rules() {
        let mut ps = PatternSet::new();
        ps.insert(set(&[1]), 5);
        assert!(generate_rules(&ps, 0.0, Some(10)).is_empty());
    }

    #[test]
    fn no_lift_without_db_size() {
        let rules = generate_rules(&patterns(), 0.0, None);
        assert!(rules.iter().all(|r| r.lift.is_none()));
    }

    #[test]
    fn display_is_readable() {
        let rules = generate_rules(&patterns(), 0.9, Some(10));
        let s = rules[0].to_string();
        assert!(s.contains("=>"), "{s}");
        assert!(s.contains("confidence"), "{s}");
    }
}
