//! I/O cost accounting and memory budgets.
//!
//! The paper's experiments ran against on-disk files on a 64 MB machine; the
//! response-time differences between schemes are driven by *how much data
//! each one moves* (database passes, BBS passes, probed pages) and by the
//! algorithmic fallbacks a small memory budget forces.  This reproduction
//! keeps everything in memory but charges every logical transfer to an
//! [`IoStats`] ledger at page granularity, and exposes a byte-denominated
//! [`MemoryBudget`] that the adaptive filter, the chunked sequential-scan
//! refiner, and the budgeted baselines consult.

/// Default page size, in bytes, for the simulated storage layer.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Counters for simulated I/O traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read from the transaction database.
    pub db_pages_read: u64,
    /// Full sequential passes over the transaction database.
    pub db_scans: u64,
    /// Individual transactions fetched by the probe refiner.
    pub db_probes: u64,
    /// Pages read from the BBS slice file.
    pub bbs_pages_read: u64,
    /// Pages written to the BBS slice file (inserts).
    pub bbs_pages_written: u64,
    /// Full passes over the BBS slice file (adaptive filtering).
    pub bbs_passes: u64,
}

impl IoStats {
    /// A zeroed ledger.
    pub fn new() -> Self {
        IoStats::default()
    }

    /// Adds another ledger into this one.
    pub fn merge(&mut self, other: &IoStats) {
        self.db_pages_read += other.db_pages_read;
        self.db_scans += other.db_scans;
        self.db_probes += other.db_probes;
        self.bbs_pages_read += other.bbs_pages_read;
        self.bbs_pages_written += other.bbs_pages_written;
        self.bbs_passes += other.bbs_passes;
    }

    /// Total pages moved in either direction.
    pub fn total_pages(&self) -> u64 {
        self.db_pages_read + self.bbs_pages_read + self.bbs_pages_written
    }
}

/// A byte-denominated memory budget for an algorithm run.
///
/// `MemoryBudget::unlimited()` models the memory-resident case; a finite
/// budget forces the adaptive three-phase filter (BBS), multi-pass counting
/// (Apriori) and chunked candidate verification (SequentialScan), mirroring
/// §4.7 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    bytes: Option<usize>,
}

impl MemoryBudget {
    /// No limit: everything fits.
    pub const fn unlimited() -> Self {
        MemoryBudget { bytes: None }
    }

    /// A budget of `bytes` bytes.
    pub const fn bytes(bytes: usize) -> Self {
        MemoryBudget { bytes: Some(bytes) }
    }

    /// A budget expressed in kibibytes, matching the paper's 250K–2M axis.
    pub const fn kib(kib: usize) -> Self {
        MemoryBudget {
            bytes: Some(kib * 1024),
        }
    }

    /// The limit, if any.
    pub fn limit(&self) -> Option<usize> {
        self.bytes
    }

    /// True if a structure of `bytes` bytes fits in the budget.
    pub fn fits(&self, bytes: usize) -> bool {
        match self.bytes {
            None => true,
            Some(limit) => bytes <= limit,
        }
    }

    /// How many `unit_bytes`-sized objects fit; `usize::MAX` when unlimited.
    ///
    /// Guaranteed to be at least 1 so algorithms always make progress (a
    /// budget too small to hold even one unit degenerates to one-at-a-time
    /// processing, which is what a real system would page through).
    pub fn capacity_of(&self, unit_bytes: usize) -> usize {
        match self.bytes {
            None => usize::MAX,
            Some(limit) => (limit / unit_bytes.max(1)).max(1),
        }
    }
}

impl Default for MemoryBudget {
    fn default() -> Self {
        MemoryBudget::unlimited()
    }
}

/// Number of pages needed for `bytes` bytes under page size `page`.
pub fn pages_for(bytes: usize, page: usize) -> u64 {
    (bytes.div_ceil(page.max(1))) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = IoStats {
            db_pages_read: 1,
            db_scans: 1,
            ..IoStats::default()
        };
        let b = IoStats {
            db_pages_read: 2,
            db_probes: 5,
            bbs_passes: 1,
            ..IoStats::default()
        };
        a.merge(&b);
        assert_eq!(a.db_pages_read, 3);
        assert_eq!(a.db_scans, 1);
        assert_eq!(a.db_probes, 5);
        assert_eq!(a.bbs_passes, 1);
    }

    #[test]
    fn unlimited_budget_fits_everything() {
        let b = MemoryBudget::unlimited();
        assert!(b.fits(usize::MAX));
        assert_eq!(b.capacity_of(1000), usize::MAX);
        assert_eq!(b.limit(), None);
    }

    #[test]
    fn finite_budget() {
        let b = MemoryBudget::kib(1); // 1024 bytes
        assert!(b.fits(1024));
        assert!(!b.fits(1025));
        assert_eq!(b.capacity_of(100), 10);
        assert_eq!(b.capacity_of(4096), 1, "always at least one unit");
        assert_eq!(b.capacity_of(0), 1024);
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0, 4096), 0);
        assert_eq!(pages_for(1, 4096), 1);
        assert_eq!(pages_for(4096, 4096), 1);
        assert_eq!(pages_for(4097, 4096), 2);
    }
}
