//! Plain-text transaction files.
//!
//! The interchange format used by the `bbs` command-line tool (and common
//! to most frequent-itemset tooling, e.g. the FIMI repository datasets):
//! one transaction per line, whitespace-separated non-negative item ids.
//! Blank lines and lines starting with `#` are ignored.  An optional
//! `tid:` prefix carries an explicit transaction identifier; otherwise the
//! 0-based line ordinal is used.
//!
//! ```text
//! # three transactions
//! 1 2 3
//! 42: 2 3
//! 3 9
//! ```

use crate::item::Itemset;
use crate::store::{Transaction, TransactionDb};
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// A parse failure, with the 1-based line number.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Errors from reading a transaction file.
#[derive(Debug)]
pub enum TextError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content.
    Parse(ParseError),
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextError::Io(e) => write!(f, "i/o error: {e}"),
            TextError::Parse(e) => write!(f, "parse error: {e}"),
        }
    }
}

impl std::error::Error for TextError {}

impl From<std::io::Error> for TextError {
    fn from(e: std::io::Error) -> Self {
        TextError::Io(e)
    }
}

/// Parses one line into an optional transaction (None for blanks/comments).
fn parse_line(line: &str, lineno: usize, default_tid: u64) -> Result<Option<Transaction>, TextError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let (tid, items_str) = match trimmed.split_once(':') {
        Some((tid_str, rest)) => {
            let tid = tid_str.trim().parse::<u64>().map_err(|e| {
                TextError::Parse(ParseError {
                    line: lineno,
                    message: format!("bad TID {tid_str:?}: {e}"),
                })
            })?;
            (tid, rest)
        }
        None => (default_tid, trimmed),
    };
    let mut items = Vec::new();
    for tok in items_str.split_whitespace() {
        let v = tok.parse::<u32>().map_err(|e| {
            TextError::Parse(ParseError {
                line: lineno,
                message: format!("bad item {tok:?}: {e}"),
            })
        })?;
        items.push(v);
    }
    if items.is_empty() {
        return Err(TextError::Parse(ParseError {
            line: lineno,
            message: "transaction has no items".into(),
        }));
    }
    Ok(Some(Transaction::new(tid, Itemset::from_values(&items))))
}

/// Reads a transaction database from a reader.
pub fn read_transactions<R: Read>(r: R) -> Result<TransactionDb, TextError> {
    let mut db = TransactionDb::new();
    let reader = BufReader::new(r);
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if let Some(txn) = parse_line(&line, i + 1, db.len() as u64)? {
            db.push(txn);
        }
    }
    Ok(db)
}

/// Reads a transaction database from a file path.
pub fn read_transactions_path(path: &Path) -> Result<TransactionDb, TextError> {
    read_transactions(std::fs::File::open(path)?)
}

/// Writes a database in the text format (with explicit TIDs).
pub fn write_transactions<W: Write>(db: &TransactionDb, w: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    for txn in db.transactions() {
        write!(w, "{}:", txn.tid.0)?;
        for item in txn.items.items() {
            write!(w, " {item}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Writes a database to a file path.
pub fn write_transactions_path(db: &TransactionDb, path: &Path) -> std::io::Result<()> {
    write_transactions(db, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::ItemId;
    use crate::store::Tid;

    #[test]
    fn parses_basic_file() {
        let input = "# comment\n1 2 3\n\n42: 2 3\n9\n";
        let db = read_transactions(input.as_bytes()).expect("parse");
        assert_eq!(db.len(), 3);
        assert_eq!(db.get(0).tid, Tid(0));
        assert_eq!(db.get(0).items.items(), &[ItemId(1), ItemId(2), ItemId(3)]);
        assert_eq!(db.get(1).tid, Tid(42));
        assert_eq!(db.get(2).tid, Tid(2), "default TID is the row ordinal");
    }

    #[test]
    fn rejects_bad_item() {
        let err = read_transactions("1 2 x\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
        assert!(msg.contains("bad item"), "{msg}");
    }

    #[test]
    fn rejects_bad_tid_and_empty_txn() {
        assert!(read_transactions("abc: 1\n".as_bytes()).is_err());
        assert!(read_transactions("5:\n".as_bytes()).is_err());
    }

    #[test]
    fn roundtrip() {
        let input = "7: 1 2\n9: 4\n";
        let db = read_transactions(input.as_bytes()).expect("parse");
        let mut out = Vec::new();
        write_transactions(&db, &mut out).expect("write");
        let again = read_transactions(out.as_slice()).expect("reparse");
        assert_eq!(db.transactions(), again.transactions());
    }

    #[test]
    fn duplicate_items_collapse() {
        let db = read_transactions("5 5 5 1\n".as_bytes()).expect("parse");
        assert_eq!(db.get(0).items.items(), &[ItemId(1), ItemId(5)]);
    }
}
