//! Transaction-database substrate for the BBS frequent-pattern index.
//!
//! This crate owns everything the paper treats as "the database side":
//!
//! * [`item`] — items ([`ItemId`]) and canonical sorted [`Itemset`]s;
//! * [`store`] — the append-only [`TransactionDb`] with a positional index,
//!   page-granular I/O charging, and exact support counting;
//! * [`io`] — the [`IoStats`] ledger and [`MemoryBudget`] (§4.7's axis);
//! * [`pattern`] — mined [`Pattern`]s and [`PatternSet`] collections;
//! * [`miner`] — the [`FrequentPatternMiner`] trait every algorithm in the
//!   workspace implements, [`SupportThreshold`], per-run [`MineStats`] and
//!   the exact [`NaiveMiner`] oracle;
//! * [`constraint`] — §3.4 selection constraints compiled to bit-slices.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod constraint;
pub mod io;
pub mod item;
pub mod miner;
pub mod pattern;
pub mod rules;
pub mod store;
pub mod text;

pub use constraint::{build_constraint_slice, Constraint, FnConstraint, TidModulo, TidRange};
pub use io::{IoStats, MemoryBudget, DEFAULT_PAGE_SIZE};
pub use item::{ItemId, Itemset};
pub use miner::{FrequentPatternMiner, MineResult, MineStats, NaiveMiner, SupportThreshold};
pub use pattern::{false_drop_ratio, Pattern, PatternSet};
pub use rules::{generate_rules, AssociationRule};
pub use store::{BufferPool, Tid, Transaction, TransactionDb};
pub use text::{read_transactions, read_transactions_path, write_transactions, write_transactions_path, TextError};
