//! Frequent patterns and pattern collections.

use crate::item::Itemset;
use std::collections::HashMap;
use std::fmt;

/// A mined pattern: an itemset together with its (actual) support count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// The itemset.
    pub items: Itemset,
    /// Number of transactions containing the itemset.
    pub support: u64,
}

/// A set of patterns keyed by itemset.
///
/// Every miner in the workspace returns one of these, which makes
/// cross-validation ("all six algorithms agree") a single equality check.
#[derive(Clone, Default)]
pub struct PatternSet {
    map: HashMap<Itemset, u64>,
}

impl PatternSet {
    /// An empty set.
    pub fn new() -> Self {
        PatternSet::default()
    }

    /// Inserts or replaces a pattern's support.
    pub fn insert(&mut self, items: Itemset, support: u64) {
        self.map.insert(items, support);
    }

    /// Removes a pattern, returning its support if present.
    pub fn remove(&mut self, items: &Itemset) -> Option<u64> {
        self.map.remove(items)
    }

    /// Support of an itemset, if present.
    pub fn support(&self, items: &Itemset) -> Option<u64> {
        self.map.get(items).copied()
    }

    /// True if the itemset is present.
    pub fn contains(&self, items: &Itemset) -> bool {
        self.map.contains_key(items)
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(itemset, support)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Itemset, u64)> {
        self.map.iter().map(|(k, &v)| (k, v))
    }

    /// All patterns, sorted by (length, items) for stable output.
    pub fn sorted(&self) -> Vec<Pattern> {
        let mut v: Vec<Pattern> = self
            .map
            .iter()
            .map(|(k, &s)| Pattern {
                items: k.clone(),
                support: s,
            })
            .collect();
        v.sort_unstable_by(|a, b| {
            (a.items.len(), &a.items).cmp(&(b.items.len(), &b.items))
        });
        v
    }

    /// Length of the longest pattern.
    pub fn max_len(&self) -> usize {
        self.map.keys().map(|k| k.len()).max().unwrap_or(0)
    }

    /// Merges another set into this one (later insert wins on conflict).
    pub fn extend_from(&mut self, other: &PatternSet) {
        for (k, v) in other.iter() {
            self.map.insert(k.clone(), v);
        }
    }
}

impl PartialEq for PatternSet {
    fn eq(&self, other: &Self) -> bool {
        self.map == other.map
    }
}

impl Eq for PatternSet {}

impl fmt::Debug for PatternSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_map();
        for p in self.sorted() {
            d.entry(&p.items, &p.support);
        }
        d.finish()
    }
}

impl FromIterator<(Itemset, u64)> for PatternSet {
    fn from_iter<T: IntoIterator<Item = (Itemset, u64)>>(iter: T) -> Self {
        PatternSet {
            map: iter.into_iter().collect(),
        }
    }
}

/// False-drop ratio as defined in §4 of the paper:
/// `FDR = false_drops / actual_frequent_count`.
///
/// Returns `None` when there are no actual frequent patterns (the ratio is
/// undefined; the paper's datasets always have some).
pub fn false_drop_ratio(false_drops: u64, actual_frequent: u64) -> Option<f64> {
    if actual_frequent == 0 {
        None
    } else {
        Some(false_drops as f64 / actual_frequent as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Itemset;

    fn set(vals: &[u32]) -> Itemset {
        Itemset::from_values(vals)
    }

    #[test]
    fn insert_lookup_remove() {
        let mut ps = PatternSet::new();
        ps.insert(set(&[1]), 5);
        ps.insert(set(&[1, 2]), 3);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.support(&set(&[1])), Some(5));
        assert_eq!(ps.support(&set(&[2])), None);
        assert!(ps.contains(&set(&[1, 2])));
        assert_eq!(ps.remove(&set(&[1])), Some(5));
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn sorted_orders_by_length_then_items() {
        let mut ps = PatternSet::new();
        ps.insert(set(&[2, 3]), 1);
        ps.insert(set(&[9]), 2);
        ps.insert(set(&[1]), 3);
        ps.insert(set(&[1, 5]), 4);
        let order: Vec<Itemset> = ps.sorted().into_iter().map(|p| p.items).collect();
        assert_eq!(order, vec![set(&[1]), set(&[9]), set(&[1, 5]), set(&[2, 3])]);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut a = PatternSet::new();
        a.insert(set(&[1]), 1);
        a.insert(set(&[2]), 2);
        let mut b = PatternSet::new();
        b.insert(set(&[2]), 2);
        b.insert(set(&[1]), 1);
        assert_eq!(a, b);
        b.insert(set(&[3]), 3);
        assert_ne!(a, b);
    }

    #[test]
    fn max_len_and_empty() {
        let mut ps = PatternSet::new();
        assert_eq!(ps.max_len(), 0);
        assert!(ps.is_empty());
        ps.insert(set(&[1, 2, 3]), 1);
        ps.insert(set(&[4]), 1);
        assert_eq!(ps.max_len(), 3);
    }

    #[test]
    fn fdr_definition() {
        assert_eq!(false_drop_ratio(0, 10), Some(0.0));
        assert_eq!(false_drop_ratio(3, 10), Some(0.3));
        assert_eq!(false_drop_ratio(5, 0), None);
    }

    #[test]
    fn extend_from_merges() {
        let mut a = PatternSet::new();
        a.insert(set(&[1]), 1);
        let mut b = PatternSet::new();
        b.insert(set(&[2]), 2);
        b.insert(set(&[1]), 7);
        a.extend_from(&b);
        assert_eq!(a.support(&set(&[1])), Some(7));
        assert_eq!(a.len(), 2);
    }
}
