//! Items and itemsets.

use std::fmt;

/// A distinct item (literal) in the database's vocabulary.
///
/// The paper's datasets use up to 100 000 distinct items, so a `u32` payload
/// is ample and keeps itemsets compact.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

impl ItemId {
    /// Numeric value used by the hash family ("item name" in the paper).
    #[inline]
    pub fn value(self) -> u64 {
        u64::from(self.0)
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

/// A sorted, duplicate-free set of items.
///
/// Both transactions and patterns are itemsets; keeping them sorted makes
/// subset testing a linear merge and makes the itemset usable as a hash-map
/// key with a canonical representation.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Itemset {
    items: Vec<ItemId>,
}

impl Itemset {
    /// The empty itemset.
    pub fn empty() -> Self {
        Itemset::default()
    }

    /// Builds an itemset from arbitrary items, sorting and deduplicating.
    pub fn from_items(mut items: Vec<ItemId>) -> Self {
        items.sort_unstable();
        items.dedup();
        Itemset { items }
    }

    /// Builds an itemset from raw `u32` item values.
    pub fn from_values(values: &[u32]) -> Self {
        Itemset::from_items(values.iter().copied().map(ItemId).collect())
    }

    /// Builds from a vector that is already sorted and duplicate-free.
    ///
    /// # Panics
    /// Panics in debug builds if the invariant does not hold.
    pub fn from_sorted_unchecked(items: Vec<ItemId>) -> Self {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "not sorted/unique");
        Itemset { items }
    }

    /// Number of items (the pattern "length" `k`).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if this is the empty itemset.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items, sorted ascending.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Membership test (binary search).
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// True if every item of `self` occurs in `other` (sorted merge walk).
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        if self.items.len() > other.items.len() {
            return false;
        }
        let mut oi = other.items.iter();
        'outer: for a in &self.items {
            for b in oi.by_ref() {
                match b.cmp(a) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Returns a new itemset with `item` added (no-op clone if present).
    pub fn with_item(&self, item: ItemId) -> Itemset {
        match self.items.binary_search(&item) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut items = Vec::with_capacity(self.items.len() + 1);
                items.extend_from_slice(&self.items[..pos]);
                items.push(item);
                items.extend_from_slice(&self.items[pos..]);
                Itemset { items }
            }
        }
    }

    /// Returns a new itemset with `item` removed (clone if absent).
    pub fn without_item(&self, item: ItemId) -> Itemset {
        let mut items = self.items.clone();
        if let Ok(pos) = items.binary_search(&item) {
            items.remove(pos);
        }
        Itemset { items }
    }

    /// Set union.
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut items = Vec::with_capacity(self.items.len() + other.items.len());
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => {
                    items.push(self.items[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    items.push(other.items[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    items.push(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        items.extend_from_slice(&self.items[i..]);
        items.extend_from_slice(&other.items[j..]);
        Itemset { items }
    }

    /// Iterator over all subsets of `self` with exactly `k` items, in
    /// lexicographic order.  Used by Apriori's candidate-containment check
    /// and by tests; the count is `C(len, k)`, so callers keep `k` small.
    pub fn subsets_of_len(&self, k: usize) -> SubsetIter<'_> {
        SubsetIter::new(&self.items, k)
    }
}

impl fmt::Debug for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, it) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{it}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ItemId> for Itemset {
    fn from_iter<T: IntoIterator<Item = ItemId>>(iter: T) -> Self {
        Itemset::from_items(iter.into_iter().collect())
    }
}

impl FromIterator<u32> for Itemset {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        Itemset::from_items(iter.into_iter().map(ItemId).collect())
    }
}

/// Iterator over the `k`-subsets of a sorted item slice.
pub struct SubsetIter<'a> {
    items: &'a [ItemId],
    indices: Vec<usize>,
    done: bool,
}

impl<'a> SubsetIter<'a> {
    fn new(items: &'a [ItemId], k: usize) -> Self {
        let done = k > items.len();
        SubsetIter {
            items,
            indices: (0..k).collect(),
            done,
        }
    }
}

impl Iterator for SubsetIter<'_> {
    type Item = Itemset;

    fn next(&mut self) -> Option<Itemset> {
        if self.done {
            return None;
        }
        let out = Itemset::from_sorted_unchecked(
            self.indices.iter().map(|&i| self.items[i]).collect(),
        );
        // Advance to the next combination.
        let k = self.indices.len();
        if k == 0 {
            self.done = true;
            return Some(out);
        }
        let n = self.items.len();
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.indices[i] != i + n - k {
                self.indices[i] += 1;
                for j in i + 1..k {
                    self.indices[j] = self.indices[j - 1] + 1;
                }
                break;
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(vals: &[u32]) -> Itemset {
        Itemset::from_values(vals)
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = set(&[5, 1, 3, 1, 5]);
        assert_eq!(s.items(), &[ItemId(1), ItemId(3), ItemId(5)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contains_and_subset() {
        let a = set(&[1, 3, 5]);
        let b = set(&[0, 1, 2, 3, 4, 5]);
        assert!(a.contains(ItemId(3)));
        assert!(!a.contains(ItemId(2)));
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(Itemset::empty().is_subset_of(&a));
        assert!(a.is_subset_of(&a));
    }

    #[test]
    fn subset_of_disjoint_is_false() {
        assert!(!set(&[7]).is_subset_of(&set(&[1, 2, 3])));
        assert!(!set(&[0]).is_subset_of(&set(&[1, 2, 3])));
        assert!(!set(&[1, 9]).is_subset_of(&set(&[1, 2, 3])));
    }

    #[test]
    fn with_item_keeps_order() {
        let s = set(&[1, 5]);
        assert_eq!(s.with_item(ItemId(3)).items(), &[ItemId(1), ItemId(3), ItemId(5)]);
        assert_eq!(s.with_item(ItemId(0)).items(), &[ItemId(0), ItemId(1), ItemId(5)]);
        assert_eq!(s.with_item(ItemId(9)).items(), &[ItemId(1), ItemId(5), ItemId(9)]);
        assert_eq!(s.with_item(ItemId(5)), s);
    }

    #[test]
    fn without_item_removes() {
        let s = set(&[1, 3, 5]);
        assert_eq!(s.without_item(ItemId(3)), set(&[1, 5]));
        assert_eq!(s.without_item(ItemId(4)), s);
    }

    #[test]
    fn union_merges() {
        assert_eq!(set(&[1, 3]).union(&set(&[2, 3, 7])), set(&[1, 2, 3, 7]));
        assert_eq!(set(&[]).union(&set(&[2])), set(&[2]));
    }

    #[test]
    fn subsets_of_len_enumerates_combinations() {
        let s = set(&[1, 2, 3, 4]);
        let twos: Vec<Itemset> = s.subsets_of_len(2).collect();
        assert_eq!(twos.len(), 6);
        assert_eq!(twos[0], set(&[1, 2]));
        assert_eq!(twos[5], set(&[3, 4]));
        assert_eq!(s.subsets_of_len(0).count(), 1);
        assert_eq!(s.subsets_of_len(4).count(), 1);
        assert_eq!(s.subsets_of_len(5).count(), 0);
    }

    proptest! {
        #[test]
        fn prop_subset_matches_naive(
            a in proptest::collection::btree_set(0u32..50, 0..10),
            b in proptest::collection::btree_set(0u32..50, 0..15),
        ) {
            let sa: Itemset = a.iter().copied().collect();
            let sb: Itemset = b.iter().copied().collect();
            prop_assert_eq!(sa.is_subset_of(&sb), a.is_subset(&b));
        }

        #[test]
        fn prop_union_matches_naive(
            a in proptest::collection::btree_set(0u32..50, 0..10),
            b in proptest::collection::btree_set(0u32..50, 0..10),
        ) {
            let sa: Itemset = a.iter().copied().collect();
            let sb: Itemset = b.iter().copied().collect();
            let expect: Itemset = a.union(&b).copied().collect();
            prop_assert_eq!(sa.union(&sb), expect);
        }

        #[test]
        fn prop_subsets_count_is_binomial(
            items in proptest::collection::btree_set(0u32..20, 0..8),
            k in 0usize..5,
        ) {
            let s: Itemset = items.iter().copied().collect();
            let n = s.len();
            let expect = if k > n { 0 } else {
                (0..k).fold(1usize, |acc, i| acc * (n - i) / (i + 1))
            };
            prop_assert_eq!(s.subsets_of_len(k).count(), expect);
        }
    }
}
