//! Experiment profiles: the paper's parameter defaults plus a scaled-down
//! "quick" profile for CI-sized runs.

use bbs_datagen::QuestConfig;

/// One set of dataset/index parameters for an experiment run.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// `D` — number of transactions.
    pub transactions: usize,
    /// `V` — number of distinct items.
    pub items: u32,
    /// `T` — average transaction length.
    pub avg_txn_len: f64,
    /// `I` — average potentially-large-pattern length.
    pub avg_pattern_len: f64,
    /// Pattern pool size for the Quest generator.
    pub pattern_pool: usize,
    /// `m` — signature width in bits.
    pub width: usize,
    /// `k` — hash functions per item.
    pub hash_k: usize,
    /// Minimum support, percent of `D`.
    pub tau_pct: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Profile {
    /// The paper's defaults (§4): `T10.I10.D10K`, 10 000 items, m = 1600,
    /// τ = 0.3 %.
    pub fn paper() -> Self {
        Profile {
            transactions: 10_000,
            items: 10_000,
            avg_txn_len: 10.0,
            avg_pattern_len: 10.0,
            pattern_pool: 2_000,
            width: 1_600,
            hash_k: 4,
            tau_pct: 0.3,
            seed: 2002,
        }
    }

    /// A scaled-down profile that keeps every ratio of the paper profile but
    /// finishes each experiment in seconds (used by `cargo bench` and CI).
    pub fn quick() -> Self {
        Profile {
            transactions: 2_000,
            items: 2_000,
            avg_txn_len: 10.0,
            avg_pattern_len: 8.0,
            pattern_pool: 400,
            // 640 bits keeps signature density safe across every sweep the
            // quick suite runs (including T = 30 in Fig. 10); see
            // experiments::sweeps::widths for the saturation criterion.
            width: 640,
            hash_k: 4,
            tau_pct: 0.5,
            seed: 2002,
        }
    }

    /// A micro profile for smoke tests: every experiment completes in well
    /// under a second.  The width respects the saturation criterion for its
    /// tiny τ (see `experiments::sweeps::safe_width_floor`).
    pub fn micro() -> Self {
        Profile {
            transactions: 250,
            items: 120,
            avg_txn_len: 6.0,
            avg_pattern_len: 4.0,
            pattern_pool: 30,
            width: 256,
            hash_k: 4,
            tau_pct: 4.0,
            seed: 42,
        }
    }

    /// Selects paper or quick scale from an environment variable /
    /// command-line convention: any argument or `BBS_PROFILE=quick` selects
    /// the quick profile.
    pub fn from_env_and_args() -> Self {
        let quick_arg = std::env::args().any(|a| a == "--quick");
        let quick_env = std::env::var("BBS_PROFILE").is_ok_and(|v| v == "quick");
        if quick_arg || quick_env {
            Profile::quick()
        } else {
            Profile::paper()
        }
    }

    /// The Quest generator configuration for this profile.
    pub fn quest(&self) -> QuestConfig {
        QuestConfig {
            transactions: self.transactions,
            items: self.items,
            avg_txn_len: self.avg_txn_len,
            avg_pattern_len: self.avg_pattern_len,
            pattern_pool: self.pattern_pool,
            correlation: 0.5,
            corruption_mean: 0.5,
            corruption_sd: 0.1,
            seed: self.seed,
        }
    }

    /// The absolute support threshold for a database of `d` transactions.
    pub fn tau_for(&self, d: usize) -> u64 {
        ((self.tau_pct / 100.0 * d as f64).ceil() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_matches_section_4() {
        let p = Profile::paper();
        assert_eq!(p.transactions, 10_000);
        assert_eq!(p.items, 10_000);
        assert_eq!(p.width, 1_600);
        assert_eq!(p.tau_for(10_000), 30);
        assert_eq!(p.quest().label(), "T10.I10.D10K");
    }

    #[test]
    fn quick_profile_is_smaller() {
        let q = Profile::quick();
        let p = Profile::paper();
        assert!(q.transactions < p.transactions);
        assert!(q.width < p.width);
        assert!(q.tau_for(q.transactions) >= 1);
    }
}
