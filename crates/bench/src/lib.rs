//! Experiment harness for the BBS reproduction.
//!
//! Every figure of the paper's evaluation section has a matching function in
//! [`experiments`] and a binary under `src/bin/` (e.g. `fig5_vector_size`).
//! Each binary runs at the paper's parameter scale by default; pass
//! `--quick` (or set `BBS_PROFILE=quick`) for a proportionally scaled-down
//! run.  The `figures` bench target (`cargo bench -p bbs-bench`) runs the
//! whole suite at quick scale; Criterion micro-benchmarks for the bit-slice
//! kernels live in `benches/kernels.rs`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod profile;
pub mod table;

pub use experiments::timed;
pub use profile::Profile;
pub use table::Table;
