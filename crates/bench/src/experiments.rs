//! One function per figure of the paper's evaluation (§4), each returning a
//! [`Table`] with the same series the paper plots.
//!
//! Absolute times differ from the 1997-era SUN Ultra the authors used; what
//! these experiments reproduce is the *shape*: which scheme wins, by what
//! rough factor, and where behaviour changes (see EXPERIMENTS.md for the
//! paper-vs-measured record).

use crate::profile::Profile;
use crate::table::{fmt_secs, Table};
use bbs_apriori::AprioriMiner;
use bbs_core::{
    probe_candidates, run_filter, AdhocEngine, Bbs, BbsMiner, FilterKind, Scheme,
};
use bbs_datagen::{generate_db, WeblogConfig, WeblogGenerator};
use bbs_fptree::FpGrowthMiner;
use bbs_hash::{ItemHasher, Md5BloomHasher};
use bbs_tdb::{
    FrequentPatternMiner, IoStats, MemoryBudget, MineResult, SupportThreshold, TransactionDb,
};
use std::sync::Arc;
use std::time::Instant;

/// Times a closure.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

fn hasher(p: &Profile) -> Arc<dyn ItemHasher> {
    Arc::new(Md5BloomHasher::new(p.hash_k))
}

/// Ground-truth frequent-pattern count (via FP-growth, which is exact and
/// fast enough at these scales).
fn actual_frequent(db: &TransactionDb, tau: u64) -> u64 {
    FpGrowthMiner::new()
        .mine(db, SupportThreshold::Count(tau))
        .patterns
        .len() as u64
}

fn fdr(result: &MineResult, actual: u64) -> f64 {
    if actual == 0 {
        0.0
    } else {
        result.stats.false_drops as f64 / actual as f64
    }
}

/// Figure 5: effect of the signature width `m` on (a) the false-drop ratio
/// and (b) the response time, for SFS/SFP/DFS/DFP.
pub fn run_fig5(p: &Profile, widths: &[usize]) -> (Table, Table) {
    let db = generate_db(p.quest());
    let tau = p.tau_for(db.len());
    let actual = actual_frequent(&db, tau);

    let mut fdr_table = Table::new(
        format!("Figure 5(a): false-drop ratio vs vector size (actual frequent = {actual})"),
        &["m", "SFS", "SFP", "DFS", "DFP"],
    );
    let mut time_table = Table::new(
        "Figure 5(b): response time (s) vs vector size",
        &["m", "SFS", "SFP", "DFS", "DFP"],
    );

    for &m in widths {
        let mut io = IoStats::new();
        let bbs = Bbs::build(m, hasher(p), &db, &mut io);
        let mut fdr_row = vec![m.to_string()];
        let mut time_row = vec![m.to_string()];
        for scheme in Scheme::ALL {
            let mut miner = BbsMiner::with_index(scheme, bbs.clone());
            let (result, secs) = timed(|| miner.mine(&db, SupportThreshold::Count(tau)));
            assert_eq!(result.patterns.len() as u64, actual, "{} m={m}", scheme.name());
            fdr_row.push(format!("{:.4}", fdr(&result, actual)));
            time_row.push(fmt_secs(secs));
        }
        fdr_table.push_row(fdr_row);
        time_table.push_row(time_row);
    }
    (fdr_table, time_table)
}

/// Runs all six algorithms on one database and appends a row per algorithm.
fn compare_all(
    db: &TransactionDb,
    p: &Profile,
    tau: u64,
    label: &str,
    table: &mut Table,
) {
    let actual = actual_frequent(db, tau);
    let threshold = SupportThreshold::Count(tau);

    let mut io = IoStats::new();
    let bbs = Bbs::build(p.width, hasher(p), db, &mut io);
    let mut cells = vec![label.to_string()];
    for scheme in Scheme::ALL {
        let mut miner = BbsMiner::with_index(scheme, bbs.clone());
        let (result, secs) = timed(|| miner.mine(db, threshold));
        assert_eq!(result.patterns.len() as u64, actual, "{}", scheme.name());
        cells.push(fmt_secs(secs));
    }
    let (aps, aps_secs) = timed(|| AprioriMiner::new().mine(db, threshold));
    assert_eq!(aps.patterns.len() as u64, actual, "APS");
    cells.push(fmt_secs(aps_secs));
    let (fps, fps_secs) = timed(|| FpGrowthMiner::new().mine(db, threshold));
    assert_eq!(fps.patterns.len() as u64, actual, "FPS");
    cells.push(fmt_secs(fps_secs));
    cells.push(actual.to_string());
    table.push_row(cells);
}

const COMPARE_HEADERS: [&str; 8] = ["x", "SFS", "SFP", "DFS", "DFP", "APS", "FPS", "patterns"];

/// Figure 6: all six algorithms on the default settings, with the full cost
/// breakdown (the paper plots only response time; the extra columns expose
/// *why* the ordering comes out the way it does).
pub fn run_fig6(p: &Profile) -> Table {
    let mut table = Table::new(
        format!(
            "Figure 6: default settings ({}, V={}, m={}, tau={}%)",
            p.quest().label(),
            p.items,
            p.width,
            p.tau_pct
        ),
        &[
            "algorithm",
            "time (s)",
            "patterns",
            "candidates",
            "false drops",
            "certified",
            "db scans",
            "probe rows",
            "db pages",
            "bbs pages",
        ],
    );
    let db = generate_db(p.quest());
    let tau = p.tau_for(db.len());
    let threshold = SupportThreshold::Count(tau);

    let mut io = IoStats::new();
    let bbs = Bbs::build(p.width, hasher(p), &db, &mut io);
    let mut push = |name: &str, result: &MineResult, secs: f64| {
        table.push_row(vec![
            name.to_string(),
            fmt_secs(secs),
            result.patterns.len().to_string(),
            result.stats.candidates.to_string(),
            result.stats.false_drops.to_string(),
            result.stats.certified.to_string(),
            result.stats.io.db_scans.to_string(),
            result.stats.io.db_probes.to_string(),
            result.stats.io.db_pages_read.to_string(),
            result.stats.io.bbs_pages_read.to_string(),
        ]);
    };
    for scheme in Scheme::ALL {
        let mut miner = BbsMiner::with_index(scheme, bbs.clone());
        let (result, secs) = timed(|| miner.mine(&db, threshold));
        push(scheme.name(), &result, secs);
    }
    let (aps, secs) = timed(|| AprioriMiner::new().mine(&db, threshold));
    push("APS", &aps, secs);
    let (fps, secs) = timed(|| FpGrowthMiner::new().mine(&db, threshold));
    push("FPS", &fps, secs);
    table
}

/// Figure 7: minimum-support sweep.
pub fn run_fig7(p: &Profile, taus_pct: &[f64]) -> Table {
    let mut table = Table::new(
        "Figure 7: response time (s) vs minimum support (%)",
        &COMPARE_HEADERS,
    );
    let db = generate_db(p.quest());
    for &pct in taus_pct {
        let tau = ((pct / 100.0 * db.len() as f64).ceil() as u64).max(1);
        compare_all(&db, p, tau, &format!("{pct}%"), &mut table);
    }
    table
}

/// Figure 8: database-size sweep.
pub fn run_fig8(p: &Profile, sizes: &[usize]) -> Table {
    let mut table = Table::new(
        "Figure 8: response time (s) vs number of transactions",
        &COMPARE_HEADERS,
    );
    for &d in sizes {
        let db = generate_db(p.quest().with_transactions(d));
        compare_all(&db, p, p.tau_for(d), &format!("{d}"), &mut table);
    }
    table
}

/// Figure 9: vocabulary-size sweep.
pub fn run_fig9(p: &Profile, item_counts: &[u32]) -> Table {
    let mut table = Table::new(
        "Figure 9: response time (s) vs number of distinct items",
        &COMPARE_HEADERS,
    );
    for &v in item_counts {
        let db = generate_db(p.quest().with_items(v));
        compare_all(&db, p, p.tau_for(db.len()), &format!("{v}"), &mut table);
    }
    table
}

/// Figure 10: average-transaction-length sweep.
pub fn run_fig10(p: &Profile, lengths: &[f64]) -> Table {
    let mut table = Table::new(
        "Figure 10: response time (s) vs average transaction length",
        &COMPARE_HEADERS,
    );
    for &t in lengths {
        let db = generate_db(p.quest().with_avg_txn_len(t));
        compare_all(&db, p, p.tau_for(db.len()), &format!("{t}"), &mut table);
    }
    table
}

/// Figure 11: memory-budget sweep for DFP vs APS vs FPS.
pub fn run_fig11(p: &Profile, budgets_kib: &[usize]) -> Table {
    let mut table = Table::new(
        "Figure 11: response time (s) vs memory size (KiB)",
        &["mem KiB", "DFP", "APS", "FPS", "DFP bbs passes", "APS scans", "FPS scans"],
    );
    let db = generate_db(p.quest());
    let tau = p.tau_for(db.len());
    let threshold = SupportThreshold::Count(tau);
    let actual = actual_frequent(&db, tau);

    let mut io = IoStats::new();
    let bbs = Bbs::build(p.width, hasher(p), &db, &mut io);

    for &kib in budgets_kib {
        let budget = MemoryBudget::kib(kib);
        let mut dfp = BbsMiner::with_index(Scheme::Dfp, bbs.clone()).with_budget(budget);
        let (dfp_result, dfp_secs) = timed(|| dfp.mine(&db, threshold));
        assert_eq!(dfp_result.patterns.len() as u64, actual, "DFP @{kib}KiB");

        let (aps_result, aps_secs) =
            timed(|| AprioriMiner::new().with_budget(budget).mine(&db, threshold));
        assert_eq!(aps_result.patterns.len() as u64, actual, "APS @{kib}KiB");

        let (fps_result, fps_secs) =
            timed(|| FpGrowthMiner::new().with_budget(budget).mine(&db, threshold));
        assert_eq!(fps_result.patterns.len() as u64, actual, "FPS @{kib}KiB");

        table.push_row(vec![
            kib.to_string(),
            fmt_secs(dfp_secs),
            fmt_secs(aps_secs),
            fmt_secs(fps_secs),
            dfp_result.stats.io.bbs_passes.to_string(),
            aps_result.stats.io.db_scans.to_string(),
            fps_result.stats.io.db_scans.to_string(),
        ]);
    }
    table
}

/// Figure 12: dynamic web-log database — per-day cost of keeping the answer
/// current (DFP appends; APS/FPS start from scratch over the full history).
pub fn run_fig12(p: &Profile, days: usize, sessions_per_day: usize) -> Table {
    let mut table = Table::new(
        "Figure 12: dynamic database — per-day response time (s) and pages moved",
        &[
            "day",
            "db size",
            "DFP update+mine",
            "APS",
            "FPS",
            "DFP pages",
            "APS pages",
            "FPS pages",
        ],
    );
    let cfg = WeblogConfig {
        seed: p.seed,
        ..WeblogConfig::paper_scaled(days, sessions_per_day)
    };
    let mut generator = WeblogGenerator::new(cfg);
    let day0 = generator.next_day().expect("day 0");
    let mut db = TransactionDb::from_transactions(day0.transactions);
    let mut miner = BbsMiner::build(Scheme::Dfp, &db, p.width, hasher(p));
    let threshold = SupportThreshold::percent(p.tau_pct.max(0.5));

    let mut day_idx = 0usize;
    loop {
        let (dfp_result, dfp_secs) = timed(|| miner.mine(&db, threshold));
        let (aps_result, aps_secs) = timed(|| AprioriMiner::new().mine(&db, threshold));
        let (fps_result, fps_secs) = timed(|| FpGrowthMiner::new().mine(&db, threshold));
        assert_eq!(dfp_result.patterns.len(), fps_result.patterns.len());
        assert_eq!(aps_result.patterns.len(), fps_result.patterns.len());

        // Pages each strategy moved for *this day's* answer: DFP pays its
        // mine I/O plus the incremental appends (maintenance ledger delta);
        // APS and FPS pay their full from-scratch runs.
        let maintenance_before = miner.maintenance_io();
        let mut append_secs = 0.0;
        let next = generator.next_day();
        let done = next.is_none();
        if let Some(day) = next {
            let (_, secs) = timed(|| {
                for txn in &day.transactions {
                    miner.append(txn);
                    db.push(txn.clone());
                }
            });
            append_secs = secs;
        }
        let appended_pages = miner
            .maintenance_io()
            .bbs_pages_written
            .saturating_sub(maintenance_before.bbs_pages_written);
        table.push_row(vec![
            day_idx.to_string(),
            db.len().to_string(),
            fmt_secs(dfp_secs + append_secs),
            fmt_secs(aps_secs),
            fmt_secs(fps_secs),
            (dfp_result.stats.io.total_pages() + appended_pages).to_string(),
            aps_result.stats.io.total_pages().to_string(),
            fps_result.stats.io.total_pages().to_string(),
        ]);
        if done {
            break;
        }
        day_idx += 1;
    }
    table
}

/// Figure 13: ad-hoc queries — Q1 (exact count of a non-frequent pattern)
/// and Q2 (count under a `TID % 7 == 0` constraint), DFP vs APS.  FPS
/// cannot answer either (no performance row, as in the paper).
pub fn run_fig13(p: &Profile) -> Table {
    let mut table = Table::new(
        "Figure 13: ad-hoc query response time (s), DFP vs APS (FPS: not applicable)",
        &["query", "DFP", "APS (rescan)"],
    );
    let db = generate_db(p.quest());
    let mut io = IoStats::new();
    let bbs = Bbs::build(p.width, hasher(p), &db, &mut io);
    let engine = AdhocEngine::new(&bbs, &db);

    // A handful of genuinely non-frequent 2-item patterns from the data.
    let queries: Vec<bbs_tdb::Itemset> = db
        .transactions()
        .iter()
        .step_by((db.len() / 8).max(1))
        .take(8)
        .map(|t| {
            bbs_tdb::Itemset::from_items(t.items.items().iter().take(2).copied().collect())
        })
        .collect();

    // Q1: DFP probes; APS has no materialised answer and must rescan.
    let (dfp_counts, dfp_q1) = timed(|| {
        let mut io = IoStats::new();
        queries
            .iter()
            .map(|q| engine.count(q, &mut io))
            .collect::<Vec<_>>()
    });
    let (aps_counts, aps_q1) = timed(|| {
        let mut io = IoStats::new();
        queries
            .iter()
            .map(|q| db.count_support(q, &mut io))
            .collect::<Vec<_>>()
    });
    assert_eq!(dfp_counts, aps_counts, "Q1 answers must agree");
    table.push_row(vec![
        "Q1: count of non-frequent patterns".into(),
        fmt_secs(dfp_q1),
        fmt_secs(aps_q1),
    ]);

    // Q2: constrained counts (TID divisible by 7).
    let constraint = bbs_tdb::TidModulo::divisible_by(7);
    let (dfp_c, dfp_q2) = timed(|| {
        let mut io = IoStats::new();
        let slice = engine.compile_constraint(&constraint, &mut io);
        queries
            .iter()
            .map(|q| engine.count_with_slice(q, &slice, &mut io))
            .collect::<Vec<_>>()
    });
    let (aps_c, aps_q2) = timed(|| {
        queries
            .iter()
            .map(|q| {
                db.transactions()
                    .iter()
                    .filter(|t| t.tid.0 % 7 == 0 && q.is_subset_of(&t.items))
                    .count() as u64
            })
            .collect::<Vec<_>>()
    });
    assert_eq!(dfp_c, aps_c, "Q2 answers must agree");
    table.push_row(vec![
        "Q2: counts where TID % 7 == 0".into(),
        fmt_secs(dfp_q2),
        fmt_secs(aps_q2),
    ]);
    table
}

/// Ablation A1: the Bloom parameter `k` (hash functions per item) — not in
/// the paper, but DESIGN.md calls out the k/m trade-off.
pub fn run_ablation_hash_k(p: &Profile, ks: &[usize]) -> Table {
    let mut table = Table::new(
        "Ablation A1: hash functions per item (DFP)",
        &["k", "FDR", "time (s)", "certified", "probes"],
    );
    let db = generate_db(p.quest());
    let tau = p.tau_for(db.len());
    let actual = actual_frequent(&db, tau);
    for &k in ks {
        let mut io = IoStats::new();
        let bbs = Bbs::build(p.width, Arc::new(Md5BloomHasher::new(k)), &db, &mut io);
        let mut miner = BbsMiner::with_index(Scheme::Dfp, bbs);
        let (result, secs) = timed(|| miner.mine(&db, SupportThreshold::Count(tau)));
        assert_eq!(result.patterns.len() as u64, actual, "k={k}");
        table.push_row(vec![
            k.to_string(),
            format!("{:.4}", fdr(&result, actual)),
            fmt_secs(secs),
            result.stats.certified.to_string(),
            result.stats.io.db_probes.to_string(),
        ]);
    }
    table
}

/// Ablation A2: integrated vs two-phase probing — quantifies the
/// false-drop-chain effect §3.3 claims integration avoids.
pub fn run_ablation_integration(p: &Profile) -> Table {
    let mut table = Table::new(
        "Ablation A2: integrated vs two-phase probe refinement (single filter)",
        &["variant", "candidates", "false drops", "probes", "time (s)"],
    );
    let db = generate_db(p.quest());
    let tau = p.tau_for(db.len());
    let mut io = IoStats::new();
    let bbs = Bbs::build(p.width, hasher(p), &db, &mut io);

    // Integrated (SFP as shipped).
    let mut sfp = BbsMiner::with_index(Scheme::Sfp, bbs.clone());
    let (integrated, int_secs) = timed(|| sfp.mine(&db, SupportThreshold::Count(tau)));

    // Two-phase: full SingleFilter, then probe every candidate.
    let ((filter_out, refine_out), two_secs) = timed(|| {
        let f = run_filter(&bbs, FilterKind::Single, None, tau);
        let r = probe_candidates(&db, &bbs, &f.uncertain, tau);
        (f, r)
    });
    assert_eq!(
        integrated.patterns.len(),
        refine_out.confirmed.len(),
        "same final answer"
    );

    table.push_row(vec![
        "integrated (SFP)".into(),
        integrated.stats.candidates.to_string(),
        integrated.stats.false_drops.to_string(),
        integrated.stats.io.db_probes.to_string(),
        fmt_secs(int_secs),
    ]);
    table.push_row(vec![
        "two-phase".into(),
        filter_out.stats.candidates.to_string(),
        refine_out.false_drops.to_string(),
        refine_out.io.db_probes.to_string(),
        fmt_secs(two_secs),
    ]);
    table
}

/// Ablation A3: adaptive folding (§3.1) vs pre-built tiers (footnote 6)
/// under shrinking memory budgets.
pub fn run_ablation_tiered(p: &Profile, budgets_kib: &[usize]) -> Table {
    let mut table = Table::new(
        "Ablation A3: adaptive fold vs tiered indexes (DFP under memory budgets)",
        &[
            "mem KiB",
            "fold time",
            "tier time",
            "fold candidates",
            "tier candidates",
            "tier width",
        ],
    );
    let db = generate_db(p.quest());
    let tau = p.tau_for(db.len());
    let threshold = SupportThreshold::Count(tau);
    let actual = actual_frequent(&db, tau);

    let mut io = IoStats::new();
    let bbs = Bbs::build(p.width, hasher(p), &db, &mut io);
    // Tier widths: powers of two down from the full width, staying above
    // the saturation floor.
    let floor = sweeps::safe_width_floor(p);
    let mut tier_widths = Vec::new();
    let mut w = p.width;
    while w >= floor && tier_widths.len() < 5 {
        tier_widths.push(w);
        w /= 2;
    }
    let tiered = bbs_core::TieredBbs::build(&db, &tier_widths, hasher(p), &mut io);

    for &kib in budgets_kib {
        let budget = MemoryBudget::kib(kib);

        let mut fold_miner = BbsMiner::with_index(Scheme::Dfp, bbs.clone()).with_budget(budget);
        let (fold_result, fold_secs) = timed(|| fold_miner.mine(&db, threshold));
        assert_eq!(fold_result.patterns.len() as u64, actual, "fold @{kib}KiB");

        let tier = tiered.select(budget);
        let mut tier_miner = BbsMiner::with_index(Scheme::Dfp, tier.clone()).with_budget(budget);
        let (tier_result, tier_secs) = timed(|| tier_miner.mine(&db, threshold));
        assert_eq!(tier_result.patterns.len() as u64, actual, "tier @{kib}KiB");

        table.push_row(vec![
            kib.to_string(),
            fmt_secs(fold_secs),
            fmt_secs(tier_secs),
            fold_result.stats.candidates.to_string(),
            tier_result.stats.candidates.to_string(),
            tier.width().to_string(),
        ]);
    }
    table
}


/// Ablation A4: Apriori candidate counting — modern prefix trie vs the
/// original VLDB '94 hash tree.
pub fn run_ablation_counters(p: &Profile, taus_pct: &[f64]) -> Table {
    let mut table = Table::new(
        "Ablation A4: Apriori counting structure (trie vs hash tree)",
        &["tau", "trie (s)", "hash tree (s)", "patterns"],
    );
    let db = generate_db(p.quest());
    for &pct in taus_pct {
        let threshold = SupportThreshold::percent(pct);
        let (trie_result, trie_secs) = timed(|| AprioriMiner::new().mine(&db, threshold));
        let (tree_result, tree_secs) = timed(|| {
            AprioriMiner::new()
                .with_counter(bbs_apriori::CounterKind::HashTree)
                .mine(&db, threshold)
        });
        assert_eq!(trie_result.patterns, tree_result.patterns, "tau {pct}%");
        table.push_row(vec![
            format!("{pct}%"),
            fmt_secs(trie_secs),
            fmt_secs(tree_secs),
            trie_result.patterns.len().to_string(),
        ]);
    }
    table
}

/// The sweep axes used by the paper for each figure, expressed relative to a
/// profile so the quick profile scales them down consistently.
pub mod sweeps {
    use super::Profile;

    /// Smallest signature width (or fold width) at which the filters stay
    /// selective: with density `d = T·k/m`, requires `d^k · D < τ/2`.
    /// Below this, nearly every itemset passes `CountItemSet` and the
    /// two-phase filters enumerate an exponential candidate set.
    pub fn safe_width_floor(p: &Profile) -> usize {
        let bits_per_txn = p.avg_txn_len * p.hash_k as f64;
        let tau = (p.tau_pct / 100.0 * p.transactions as f64).max(1.0);
        let d_max = (tau / 2.0 / p.transactions as f64).powf(1.0 / p.hash_k as f64);
        (bits_per_txn / d_max).ceil() as usize
    }

    /// Fig. 5: m from 400 to 6400 (paper); scaled by width/1600 for other
    /// profiles, but never below the saturation floor.
    ///
    /// A transaction sets about `T·k` of the `m` bits; when the resulting
    /// density `d = T·k/m` satisfies `d^k · D ≥ τ`, *every* itemset passes
    /// the filter and the two-phase schemes enumerate an exponential
    /// candidate set (the §2.2 trade-off taken to its breaking point).  The
    /// sweep stays above the width where `d^k · D < τ/2` so the FDR curve is
    /// steep but the runs terminate.
    pub fn widths(p: &Profile) -> Vec<usize> {
        let scale = p.width as f64 / 1600.0;
        let floor = safe_width_floor(p);
        let mut widths: Vec<usize> = [400usize, 800, 1600, 3200, 6400]
            .iter()
            .map(|&m| ((m as f64 * scale) as usize).max(floor))
            .collect();
        widths.dedup();
        widths
    }

    /// Fig. 7: τ from 0.1 % to 1.2 %.
    pub fn taus(_p: &Profile) -> Vec<f64> {
        vec![0.1, 0.2, 0.3, 0.6, 0.9, 1.2]
    }

    /// Fig. 8: D from 1× to 10× the profile size.
    pub fn sizes(p: &Profile) -> Vec<usize> {
        [1usize, 2, 5, 10]
            .iter()
            .map(|&f| p.transactions * f)
            .collect()
    }

    /// Fig. 9: V from 1× to 10× the profile vocabulary.
    pub fn item_counts(p: &Profile) -> Vec<u32> {
        [1u32, 2, 5, 10].iter().map(|&f| p.items * f).collect()
    }

    /// Fig. 10: T from 10 to 30.
    pub fn lengths(_p: &Profile) -> Vec<f64> {
        vec![10.0, 15.0, 20.0, 25.0, 30.0]
    }

    /// Fig. 11: memory 250 KiB – 2 MiB (paper), scaled to the index size for
    /// other profiles so the budget always straddles the fold threshold —
    /// but never folding below the saturation floor (MemBBS density obeys
    /// the same criterion as the raw width; the paper's own smallest budget,
    /// 250 K for a 2 MB BBS, folds 1600 → 200 slices, which is just safe at
    /// its parameters).
    pub fn budgets_kib(p: &Profile) -> Vec<usize> {
        let slice_bytes = p.transactions.div_ceil(8);
        let dense_kib = (p.width * slice_bytes / 1024).max(8);
        let floor_kib = (safe_width_floor(p) * slice_bytes).div_ceil(1024) + 1;
        let mut budgets: Vec<usize> = [1usize, 2, 4, 8]
            .iter()
            .map(|&f| (dense_kib * f / 8).max(floor_kib))
            .collect();
        budgets.dedup();
        budgets
    }

    /// Ablation A1: k sweep.
    pub fn ks(_p: &Profile) -> Vec<usize> {
        vec![1, 2, 4, 6, 8]
    }
}
