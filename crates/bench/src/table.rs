//! Plain-text result tables for the experiment harness.

use std::fmt::Write as _;

/// A simple aligned table: one per reproduced figure.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title, e.g. `"Figure 5(a): FDR vs vector size"`.
    pub title: String,
    /// Column headers; the first column is the sweep variable.
    pub headers: Vec<String>,
    /// Data rows (stringified cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row/header mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "=== {} ===", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(s, "{:>width$}  ", cell, width = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (title as a comment line).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a duration in seconds with millisecond resolution.
pub fn fmt_secs(secs: f64) -> String {
    format!("{secs:.3}")
}

/// Formats a ratio as a percentage with one decimal.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.push_row(vec!["1".into(), "10".into()]);
        t.push_row(vec!["100".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("=== demo ==="));
        assert!(s.contains("  x  value"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row/header mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "# demo\na,b\n1,2\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(1.23456), "1.235");
        assert_eq!(fmt_pct(0.1234), "12.3%");
    }
}
