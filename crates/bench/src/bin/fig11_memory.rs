//! Figure 11: effect of the memory budget on DFP, APS and FPS.

use bbs_bench::experiments::{run_fig11, sweeps};
use bbs_bench::Profile;

fn main() {
    let p = Profile::from_env_and_args();
    run_fig11(&p, &sweeps::budgets_kib(&p)).print();
}
