//! Ablation A4: Apriori counting structures (prefix trie vs the original
//! hash tree).

use bbs_bench::experiments::run_ablation_counters;
use bbs_bench::Profile;

fn main() {
    let p = Profile::from_env_and_args();
    run_ablation_counters(&p, &[p.tau_pct / 2.0, p.tau_pct, p.tau_pct * 2.0]).print();
}
