//! `bench_kernels` — machine-readable performance snapshot of the counting
//! path, written to `BENCH_2.json`.
//!
//! Two experiments:
//!
//! 1. **Kernel tiers**: the fused multi-way AND+popcount at each dispatch
//!    tier (portable word loop, cache-blocked autovectorized scalar,
//!    explicit AVX2 where the CPU has it), reported as ops/s (one op = one
//!    full k-operand count) and effective GiB/s.
//! 2. **Disk counts, cold vs warm**: `CountItemSet` against a real
//!    deployment's slice file through a fresh page cache (cold) and again
//!    once the selected pages and hot slices are resident (warm).
//!
//! Usage: `bench_kernels [OUT.json]` (default `BENCH_2.json`).

use bbs_bitslice::ops_simd::{self, Tier};
use bbs_hash::Md5BloomHasher;
use bbs_storage::DiskDeployment;
use bbs_tdb::{Itemset, Transaction};
use std::sync::Arc;
use std::time::Instant;

fn deterministic_words(n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        })
        .collect()
}

/// Times `f` repeatedly until ~`budget_ms` of wall clock is spent and
/// returns (iterations, seconds).
fn measure(budget_ms: u64, mut f: impl FnMut() -> u64) -> (u64, f64) {
    // Warm-up.
    let mut sink = 0u64;
    for _ in 0..3 {
        sink = sink.wrapping_add(f());
    }
    let budget = std::time::Duration::from_millis(budget_ms);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        sink = sink.wrapping_add(f());
        iters += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    (iters, secs)
}

struct TierResult {
    name: &'static str,
    ops_per_s: f64,
    gib_per_s: f64,
}

fn bench_tiers(operands: usize, words: usize) -> Vec<TierResult> {
    let slices: Vec<Vec<u64>> = (0..operands)
        .map(|i| deterministic_words(words, 0xC0FF_EE00 + i as u64))
        .collect();
    let refs: Vec<&[u64]> = slices.iter().map(|s| s.as_slice()).collect();
    let bytes = (operands * words * 8) as f64;

    let mut results = Vec::new();
    let mut run = |name: &'static str, f: &mut dyn FnMut() -> u64| {
        let (iters, secs) = measure(300, f);
        let ops_per_s = iters as f64 / secs;
        results.push(TierResult {
            name,
            ops_per_s,
            gib_per_s: ops_per_s * bytes / (1024.0 * 1024.0 * 1024.0),
        });
    };
    run("scalar", &mut || {
        ops_simd::and_all_count_portable(&refs, words) as u64
    });
    run("blocked", &mut || {
        ops_simd::and_all_count_tier(Tier::Scalar, &refs, words, None) as u64
    });
    if ops_simd::avx2_available() {
        run("avx2", &mut || {
            ops_simd::and_all_count_tier(Tier::Avx2, &refs, words, None) as u64
        });
    }
    results
}

struct DiskResult {
    rows: u64,
    cold_us: f64,
    warm_us: f64,
    cold_misses: u64,
    warm_hits: u64,
    warm_hit_rate: f64,
    hot_decodes: u64,
}

fn bench_disk() -> std::io::Result<DiskResult> {
    let mut base = std::env::temp_dir();
    base.push(format!("bbs_bench2_{}", std::process::id()));
    DiskDeployment::remove_files(&base).ok();
    let hasher = Arc::new(Md5BloomHasher::new(4));
    let mut dep = DiskDeployment::open(&base, 512, hasher, 4096)?;
    for i in 0..40_000u64 {
        let items: Vec<u32> = vec![
            (i % 100) as u32,
            (100 + i % 50) as u32,
            (200 + i % 20) as u32,
        ];
        dep.append(&Transaction::new(i, Itemset::from_values(&items)))?;
    }
    dep.flush()?;
    let rows = dep.db.len();

    let queries: Vec<Itemset> = (0..20u32)
        .map(|v| Itemset::from_values(&[v, 100 + v % 50]))
        .collect();

    // Cold: a fresh reader, empty page cache, first pass over the queries.
    let mut cold_reader = dep.index.counter()?;
    let cold_start = Instant::now();
    for q in &queries {
        std::hint::black_box(cold_reader.count(q, None)?);
    }
    let cold_us = cold_start.elapsed().as_secs_f64() * 1e6 / queries.len() as f64;
    let cold_misses = cold_reader.cache_stats().misses;

    // Warm: same reader, pages resident and hot slices pinned; average
    // over many passes.
    let mut passes = 0u32;
    let warm_start = Instant::now();
    while warm_start.elapsed().as_millis() < 300 {
        for q in &queries {
            std::hint::black_box(cold_reader.count(q, None)?);
        }
        passes += 1;
    }
    let warm_us =
        warm_start.elapsed().as_secs_f64() * 1e6 / (queries.len() as f64 * passes as f64);
    let warm = cold_reader.cache_stats();
    let warm_hit_rate = warm.hits as f64 / (warm.hits + warm.misses) as f64;
    let hot_decodes = cold_reader.hot_stats().decodes;
    drop(cold_reader);
    drop(dep);
    DiskDeployment::remove_files(&base).ok();
    Ok(DiskResult {
        rows,
        cold_us,
        warm_us,
        cold_misses,
        warm_hits: warm.hits,
        warm_hit_rate,
        hot_decodes,
    })
}

fn main() -> std::io::Result<()> {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_2.json".to_string());
    let operands = 4;
    let words = 32 * ops_simd::BLOCK_WORDS; // 512-word blocks, 1 Mibit/operand
    eprintln!("# kernel tiers: {operands} operands x {words} words (active tier: {})",
        ops_simd::active_tier().name());
    let tiers = bench_tiers(operands, words);
    for t in &tiers {
        eprintln!("#   {:<8} {:>12.0} ops/s  {:>7.2} GiB/s", t.name, t.ops_per_s, t.gib_per_s);
    }
    let scalar = tiers.iter().find(|t| t.name == "scalar").map(|t| t.ops_per_s);
    let speedup = |name: &str| -> Option<f64> {
        match (scalar, tiers.iter().find(|t| t.name == name)) {
            (Some(s), Some(t)) if s > 0.0 => Some(t.ops_per_s / s),
            _ => None,
        }
    };

    eprintln!("# disk counts (cold vs warm)...");
    let disk = bench_disk()?;
    eprintln!(
        "#   rows {}: cold {:.1} us/count ({} misses), warm {:.2} us/count (hit rate {:.3}, {} hot decodes)",
        disk.rows, disk.cold_us, disk.cold_misses, disk.warm_us, disk.warm_hit_rate, disk.hot_decodes
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": 2,\n");
    json.push_str(&format!(
        "  \"active_tier\": \"{}\",\n",
        ops_simd::active_tier().name()
    ));
    json.push_str("  \"kernel\": {\n");
    json.push_str(&format!("    \"operands\": {operands},\n"));
    json.push_str(&format!("    \"words_per_operand\": {words},\n"));
    json.push_str(&format!("    \"block_words\": {},\n", ops_simd::BLOCK_WORDS));
    json.push_str("    \"tiers\": {\n");
    for (i, t) in tiers.iter().enumerate() {
        json.push_str(&format!(
            "      \"{}\": {{ \"ops_per_s\": {:.1}, \"gib_per_s\": {:.3} }}{}\n",
            t.name,
            t.ops_per_s,
            t.gib_per_s,
            if i + 1 < tiers.len() { "," } else { "" }
        ));
    }
    json.push_str("    },\n");
    json.push_str(&format!(
        "    \"speedup_blocked_vs_scalar\": {},\n",
        speedup("blocked").map_or("null".to_string(), |s| format!("{s:.2}"))
    ));
    json.push_str(&format!(
        "    \"speedup_avx2_vs_scalar\": {}\n",
        speedup("avx2").map_or("null".to_string(), |s| format!("{s:.2}"))
    ));
    json.push_str("  },\n");
    json.push_str("  \"disk\": {\n");
    json.push_str(&format!("    \"rows\": {},\n", disk.rows));
    json.push_str(&format!("    \"cold_us_per_count\": {:.2},\n", disk.cold_us));
    json.push_str(&format!("    \"warm_us_per_count\": {:.3},\n", disk.warm_us));
    json.push_str(&format!("    \"cold_misses\": {},\n", disk.cold_misses));
    json.push_str(&format!("    \"warm_hits\": {},\n", disk.warm_hits));
    json.push_str(&format!("    \"warm_hit_rate\": {:.4},\n", disk.warm_hit_rate));
    json.push_str(&format!("    \"hot_slice_decodes\": {}\n", disk.hot_decodes));
    json.push_str("  }\n");
    json.push_str("}\n");
    std::fs::write(&out, &json)?;
    println!("wrote {out}");
    Ok(())
}
