//! Figure 8: scalability with the number of transactions.

use bbs_bench::experiments::{run_fig8, sweeps};
use bbs_bench::Profile;

fn main() {
    let p = Profile::from_env_and_args();
    run_fig8(&p, &sweeps::sizes(&p)).print();
}
