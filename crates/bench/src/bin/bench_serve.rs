//! `bench_serve` — machine-readable performance snapshot of the
//! query/ingest server, written to `BENCH_6.json`.
//!
//! Spins up an in-process `bbs-server` on a TCP loopback socket and
//! drives it the way a deployment would be driven:
//!
//! 1. **Ingest throughput**: W writer clients stream fixed-size insert
//!    batches for a wall-clock window; group commit coalesces them, so
//!    the interesting numbers are transactions/s, per-insert latency
//!    quantiles, and how many producer batches each fsync absorbed.
//! 2. **Concurrent count latency**: R reader clients issue `count`
//!    queries against live snapshots *while* the writers run, then again
//!    on the quiesced server (warm pages, no commit contention).
//! 3. **Mine**: one full `mine` round-trip over the final snapshot.
//! 4. **Replication**: a follower attaches over the wire protocol, a
//!    second ingest window runs against the primary while a sampler
//!    records the follower's steady-state replication lag (rows behind),
//!    and reader clients measure count throughput *on the follower* —
//!    first while it is applying the stream, then quiesced after it has
//!    caught up.
//!
//! Usage: `bench_serve [OUT.json]` (default `BENCH_6.json`).

use bbs_server::{Bind, Client, ClientError, Engine, ServerConfig};
use bbs_storage::DiskDeployment;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WRITERS: usize = 4;
const READERS: usize = 2;
const BATCH: u64 = 64;
const INGEST_MS: u64 = 1500;
const QUIESCED_MS: u64 = 500;
const FOLLOWER_POLL_MS: u64 = 5;
const LAG_SAMPLE_MS: u64 = 5;

/// Pull the integer value of `"key":N` out of a stats JSON blob.
fn stat_u64(stats: &str, key: &str) -> Option<u64> {
    stats.split(&format!("\"{key}\":")).nth(1).and_then(|rest| {
        rest.chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse::<u64>()
            .ok()
    })
}

/// Latency quantile over a sorted sample, reported in microseconds.
fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

struct LatencySummary {
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
}

fn summarize(mut samples_us: Vec<u64>) -> LatencySummary {
    samples_us.sort_unstable();
    LatencySummary {
        p50_us: quantile(&samples_us, 0.50),
        p99_us: quantile(&samples_us, 0.99),
        max_us: samples_us.last().copied().unwrap_or(0),
    }
}

fn items_of(i: u64) -> Vec<u32> {
    vec![1, 2 + (i % 64) as u32, 100 + (i % 7) as u32]
}

struct IngestResult {
    txns: u64,
    inserts: u64,
    overloaded: u64,
    secs: f64,
    latency: LatencySummary,
}

fn run_ingest(addr: &str, rows_base: u64) -> std::io::Result<IngestResult> {
    let stop = Arc::new(AtomicBool::new(false));
    let next_row = Arc::new(AtomicU64::new(rows_base));
    let start = Instant::now();
    let workers: Vec<_> = (0..WRITERS)
        .map(|_| {
            let addr = addr.to_string();
            let stop = Arc::clone(&stop);
            let next_row = Arc::clone(&next_row);
            std::thread::spawn(move || -> std::io::Result<(u64, u64, u64, Vec<u64>)> {
                let mut client = Client::connect_tcp(&addr)
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                let mut samples = Vec::new();
                let (mut txns, mut inserts, mut overloaded) = (0u64, 0u64, 0u64);
                while !stop.load(Ordering::Acquire) {
                    let first = next_row.fetch_add(BATCH, Ordering::AcqRel);
                    let batch: Vec<(u64, Vec<u32>)> =
                        (first..first + BATCH).map(|i| (i, items_of(i))).collect();
                    loop {
                        let t0 = Instant::now();
                        match client.insert(&batch) {
                            Ok(_) => {
                                samples.push(t0.elapsed().as_micros() as u64);
                                txns += BATCH;
                                inserts += 1;
                                break;
                            }
                            Err(ClientError::Overloaded) => {
                                overloaded += 1;
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => return Err(std::io::Error::other(e.to_string())),
                        }
                    }
                }
                Ok((txns, inserts, overloaded, samples))
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(INGEST_MS));
    stop.store(true, Ordering::Release);
    let mut all = Vec::new();
    let (mut txns, mut inserts, mut overloaded) = (0u64, 0u64, 0u64);
    for w in workers {
        let (t, i, o, samples) = w.join().expect("writer thread")?;
        txns += t;
        inserts += i;
        overloaded += o;
        all.extend(samples);
    }
    Ok(IngestResult {
        txns,
        inserts,
        overloaded,
        secs: start.elapsed().as_secs_f64(),
        latency: summarize(all),
    })
}

fn run_counts(
    addr: &str,
    window_ms: u64,
    readers: usize,
) -> std::io::Result<(LatencySummary, f64)> {
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let workers: Vec<_> = (0..readers)
        .map(|r| {
            let addr = addr.to_string();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> std::io::Result<Vec<u64>> {
                let mut client = Client::connect_tcp(&addr)
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                let mut samples = Vec::new();
                let mut i = r as u64;
                while !stop.load(Ordering::Acquire) {
                    let items = [1u32, 2 + (i % 64) as u32];
                    let t0 = Instant::now();
                    client
                        .count(&items)
                        .map_err(|e| std::io::Error::other(e.to_string()))?;
                    samples.push(t0.elapsed().as_micros() as u64);
                    i += 1;
                }
                Ok(samples)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(window_ms));
    stop.store(true, Ordering::Release);
    let mut all = Vec::new();
    for w in workers {
        all.extend(w.join().expect("reader thread")?);
    }
    let secs = start.elapsed().as_secs_f64();
    let per_s = all.len() as f64 / secs;
    Ok((summarize(all), per_s))
}

fn main() -> std::io::Result<()> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_6.json".to_string());
    let mut base = std::env::temp_dir();
    base.push(format!("bbs_bench6_{}", std::process::id()));
    let mut follower_base = std::env::temp_dir();
    follower_base.push(format!("bbs_bench6f_{}", std::process::id()));
    DiskDeployment::remove_files(&base).ok();
    DiskDeployment::remove_files(&follower_base).ok();

    let cfg = ServerConfig {
        width: 1024,
        cache_pages: 4096,
        ..ServerConfig::default()
    };
    let queue_capacity = cfg.queue_capacity;
    let batch_max = cfg.batch_max;
    let engine = Engine::open(&base, cfg)?;
    let handle = bbs_server::serve(
        engine,
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )?;
    let addr = handle.tcp_addr().expect("tcp bound").to_string();
    eprintln!("# serving on {addr}: {WRITERS} writers x {BATCH}-txn batches, {READERS} readers, {INGEST_MS} ms window");

    // Phase 1+2: ingest under load with concurrent counters.
    let counter = {
        let addr = addr.clone();
        std::thread::spawn(move || run_counts(&addr, INGEST_MS, READERS))
    };
    let ingest = run_ingest(&addr, 0)?;
    let (count_live, count_live_per_s) = counter.join().expect("counter thread")?;
    eprintln!(
        "#   ingest: {:.0} txns/s ({} inserts, {} overloaded), insert p50 {} us p99 {} us",
        ingest.txns as f64 / ingest.secs,
        ingest.inserts,
        ingest.overloaded,
        ingest.latency.p50_us,
        ingest.latency.p99_us
    );
    eprintln!(
        "#   count (during ingest): {:.0}/s, p50 {} us p99 {} us",
        count_live_per_s, count_live.p50_us, count_live.p99_us
    );

    // Phase 3: counts on the quiesced server — warm cache, no commits.
    let (count_quiet, count_quiet_per_s) = run_counts(&addr, QUIESCED_MS, READERS)?;
    eprintln!(
        "#   count (quiesced): {:.0}/s, p50 {} us p99 {} us",
        count_quiet_per_s, count_quiet.p50_us, count_quiet.p99_us
    );

    // Phase 4: one mine round-trip over everything ingested.
    let mut client = Client::connect_tcp(&addr).map_err(|e| std::io::Error::other(e.to_string()))?;
    client.set_timeout(Some(Duration::from_secs(120))).ok();
    let t0 = Instant::now();
    let mine = client
        .mine(
            bbs_core::Scheme::Dfp,
            bbs_tdb::SupportThreshold::Fraction(0.05),
            0,
        )
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    let mine_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "#   mine dfp @5%: {} patterns over {} rows in {:.1} ms",
        mine.patterns.len(),
        mine.rows,
        mine_ms
    );

    // Phase 5: replication.  A follower attaches to the live primary,
    // bootstraps everything ingested so far, and then a second ingest
    // window runs while we sample how far the follower trails the
    // primary (rows behind, from its own lag gauge) and how fast it
    // serves counts from its replicated snapshots.
    let follower_cfg = ServerConfig {
        width: 1024,
        cache_pages: 4096,
        follow: Some(addr.clone()),
        poll_interval: Duration::from_millis(FOLLOWER_POLL_MS),
        ..ServerConfig::default()
    };
    let follower_engine = Engine::open(&follower_base, follower_cfg)?;
    let follower_handle = bbs_server::serve(
        follower_engine,
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )?;
    let faddr = follower_handle.tcp_addr().expect("tcp bound").to_string();
    eprintln!("# follower on {faddr} (poll {FOLLOWER_POLL_MS} ms), second {INGEST_MS} ms ingest window");

    // Let the follower bootstrap the existing rows first, so the lag
    // samples below measure the steady state, not the initial backlog.
    let mut fclient =
        Client::connect_tcp(&faddr).map_err(|e| std::io::Error::other(e.to_string()))?;
    let t0 = Instant::now();
    loop {
        let frows = fclient
            .count(&[1])
            .map_err(|e| std::io::Error::other(e.to_string()))?
            .rows;
        if frows == ingest.txns {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let bootstrap_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!("#   bootstrap: {} rows replicated in {bootstrap_ms:.1} ms", ingest.txns);

    // Steady-state lag, measured from the outside: how many committed
    // rows the primary holds that the follower does not yet serve, at
    // each sample instant.  (The follower's own lag gauge is refreshed
    // after each applied pull, so it understates in-flight staleness.)
    let sampler_stop = Arc::new(AtomicBool::new(false));
    let lag_sampler = {
        let paddr = addr.clone();
        let faddr = faddr.clone();
        let stop = Arc::clone(&sampler_stop);
        std::thread::spawn(move || -> std::io::Result<Vec<u64>> {
            let mut p = Client::connect_tcp(&paddr)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            let mut f = Client::connect_tcp(&faddr)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            let mut samples = Vec::new();
            while !stop.load(Ordering::Acquire) {
                let prows = p
                    .count(&[1])
                    .map_err(|e| std::io::Error::other(e.to_string()))?
                    .rows;
                let frows = f
                    .count(&[1])
                    .map_err(|e| std::io::Error::other(e.to_string()))?
                    .rows;
                samples.push(prows.saturating_sub(frows));
                std::thread::sleep(Duration::from_millis(LAG_SAMPLE_MS));
            }
            Ok(samples)
        })
    };
    let follower_counter = {
        let faddr = faddr.clone();
        std::thread::spawn(move || run_counts(&faddr, INGEST_MS, READERS))
    };
    let repl_ingest = run_ingest(&addr, ingest.txns)?;
    let (fcount_live, fcount_live_per_s) = follower_counter.join().expect("follower counter")?;

    // Catch-up: wall-clock from end-of-ingest until the follower has
    // applied every row the primary holds.
    let primary_rows = ingest.txns + repl_ingest.txns;
    let t0 = Instant::now();
    loop {
        let fstats = fclient
            .stats()
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        if stat_u64(&fstats, "rows") == Some(primary_rows) {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let catch_up_ms = t0.elapsed().as_secs_f64() * 1e3;
    sampler_stop.store(true, Ordering::Release);
    let lag_rows = summarize(lag_sampler.join().expect("lag sampler")?);
    eprintln!(
        "#   replication: ingest {:.0} txns/s, lag p50 {} p99 {} max {} rows, caught up in {:.1} ms",
        repl_ingest.txns as f64 / repl_ingest.secs,
        lag_rows.p50_us,
        lag_rows.p99_us,
        lag_rows.max_us,
        catch_up_ms
    );
    eprintln!(
        "#   follower count (during replication): {:.0}/s, p50 {} us p99 {} us",
        fcount_live_per_s, fcount_live.p50_us, fcount_live.p99_us
    );

    // Follower reads after catch-up: no apply traffic, warm pages.
    let (fcount_quiet, fcount_quiet_per_s) = run_counts(&faddr, QUIESCED_MS, READERS)?;
    eprintln!(
        "#   follower count (quiesced): {:.0}/s, p50 {} us p99 {} us",
        fcount_quiet_per_s, fcount_quiet.p50_us, fcount_quiet.p99_us
    );

    let follower_stats = fclient
        .stats()
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    fclient
        .shutdown_server()
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    follower_handle.join();
    DiskDeployment::remove_files(&follower_base).ok();

    let stats = client
        .stats()
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    client
        .shutdown_server()
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    handle.join();
    DiskDeployment::remove_files(&base).ok();

    // Group-commit coalescing factor, from the server's own counter: how
    // many producer batches each commit (one fsync) absorbed on average.
    let commits = stat_u64(&stats, "commits")
        .unwrap_or(ingest.inserts)
        .max(1);
    let coalesce = (ingest.inserts + repl_ingest.inserts) as f64 / commits as f64;
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": 6,\n");
    json.push_str("  \"config\": {\n");
    json.push_str(&format!("    \"writers\": {WRITERS},\n"));
    json.push_str(&format!("    \"readers\": {READERS},\n"));
    json.push_str(&format!("    \"batch\": {BATCH},\n"));
    json.push_str(&format!("    \"ingest_window_ms\": {INGEST_MS},\n"));
    json.push_str(&format!("    \"queue_capacity\": {queue_capacity},\n"));
    json.push_str(&format!("    \"batch_max\": {batch_max}\n"));
    json.push_str("  },\n");
    json.push_str("  \"ingest\": {\n");
    json.push_str(&format!("    \"transactions\": {},\n", ingest.txns));
    json.push_str(&format!(
        "    \"txns_per_s\": {:.1},\n",
        ingest.txns as f64 / ingest.secs
    ));
    json.push_str(&format!("    \"inserts\": {},\n", ingest.inserts));
    json.push_str(&format!("    \"overloaded_retries\": {},\n", ingest.overloaded));
    json.push_str(&format!("    \"commits\": {commits},\n"));
    json.push_str(&format!("    \"batches_per_commit\": {coalesce:.2},\n"));
    json.push_str(&format!(
        "    \"insert_us\": {{ \"p50\": {}, \"p99\": {}, \"max\": {} }}\n",
        ingest.latency.p50_us, ingest.latency.p99_us, ingest.latency.max_us
    ));
    json.push_str("  },\n");
    json.push_str("  \"count_during_ingest\": {\n");
    json.push_str(&format!("    \"counts_per_s\": {count_live_per_s:.1},\n"));
    json.push_str(&format!(
        "    \"count_us\": {{ \"p50\": {}, \"p99\": {}, \"max\": {} }}\n",
        count_live.p50_us, count_live.p99_us, count_live.max_us
    ));
    json.push_str("  },\n");
    json.push_str("  \"count_quiesced\": {\n");
    json.push_str(&format!("    \"counts_per_s\": {count_quiet_per_s:.1},\n"));
    json.push_str(&format!(
        "    \"count_us\": {{ \"p50\": {}, \"p99\": {}, \"max\": {} }}\n",
        count_quiet.p50_us, count_quiet.p99_us, count_quiet.max_us
    ));
    json.push_str("  },\n");
    json.push_str("  \"mine\": {\n");
    json.push_str("    \"scheme\": \"dfp\",\n");
    json.push_str(&format!("    \"rows\": {},\n", mine.rows));
    json.push_str(&format!("    \"patterns\": {},\n", mine.patterns.len()));
    json.push_str(&format!("    \"latency_ms\": {mine_ms:.1}\n"));
    json.push_str("  },\n");
    json.push_str("  \"replication\": {\n");
    json.push_str(&format!("    \"follower_poll_ms\": {FOLLOWER_POLL_MS},\n"));
    json.push_str(&format!("    \"lag_sample_ms\": {LAG_SAMPLE_MS},\n"));
    json.push_str(&format!("    \"bootstrap_rows\": {},\n", ingest.txns));
    json.push_str(&format!("    \"bootstrap_ms\": {bootstrap_ms:.1},\n"));
    json.push_str(&format!(
        "    \"primary_txns_per_s\": {:.1},\n",
        repl_ingest.txns as f64 / repl_ingest.secs
    ));
    json.push_str(&format!(
        "    \"lag_rows\": {{ \"p50\": {}, \"p99\": {}, \"max\": {} }},\n",
        lag_rows.p50_us, lag_rows.p99_us, lag_rows.max_us
    ));
    json.push_str(&format!("    \"catch_up_ms\": {catch_up_ms:.1},\n"));
    json.push_str("    \"follower_count_during_replication\": {\n");
    json.push_str(&format!("      \"counts_per_s\": {fcount_live_per_s:.1},\n"));
    json.push_str(&format!(
        "      \"count_us\": {{ \"p50\": {}, \"p99\": {}, \"max\": {} }}\n",
        fcount_live.p50_us, fcount_live.p99_us, fcount_live.max_us
    ));
    json.push_str("    },\n");
    json.push_str("    \"follower_count_quiesced\": {\n");
    json.push_str(&format!("      \"counts_per_s\": {fcount_quiet_per_s:.1},\n"));
    json.push_str(&format!(
        "      \"count_us\": {{ \"p50\": {}, \"p99\": {}, \"max\": {} }}\n",
        fcount_quiet.p50_us, fcount_quiet.p99_us, fcount_quiet.max_us
    ));
    json.push_str("    },\n");
    // The follower's own view: apply latency histogram, pull sizes,
    // applied-batch counter, final lag gauge.
    json.push_str("    \"follower_stats\": ");
    json.push_str(follower_stats.trim());
    json.push('\n');
    json.push_str("  },\n");
    // The primary's own view, verbatim: per-endpoint latency histograms,
    // queue depths, batch sizes, commit times.
    json.push_str("  \"server_stats\": ");
    json.push_str(stats.trim());
    json.push('\n');
    json.push_str("}\n");
    std::fs::write(&out, &json)?;
    println!("wrote {out}");
    Ok(())
}
