//! Figure 6: all six algorithms on the default settings.

use bbs_bench::experiments::run_fig6;
use bbs_bench::Profile;

fn main() {
    run_fig6(&Profile::from_env_and_args()).print();
}
