//! `bench_dynamic` — machine-readable snapshot of the dynamic-workload
//! tier, written to `BENCH_10.json`.
//!
//! Replays a seeded weblog-churn workload (rotating hot set, daily
//! session expirations) into a deliberately narrow deployment, so the
//! index accumulates tombstones and hash-collision pressure, then
//! measures the same served workload at three index states:
//!
//! 1. **churned** — tombstone-laden, narrow, sick FPR;
//! 2. **compacted** — after an epoch-swapped widening compaction
//!    (tombstones reclaimed, width doubled, FPR restored);
//! 3. **folded** — after folding back to the original width (space
//!    reclaimed, FPR trades back up).
//!
//! Each state records the probe-verified FPR gauge, count round-trip
//! latency, one full mine round-trip, and the live/tombstoned row split
//! — before-vs-after evidence that maintenance restores health without
//! stopping the server.
//!
//! Usage: `bench_dynamic [OUT.json]` (default `BENCH_10.json`).

use bbs_core::Scheme;
use bbs_datagen::{WeblogConfig, WeblogGenerator};
use bbs_server::{maintain_action, serve, Bind, Client, Engine, ServerConfig};
use bbs_storage::diskbbs::DiskDeployment;
use bbs_tdb::SupportThreshold;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SEED: u64 = 0xD15C_0DE5;
const WIDTH: usize = 64;
const FILES: u32 = 600;
const DAYS: usize = 5;
const SESSIONS_PER_DAY: usize = 600;
const CHURN: f64 = 0.2;
const FPR_SAMPLES: u64 = 64;
const COUNT_MS: u64 = 400;
const MINE_THRESHOLD: u64 = 40;

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

struct StateSnapshot {
    state: &'static str,
    width: u32,
    live_rows: u64,
    deleted_rows: u64,
    fpr: f64,
    count_p50_us: u64,
    count_p99_us: u64,
    counts_per_s: f64,
    mine_ms: f64,
    patterns: usize,
}

/// Measures one index state: probe the FPR gauge, hammer single-item
/// counts for a wall-clock window, then one full mine round-trip.
fn measure(
    client: &mut Client,
    state: &'static str,
    hot: &[u32],
) -> std::io::Result<StateSnapshot> {
    let err = |e: bbs_server::ClientError| std::io::Error::other(e.to_string());
    let probe = client
        .maintain(maintain_action::PROBE_FPR, FPR_SAMPLES)
        .map_err(err)?;

    let mut samples = Vec::new();
    let window = Duration::from_millis(COUNT_MS);
    let start = Instant::now();
    let mut round = 0usize;
    while start.elapsed() < window {
        let file = hot[round % hot.len()];
        let t0 = Instant::now();
        client.count(&[file]).map_err(err)?;
        samples.push(t0.elapsed().as_micros() as u64);
        round += 1;
    }
    let counts_per_s = samples.len() as f64 / start.elapsed().as_secs_f64();
    samples.sort_unstable();

    let t0 = Instant::now();
    let mine = client
        .mine(Scheme::Dfp, SupportThreshold::Count(MINE_THRESHOLD), 1)
        .map_err(err)?;
    let mine_ms = t0.elapsed().as_secs_f64() * 1e3;

    eprintln!(
        "#   {state}: width {}, {} live / {} tombstoned, fpr {:.4}, \
         count p50 {} us p99 {} us ({counts_per_s:.0}/s), mine {mine_ms:.1} ms ({} patterns)",
        probe.width,
        probe.live_rows,
        probe.deleted_rows,
        probe.fpr,
        quantile(&samples, 0.50),
        quantile(&samples, 0.99),
        mine.patterns.len(),
    );
    Ok(StateSnapshot {
        state,
        width: probe.width,
        live_rows: probe.live_rows,
        deleted_rows: probe.deleted_rows,
        fpr: probe.fpr,
        count_p50_us: quantile(&samples, 0.50),
        count_p99_us: quantile(&samples, 0.99),
        counts_per_s,
        mine_ms,
        patterns: mine.patterns.len(),
    })
}

fn main() -> std::io::Result<()> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_10.json".to_string());
    let err = |e: bbs_server::ClientError| std::io::Error::other(e.to_string());

    let mut base: PathBuf = std::env::temp_dir();
    base.push(format!("bbs_bench10_{}", std::process::id()));
    DiskDeployment::remove_files(&base).ok();
    let engine = Engine::open(
        &base,
        ServerConfig {
            width: WIDTH,
            ..ServerConfig::default()
        },
    )?;
    let handle = serve(
        engine,
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )?;
    let addr = handle.tcp_addr().expect("tcp bound").to_string();
    let mut client = Client::connect_tcp(&addr).map_err(err)?;

    // Replay the churning weblog: each day expires a slice of the live
    // sessions (tombstone deletes) before appending the day's traffic.
    let mut weblog = WeblogGenerator::new(WeblogConfig {
        files: FILES,
        hot_fraction: 0.1,
        daily_rotation: 0.1,
        hot_hit_probability: 0.8,
        days: DAYS,
        sessions_per_day: SESSIONS_PER_DAY,
        avg_session_len: 8.0,
        churn_rate: CHURN,
        seed: SEED,
    });
    eprintln!(
        "# weblog churn on {addr}: {DAYS} days x {SESSIONS_PER_DAY} sessions, \
         {FILES} files, churn {CHURN}, width {WIDTH}, seed {SEED:#x}"
    );
    let (mut inserted, mut deleted) = (0u64, 0u64);
    let ingest_start = Instant::now();
    while let Some(day) = weblog.next_day() {
        if !day.expired_tids.is_empty() {
            deleted += client.delete(&day.expired_tids).map_err(err)?.deleted;
        }
        let txns: Vec<(u64, Vec<u32>)> = day
            .transactions
            .iter()
            .map(|t| (t.tid.0, t.items.items().iter().map(|i| i.0).collect()))
            .collect();
        client.insert(&txns).map_err(err)?;
        inserted += txns.len() as u64;
    }
    let ingest_secs = ingest_start.elapsed().as_secs_f64();
    eprintln!(
        "#   ingested {inserted} sessions, tombstoned {deleted} ({:.0} txns/s)",
        inserted as f64 / ingest_secs
    );
    let hot: Vec<u32> = weblog.hot_files().iter().map(|i| i.0).collect();

    let churned = measure(&mut client, "churned", &hot)?;

    // Widening compaction: reclaim the tombstones, double the width.
    let t0 = Instant::now();
    client
        .maintain(maintain_action::COMPACT, (WIDTH * 2) as u64)
        .map_err(err)?;
    let compact_ms = t0.elapsed().as_secs_f64() * 1e3;
    let compacted = measure(&mut client, "compacted", &hot)?;

    // Fold back down: halve the width in place, no re-hash.
    let t0 = Instant::now();
    client.maintain(maintain_action::FOLD, 0).map_err(err)?;
    let fold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let folded = measure(&mut client, "folded", &hot)?;
    eprintln!("#   compaction took {compact_ms:.1} ms, fold took {fold_ms:.1} ms");

    client.shutdown_server().map_err(err)?;
    handle.join();
    DiskDeployment::remove_files(&base).ok();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": 10,\n");
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    json.push_str("  \"config\": {\n");
    json.push_str(&format!("    \"host_cpus\": {cpus},\n"));
    json.push_str(&format!("    \"seed\": {SEED},\n"));
    json.push_str(&format!("    \"width\": {WIDTH},\n"));
    json.push_str(&format!("    \"files\": {FILES},\n"));
    json.push_str(&format!("    \"days\": {DAYS},\n"));
    json.push_str(&format!("    \"sessions_per_day\": {SESSIONS_PER_DAY},\n"));
    json.push_str(&format!("    \"churn_rate\": {CHURN},\n"));
    json.push_str(&format!("    \"fpr_samples\": {FPR_SAMPLES},\n"));
    json.push_str(&format!("    \"mine_threshold\": {MINE_THRESHOLD}\n"));
    json.push_str("  },\n");
    json.push_str("  \"ingest\": {\n");
    json.push_str(&format!("    \"sessions\": {inserted},\n"));
    json.push_str(&format!("    \"tombstoned\": {deleted},\n"));
    json.push_str(&format!(
        "    \"txns_per_s\": {:.1}\n",
        inserted as f64 / ingest_secs
    ));
    json.push_str("  },\n");
    json.push_str(&format!("  \"compact_ms\": {compact_ms:.1},\n"));
    json.push_str(&format!("  \"fold_ms\": {fold_ms:.1},\n"));
    json.push_str("  \"states\": [\n");
    let states = [churned, compacted, folded];
    for (i, s) in states.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"state\": \"{}\",\n", s.state));
        json.push_str(&format!("      \"width\": {},\n", s.width));
        json.push_str(&format!("      \"live_rows\": {},\n", s.live_rows));
        json.push_str(&format!("      \"deleted_rows\": {},\n", s.deleted_rows));
        json.push_str(&format!("      \"measured_fpr\": {:.6},\n", s.fpr));
        json.push_str(&format!(
            "      \"count_us\": {{ \"p50\": {}, \"p99\": {} }},\n",
            s.count_p50_us, s.count_p99_us
        ));
        json.push_str(&format!("      \"counts_per_s\": {:.1},\n", s.counts_per_s));
        json.push_str(&format!("      \"mine_ms\": {:.1},\n", s.mine_ms));
        json.push_str(&format!("      \"patterns\": {}\n", s.patterns));
        json.push_str(if i + 1 == states.len() { "    }\n" } else { "    },\n" });
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    std::fs::write(&out, &json)?;
    println!("wrote {out}");
    Ok(())
}
