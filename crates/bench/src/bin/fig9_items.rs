//! Figure 9: effect of the number of distinct items.

use bbs_bench::experiments::{run_fig9, sweeps};
use bbs_bench::Profile;

fn main() {
    let p = Profile::from_env_and_args();
    run_fig9(&p, &sweeps::item_counts(&p)).print();
}
