//! Ablation A2: integrated vs two-phase probe refinement.

use bbs_bench::experiments::run_ablation_integration;
use bbs_bench::Profile;

fn main() {
    run_ablation_integration(&Profile::from_env_and_args()).print();
}
