//! Figure 10: effect of the average number of items per transaction.

use bbs_bench::experiments::{run_fig10, sweeps};
use bbs_bench::Profile;

fn main() {
    let p = Profile::from_env_and_args();
    run_fig10(&p, &sweeps::lengths(&p)).print();
}
