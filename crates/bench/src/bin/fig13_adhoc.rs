//! Figure 13: ad-hoc queries (exact non-frequent counts; constrained
//! counts), DFP vs APS.

use bbs_bench::experiments::run_fig13;
use bbs_bench::Profile;

fn main() {
    run_fig13(&Profile::from_env_and_args()).print();
}
