//! Figure 5: effect of the signature width `m` on false-drop ratio and
//! response time.  `--quick` for a scaled-down run.

use bbs_bench::experiments::{run_fig5, sweeps};
use bbs_bench::Profile;

fn main() {
    let p = Profile::from_env_and_args();
    let (fdr, time) = run_fig5(&p, &sweeps::widths(&p));
    fdr.print();
    time.print();
}
