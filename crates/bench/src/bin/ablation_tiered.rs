//! Ablation A3: adaptive folding vs pre-built tiered indexes (footnote 6).

use bbs_bench::experiments::{run_ablation_tiered, sweeps};
use bbs_bench::Profile;

fn main() {
    let p = Profile::from_env_and_args();
    run_ablation_tiered(&p, &sweeps::budgets_kib(&p)).print();
}
