//! Figure 12: dynamic (growing) database — incremental BBS maintenance vs
//! from-scratch APS / FPS.

use bbs_bench::experiments::run_fig12;
use bbs_bench::Profile;

fn main() {
    let p = Profile::from_env_and_args();
    let sessions = (p.transactions / 5).max(200);
    run_fig12(&p, 5, sessions).print();
}
